package marioh_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"marioh"
)

// mustDataset generates a named dataset or fails the test.
func mustDataset(t *testing.T, name string, seed int64) *marioh.Dataset {
	t.Helper()
	ds, err := marioh.GenerateDataset(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestNewZeroOptionsMatchesDeprecatedAPI pins the migration contract: a
// zero-option Reconstructor reproduces the deprecated TrainModel +
// Reconstruct flow bit for bit on a seeded dataset.
func TestNewZeroOptionsMatchesDeprecatedAPI(t *testing.T) {
	ds := mustDataset(t, "crime", 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	gS, gT := src.Project(), tgt.Project()

	oldModel := marioh.TrainModel(gS, src, marioh.TrainOptions{Seed: 1})
	oldRes := marioh.Reconstruct(gT, oldModel, marioh.Options{Seed: 1})

	r, err := marioh.New(marioh.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Train(context.Background(), gS, src); err != nil {
		t.Fatal(err)
	}
	newRes, err := r.Reconstruct(context.Background(), gT)
	if err != nil {
		t.Fatal(err)
	}
	if !oldRes.Hypergraph.Equal(newRes.Hypergraph) {
		t.Fatalf("zero-option Reconstructor diverges from deprecated API: old %d/%d vs new %d/%d hyperedges",
			oldRes.Hypergraph.NumUnique(), oldRes.Hypergraph.NumTotal(),
			newRes.Hypergraph.NumUnique(), newRes.Hypergraph.NumTotal())
	}
	if oldRes.FilteredSize2 != newRes.FilteredSize2 {
		t.Fatalf("FilteredSize2: old %d new %d", oldRes.FilteredSize2, newRes.FilteredSize2)
	}
}

// TestReconstructBatchEqualsSequential is the acceptance criterion:
// ReconstructBatch with WithParallelism(4) over 4 generated datasets must
// reproduce the sequential per-target runs exactly (same seeds ⇒ same
// hypergraphs ⇒ same Jaccard).
func TestReconstructBatchEqualsSequential(t *testing.T) {
	names := []string{"crime", "hosts", "enron", "pschool"}
	train := mustDataset(t, names[0], 1).Source.Reduced()

	var targets []*marioh.Graph
	var truths []*marioh.Hypergraph
	for _, name := range names {
		tgt := mustDataset(t, name, 1).Target.Reduced()
		truths = append(truths, tgt)
		targets = append(targets, tgt.Project())
	}

	newTrained := func(opts ...marioh.Option) *marioh.Reconstructor {
		r, err := marioh.New(append([]marioh.Option{marioh.WithSeed(1), marioh.WithEpochs(25)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Train(context.Background(), train.Project(), train); err != nil {
			t.Fatal(err)
		}
		return r
	}

	seq := newTrained()
	var want []*marioh.Result
	for _, g := range targets {
		res, err := seq.Reconstruct(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	batch := newTrained(marioh.WithParallelism(4))
	got, err := batch.ReconstructBatch(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] == nil || !want[i].Hypergraph.Equal(got[i].Hypergraph) {
			t.Fatalf("target %d (%s): batch result diverges from sequential run", i, names[i])
		}
		seqJ := marioh.Jaccard(truths[i], want[i].Hypergraph)
		batJ := marioh.Jaccard(truths[i], got[i].Hypergraph)
		if seqJ != batJ {
			t.Fatalf("target %d (%s): Jaccard %v (sequential) != %v (batch)", i, names[i], seqJ, batJ)
		}
	}

	// A second parallel run must be reproducible too.
	again, err := newTrained(marioh.WithParallelism(4)).ReconstructBatch(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !got[i].Hypergraph.Equal(again[i].Hypergraph) {
			t.Fatalf("target %d: parallel batch is not reproducible", i)
		}
	}
}

// TestReconstructCancellation is the acceptance criterion: a context
// cancelled mid-reconstruction stops the run and surfaces ctx.Err().
func TestReconstructCancellation(t *testing.T) {
	ds := mustDataset(t, "eu", 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	r, err := marioh.New(
		marioh.WithSeed(1),
		marioh.WithEpochs(10),
		// Cancel from inside the progress stream after the first search
		// round: unambiguously mid-reconstruction.
		marioh.WithProgress(func(p marioh.Progress) {
			rounds++
			if p.Round >= 1 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Train(context.Background(), src.Project(), src); err != nil {
		t.Fatal(err)
	}
	res, err := r.Reconstruct(ctx, tgt.Project())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rounds == 0 {
		t.Fatal("progress stream never fired")
	}
	if res == nil || res.Hypergraph == nil {
		t.Fatal("cancellation must still return the partial result")
	}

	// An already-cancelled context never starts the run.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := r.Reconstruct(dead, tgt.Project()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v", err)
	}

	// Batch runs propagate cancellation the same way.
	bctx, bcancel := context.WithCancel(context.Background())
	bcancel()
	if _, err := r.ReconstructBatch(bctx, []*marioh.Graph{tgt.Project()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch with cancelled ctx: err = %v", err)
	}
}

// TestTrainCancellation checks the training path: a cancelled context
// surfaces ctx.Err() and leaves no model behind.
func TestTrainCancellation(t *testing.T) {
	ds := mustDataset(t, "crime", 1)
	src := ds.Source.Reduced()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := marioh.New(marioh.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Train(ctx, src.Project(), src); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r.Model() != nil {
		t.Fatal("cancelled Train must not store a model")
	}
	if _, err := r.Reconstruct(context.Background(), src.Project()); !errors.Is(err, marioh.ErrNoModel) {
		t.Fatalf("untrained Reconstruct err = %v, want ErrNoModel", err)
	}
}

// TestProgressEvents checks the shape of the progress stream: a filtering
// event (round 0), monotone rounds, decaying θ, and batch target stamping.
func TestProgressEvents(t *testing.T) {
	ds := mustDataset(t, "crime", 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()

	var events []marioh.Progress
	r, err := marioh.New(
		marioh.WithSeed(1),
		marioh.WithEpochs(25),
		marioh.WithProgress(func(p marioh.Progress) { events = append(events, p) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Train(context.Background(), src.Project(), src); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reconstruct(context.Background(), tgt.Project()); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("want filtering + ≥1 search events, got %d", len(events))
	}
	if events[0].Round != 0 {
		t.Fatalf("first event must be the filtering step, got round %d", events[0].Round)
	}
	prevTotal := 0
	for i, e := range events {
		if i > 0 {
			if e.Round != events[i-1].Round+1 {
				t.Fatalf("rounds not monotone at event %d: %+v", i, e)
			}
			if e.Theta > events[i-1].Theta && i > 1 {
				t.Fatalf("θ increased at event %d: %+v", i, e)
			}
		}
		if e.AcceptedTotal < prevTotal {
			t.Fatalf("AcceptedTotal decreased at event %d: %+v", i, e)
		}
		prevTotal = e.AcceptedTotal
		if e.Target != 0 {
			t.Fatalf("single-target run must stamp Target 0: %+v", e)
		}
	}
	final := events[len(events)-1]
	if final.EdgesRemaining != 0 {
		t.Fatalf("run completed but EdgesRemaining = %d", final.EdgesRemaining)
	}

	// Batch runs stamp the target index and serialize delivery.
	var mu sync.Mutex
	seen := map[int]bool{}
	rb, err := marioh.New(
		marioh.WithSeed(1), marioh.WithEpochs(25), marioh.WithParallelism(2),
		marioh.WithModel(r.Model()),
		marioh.WithProgress(func(p marioh.Progress) {
			mu.Lock()
			seen[p.Target] = true
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.ReconstructBatch(context.Background(), []*marioh.Graph{tgt.Project(), src.Project()}); err != nil {
		t.Fatal(err)
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("batch progress must stamp both targets, saw %v", seen)
	}
}

// TestVariantsAndRegistry drives the named-variant path end to end and the
// option validation surface.
func TestVariantsAndRegistry(t *testing.T) {
	if names := marioh.VariantNames(); len(names) != 4 {
		t.Fatalf("VariantNames = %v", names)
	}
	if len(marioh.FeaturizerNames()) < 4 {
		t.Fatalf("FeaturizerNames = %v", marioh.FeaturizerNames())
	}

	ds := mustDataset(t, "crime", 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	for _, variant := range marioh.VariantNames() {
		r, err := marioh.New(marioh.WithVariant(variant), marioh.WithSeed(1), marioh.WithEpochs(10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Train(context.Background(), src.Project(), src); err != nil {
			t.Fatal(err)
		}
		res, err := r.Reconstruct(context.Background(), tgt.Project())
		if err != nil {
			t.Fatal(err)
		}
		if res.Hypergraph.NumUnique() == 0 {
			t.Fatalf("variant %q reconstructed nothing", variant)
		}
		if variant == "marioh-f" && res.FilteredSize2 != 0 {
			t.Fatalf("marioh-f must skip filtering, emitted %d", res.FilteredSize2)
		}
	}

	for _, bad := range []marioh.Option{
		marioh.WithVariant("nope"),
		marioh.WithFeaturizer("nope"),
		marioh.WithSharding(marioh.ShardingOptions{Shards: -1}),
		marioh.WithSharding(marioh.ShardingOptions{TargetEdges: -1}),
		marioh.WithSharding(marioh.ShardingOptions{Workers: -2}),
		marioh.WithThetaInit(1.5),
		marioh.WithR(-3),
		marioh.WithAlpha(-1),
		marioh.WithEpochs(0),
		marioh.WithHidden(0),
		marioh.WithSupervisionRatio(0),
		marioh.WithParallelism(-1),
		marioh.WithModel(nil),
		marioh.WithCustomFeaturizer(nil),
	} {
		if _, err := marioh.New(bad); err == nil {
			t.Fatal("invalid option must fail New")
		}
	}
}

// TestExplicitZeroOptions pins the fixed sentinel semantics: WithAlpha(0)
// really freezes θ instead of silently falling back to the default 1/20.
func TestExplicitZeroOptions(t *testing.T) {
	ds := mustDataset(t, "crime", 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()

	var thetas []float64
	r, err := marioh.New(
		marioh.WithSeed(1), marioh.WithEpochs(10),
		marioh.WithAlpha(0), marioh.WithMaxRounds(5),
		marioh.WithProgress(func(p marioh.Progress) {
			if p.Round > 0 {
				thetas = append(thetas, p.Theta)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Train(context.Background(), src.Project(), src); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reconstruct(context.Background(), tgt.Project()); err != nil {
		t.Fatal(err)
	}
	if len(thetas) == 0 {
		t.Fatal("no search rounds observed")
	}
	for _, th := range thetas {
		if th != 0.9 {
			t.Fatalf("α = 0 must freeze θ at 0.9, saw %v (history %v)", th, thetas)
		}
	}
}

// TestWithShardingMatchesSerial is the public-API acceptance criterion:
// a WithSharding Reconstructor must produce byte-identical output to the
// unsharded one, for every shard count, on library datasets.
func TestWithShardingMatchesSerial(t *testing.T) {
	train := mustDataset(t, "crime", 1).Source.Reduced()
	tgt := mustDataset(t, "hosts", 1).Target.Reduced().Project()

	render := func(r *marioh.Reconstructor) ([]byte, *marioh.Result) {
		res, err := r.Reconstruct(context.Background(), tgt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Hypergraph.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	newTrained := func(opts ...marioh.Option) *marioh.Reconstructor {
		r, err := marioh.New(append([]marioh.Option{marioh.WithSeed(1), marioh.WithEpochs(20)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Train(context.Background(), train.Project(), train); err != nil {
			t.Fatal(err)
		}
		return r
	}

	want, serial := render(newTrained())
	if serial.Shards != 0 {
		t.Fatalf("serial run reports %d shards, want 0", serial.Shards)
	}
	for _, shards := range []int{1, 4, 16} {
		got, res := render(newTrained(marioh.WithSharding(marioh.ShardingOptions{Shards: shards, TargetEdges: 8})))
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: output diverges from the serial pipeline", shards)
		}
		if res.Shards < 1 {
			t.Fatalf("shards=%d: result reports %d shards", shards, res.Shards)
		}
	}

	// Sharded batch runs reproduce sequential sharded runs, and progress
	// events carry shard indices.
	shardsSeen := map[int]bool{}
	rb := newTrained(
		marioh.WithSharding(marioh.ShardingOptions{Shards: 4, TargetEdges: 8}),
		marioh.WithParallelism(2),
		marioh.WithProgress(func(p marioh.Progress) { shardsSeen[p.Shard] = true }),
	)
	results, err := rb.ReconstructBatch(context.Background(), []*marioh.Graph{tgt, tgt})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		var buf bytes.Buffer
		if err := res.Hypergraph.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("batch target %d: sharded batch diverges from serial pipeline", i)
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("expected progress from ≥ 2 shards, saw %v", shardsSeen)
	}
}

// TestPipeline runs the one-call protocol and checks it matches the manual
// train + reconstruct flow.
func TestPipeline(t *testing.T) {
	r, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(25))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := r.Pipeline(context.Background(), "crime")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Model == nil || pr.Result == nil || pr.Dataset == nil {
		t.Fatalf("incomplete pipeline result: %+v", pr)
	}
	if pr.Jaccard <= 0 || pr.Jaccard > 1 {
		t.Fatalf("Jaccard = %v", pr.Jaccard)
	}
	if r.Model() != pr.Model {
		t.Fatal("Pipeline must store its trained model")
	}
	if _, err := r.Pipeline(context.Background(), "no-such-dataset"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}
