// Package marioh is the public API of this reproduction of "MARIOH:
// Multiplicity-Aware Hypergraph Reconstruction" (Lee, Lee & Shin, ICDE
// 2025). It reconstructs a hypergraph — a multiset of node sets of size
// ≥ 2 — from its weighted clique-expansion projection, using the edge
// multiplicities ω(u, v) that record how many hyperedges contain each node
// pair.
//
// The entry point is the Reconstructor service: configure it once with
// functional options, train it (or attach a saved model), then reconstruct
// any number of targets with context cancellation and progress reporting.
// The flow mirrors the paper's Problem 1 (supervised hypergraph
// reconstruction):
//
//	src, tgt := ...                            // same-domain hypergraphs
//	r, _ := marioh.New(marioh.WithSeed(1))     // zero options = the paper's setup
//	r.Train(ctx, src.Project(), src)
//	res, err := r.Reconstruct(ctx, tgt.Project())
//	if err == nil {
//		fmt.Println(marioh.Jaccard(tgt, res.Hypergraph))
//	}
//
// Batch workloads fan out with r.ReconstructBatch(ctx, targets) under
// marioh.WithParallelism(n), and r.Pipeline(ctx, "crime") runs the full
// generate→train→reconstruct→evaluate protocol on a named dataset.
// Algorithm variants and featurizers are resolved by name: see
// WithVariant, WithFeaturizer and RegisterFeaturizer.
//
// The free functions TrainModel and Reconstruct are the pre-service API,
// kept as thin deprecated wrappers.
//
// The exported names are aliases of the implementation packages under
// internal/, so the full method sets of Hypergraph, Graph and Model are
// available through this package.
package marioh

import (
	"fmt"
	"io"

	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/downstream"
	"marioh/internal/eval"
	"marioh/internal/features"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/service"
)

// Hypergraph is a multiset of hyperedges with per-hyperedge multiplicity.
type Hypergraph = hypergraph.Hypergraph

// Graph is a weighted projected graph; weights are edge multiplicities.
type Graph = graph.Graph

// Model is a trained multiplicity-aware clique classifier.
type Model = core.Model

// TrainOptions configure TrainModel; the zero value uses the paper's
// defaults (multiplicity-aware features, a [32, 16] MLP, 60 epochs).
type TrainOptions = core.TrainOptions

// Options configure Reconstruct; the zero value uses θ_init = 0.9, r = 40
// and α = 1/20.
type Options = core.Options

// Result is a reconstruction with its per-step timing breakdown.
type Result = core.Result

// Dataset is a generated benchmark dataset with source/target halves.
type Dataset = datasets.Dataset

// NewHypergraph returns an empty hypergraph over n nodes (the universe
// grows automatically as hyperedges are added).
func NewHypergraph(n int) *Hypergraph { return hypergraph.New(n) }

// NewGraph returns an empty weighted graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// TrainModel fits the multiplicity-aware classifier on a source projected
// graph and its ground-truth hypergraph (the supervision of Problem 1).
//
// Deprecated: use New and (*Reconstructor).Train, which add context
// cancellation, progress events and named variants. TrainModel is
// equivalent to training a zero-option Reconstructor with the same
// TrainOptions.
func TrainModel(gSrc *Graph, hSrc *Hypergraph, opts TrainOptions) *Model {
	return core.Train(gSrc, hSrc, opts)
}

// Reconstruct runs MARIOH on a target projected graph: guaranteed size-2
// filtering followed by iterative bidirectional clique search.
//
// Deprecated: use New and (*Reconstructor).Reconstruct (or
// ReconstructBatch for many targets), which add context cancellation,
// progress events and named variants. Reconstruct is equivalent to a
// zero-option Reconstructor run with the same Options.
func Reconstruct(gTgt *Graph, m *Model, opts Options) *Result {
	return core.Reconstruct(gTgt, m, opts)
}

// Jaccard is the reconstruction accuracy over unique hyperedges.
func Jaccard(truth, rec *Hypergraph) float64 { return eval.Jaccard(truth, rec) }

// MultiJaccard is the multiplicity-aware reconstruction accuracy.
func MultiJaccard(truth, rec *Hypergraph) float64 { return eval.MultiJaccard(truth, rec) }

// GenerateDataset builds one of the named synthetic dataset analogs (see
// DatasetNames) with the given seed.
func GenerateDataset(name string, seed int64) (*Dataset, error) {
	return datasets.ByName(name, seed)
}

// DatasetNames lists the available dataset analogs.
func DatasetNames() []string { return datasets.Names() }

// LoadModel restores a classifier saved with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// SaveModel writes m as JSON, the symmetric counterpart of LoadModel used
// by model registries; it is equivalent to m.Save(w).
func SaveModel(w io.Writer, m *Model) error {
	if m == nil {
		return fmt.Errorf("marioh: cannot save a nil model")
	}
	return m.Save(w)
}

// Featurizer turns cliques into classifier feature vectors.
type Featurizer = features.Featurizer

// FeaturizerByName resolves a featurizer: "marioh" (the multiplicity-aware
// default), "marioh-nomhh", "shyre-count", "shyre-motif", or any custom
// featurizer added via RegisterFeaturizer.
func FeaturizerByName(name string) (Featurizer, bool) { return service.FeaturizerByName(name) }

// ReadHypergraph parses the line-oriented hyperedge format ("u v w ..."
// per hyperedge, optional "# mult" suffix).
func ReadHypergraph(r io.Reader) (*Hypergraph, error) { return hypergraph.Read(r) }

// ReadGraph parses a weighted edge list ("u v w" per line).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// LinkPredictionAUC runs the paper's link-prediction protocol on a
// projected graph, optionally enriched with hyperedge features (pass a nil
// hypergraph for the graph-only setting).
func LinkPredictionAUC(g *Graph, h *Hypergraph, seed int64) float64 {
	return downstream.LinkPredictionAUC(g, h, downstream.LinkPredOptions{Seed: seed})
}

// ClusteringNMI spectrally clusters the hypergraph (or the graph when h is
// nil) and scores the clusters against ground-truth labels.
func ClusteringNMI(g *Graph, h *Hypergraph, labels []int, seed int64) float64 {
	return downstream.ClusteringNMI(g, h, labels, seed)
}
