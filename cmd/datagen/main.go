// Command datagen writes every synthetic dataset analog to disk in the
// line-oriented hypergraph/graph text formats, for use outside this
// module. With -deltas N it additionally emits, per dataset, the target
// half's projected graph plus a reproducible edge-delta stream of N ops
// (inserts, deletes, weight changes) valid against that graph — the
// inputs of the incremental-reconstruction tests and benchmarks.
//
// With -family it instead (or additionally, when -dataset is also given)
// emits scenario-corpus families from internal/corpus: per family the base
// projected graph as <name>.target.graph and, with -deltas N, the family's
// adversarial delta stream as <name>.target.deltas. These are the graphs
// the shell-level equivalence gates (shard-check, incr-check, crash-check)
// replay end to end.
//
// Usage:
//
//	datagen -out ./data -seed 1
//	datagen -out ./data -dataset hosts,pschool -reduced -deltas 60
//	datagen -out ./data -family powerlaw-hubs,bridge-chain -deltas 60
//	datagen -out ./data -family all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"marioh"
	"marioh/internal/corpus"
)

func main() {
	out := flag.String("out", "data", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	datasetFlag := flag.String("dataset", "", "comma-separated dataset names (empty = all)")
	reduced := flag.Bool("reduced", false, "reduce hyperedge multiplicities to 1 (mariohctl gen's default view)")
	deltas := flag.Int("deltas", 0, "also emit <name>.target.graph and a delta stream of this many ops")
	deltaSeed := flag.Int64("delta-seed", 1, "seed of the delta stream (datasets only; corpus families derive theirs from -seed)")
	familyFlag := flag.String("family", "", "comma-separated scenario-corpus family names, or \"all\"")
	flag.Parse()

	names := marioh.DatasetNames()
	if *datasetFlag != "" {
		names = strings.Split(*datasetFlag, ",")
	}
	if *familyFlag != "" && *datasetFlag == "" {
		names = nil // -family alone emits only corpus families
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		ds, err := marioh.GenerateDataset(name, *seed)
		if err != nil {
			fail(err)
		}
		full, src, tgt := ds.Full, ds.Source, ds.Target
		if *reduced {
			full, src, tgt = full.Reduced(), src.Reduced(), tgt.Reduced()
		}
		for suffix, h := range map[string]*marioh.Hypergraph{
			".full.hg":   full,
			".source.hg": src,
			".target.hg": tgt,
		} {
			writeFile(filepath.Join(*out, name+suffix), func(f *os.File) error { return h.Write(f) })
		}
		if *deltas > 0 {
			g := tgt.Project()
			writeFile(filepath.Join(*out, name+".target.graph"), func(f *os.File) error { return g.Write(f) })
			ops := deltaStream(g, *deltas, *deltaSeed)
			writeFile(filepath.Join(*out, name+".target.deltas"), func(f *os.File) error {
				return marioh.WriteDeltas(f, ops)
			})
		}
		fmt.Printf("%s: |V|=%d |E_H|=%d (source %d / target %d)\n",
			name, full.NumNodes(), full.NumUnique(),
			src.NumUnique(), tgt.NumUnique())
	}

	if *familyFlag != "" {
		famNames := corpus.Names()
		if *familyFlag != "all" {
			famNames = strings.Split(*familyFlag, ",")
		}
		for _, name := range famNames {
			name = strings.TrimSpace(name)
			f, ok := corpus.ByName(name)
			if !ok {
				fail(fmt.Errorf("unknown family %q (have %s)", name, strings.Join(corpus.Names(), ", ")))
			}
			g := f.Gen(*seed)
			writeFile(filepath.Join(*out, name+".target.graph"), func(w *os.File) error { return g.Write(w) })
			if *deltas > 0 {
				ops := f.Deltas(*seed, *deltas)
				writeFile(filepath.Join(*out, name+".target.deltas"), func(w *os.File) error {
					return marioh.WriteDeltas(w, ops)
				})
			}
			fmt.Printf("%s: |V|=%d |E|=%d (corpus family: %s)\n",
				name, g.NumNodes(), g.NumEdges(), f.Desc)
		}
	}
}

// deltaStream derives a reproducible op stream valid against g: every op
// is generated against the running state of a working copy, so deletes
// always name live edges and the stream replays cleanly from the base
// graph. The mix — weight bumps, fresh inserts (which can merge
// components), deletes (which can split them), absolute sets — is chosen
// to churn component structure, not just weights.
func deltaStream(g *marioh.Graph, n int, seed int64) []marioh.DeltaOp {
	work := g.Clone()
	rng := rand.New(rand.NewSource(seed))
	ops := make([]marioh.DeltaOp, 0, n)
	apply := func(op marioh.DeltaOp) {
		switch op.Kind {
		case marioh.DeltaAdd:
			work.AddWeight(op.U, op.V, op.W)
		case marioh.DeltaRemove:
			work.RemoveEdge(op.U, op.V)
		case marioh.DeltaSet:
			work.SetWeight(op.U, op.V, op.W)
		}
		ops = append(ops, op)
	}
	for len(ops) < n {
		edges := work.Edges()
		r := rng.Intn(10)
		switch {
		case r < 3 && len(edges) > 0: // bump an existing edge's weight
			e := edges[rng.Intn(len(edges))]
			apply(marioh.DeltaOp{Kind: marioh.DeltaAdd, U: e.U, V: e.V, W: 1 + rng.Intn(2)})
		case r < 6: // insert (or thicken) a random pair
			u, v := rng.Intn(work.NumNodes()), rng.Intn(work.NumNodes())
			if u == v {
				continue
			}
			apply(marioh.DeltaOp{Kind: marioh.DeltaAdd, U: u, V: v, W: 1 + rng.Intn(3)})
		case r < 8 && len(edges) > 0: // delete a live edge
			e := edges[rng.Intn(len(edges))]
			apply(marioh.DeltaOp{Kind: marioh.DeltaRemove, U: e.U, V: e.V})
		case len(edges) > 0: // set an absolute weight (0 deletes)
			e := edges[rng.Intn(len(edges))]
			apply(marioh.DeltaOp{Kind: marioh.DeltaSet, U: e.U, V: e.V, W: rng.Intn(4)})
		}
	}
	return ops
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
