// Command datagen writes every synthetic dataset analog to disk in the
// line-oriented hypergraph/graph text formats, for use outside this module.
//
// Usage:
//
//	datagen -out ./data -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"marioh"
)

func main() {
	out := flag.String("out", "data", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	for _, name := range marioh.DatasetNames() {
		ds, err := marioh.GenerateDataset(name, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		for suffix, h := range map[string]*marioh.Hypergraph{
			".full.hg":   ds.Full,
			".source.hg": ds.Source,
			".target.hg": ds.Target,
		} {
			path := filepath.Join(*out, name+suffix)
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			if err := h.Write(f); err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Printf("%s: |V|=%d |E_H|=%d (source %d / target %d)\n",
			name, ds.Full.NumNodes(), ds.Full.NumUnique(),
			ds.Source.NumUnique(), ds.Target.NumUnique())
	}
}
