// Command mariohd is the MARIOH reconstruction daemon: it serves the full
// Reconstructor pipeline over HTTP — async train jobs, sync/async
// reconstruction, batch fan-out, incremental sessions over graph deltas,
// SSE progress streams, a named model registry, and health/metrics
// endpoints.
//
// A server-side reconstruction is byte-identical to the same request made
// through the library API: the handlers call the exact public
// Reconstructor entry points with the options decoded from the request.
//
// Multi-tenant serving: callers identify themselves with the
// X-Marioh-Tenant header ("default" when absent). The -tenant-rate,
// -tenant-max-jobs, -tenant-max-sessions and -tenant-max-queued-bytes
// flags bound each tenant's traffic (over-limit requests answer 429 with
// a Retry-After); -memory-budget caps the bytes the daemon retains
// across session engines, models, job results and the dedup cache.
//
// Usage:
//
//	mariohd -addr :8080 -models-dir ./models
//	mariohd -addr 127.0.0.1:0 -workers 4 -queue 128 -sync-edge-limit 20000
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener closes, in-flight
// requests and every accepted job drain (bounded by -shutdown-timeout),
// and the process exits 0 after a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"marioh/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "job worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-job queue depth (submissions beyond it get 503)")
	jobHistory := flag.Int("job-history", 256, "finished jobs kept inspectable (oldest evicted past it)")
	modelsDir := flag.String("models-dir", "", "directory persisting the model registry (empty = in-memory)")
	modelCache := flag.Int("model-cache", 8, "decoded-model LRU cache size")
	syncLimit := flag.Int("sync-edge-limit", 20000, "largest target (edges) served synchronously by /v1/reconstruct")
	sessionLimit := flag.Int("session-limit", 16, "open incremental sessions kept (least-recently-used evicted past it)")
	dataDir := flag.String("data-dir", "", "directory persisting durable sessions (WAL + snapshots; empty = in-memory sessions)")
	walFsync := flag.Bool("wal-fsync", true, "fsync the session WAL before acknowledging each apply")
	snapshotEvery := flag.Int("snapshot-every", 8, "WAL records between engine snapshots for durable sessions")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "graceful-shutdown drain budget")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant request rate limit in requests/second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant rate-limit burst (token bucket size; 0 = rate rounded up)")
	tenantMaxJobs := flag.Int("tenant-max-jobs", 0, "per-tenant concurrent jobs, queued + running (0 = unlimited)")
	tenantMaxSessions := flag.Int("tenant-max-sessions", 0, "per-tenant open incremental sessions (0 = unlimited)")
	tenantMaxQueuedBytes := flag.Int64("tenant-max-queued-bytes", 0, "per-tenant queued request-payload bytes (0 = unlimited)")
	memoryBudget := flag.Int64("memory-budget", 0, "global retained-memory budget in bytes across sessions, models, results and the dedup cache (0 = unlimited)")
	dedupCache := flag.Int64("dedup-cache", 0, "content-addressed reconstruction result cache size in bytes (0 = 64 MiB default, negative disables retention)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mariohd: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	// Two nested lifetimes: root is the process lifetime (it bounds the
	// job queue, in-flight requests and the drain deadline; cancelled
	// only when main exits), while the signal context merely requests
	// the graceful drain — in-flight work must outlive it.
	root, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	ctx, stop := signal.NotifyContext(root, os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := server.New(root, server.Config{
		Addr:            *addr,
		Workers:         *workers,
		QueueDepth:      *queue,
		JobHistory:      *jobHistory,
		ModelsDir:       *modelsDir,
		ModelCache:      *modelCache,
		SyncEdgeLimit:   *syncLimit,
		SessionLimit:    *sessionLimit,
		DataDir:         *dataDir,
		WALNoFsync:      !*walFsync,
		SnapshotEvery:   *snapshotEvery,
		ShutdownTimeout: *shutdownTimeout,

		TenantRate:           *tenantRate,
		TenantBurst:          *tenantBurst,
		TenantMaxJobs:        *tenantMaxJobs,
		TenantMaxSessions:    *tenantMaxSessions,
		TenantMaxQueuedBytes: *tenantMaxQueuedBytes,
		MemoryBudget:         *memoryBudget,
		DedupCacheBytes:      *dedupCache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mariohd:", err)
		os.Exit(1)
	}
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mariohd:", err)
		os.Exit(1)
	}
}
