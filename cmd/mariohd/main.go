// Command mariohd is the MARIOH reconstruction daemon: it serves the full
// Reconstructor pipeline over HTTP — async train jobs, sync/async
// reconstruction, batch fan-out, incremental sessions over graph deltas,
// SSE progress streams, a named model registry, and health/metrics
// endpoints.
//
// A server-side reconstruction is byte-identical to the same request made
// through the library API: the handlers call the exact public
// Reconstructor entry points with the options decoded from the request.
//
// Usage:
//
//	mariohd -addr :8080 -models-dir ./models
//	mariohd -addr 127.0.0.1:0 -workers 4 -queue 128 -sync-edge-limit 20000
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener closes, in-flight
// requests and every accepted job drain (bounded by -shutdown-timeout),
// and the process exits 0 after a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"marioh/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "job worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "pending-job queue depth (submissions beyond it get 503)")
	jobHistory := flag.Int("job-history", 256, "finished jobs kept inspectable (oldest evicted past it)")
	modelsDir := flag.String("models-dir", "", "directory persisting the model registry (empty = in-memory)")
	modelCache := flag.Int("model-cache", 8, "decoded-model LRU cache size")
	syncLimit := flag.Int("sync-edge-limit", 20000, "largest target (edges) served synchronously by /v1/reconstruct")
	sessionLimit := flag.Int("session-limit", 16, "open incremental sessions kept (least-recently-used evicted past it)")
	dataDir := flag.String("data-dir", "", "directory persisting durable sessions (WAL + snapshots; empty = in-memory sessions)")
	walFsync := flag.Bool("wal-fsync", true, "fsync the session WAL before acknowledging each apply")
	snapshotEvery := flag.Int("snapshot-every", 8, "WAL records between engine snapshots for durable sessions")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mariohd: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	// Two nested lifetimes: root is the process lifetime (it bounds the
	// job queue, in-flight requests and the drain deadline; cancelled
	// only when main exits), while the signal context merely requests
	// the graceful drain — in-flight work must outlive it.
	root, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	ctx, stop := signal.NotifyContext(root, os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := server.New(root, server.Config{
		Addr:            *addr,
		Workers:         *workers,
		QueueDepth:      *queue,
		JobHistory:      *jobHistory,
		ModelsDir:       *modelsDir,
		ModelCache:      *modelCache,
		SyncEdgeLimit:   *syncLimit,
		SessionLimit:    *sessionLimit,
		DataDir:         *dataDir,
		WALNoFsync:      !*walFsync,
		SnapshotEvery:   *snapshotEvery,
		ShutdownTimeout: *shutdownTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mariohd:", err)
		os.Exit(1)
	}
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mariohd:", err)
		os.Exit(1)
	}
}
