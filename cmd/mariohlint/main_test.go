package main

import "testing"

func TestVetProtocol(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{nil, false},
		{[]string{"./..."}, false},
		{[]string{"./internal/core", "./internal/shard"}, false},
		{[]string{"-maporder.packages=internal/foo", "./..."}, false},
		{[]string{"-V=full"}, true},
		{[]string{"-V=short"}, true},
		{[]string{"-flags"}, true},
		{[]string{"/tmp/vet073/pkg.cfg"}, true},
		{[]string{"-maporder.packages=internal/foo", "/tmp/vet073/pkg.cfg"}, true},
	}
	for _, c := range cases {
		if got := vetProtocol(c.args); got != c.want {
			t.Errorf("vetProtocol(%q) = %v, want %v", c.args, got, c.want)
		}
	}
}
