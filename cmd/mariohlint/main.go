// Command mariohlint runs the project's custom go/analysis suite — the
// analyzers in internal/lint that prove the determinism and concurrency
// invariants the reconstruction contract rests on (see README "Static
// analysis").
//
// It is a unitchecker binary: the actual loading, typechecking and fact
// plumbing is done by the go command through the `go vet -vettool`
// protocol. Invoked with package patterns —
//
//	go run ./cmd/mariohlint ./...
//	go run ./cmd/mariohlint -maporder.packages=internal/foo ./internal/foo
//
// — it re-executes itself as `go vet -vettool=<self> <args>`, so both
// spellings work and CI needs no extra tooling. Findings print as
// file:line:col: message, one per line; the exit status is nonzero iff
// any analyzer reported a diagnostic.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"marioh/internal/lint"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(lint.Analyzers()...) // exits
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mariohlint: %v\n", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	goTool := os.Getenv("GOTOOL")
	if goTool == "" {
		goTool = "go"
	}
	cmd := exec.Command(goTool, append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if exit, ok := err.(*exec.ExitError); ok {
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "mariohlint: %v\n", err)
		os.Exit(1)
	}
}

// vetProtocol reports whether the go command is driving us through the
// vet tool protocol: a -V=full version query, a -flags capability
// query, or a unitchecker .cfg file (possibly preceded by analyzer
// flags), rather than a human passing package patterns.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-flags" || a == "-V=full" || strings.HasPrefix(a, "-V=") {
			return true
		}
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
