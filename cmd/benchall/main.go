// Command benchall regenerates every table and figure of the MARIOH
// paper's evaluation section on the synthetic dataset analogs and prints
// them as text tables.
//
// Usage:
//
//	benchall -all                     # everything (several minutes)
//	benchall -table 2                 # just Table II
//	benchall -fig 7 -quick            # quick Fig. 7 sweep
//	benchall -table 2 -seeds 1 -timeout 10s -datasets crime,hosts
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"marioh/internal/experiments"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1-9); 0 = none")
		fig      = flag.Int("fig", 0, "regenerate one figure (4-7); 0 = none")
		extra    = flag.Bool("extra", false, "regenerate the online-appendix analyses (feature importance, storage savings, case studies, featurizer ablation)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		quick    = flag.Bool("quick", false, "reduced epochs / sweep sizes")
		seeds    = flag.String("seeds", "1,2,3", "comma-separated seeds")
		timeout  = flag.Duration("timeout", 20*time.Second, "per-method deadline")
		dsNames  = flag.String("datasets", "", "comma-separated dataset subset")
		showHelp = flag.Bool("h", false, "help")
	)
	flag.Parse()
	if *showHelp || (!*all && !*extra && *table == 0 && *fig == 0) {
		flag.Usage()
		os.Exit(2)
	}

	// Ctrl-C cancels in-flight MARIOH reconstructions through the same
	// context path the public Reconstructor API uses; cancelled cells
	// render as OOT, the run stops at the next table boundary, and a
	// second Ctrl-C force-quits (baselines only poll wall-clock
	// deadlines, so the in-flight table may take up to -timeout per
	// remaining cell to drain).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // restore default signal handling: next Ctrl-C kills
	}()

	cfg := experiments.RunConfig{Timeout: *timeout, Quick: *quick, Context: ctx}
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}
	if *dsNames != "" {
		cfg.Datasets = strings.Split(*dsNames, ",")
	}

	bail := func() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "benchall: interrupted")
			os.Exit(130)
		}
	}
	run := func(id int, isTable bool) {
		bail()
		start := time.Now()
		switch {
		case isTable && id == 1:
			fmt.Println(experiments.TableI(cfg.Seeds[0]).Render())
		case isTable && id == 2:
			fmt.Println(experiments.TableII(cfg).Render())
		case isTable && id == 3:
			fmt.Println(experiments.TableIII(cfg).Render())
		case isTable && id == 4:
			fmt.Println(experiments.TableIV(cfg).Render())
		case isTable && id == 5:
			fmt.Println(experiments.TableV(cfg).Render())
		case isTable && id == 6:
			fmt.Println(experiments.TableVI(cfg).Render())
		case isTable && id == 7:
			fmt.Println(experiments.TableVII(cfg).Render())
		case isTable && id == 8:
			fmt.Println(experiments.TableVIII(cfg).Render())
		case isTable && id == 9:
			fmt.Println(experiments.TableIX(cfg).Render())
		case !isTable && id == 4:
			for _, t := range experiments.Fig4(cfg) {
				fmt.Println(t.Render())
			}
		case !isTable && id == 5:
			fmt.Println(experiments.Fig5(cfg).Render())
		case !isTable && id == 6:
			fmt.Println(experiments.Fig6(cfg).Render())
		case !isTable && id == 7:
			fmt.Println(experiments.Fig7(cfg).Render())
		default:
			fmt.Fprintf(os.Stderr, "unknown %s %d\n", map[bool]string{true: "table", false: "figure"}[isTable], id)
			os.Exit(2)
		}
		fmt.Printf("[%.1fs]\n\n", time.Since(start).Seconds())
	}

	runExtra := func() {
		bail()
		start := time.Now()
		fiCfg := cfg
		if len(fiCfg.Datasets) == 0 && *dsNames == "" {
			// Feature importance and the featurizer ablation are expensive;
			// default to a representative subset.
			fiCfg.Datasets = []string{"crime", "hosts", "enron", "eu"}
		}
		fmt.Println(experiments.FeatureImportance(fiCfg).Render())
		fmt.Println(experiments.StorageSavings(cfg.Seeds[0]).Render())
		fmt.Println(experiments.FeaturizerAblation(fiCfg).Render())
		for _, ds := range []string{"hosts", "crime"} {
			fmt.Println(experiments.CaseStudy(ds, cfg.Seeds[0], cfg).Render())
		}
		fmt.Printf("[%.1fs]\n\n", time.Since(start).Seconds())
	}

	switch {
	case *all:
		for id := 1; id <= 9; id++ {
			run(id, true)
		}
		for id := 4; id <= 7; id++ {
			run(id, false)
		}
		runExtra()
	case *extra:
		runExtra()
	case *table != 0:
		run(*table, true)
	case *fig != 0:
		run(*fig, false)
	}
	// A Ctrl-C during the final table must not masquerade as a clean run
	// with genuine-looking OOT cells.
	bail()
}
