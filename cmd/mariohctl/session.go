// The incremental half of mariohctl: `session` replays an edge-delta
// stream against an incremental reconstruction session — in-process with
// a model file, or against a running mariohd — and `mutate` materializes
// the mutated graph a delta stream produces (the input for from-scratch
// golden runs).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"marioh"
	"marioh/internal/server"
)

// readDeltaFile loads an edge-delta stream from disk.
func readDeltaFile(path string) ([]marioh.DeltaOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return marioh.ReadDeltas(f)
}

// readGraphFile loads a projected graph from disk.
func readGraphFile(path string) (*marioh.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return marioh.ReadGraph(f)
}

// splitBatches cuts a delta stream into batches of at most size ops
// (size <= 0 keeps one batch). An empty stream still yields one empty
// batch, so a session always performs its initial build.
func splitBatches(ops []marioh.DeltaOp, size int) [][]marioh.DeltaOp {
	if size <= 0 || len(ops) <= size {
		return [][]marioh.DeltaOp{ops}
	}
	var out [][]marioh.DeltaOp
	for len(ops) > 0 {
		n := size
		if n > len(ops) {
			n = len(ops)
		}
		out = append(out, ops[:n])
		ops = ops[n:]
	}
	return out
}

// cmdSession replays a delta file through an incremental session. With
// -server it drives a remote mariohd session (the model must already be
// in the daemon's registry); otherwise it opens an in-process session
// from a model file. -batch applies the stream in batches; -verify
// (local only) rebuilds the mutated graph from scratch after every batch
// and fails unless the session output is byte-identical.
func cmdSession(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("session", flag.ContinueOnError)
	base := fs.String("server", "", "base URL of a running mariohd (empty = in-process session)")
	tenant := fs.String("tenant", "", "tenant identity for the daemon's admission control (empty = \"default\")")
	modelPath := fs.String("model", "model.json", "trained model file (local) or registry model name (remote)")
	graphPath := fs.String("graph", "", "base projected graph file")
	deltaPath := fs.String("deltas", "", "edge-delta stream file (empty = initial build only)")
	batch := fs.Int("batch", 0, "ops per Apply batch (0 = one batch)")
	verify := fs.Bool("verify", false, "after every batch, compare against a from-scratch rebuild (local only)")
	keep := fs.Bool("keep", false, "keep the remote session instead of deleting it when done")
	out := fs.String("out", "reconstructed.hg", "output hypergraph file (final state)")
	dir := fs.String("dir", "", "durable session directory: WAL + snapshots, crash-recoverable (local only)")
	resume := fs.Bool("resume", false, "resume the durable session in -dir instead of creating one")
	sessionID := fs.String("session", "", "existing session ID to resume instead of creating one (remote only)")
	snapEvery := fs.Int("snapshot-every", 0, "WAL records between engine snapshots for -dir sessions (0 = default)")
	noFsync := fs.Bool("no-fsync", false, "skip fsync on WAL appends for -dir sessions (kill-safe, not power-loss-safe)")
	sf := addServiceFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	resuming := (*resume && *dir != "") || (*sessionID != "" && *base != "")
	if *graphPath == "" && !resuming {
		return usageError{msg: "session: -graph is required (unless resuming via -resume/-session)"}
	}
	if *verify && *base != "" {
		return usageError{msg: "session: -verify needs the model locally; drop -server"}
	}
	if *dir != "" && *base != "" {
		return usageError{msg: "session: -dir is local-only; the daemon persists sessions under its own -data-dir"}
	}
	if *resume && *dir == "" {
		return usageError{msg: "session: -resume needs -dir (use -session <id> to resume a remote session)"}
	}
	if *sessionID != "" && *base == "" {
		return usageError{msg: "session: -session resumes a remote session; it needs -server"}
	}

	var ops []marioh.DeltaOp
	if *deltaPath != "" {
		var err error
		if ops, err = readDeltaFile(*deltaPath); err != nil {
			return err
		}
	}
	batches := splitBatches(ops, *batch)

	if *base != "" {
		spec := server.OptionSpec{
			Seed:        *sf.seed,
			Variant:     *sf.variant,
			ThetaInit:   sf.theta,
			R:           sf.ratio,
			Alpha:       sf.alpha,
			Shards:      *sf.shards,
			ShardTarget: *sf.shardTarget,
		}
		return remoteSession(ctx, remoteClient(*base, *tenant), *modelPath, *graphPath, *sessionID, spec, batches, *out, *keep)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := marioh.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	var g *marioh.Graph
	if *graphPath != "" {
		if g, err = readGraphFile(*graphPath); err != nil {
			return err
		}
	}
	opts, err := sf.options(marioh.WithModel(model))
	if err != nil {
		return err
	}
	r, err := marioh.New(opts...)
	if err != nil {
		return err
	}
	var sess *marioh.Session
	switch {
	case *dir != "" && (*resume || marioh.HasDurableSession(*dir)):
		dopts := marioh.DurableOptions{Dir: *dir, NoFsync: *noFsync, SnapshotEvery: *snapEvery, Logf: logNotice}
		if sess, err = r.NewSession(ctx, marioh.SessionConfig{Durable: &dopts, Resume: true}); err != nil {
			return err
		}
		st := sess.Stats()
		fmt.Printf("resumed durable session in %s: %d applies, recovery %s (%d WAL records replayed)\n",
			*dir, st.Applies, st.RecoveryOutcome, st.Replayed)
		// A batch that reached the WAL before the crash was recovered;
		// replay only the suffix the session never acknowledged.
		if st.Applies >= len(batches) {
			fmt.Printf("all %d batches already applied; re-emitting the final state\n", len(batches))
			batches = [][]marioh.DeltaOp{nil}
		} else if st.Applies > 0 {
			fmt.Printf("skipping %d already-applied batches\n", st.Applies)
			batches = batches[st.Applies:]
		}
	case *dir != "":
		dopts := marioh.DurableOptions{Dir: *dir, NoFsync: *noFsync, SnapshotEvery: *snapEvery, Logf: logNotice}
		if sess, err = r.NewSession(ctx, marioh.SessionConfig{Graph: g, Durable: &dopts}); err != nil {
			return err
		}
		fmt.Printf("opened durable session in %s\n", *dir)
	default:
		if sess, err = r.NewSession(ctx, marioh.SessionConfig{Graph: g}); err != nil {
			return err
		}
	}
	defer sess.Close()

	shadow := sess.Graph()
	var res *marioh.Result
	for bi, b := range batches {
		for _, op := range b {
			applyOpTo(shadow, op)
		}
		if res, err = sess.Apply(ctx, marioh.Delta{Ops: b}); err != nil {
			return err
		}
		st := sess.Stats()
		fmt.Printf("batch %d/%d: %d ops, %d/%d components recomputed, %d unique hyperedges\n",
			bi+1, len(batches), len(b), res.DirtyComponents, st.Components, res.Hypergraph.NumUnique())
		if *verify {
			want, err := r.Reconstruct(ctx, shadow)
			if err != nil {
				return err
			}
			var got, ref bytes.Buffer
			if err := res.Hypergraph.Write(&got); err != nil {
				return err
			}
			if err := want.Hypergraph.Write(&ref); err != nil {
				return err
			}
			if !bytes.Equal(got.Bytes(), ref.Bytes()) {
				return fmt.Errorf("session: batch %d output diverges from from-scratch rebuild", bi+1)
			}
			fmt.Printf("   verified byte-identical to a from-scratch rebuild\n")
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Hypergraph.Write(f); err != nil {
		return err
	}
	fmt.Printf("session final state: %d unique hyperedges (%d occurrences) -> %s\n",
		res.Hypergraph.NumUnique(), res.Hypergraph.NumTotal(), *out)
	return f.Close()
}

// skipApplied mirrors local resume semantics for a remote session: the
// first n batches of the stream already landed, so replay only the
// suffix — or a single empty batch re-emitting the final state when
// everything landed.
func skipApplied(batches [][]marioh.DeltaOp, n int) [][]marioh.DeltaOp {
	if n >= len(batches) {
		fmt.Printf("all %d batches already applied; re-emitting the final state\n", len(batches))
		return [][]marioh.DeltaOp{nil}
	}
	if n > 0 {
		fmt.Printf("skipping %d already-applied batches\n", n)
		return batches[n:]
	}
	return batches
}

// logNotice surfaces durability recovery/degradation notices on stderr.
func logNotice(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mariohctl: "+format+"\n", args...)
}

// applyOpTo replays one delta op onto a plain graph.
func applyOpTo(g *marioh.Graph, op marioh.DeltaOp) {
	top := op.U
	if op.V > top {
		top = op.V
	}
	g.EnsureNodes(top + 1)
	switch op.Kind {
	case marioh.DeltaAdd:
		g.AddWeight(op.U, op.V, op.W)
	case marioh.DeltaRemove:
		g.RemoveEdge(op.U, op.V)
	case marioh.DeltaSet:
		g.SetWeight(op.U, op.V, op.W)
	}
}

// remoteSession drives the /v1/sessions API of a running daemon. With a
// sessionID it resumes that session (the daemon rehydrates a parked
// durable session transparently) instead of creating one; every apply
// carries a Seq guard so an ambiguous retry can never double-apply a
// batch.
func remoteSession(ctx context.Context, c *server.Client, model, graphPath, sessionID string, spec server.OptionSpec, batches [][]marioh.DeltaOp, out string, keep bool) error {
	var info server.SessionInfo
	var err error
	if sessionID != "" {
		if info, err = c.Session(ctx, sessionID); err != nil {
			return err
		}
		fmt.Printf("resumed session %s (%d nodes, %d edges, %d applies", info.ID, info.Nodes, info.Edges, info.Applies)
		if info.Recovery != "" {
			fmt.Printf(", recovery %s", info.Recovery)
		}
		fmt.Printf(")\n")
		keep = true // an attached session is not ours to delete
		batches = skipApplied(batches, info.Applies)
	} else {
		raw, err := os.ReadFile(graphPath)
		if err != nil {
			return err
		}
		if info, err = c.CreateSession(ctx, server.SessionRequest{Model: model, Graph: string(raw), Options: spec}); err != nil {
			return err
		}
		fmt.Printf("opened session %s (%d nodes, %d edges)\n", info.ID, info.Nodes, info.Edges)
	}
	if !keep {
		defer func() {
			cleanupCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := c.DeleteSession(cleanupCtx, info.ID); err != nil {
				fmt.Fprintln(os.Stderr, "mariohctl: deleting session:", err)
			}
		}()
	}
	var last server.ReconstructResult
	applied := info.Applies
	resynced := false
	for bi := 0; bi < len(batches); bi++ {
		b := batches[bi]
		var buf bytes.Buffer
		if err := marioh.WriteDeltas(&buf, b); err != nil {
			return err
		}
		seq := applied + bi
		resp, job, err := c.ApplySession(ctx, info.ID, server.SessionApplyRequest{Deltas: buf.String(), Seq: &seq})
		if err != nil {
			// A parked session's meta can run one apply behind a crash; the
			// seq guard catches the stale counter instead of double-applying.
			// The conflict loaded the session server-side, so one re-read
			// yields the true counter — re-slice and continue.
			if sessionID != "" && bi == 0 && !resynced && strings.Contains(err.Error(), "seq guard") {
				resynced = true
				fresh, ferr := c.Session(ctx, sessionID)
				if ferr != nil {
					return ferr
				}
				if extra := fresh.Applies - applied; extra > 0 {
					fmt.Printf("session advanced to %d applies since the parked listing; resyncing\n", fresh.Applies)
					batches = skipApplied(batches, extra)
					applied = fresh.Applies
					bi = -1
					continue
				}
				return err
			}
			return err
		}
		if job != nil {
			done, err := c.WaitJob(ctx, job.ID, 200*time.Millisecond)
			if err != nil {
				return err
			}
			if err := server.JobResult(done, &last); err != nil {
				return err
			}
		} else {
			last = resp.Result
		}
		fmt.Printf("batch %d/%d: %d ops, %d components recomputed, %d unique hyperedges\n",
			bi+1, len(batches), len(b), last.Dirty, last.Unique)
	}
	if err := os.WriteFile(out, []byte(last.Hypergraph), 0o644); err != nil {
		return err
	}
	fmt.Printf("session final state: %d unique hyperedges (%d occurrences) -> %s\n", last.Unique, last.Total, out)
	return nil
}

// cmdMutate applies a delta stream to a graph file and writes the mutated
// graph — the input a from-scratch golden reconstruction needs to compare
// against a session replay.
func cmdMutate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "base projected graph file")
	deltaPath := fs.String("deltas", "", "edge-delta stream file")
	out := fs.String("out", "mutated.graph", "output graph file")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *graphPath == "" || *deltaPath == "" {
		return usageError{msg: "mutate: -graph and -deltas are required"}
	}
	g, err := readGraphFile(*graphPath)
	if err != nil {
		return err
	}
	ops, err := readDeltaFile(*deltaPath)
	if err != nil {
		return err
	}
	for _, op := range ops {
		applyOpTo(g, op)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		return err
	}
	fmt.Printf("applied %d ops: %d nodes, %d edges -> %s\n", len(ops), g.NumNodes(), g.NumEdges(), *out)
	return f.Close()
}
