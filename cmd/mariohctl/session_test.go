package main

import (
	"reflect"
	"testing"

	"marioh"
)

func TestSplitBatches(t *testing.T) {
	ops := make([]marioh.DeltaOp, 7)
	for i := range ops {
		ops[i] = marioh.DeltaOp{Kind: marioh.DeltaAdd, U: i, V: i + 1, W: 1}
	}
	if got := splitBatches(ops, 0); len(got) != 1 || len(got[0]) != 7 {
		t.Fatalf("size 0: %d batches", len(got))
	}
	got := splitBatches(ops, 3)
	if len(got) != 3 || len(got[0]) != 3 || len(got[1]) != 3 || len(got[2]) != 1 {
		t.Fatalf("size 3: lens %d/%d/%d in %d batches", len(got[0]), len(got[1]), len(got[2]), len(got))
	}
	var flat []marioh.DeltaOp
	for _, b := range got {
		flat = append(flat, b...)
	}
	if !reflect.DeepEqual(flat, ops) {
		t.Fatal("batching reordered ops")
	}
	// An empty stream still yields the one batch that triggers the
	// session's initial build.
	if got := splitBatches(nil, 10); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty stream: %v", got)
	}
}

func TestApplyOpTo(t *testing.T) {
	g := marioh.NewGraph(2)
	applyOpTo(g, marioh.DeltaOp{Kind: marioh.DeltaAdd, U: 0, V: 5, W: 2}) // grows the node set
	if g.NumNodes() != 6 || g.Weight(0, 5) != 2 {
		t.Fatalf("add: nodes %d weight %d", g.NumNodes(), g.Weight(0, 5))
	}
	applyOpTo(g, marioh.DeltaOp{Kind: marioh.DeltaSet, U: 0, V: 5, W: 7})
	if g.Weight(0, 5) != 7 {
		t.Fatalf("set: weight %d", g.Weight(0, 5))
	}
	applyOpTo(g, marioh.DeltaOp{Kind: marioh.DeltaRemove, U: 0, V: 5})
	if g.NumEdges() != 0 {
		t.Fatalf("remove left %d edges", g.NumEdges())
	}
}
