// Command mariohctl is the operational CLI of the MARIOH reproduction:
// generate datasets, train + reconstruct (with cancellation and progress),
// and evaluate reconstructions. Every subcommand honors Ctrl-C via
// context cancellation.
//
// Usage:
//
//	mariohctl datasets
//	mariohctl version
//	mariohctl gen -dataset crime -seed 1 -out ./data
//	mariohctl reconstruct -train ./data/crime.source.hg -target ./data/crime.target.graph -out ./rec.hg
//	mariohctl reconstruct -train src.hg -target a.graph,b.graph -parallel 4 -out rec.hg
//	mariohctl eval -truth ./data/crime.target.hg -rec ./rec.hg
//	mariohctl demo -dataset hosts -variant marioh-b -progress
//	mariohctl serve -addr :8080 -models-dir ./models
//	mariohctl remote-reconstruct -server http://127.0.0.1:8080 -model m1 -target a.graph -out rec.hg
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"marioh"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:]))
}

// run dispatches a subcommand and maps errors to exit codes: 2 for usage
// errors (unknown commands, bad flags), 1 for runtime failures.
func run(ctx context.Context, args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "datasets":
		for _, n := range marioh.DatasetNames() {
			fmt.Println(n)
		}
	case "version":
		fmt.Println("mariohctl", marioh.Version)
	case "gen":
		err = cmdGen(ctx, args[1:])
	case "reconstruct":
		err = cmdReconstruct(ctx, args[1:])
	case "train":
		err = cmdTrain(ctx, args[1:])
	case "apply":
		err = cmdApply(ctx, args[1:])
	case "eval":
		err = cmdEval(args[1:])
	case "session":
		err = cmdSession(ctx, args[1:])
	case "mutate":
		err = cmdMutate(ctx, args[1:])
	case "demo":
		err = cmdDemo(ctx, args[1:])
	case "serve":
		err = cmdServe(ctx, args[1:])
	case "remote-reconstruct":
		err = cmdRemoteReconstruct(ctx, args[1:])
	case "jobs":
		err = cmdJobs(ctx, args[1:])
	case "models":
		err = cmdModels(ctx, args[1:])
	case "push-model":
		err = cmdPushModel(ctx, args[1:])
	case "help", "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mariohctl: unknown command %q\n\n", args[0])
		usage()
		return 2
	}
	switch {
	case err == nil:
		return 0
	case err == flag.ErrHelp:
		// Asking for help is not an error (matching flag.ExitOnError).
		return 0
	default:
		fmt.Fprintln(os.Stderr, "mariohctl:", err)
		if _, ok := err.(usageError); ok {
			usage()
			return 2
		}
		return 1
	}
}

// usageError marks failures that should re-print the global usage and exit
// with the usage status code.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mariohctl <command> [flags]

commands:
  datasets     list the available synthetic dataset analogs
  version      print the marioh module version
  gen          generate a dataset to disk (source/target hypergraphs + target graph)
  reconstruct  train on a source hypergraph and reconstruct target graph(s)
  train        train a classifier on a source hypergraph and save it as JSON
  apply        reconstruct target graph(s) with a previously saved model
  eval         compare a reconstruction against the ground truth
  demo         end-to-end run on one dataset, printing accuracy
  session      replay an edge-delta stream through an incremental session
               (durable + crash-resumable with -dir / -resume; -session resumes a remote one)
               (in-process, or on a daemon with -server)
  mutate       apply an edge-delta stream to a graph file
  help         print this message

serving (see mariohd for the standalone daemon):
  serve              run the mariohd HTTP daemon in-process
  remote-reconstruct reconstruct target graph(s) through a running daemon
  jobs               list, inspect, watch (-watch SSE) or cancel server jobs
  models             list, pull or delete registry models on a daemon
  push-model         upload a trained model file into a daemon's registry

variants: %s
featurizers: %s
`, strings.Join(marioh.VariantNames(), " | "), strings.Join(marioh.FeaturizerNames(), " | "))
}

// parse runs fs over args with errors reported instead of os.Exit, so
// run() can produce a proper non-zero status and usage text.
func parse(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return err
		}
		return usageError{msg: fmt.Sprintf("%s: %v", fs.Name(), err)}
	}
	if fs.NArg() > 0 {
		return usageError{msg: fmt.Sprintf("%s: unexpected arguments %q", fs.Name(), fs.Args())}
	}
	return nil
}

// serviceFlags are the flags shared by every subcommand that builds a
// Reconstructor.
type serviceFlags struct {
	seed        *int64
	variant     *string
	theta       *float64
	ratio       *float64
	alpha       *float64
	parallel    *int
	shards      *int
	shardTarget *int
	progress    *bool
}

func addServiceFlags(fs *flag.FlagSet) *serviceFlags {
	return &serviceFlags{
		seed:        fs.Int64("seed", 1, "random seed"),
		variant:     fs.String("variant", "marioh", "algorithm variant: "+strings.Join(marioh.VariantNames(), " | ")),
		theta:       fs.Float64("theta", 0.9, "initial classification threshold"),
		ratio:       fs.Float64("r", 40, "negative prediction processing ratio (%)"),
		alpha:       fs.Float64("alpha", 1.0/20, "threshold adjust ratio"),
		parallel:    fs.Int("parallel", 0, "batch worker count (0 = GOMAXPROCS)"),
		shards:      fs.Int("shards", 0, "shard-parallel reconstruction: shard count (0 = off, output is identical either way)"),
		shardTarget: fs.Int("shard-target", 0, "shard size target in edges; components above it split along bridges (0 = auto)"),
		progress:    fs.Bool("progress", false, "print per-round progress to stderr"),
	}
}

func (sf *serviceFlags) options(extra ...marioh.Option) ([]marioh.Option, error) {
	if *sf.shards == 0 && *sf.shardTarget != 0 {
		return nil, usageError{msg: "-shard-target requires -shards (sharding is off at -shards 0)"}
	}
	opts := []marioh.Option{
		marioh.WithSeed(*sf.seed),
		marioh.WithVariant(*sf.variant),
		marioh.WithThetaInit(*sf.theta),
		marioh.WithR(*sf.ratio),
		marioh.WithAlpha(*sf.alpha),
		marioh.WithParallelism(*sf.parallel),
	}
	if *sf.shards != 0 {
		opts = append(opts, marioh.WithSharding(marioh.ShardingOptions{
			Shards:      *sf.shards,
			TargetEdges: *sf.shardTarget,
		}))
	}
	if *sf.progress {
		sharded := *sf.shards != 0
		opts = append(opts, marioh.WithProgress(func(p marioh.Progress) {
			tag := fmt.Sprintf("t%d", p.Target)
			if sharded {
				tag = fmt.Sprintf("t%d/s%d", p.Target, p.Shard)
			}
			if p.Round == 0 {
				fmt.Fprintf(os.Stderr, "  [%s] filtered %d size-2 occurrences, %d edges remain\n",
					tag, p.AcceptedRound, p.EdgesRemaining)
				return
			}
			fmt.Fprintf(os.Stderr, "  [%s] round %d: θ=%.3f accepted %d (total %d), %d edges remain\n",
				tag, p.Round, p.Theta, p.AcceptedRound, p.AcceptedTotal, p.EdgesRemaining)
		}))
	}
	return append(opts, extra...), nil
}

func cmdGen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	name := fs.String("dataset", "crime", "dataset analog name")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", ".", "output directory")
	reduced := fs.Bool("reduced", true, "reduce hyperedge multiplicities to 1")
	if err := parse(fs, args); err != nil {
		return err
	}

	ds, err := marioh.GenerateDataset(*name, *seed)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	src, tgt := ds.Source, ds.Target
	if *reduced {
		src, tgt = src.Reduced(), tgt.Reduced()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	write := func(suffix string, fn func(f *os.File) error) error {
		path := filepath.Join(*out, *name+suffix)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return f.Close()
	}
	if err := write(".source.hg", func(f *os.File) error { return src.Write(f) }); err != nil {
		return err
	}
	if err := write(".target.hg", func(f *os.File) error { return tgt.Write(f) }); err != nil {
		return err
	}
	return write(".target.graph", func(f *os.File) error { return tgt.Project().Write(f) })
}

func cmdReconstruct(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("reconstruct", flag.ContinueOnError)
	trainPath := fs.String("train", "", "source hypergraph file (supervision)")
	targetPath := fs.String("target", "", "target projected graph file(s), comma-separated")
	out := fs.String("out", "reconstructed.hg", "output hypergraph file (batch runs insert the target index)")
	epochs := fs.Int("epochs", 60, "training epochs")
	sf := addServiceFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *trainPath == "" || *targetPath == "" {
		return usageError{msg: "reconstruct: -train and -target are required"}
	}

	src, err := readHypergraphFile(*trainPath)
	if err != nil {
		return err
	}
	opts, err := sf.options(marioh.WithEpochs(*epochs))
	if err != nil {
		return err
	}
	r, err := marioh.New(opts...)
	if err != nil {
		return err
	}
	if _, err := r.Train(ctx, src.Project(), src); err != nil {
		return err
	}
	return reconstructTargets(ctx, r, strings.Split(*targetPath, ","), *out)
}

func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	trainPath := fs.String("train", "", "source hypergraph file (supervision)")
	out := fs.String("out", "model.json", "output model file")
	seed := fs.Int64("seed", 1, "random seed")
	featurizer := fs.String("features", "marioh", "featurizer: "+strings.Join(marioh.FeaturizerNames(), " | "))
	epochs := fs.Int("epochs", 60, "training epochs")
	ratio := fs.Float64("supervision", 1.0, "fraction of source hyperedges used")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *trainPath == "" {
		return usageError{msg: "train: -train is required"}
	}
	src, err := readHypergraphFile(*trainPath)
	if err != nil {
		return err
	}
	r, err := marioh.New(
		marioh.WithSeed(*seed),
		marioh.WithFeaturizer(*featurizer),
		marioh.WithEpochs(*epochs),
		marioh.WithSupervisionRatio(*ratio),
	)
	if err != nil {
		return err
	}
	model, err := r.Train(ctx, src.Project(), src)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained on %d positives / %d negatives (sample %.3fs, train %.3fs) -> %s\n",
		model.Stats.Positives, model.Stats.Negatives,
		model.Stats.SampleTime.Seconds(), model.Stats.TrainTime.Seconds(), *out)
	return f.Close()
}

func cmdApply(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("apply", flag.ContinueOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	targetPath := fs.String("target", "", "target projected graph file(s), comma-separated")
	out := fs.String("out", "reconstructed.hg", "output hypergraph file (batch runs insert the target index)")
	sf := addServiceFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *targetPath == "" {
		return usageError{msg: "apply: -target is required"}
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := marioh.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	opts, err := sf.options(marioh.WithModel(model))
	if err != nil {
		return err
	}
	r, err := marioh.New(opts...)
	if err != nil {
		return err
	}
	return reconstructTargets(ctx, r, strings.Split(*targetPath, ","), *out)
}

// reconstructTargets reconstructs every target graph (a batch run when
// more than one) and writes each result next to the requested out path.
func reconstructTargets(ctx context.Context, r *marioh.Reconstructor, paths []string, out string) error {
	var graphs []*marioh.Graph
	for _, p := range paths {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		g, err := marioh.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
		graphs = append(graphs, g)
	}
	results, err := r.ReconstructBatch(ctx, graphs)
	if err != nil {
		return err
	}
	for i, res := range results {
		path := out
		if len(results) > 1 {
			path = batchOutPath(out, i)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.Hypergraph.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("reconstructed %d unique hyperedges (%d occurrences) in %d rounds "+
			"(filter %.3fs, search %.3fs) -> %s\n",
			res.Hypergraph.NumUnique(), res.Hypergraph.NumTotal(), res.Times.Rounds,
			res.Times.Filtering.Seconds(), res.Times.Bidirectional.Seconds(), path)
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	truthPath := fs.String("truth", "", "ground-truth hypergraph file")
	recPath := fs.String("rec", "", "reconstructed hypergraph file")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *truthPath == "" || *recPath == "" {
		return usageError{msg: "eval: -truth and -rec are required"}
	}
	truth, err := readHypergraphFile(*truthPath)
	if err != nil {
		return err
	}
	rec, err := readHypergraphFile(*recPath)
	if err != nil {
		return err
	}
	fmt.Printf("Jaccard       %.4f\n", marioh.Jaccard(truth, rec))
	fmt.Printf("multi-Jaccard %.4f\n", marioh.MultiJaccard(truth, rec))
	return nil
}

func cmdDemo(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	name := fs.String("dataset", "hosts", "dataset analog name")
	epochs := fs.Int("epochs", 60, "training epochs")
	sf := addServiceFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}

	opts, err := sf.options(marioh.WithEpochs(*epochs))
	if err != nil {
		return err
	}
	r, err := marioh.New(opts...)
	if err != nil {
		return err
	}
	pr, err := r.Pipeline(ctx, *name)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: source %d hyperedges, target %d hyperedges\n",
		*name, pr.Dataset.Source.Reduced().NumUnique(), pr.Dataset.Target.Reduced().NumUnique())
	fmt.Printf("reconstructed %d hyperedges, Jaccard %.4f, multi-Jaccard %.4f (filter %.3fs, search %.3fs)\n",
		pr.Result.Hypergraph.NumUnique(), pr.Jaccard, pr.MultiJaccard,
		pr.Result.Times.Filtering.Seconds(), pr.Result.Times.Bidirectional.Seconds())
	return nil
}

// batchOutPath derives the per-target output path of a batch run by
// inserting the target index before the extension.
func batchOutPath(out string, i int) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.%d%s", strings.TrimSuffix(out, ext), i, ext)
}

func readHypergraphFile(path string) (*marioh.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return marioh.ReadHypergraph(f)
}
