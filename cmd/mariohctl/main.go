// Command mariohctl is the operational CLI of the MARIOH reproduction:
// generate datasets, train + reconstruct, and evaluate reconstructions.
//
// Usage:
//
//	mariohctl datasets
//	mariohctl gen -dataset crime -seed 1 -out ./data
//	mariohctl reconstruct -train ./data/crime.source.hg -target ./data/crime.target.graph -out ./rec.hg
//	mariohctl eval -truth ./data/crime.target.hg -rec ./rec.hg
//	mariohctl demo -dataset hosts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"marioh"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datasets":
		for _, n := range marioh.DatasetNames() {
			fmt.Println(n)
		}
	case "gen":
		err = cmdGen(os.Args[2:])
	case "reconstruct":
		err = cmdReconstruct(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "apply":
		err = cmdApply(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mariohctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mariohctl <command> [flags]

commands:
  datasets     list the available synthetic dataset analogs
  gen          generate a dataset to disk (source/target hypergraphs + target graph)
  reconstruct  train on a source hypergraph and reconstruct a target graph
  train        train a classifier on a source hypergraph and save it as JSON
  apply        reconstruct a target graph with a previously saved model
  eval         compare a reconstruction against the ground truth
  demo         end-to-end run on one dataset, printing accuracy`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("dataset", "crime", "dataset analog name")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", ".", "output directory")
	reduced := fs.Bool("reduced", true, "reduce hyperedge multiplicities to 1")
	fs.Parse(args)

	ds, err := marioh.GenerateDataset(*name, *seed)
	if err != nil {
		return err
	}
	src, tgt := ds.Source, ds.Target
	if *reduced {
		src, tgt = src.Reduced(), tgt.Reduced()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	write := func(suffix string, fn func(f *os.File) error) error {
		path := filepath.Join(*out, *name+suffix)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return f.Close()
	}
	if err := write(".source.hg", func(f *os.File) error { return src.Write(f) }); err != nil {
		return err
	}
	if err := write(".target.hg", func(f *os.File) error { return tgt.Write(f) }); err != nil {
		return err
	}
	return write(".target.graph", func(f *os.File) error { return tgt.Project().Write(f) })
}

func cmdReconstruct(args []string) error {
	fs := flag.NewFlagSet("reconstruct", flag.ExitOnError)
	trainPath := fs.String("train", "", "source hypergraph file (supervision)")
	targetPath := fs.String("target", "", "target projected graph file")
	out := fs.String("out", "reconstructed.hg", "output hypergraph file")
	seed := fs.Int64("seed", 1, "random seed")
	theta := fs.Float64("theta", 0.9, "initial classification threshold")
	ratio := fs.Float64("r", 40, "negative prediction processing ratio (%)")
	alpha := fs.Float64("alpha", 1.0/20, "threshold adjust ratio")
	fs.Parse(args)
	if *trainPath == "" || *targetPath == "" {
		return fmt.Errorf("-train and -target are required")
	}

	src, err := readHypergraphFile(*trainPath)
	if err != nil {
		return err
	}
	tf, err := os.Open(*targetPath)
	if err != nil {
		return err
	}
	gT, err := marioh.ReadGraph(tf)
	tf.Close()
	if err != nil {
		return err
	}

	model := marioh.TrainModel(src.Project(), src, marioh.TrainOptions{Seed: *seed})
	res := marioh.Reconstruct(gT, model, marioh.Options{
		Seed: *seed, ThetaInit: *theta, R: *ratio, Alpha: *alpha,
	})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Hypergraph.Write(f); err != nil {
		return err
	}
	fmt.Printf("reconstructed %d unique hyperedges (%d occurrences) in %d rounds "+
		"(filter %.3fs, search %.3fs) -> %s\n",
		res.Hypergraph.NumUnique(), res.Hypergraph.NumTotal(), res.Times.Rounds,
		res.Times.Filtering.Seconds(), res.Times.Bidirectional.Seconds(), *out)
	return f.Close()
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	trainPath := fs.String("train", "", "source hypergraph file (supervision)")
	out := fs.String("out", "model.json", "output model file")
	seed := fs.Int64("seed", 1, "random seed")
	featurizer := fs.String("features", "marioh", "featurizer: marioh | marioh-nomhh | shyre-count | shyre-motif")
	epochs := fs.Int("epochs", 60, "training epochs")
	ratio := fs.Float64("supervision", 1.0, "fraction of source hyperedges used")
	fs.Parse(args)
	if *trainPath == "" {
		return fmt.Errorf("-train is required")
	}
	src, err := readHypergraphFile(*trainPath)
	if err != nil {
		return err
	}
	feat, ok := marioh.FeaturizerByName(*featurizer)
	if !ok {
		return fmt.Errorf("unknown featurizer %q", *featurizer)
	}
	model := marioh.TrainModel(src.Project(), src, marioh.TrainOptions{
		Seed: *seed, Featurizer: feat, Epochs: *epochs, SupervisionRatio: *ratio,
	})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained on %d positives / %d negatives (sample %.3fs, train %.3fs) -> %s\n",
		model.Stats.Positives, model.Stats.Negatives,
		model.Stats.SampleTime.Seconds(), model.Stats.TrainTime.Seconds(), *out)
	return f.Close()
}

func cmdApply(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	targetPath := fs.String("target", "", "target projected graph file")
	out := fs.String("out", "reconstructed.hg", "output hypergraph file")
	seed := fs.Int64("seed", 1, "random seed")
	theta := fs.Float64("theta", 0.9, "initial classification threshold")
	ratio := fs.Float64("r", 40, "negative prediction processing ratio (%)")
	alpha := fs.Float64("alpha", 1.0/20, "threshold adjust ratio")
	fs.Parse(args)
	if *targetPath == "" {
		return fmt.Errorf("-target is required")
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := marioh.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	tf, err := os.Open(*targetPath)
	if err != nil {
		return err
	}
	gT, err := marioh.ReadGraph(tf)
	tf.Close()
	if err != nil {
		return err
	}
	res := marioh.Reconstruct(gT, model, marioh.Options{
		Seed: *seed, ThetaInit: *theta, R: *ratio, Alpha: *alpha,
	})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.Hypergraph.Write(f); err != nil {
		return err
	}
	fmt.Printf("reconstructed %d unique hyperedges (%d occurrences) -> %s\n",
		res.Hypergraph.NumUnique(), res.Hypergraph.NumTotal(), *out)
	return f.Close()
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	truthPath := fs.String("truth", "", "ground-truth hypergraph file")
	recPath := fs.String("rec", "", "reconstructed hypergraph file")
	fs.Parse(args)
	if *truthPath == "" || *recPath == "" {
		return fmt.Errorf("-truth and -rec are required")
	}
	truth, err := readHypergraphFile(*truthPath)
	if err != nil {
		return err
	}
	rec, err := readHypergraphFile(*recPath)
	if err != nil {
		return err
	}
	fmt.Printf("Jaccard       %.4f\n", marioh.Jaccard(truth, rec))
	fmt.Printf("multi-Jaccard %.4f\n", marioh.MultiJaccard(truth, rec))
	return nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	name := fs.String("dataset", "hosts", "dataset analog name")
	seed := fs.Int64("seed", 1, "seed")
	fs.Parse(args)

	ds, err := marioh.GenerateDataset(*name, *seed)
	if err != nil {
		return err
	}
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	fmt.Printf("dataset %s: source %d hyperedges, target %d hyperedges\n",
		*name, src.NumUnique(), tgt.NumUnique())
	model := marioh.TrainModel(src.Project(), src, marioh.TrainOptions{Seed: *seed})
	res := marioh.Reconstruct(tgt.Project(), model, marioh.Options{Seed: *seed})
	fmt.Printf("reconstructed %d hyperedges, Jaccard %.4f (filter %.3fs, search %.3fs)\n",
		res.Hypergraph.NumUnique(), marioh.Jaccard(tgt, res.Hypergraph),
		res.Times.Filtering.Seconds(), res.Times.Bidirectional.Seconds())
	return nil
}

func readHypergraphFile(path string) (*marioh.Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return marioh.ReadHypergraph(f)
}
