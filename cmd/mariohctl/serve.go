// The serving half of mariohctl: `serve` runs the mariohd daemon
// in-process, and the remote subcommands (`remote-reconstruct`, `jobs`,
// `models`, `push-model`) drive a running daemon over its /v1 API.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"marioh/internal/server"
)

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 0, "job worker-pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "pending-job queue depth")
	jobHistory := fs.Int("job-history", 256, "finished jobs kept inspectable (oldest evicted past it)")
	modelsDir := fs.String("models-dir", "", "directory persisting the model registry (empty = in-memory)")
	modelCache := fs.Int("model-cache", 8, "decoded-model LRU cache size")
	syncLimit := fs.Int("sync-edge-limit", 20000, "largest target (edges) served synchronously")
	sessionLimit := fs.Int("session-limit", 16, "open incremental sessions kept (LRU eviction past it)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "graceful-shutdown drain budget")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant request rate limit in requests/second (0 = unlimited)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant rate-limit burst (0 = rate rounded up)")
	tenantMaxJobs := fs.Int("tenant-max-jobs", 0, "per-tenant concurrent jobs (0 = unlimited)")
	tenantMaxSessions := fs.Int("tenant-max-sessions", 0, "per-tenant open sessions (0 = unlimited)")
	tenantMaxQueuedBytes := fs.Int64("tenant-max-queued-bytes", 0, "per-tenant queued request-payload bytes (0 = unlimited)")
	memoryBudget := fs.Int64("memory-budget", 0, "global retained-memory budget in bytes (0 = unlimited)")
	dedupCache := fs.Int64("dedup-cache", 0, "dedup result cache bytes (0 = 64 MiB default, negative disables)")
	if err := parse(fs, args); err != nil {
		return err
	}
	// The server's lifetime must outlive the signal context driving the
	// graceful drain (see server.New); it ends when this command returns.
	root, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	srv, err := server.New(root, server.Config{
		Addr:            *addr,
		Workers:         *workers,
		QueueDepth:      *queue,
		JobHistory:      *jobHistory,
		ModelsDir:       *modelsDir,
		ModelCache:      *modelCache,
		SyncEdgeLimit:   *syncLimit,
		SessionLimit:    *sessionLimit,
		ShutdownTimeout: *shutdownTimeout,

		TenantRate:           *tenantRate,
		TenantBurst:          *tenantBurst,
		TenantMaxJobs:        *tenantMaxJobs,
		TenantMaxSessions:    *tenantMaxSessions,
		TenantMaxQueuedBytes: *tenantMaxQueuedBytes,
		MemoryBudget:         *memoryBudget,
		DedupCacheBytes:      *dedupCache,
	})
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx)
}

// remoteFlags are the flags shared by every client subcommand: the
// daemon's base URL and the tenant identity sent with every request.
func remoteFlags(fs *flag.FlagSet) (base, tenant *string) {
	base = fs.String("server", "http://127.0.0.1:8080", "base URL of a running mariohd")
	tenant = fs.String("tenant", "", "tenant identity for the daemon's admission control (empty = \"default\")")
	return base, tenant
}

// remoteClient builds the API client for a remote subcommand.
func remoteClient(base, tenant string) *server.Client {
	c := server.NewClient(base)
	c.Tenant = tenant
	return c
}

func cmdRemoteReconstruct(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote-reconstruct", flag.ContinueOnError)
	base, tenant := remoteFlags(fs)
	model := fs.String("model", "", "registry model name (see models / push-model)")
	targetPath := fs.String("target", "", "target projected graph file(s), comma-separated")
	out := fs.String("out", "reconstructed.hg", "output hypergraph file (batch runs insert the target index)")
	seed := fs.Int64("seed", 1, "random seed")
	variant := fs.String("variant", "", "algorithm variant (empty = server default)")
	shards := fs.Int("shards", 0, "shard-parallel reconstruction on the server: shard count (0 = off)")
	shardTarget := fs.Int("shard-target", 0, "server-side shard size target in edges (0 = auto)")
	async := fs.Bool("async", false, "force asynchronous execution and poll the job")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *model == "" || *targetPath == "" {
		return usageError{msg: "remote-reconstruct: -model and -target are required"}
	}
	c := remoteClient(*base, *tenant)
	opts := server.OptionSpec{Seed: *seed, Variant: *variant, Shards: *shards, ShardTarget: *shardTarget}

	paths := strings.Split(*targetPath, ",")
	targets := make([]string, len(paths))
	for i, p := range paths {
		raw, err := os.ReadFile(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		targets[i] = string(raw)
	}

	var results []server.ReconstructResult
	if len(targets) > 1 {
		info, err := c.ReconstructBatch(ctx, server.ReconstructRequest{Model: *model, Targets: targets, Options: opts})
		if err != nil {
			return err
		}
		fmt.Printf("submitted batch job %s (%d targets)\n", info.ID, len(targets))
		done, err := c.WaitJob(ctx, info.ID, 200*time.Millisecond)
		if err != nil {
			return err
		}
		var batch server.BatchResult
		if err := server.JobResult(done, &batch); err != nil {
			return err
		}
		results = batch.Results
	} else {
		req := server.ReconstructRequest{Model: *model, Target: targets[0], Options: opts}
		if *async {
			req.Async = async
		}
		resp, job, err := c.Reconstruct(ctx, req)
		if err != nil {
			return err
		}
		if job != nil {
			fmt.Printf("submitted job %s\n", job.ID)
			done, err := c.WaitJob(ctx, job.ID, 200*time.Millisecond)
			if err != nil {
				return err
			}
			var r server.ReconstructResult
			if err := server.JobResult(done, &r); err != nil {
				return err
			}
			results = []server.ReconstructResult{r}
		} else {
			results = []server.ReconstructResult{resp.Result}
		}
	}

	for i, r := range results {
		path := *out
		if len(results) > 1 {
			path = batchOutPath(*out, i)
		}
		if err := os.WriteFile(path, []byte(r.Hypergraph), 0o644); err != nil {
			return err
		}
		sharded := ""
		if r.Shards > 0 {
			sharded = fmt.Sprintf(", %d shards", r.Shards)
		}
		fmt.Printf("reconstructed %d unique hyperedges (%d occurrences) in %d rounds "+
			"(filter %.3fs, search %.3fs%s) -> %s\n",
			r.Unique, r.Total, r.Rounds, r.FilterSeconds, r.SearchSeconds, sharded, path)
	}
	return nil
}

func cmdJobs(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	base, tenant := remoteFlags(fs)
	id := fs.String("id", "", "show one job instead of listing all")
	cancelID := fs.String("cancel", "", "request cancellation of a job")
	watch := fs.String("watch", "", "stream a job's SSE progress events to stdout")
	if err := parse(fs, args); err != nil {
		return err
	}
	c := remoteClient(*base, *tenant)
	switch {
	case *cancelID != "":
		info, err := c.CancelJob(ctx, *cancelID)
		if err != nil {
			return err
		}
		fmt.Printf("%s %s %s\n", info.ID, info.Kind, info.Status)
		return nil
	case *watch != "":
		return watchJob(ctx, c, *watch)
	case *id != "":
		info, err := c.Job(ctx, *id)
		if err != nil {
			return err
		}
		printJob(info)
		return nil
	default:
		jobs, err := c.Jobs(ctx)
		if err != nil {
			return err
		}
		for _, info := range jobs {
			printJob(info)
		}
		return nil
	}
}

func printJob(info server.JobInfo) {
	errText := ""
	if info.Error != "" {
		errText = "  error: " + info.Error
	}
	fmt.Printf("%s  %-11s  %-9s  events %-4d created %s%s\n",
		info.ID, info.Kind, info.Status, info.Events,
		info.Created.Format(time.RFC3339), errText)
}

func cmdModels(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("models", flag.ContinueOnError)
	base, tenant := remoteFlags(fs)
	pull := fs.String("pull", "", "download a model to -out instead of listing")
	out := fs.String("out", "model.json", "output file for -pull")
	del := fs.String("delete", "", "delete a model")
	if err := parse(fs, args); err != nil {
		return err
	}
	c := remoteClient(*base, *tenant)
	switch {
	case *pull != "":
		raw, err := c.PullModel(ctx, *pull)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("pulled %s (%d bytes) -> %s\n", *pull, len(raw), *out)
		return nil
	case *del != "":
		if err := c.DeleteModel(ctx, *del); err != nil {
			return err
		}
		fmt.Println("deleted", *del)
		return nil
	default:
		models, err := c.Models(ctx)
		if err != nil {
			return err
		}
		for _, m := range models {
			fmt.Printf("%-24s  %-12s  sizes %v  %d bytes  saved %s\n",
				m.Name, m.Featurizer, m.Sizes, m.Bytes, m.Saved.Format(time.RFC3339))
		}
		return nil
	}
}

func cmdPushModel(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("push-model", flag.ContinueOnError)
	base, tenant := remoteFlags(fs)
	name := fs.String("name", "", "registry name to store the model under")
	modelPath := fs.String("model", "model.json", "model file saved by `mariohctl train`")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *name == "" {
		return usageError{msg: "push-model: -name is required"}
	}
	raw, err := os.ReadFile(*modelPath)
	if err != nil {
		return err
	}
	c := remoteClient(*base, *tenant)
	info, err := c.PushModel(ctx, *name, raw)
	if err != nil {
		return err
	}
	fmt.Printf("pushed %s (%s, sizes %v, %d bytes)\n", info.Name, info.Featurizer, info.Sizes, info.Bytes)
	return nil
}

// watchJob streams a job's SSE events as plain lines.
func watchJob(ctx context.Context, c *server.Client, id string) error {
	// Verify the job exists for a friendly error before streaming.
	if _, err := c.Job(ctx, id); err != nil {
		return err
	}
	return streamEvents(ctx, c.Base+"/v1/jobs/"+id+"/events", c.Tenant)
}

// streamEvents prints an SSE stream's frames until it ends.
func streamEvents(ctx context.Context, url, tenant string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if tenant != "" {
		req.Header.Set(server.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("jobs: watching events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			fmt.Println(line)
		}
	}
	return sc.Err()
}
