// Command loadgen is the multi-tenant serving load harness: it drives a
// mariohd daemon (in-process by default, or a remote one via -server)
// with concurrent reconstructions and session churn spread over several
// tenants, verifies every served body against the serial single-process
// library reconstruction (byte equality is the acceptance bar), and
// records p50/p99 latencies plus the daemon's RSS and dedup counters to
// a BENCH_<date>-loadgen.json summary.
//
// Typical CI use (the `make load-check` smoke):
//
//	go run ./cmd/loadgen -requests 200 -concurrency 16 -tenants 4 \
//	    -sessions 8 -memory-budget 268435456 -max-rss 2147483648 \
//	    -require-dedup -out BENCH_$(date +%F)-loadgen.json
//
// Exit status is non-zero on any 5xx (unless -fail-on-5xx=false), any
// byte divergence from the serial reconstruction, zero dedup hits under
// -require-dedup, or RSS above -max-rss.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"marioh"
	"marioh/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// counters aggregates the outcome of every issued request.
type counters struct {
	ok, throttled, clientErr, serverErr, mismatches atomic.Int64
}

func run() error {
	base := flag.String("server", "", "base URL of a running mariohd (empty = boot one in-process)")
	requests := flag.Int("requests", 200, "total reconstruct requests to issue")
	concurrency := flag.Int("concurrency", 16, "concurrent client workers")
	tenants := flag.Int("tenants", 4, "distinct tenant identities to spread the load over")
	unique := flag.Int("unique", 8, "distinct request shapes (seeds); the rest are duplicates exercising dedup")
	sessions := flag.Int("sessions", 8, "incremental sessions to churn (create, apply, delete)")
	workers := flag.Int("workers", 0, "in-process server worker-pool size (0 = GOMAXPROCS)")
	memoryBudget := flag.Int64("memory-budget", 0, "in-process server retained-memory budget in bytes (0 = unlimited)")
	dedupCache := flag.Int64("dedup-cache", 0, "in-process server dedup cache bytes (0 = 64 MiB default)")
	maxRSS := flag.Int64("max-rss", 0, "fail when the daemon's marioh_rss_bytes exceeds this (0 = no bound)")
	requireDedup := flag.Bool("require-dedup", false, "fail when the run produced zero dedup hits")
	failOn5xx := flag.Bool("fail-on-5xx", true, "fail when any request answered 5xx")
	out := flag.String("out", "", "write the BENCH summary JSON here (empty = stdout only)")
	note := flag.String("note", "", "free-form note recorded in the summary")
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}
	if *requests <= 0 || *concurrency <= 0 || *tenants <= 0 || *unique <= 0 {
		return fmt.Errorf("-requests, -concurrency, -tenants and -unique must be positive")
	}
	if *unique > *requests {
		*unique = *requests
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Boot the daemon in-process unless a remote one was given: loadgen is
	// both a CI smoke (in-process, deterministic environment) and a
	// capacity probe for deployed daemons.
	baseURL := *base
	var shutdown func() error
	if baseURL == "" {
		root, hardStop := context.WithCancel(context.Background())
		defer hardStop()
		serveCtx, stopServe := context.WithCancel(root)
		defer stopServe()
		srv, err := server.New(root, server.Config{
			Addr:            "127.0.0.1:0",
			Workers:         *workers,
			QueueDepth:      2 * *concurrency,
			MemoryBudget:    *memoryBudget,
			DedupCacheBytes: *dedupCache,
			DataDir:         "", // memory-only sessions; durability has its own checks
			Logf:            func(string, ...any) {},
		})
		if err != nil {
			return err
		}
		done := make(chan error, 1)
		go func() { done <- srv.ListenAndServe(serveCtx) }()
		baseURL = "http://" + srv.Addr()
		if srv.Addr() == "" {
			stopServe()
			return fmt.Errorf("in-process server failed to bind: %w", <-done)
		}
		shutdown = func() error {
			stopServe()
			return <-done
		}
		fmt.Printf("loadgen: in-process mariohd on %s\n", baseURL)
	}

	// One model, trained server-side from a generated dataset; the load's
	// target is the dataset's projected target hypergraph.
	ds, err := marioh.GenerateDataset("hosts", 1)
	if err != nil {
		return err
	}
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	var srcBuf, tgtBuf bytes.Buffer
	if err := src.Write(&srcBuf); err != nil {
		return err
	}
	if err := tgt.Project().Write(&tgtBuf); err != nil {
		return err
	}
	target := tgtBuf.String()

	admin := server.NewClient(baseURL)
	job, err := admin.Train(ctx, server.TrainRequest{
		Source: srcBuf.String(), SaveAs: "loadgen", Options: server.OptionSpec{Seed: 1, Epochs: 25},
	})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	trainCtx, cancelTrain := context.WithTimeout(ctx, 5*time.Minute)
	done, err := admin.WaitJob(trainCtx, job.ID, 50*time.Millisecond)
	cancelTrain()
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	var trained server.TrainResult
	if err := server.JobResult(done, &trained); err != nil {
		return fmt.Errorf("training: %w", err)
	}

	// Serial single-process goldens: pull the trained model and run each
	// request shape through the library — the served bytes must equal
	// these exactly, no matter how the requests were collapsed, cached or
	// spread over tenants.
	rawModel, err := admin.PullModel(ctx, "loadgen")
	if err != nil {
		return err
	}
	model, err := marioh.LoadModel(bytes.NewReader(rawModel))
	if err != nil {
		return err
	}
	parsedTarget, err := marioh.ReadGraph(bytes.NewReader([]byte(target)))
	if err != nil {
		return err
	}
	goldens := make([]string, *unique)
	for i := range goldens {
		lib, err := marioh.New(marioh.WithSeed(int64(i+1)), marioh.WithModel(model))
		if err != nil {
			return err
		}
		res, err := lib.Reconstruct(ctx, parsedTarget)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := res.Hypergraph.Write(&buf); err != nil {
			return err
		}
		goldens[i] = buf.String()
	}

	// Concurrent reconstruction load: workers pull request indices off a
	// channel; request i uses shape i%unique and tenant i%tenants, so
	// identical shapes hit the daemon concurrently from several tenants.
	var cnt counters
	recLat := make([]time.Duration, *requests)
	work := make(chan int)
	var wg sync.WaitGroup
	clients := make([]*server.Client, *concurrency)
	for w := range clients {
		c := server.NewClient(baseURL)
		c.Tenant = fmt.Sprintf("tenant-%d", w%*tenants)
		c.MaxRetries = -1 // measure the daemon's answers, not the retry loop
		clients[w] = c
	}
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w]
			for i := range work {
				shape := i % *unique
				t0 := time.Now()
				resp, _, err := c.Reconstruct(ctx, server.ReconstructRequest{
					Model: "loadgen", Target: target,
					Options: server.OptionSpec{Seed: int64(shape + 1)},
				})
				recLat[i] = time.Since(t0)
				classify(&cnt, err)
				if err != nil || resp == nil {
					continue
				}
				if resp.Result.Hypergraph != goldens[shape] {
					cnt.mismatches.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < *requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	recWall := time.Since(start)

	// Session churn: create, one initial-build apply (whose bytes must
	// equal the seed's serial reconstruction), delete. Sequential per
	// session but spread across tenants and concurrent with nothing else —
	// session quota and LRU behavior under load has its own httptest
	// coverage; here sessions exercise the budget's sessions pool.
	applyLat := make([]time.Duration, 0, *sessions)
	for i := 0; i < *sessions; i++ {
		c := clients[i%len(clients)]
		shape := i % *unique
		info, err := c.CreateSession(ctx, server.SessionRequest{
			Model: "loadgen", Graph: target, Options: server.OptionSpec{Seed: int64(shape + 1)},
		})
		if err != nil {
			classify(&cnt, err)
			continue
		}
		t0 := time.Now()
		resp, _, err := c.ApplySession(ctx, info.ID, server.SessionApplyRequest{})
		applyLat = append(applyLat, time.Since(t0))
		classify(&cnt, err)
		if err == nil && resp != nil && resp.Result.Hypergraph != goldens[shape] {
			cnt.mismatches.Add(1)
		}
		if err := c.DeleteSession(ctx, info.ID); err != nil {
			classify(&cnt, err)
		}
	}

	// Scrape the daemon's own accounting.
	metrics, err := scrapeMetrics(baseURL)
	if err != nil {
		return err
	}
	rss := metrics["marioh_rss_bytes"]
	dedupHits := metrics["marioh_dedup_hits_total"]
	dedupMisses := metrics["marioh_dedup_misses_total"]

	if shutdown != nil {
		if err := shutdown(); err != nil {
			return fmt.Errorf("draining the in-process server: %w", err)
		}
	}

	recP50, recP99 := percentiles(recLat)
	appP50, appP99 := percentiles(applyLat)
	fmt.Printf("loadgen: %d reconstructs in %s + %d session applies (total %d ok, %d throttled, %d 4xx, %d 5xx, %d mismatches)\n",
		*requests, recWall.Round(time.Millisecond), len(applyLat),
		cnt.ok.Load(), cnt.throttled.Load(), cnt.clientErr.Load(), cnt.serverErr.Load(), cnt.mismatches.Load())
	fmt.Printf("loadgen: reconstruct p50 %s p99 %s; session apply p50 %s p99 %s\n",
		recP50.Round(time.Microsecond), recP99.Round(time.Microsecond),
		appP50.Round(time.Microsecond), appP99.Round(time.Microsecond))
	fmt.Printf("loadgen: dedup %d hits / %d misses; daemon RSS %d bytes\n",
		int64(dedupHits), int64(dedupMisses), int64(rss))

	summary := map[string]any{
		"date":    time.Now().Format("2006-01-02"),
		"pr":      "multi-tenant serving: admission control, memory budget, result dedup",
		"go":      runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		"command": fmt.Sprintf("go run ./cmd/loadgen -requests %d -concurrency %d -tenants %d -unique %d -sessions %d", *requests, *concurrency, *tenants, *unique, *sessions),
		"note":    *note,
		"benchmarks": []map[string]any{
			{"name": "BenchmarkLoadgen/reconstruct_p50", "ns_op": recP50.Nanoseconds()},
			{"name": "BenchmarkLoadgen/reconstruct_p99", "ns_op": recP99.Nanoseconds()},
			{"name": "BenchmarkLoadgen/session_apply_p50", "ns_op": appP50.Nanoseconds()},
			{"name": "BenchmarkLoadgen/session_apply_p99", "ns_op": appP99.Nanoseconds()},
		},
		"serving": map[string]any{
			"requests":            *requests,
			"concurrency":         *concurrency,
			"tenants":             *tenants,
			"unique_shapes":       *unique,
			"sessions":            *sessions,
			"wall_seconds":        recWall.Seconds(),
			"ok":                  cnt.ok.Load(),
			"throttled_429":       cnt.throttled.Load(),
			"errors_4xx":          cnt.clientErr.Load(),
			"errors_5xx":          cnt.serverErr.Load(),
			"byte_mismatches":     cnt.mismatches.Load(),
			"dedup_hits":          int64(dedupHits),
			"dedup_misses":        int64(dedupMisses),
			"rss_bytes":           int64(rss),
			"memory_budget_bytes": *memoryBudget,
		},
	}
	raw, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: summary -> %s\n", *out)
	} else {
		os.Stdout.Write(raw)
	}

	// Gate verdicts, worst first: divergence from the serial bytes is a
	// correctness failure no flag can waive.
	if n := cnt.mismatches.Load(); n > 0 {
		return fmt.Errorf("%d response(s) diverged from the serial library reconstruction", n)
	}
	if *failOn5xx && cnt.serverErr.Load() > 0 {
		return fmt.Errorf("%d request(s) answered 5xx", cnt.serverErr.Load())
	}
	if n := cnt.clientErr.Load(); n > 0 {
		return fmt.Errorf("%d request(s) answered unexpected 4xx", n)
	}
	if *requireDedup && dedupHits == 0 {
		return fmt.Errorf("zero dedup hits across %d requests over %d shapes", *requests, *unique)
	}
	if *maxRSS > 0 && int64(rss) > *maxRSS {
		return fmt.Errorf("daemon RSS %d bytes exceeds -max-rss %d", int64(rss), *maxRSS)
	}
	return nil
}

// classify buckets one request outcome. 429s are expected under
// admission pressure and never fail the run; other 4xx are client bugs
// in the harness and 5xx are the daemon's failures.
func classify(cnt *counters, err error) {
	if err == nil {
		cnt.ok.Add(1)
		return
	}
	var aerr *server.APIError
	switch {
	case asAPIError(err, &aerr) && aerr.Status == http.StatusTooManyRequests:
		cnt.throttled.Add(1)
	case asAPIError(err, &aerr) && aerr.Status >= 500:
		cnt.serverErr.Add(1)
	case asAPIError(err, &aerr):
		cnt.clientErr.Add(1)
	default:
		cnt.serverErr.Add(1) // transport failure: the daemon's problem
	}
}

// asAPIError is errors.As without importing errors twice in call sites.
func asAPIError(err error, target **server.APIError) bool {
	for err != nil {
		if aerr, ok := err.(*server.APIError); ok {
			*target = aerr
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// percentiles returns the p50 and p99 of the recorded latencies.
func percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return idx(0.50), idx(0.99)
}

// metricLine matches an un-labelled Prometheus sample.
var metricLine = regexp.MustCompile(`(?m)^([a-z_]+) ([0-9.e+-]+)$`)

// scrapeMetrics fetches /metrics and returns every label-free sample.
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, m := range metricLine.FindAllStringSubmatch(string(raw), -1) {
		if v, err := strconv.ParseFloat(m[2], 64); err == nil {
			out[m[1]] = v
		}
	}
	return out, nil
}
