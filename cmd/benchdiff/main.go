// Command benchdiff enforces the repo's benchmark-regression gate: it
// compares a fresh substrate benchmark run against the latest committed
// BENCH_<date>.json recording and fails (or warns) when a benchmark got
// slower than the tolerance allows.
//
// Both inputs accept plain `go test -bench` output, the test2json event
// stream produced by `go test -bench -json` (the format `make bench-json`
// records), or the curated summary schema of the committed BENCH files
// ({"benchmarks": [{"name": ..., "after": {"ns_op": ...}}]}). Typical CI
// use:
//
//	go test -run '^$' -bench 'HasEdge|MaximalCliques' -benchtime=100x -json . |
//	    go run ./cmd/benchdiff -against latest -tolerance 2 -warn-only=false
//
// Ratios are per-op (ns/op), so recordings and fresh runs may use
// different -benchtime values. Benchmarks present only in the fresh run
// are reported as new and never fail the gate; benchmarks present in the
// baseline but missing from the fresh run are governed by -missing: they
// warn by default (PR mode) and fail the gate with -missing=fail (main
// mode) — a silently vanished benchmark is a silently shrunken perf gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line; the -N GOMAXPROCS suffix
// is stripped so recordings from machines with different core counts
// compare.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// testEvent is the subset of a test2json event benchdiff needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// summaryFile is the hand-curated recording schema used by the committed
// BENCH_<date>.json trajectory files: a benchmarks array with ns_op
// readings (the "after" block when the file records a before/after pair).
type summaryFile struct {
	Benchmarks []struct {
		Name  string  `json:"name"`
		NsOp  float64 `json:"ns_op"`
		After *struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// parseBench extracts benchmark name → ns/op from r, accepting a summary
// recording, a test2json stream, or plain `go test -bench` output.
// Repeated benchmarks keep the fastest run (the standard noise-resistant
// choice).
func parseBench(r io.Reader) (map[string]float64, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var summary summaryFile
	if err := json.Unmarshal(raw, &summary); err == nil && len(summary.Benchmarks) > 0 {
		out := map[string]float64{}
		for _, b := range summary.Benchmarks {
			ns := b.NsOp
			if b.After != nil {
				ns = b.After.NsOp
			}
			if b.Name != "" && ns > 0 {
				out[b.Name] = ns
			}
		}
		return out, nil
	}

	// Reassemble the text stream first: test2json may split one benchmark
	// result line across several Output events, so fragments must be
	// concatenated before line-wise matching.
	var text strings.Builder
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 0 && line[0] == '{' {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]float64{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		if old, ok := out[m[1]]; !ok || ns < old {
			out[m[1]] = ns
		}
	}
	return out, nil
}

// latestRecording finds the lexicographically greatest BENCH_*.json in
// dir — the naming scheme makes that the newest date. Serving-latency
// recordings from cmd/loadgen (BENCH_<date>-loadgen.json) measure wall
// time of HTTP round-trips, not substrate ns/op, so they never become
// the substrate baseline.
func latestRecording(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	kept := matches[:0]
	for _, m := range matches {
		if !strings.HasSuffix(m, "-loadgen.json") {
			kept = append(kept, m)
		}
	}
	if len(kept) == 0 {
		return "", fmt.Errorf("no BENCH_*.json recordings in %s", dir)
	}
	sort.Strings(kept)
	return kept[len(kept)-1], nil
}

func run() (int, error) {
	against := flag.String("against", "latest", `baseline recording ("latest" = newest BENCH_*.json in -dir)`)
	dir := flag.String("dir", ".", "directory searched for recordings when -against=latest")
	fresh := flag.String("new", "-", `fresh benchmark results ("-" = stdin)`)
	tolerance := flag.Float64("tolerance", 2.0, "maximum allowed slowdown ratio (new/old)")
	warnOnly := flag.Bool("warn-only", false, "report regressions but always exit 0")
	missing := flag.String("missing", "warn", `baseline benchmarks absent from the fresh run: "warn" or "fail"`)
	flag.Parse()
	if flag.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments %q", flag.Args())
	}
	if *tolerance <= 0 {
		return 2, fmt.Errorf("tolerance %v must be > 0", *tolerance)
	}
	if *missing != "warn" && *missing != "fail" {
		return 2, fmt.Errorf(`-missing must be "warn" or "fail", got %q`, *missing)
	}

	baselinePath := *against
	if baselinePath == "latest" {
		p, err := latestRecording(*dir)
		if err != nil {
			return 1, err
		}
		baselinePath = p
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		return 1, err
	}
	baseline, err := parseBench(bf)
	bf.Close()
	if err != nil {
		return 1, err
	}
	if len(baseline) == 0 {
		return 1, fmt.Errorf("no benchmark results in baseline %s", baselinePath)
	}

	var nr io.Reader = os.Stdin
	if *fresh != "-" {
		f, err := os.Open(*fresh)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		nr = f
	}
	current, err := parseBench(nr)
	if err != nil {
		return 1, err
	}
	if len(current) == 0 {
		return 1, fmt.Errorf("no benchmark results in fresh input")
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("benchdiff: baseline %s, tolerance %.2fx\n", baselinePath, *tolerance)
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	regressions, missed := 0, 0
	for _, name := range names {
		old := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-40s %14.1f %14s %8s  (missing from fresh run)\n", name, old, "-", "-")
			missed++
			continue
		}
		ratio := cur / old
		verdict := ""
		if ratio > *tolerance {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-40s %14.1f %14.1f %7.2fx%s\n", name, old, cur, ratio, verdict)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("%-40s %14s %14.1f %8s  (new benchmark)\n", name, "-", current[name], "-")
		}
	}

	failed := false
	if missed > 0 {
		fmt.Printf("benchdiff: %d baseline benchmark(s) missing from the fresh run\n", missed)
		if *missing == "fail" {
			fmt.Println("benchdiff: failing (-missing=fail): a removed or renamed benchmark silently shrinks the gate")
			failed = true
		} else {
			fmt.Println("benchdiff: warning only (-missing=warn); main builds run with -missing=fail")
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed beyond %.2fx\n", regressions, *tolerance)
		if *warnOnly {
			fmt.Println("benchdiff: warn-only mode, not failing on regressions")
		} else {
			failed = true
		}
	}
	if failed {
		return 1, nil
	}
	if regressions == 0 {
		fmt.Println("benchdiff: no regressions")
	}
	return 0, nil
}

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}
