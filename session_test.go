package marioh_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"marioh"
)

// trainedReconstructor builds a Reconstructor trained on a seeded dataset.
func trainedReconstructor(t *testing.T, opts ...marioh.Option) (*marioh.Reconstructor, *marioh.Graph) {
	t.Helper()
	ds := mustDataset(t, "hosts", 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	r, err := marioh.New(append([]marioh.Option{marioh.WithSeed(1), marioh.WithEpochs(15)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Train(context.Background(), src.Project(), src); err != nil {
		t.Fatal(err)
	}
	return r, tgt.Project()
}

func renderResult(t *testing.T, res *marioh.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Hypergraph.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionMatchesFullReconstruct: the public Session must reproduce a
// from-scratch Reconstruct of the mutated graph byte for byte, across
// several delta batches, and must not mutate the caller's graph.
func TestSessionMatchesFullReconstruct(t *testing.T) {
	r, g := trainedReconstructor(t)
	orig := g.Clone()
	sess, err := marioh.OpenSession(r, g)
	if err != nil {
		t.Fatal(err)
	}

	shadow := g.Clone()
	batches := []marioh.Delta{
		{}, // initial full build
		{Ops: []marioh.DeltaOp{
			{Kind: marioh.DeltaAdd, U: 0, V: 1, W: 2},
			{Kind: marioh.DeltaAdd, U: 0, V: 2, W: 1},
		}},
		{Ops: []marioh.DeltaOp{
			{Kind: marioh.DeltaRemove, U: 0, V: 1},
			{Kind: marioh.DeltaSet, U: 3, V: 4, W: 3},
		}},
	}
	for bi, d := range batches {
		for _, op := range d.Ops {
			switch op.Kind {
			case marioh.DeltaAdd:
				shadow.AddWeight(op.U, op.V, op.W)
			case marioh.DeltaRemove:
				shadow.RemoveEdge(op.U, op.V)
			case marioh.DeltaSet:
				shadow.SetWeight(op.U, op.V, op.W)
			}
		}
		got, err := sess.Apply(context.Background(), d)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		want, err := r.Reconstruct(context.Background(), shadow)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderResult(t, got), renderResult(t, want)) {
			t.Fatalf("batch %d: session output diverges from full rebuild", bi)
		}
		if bi > 0 && got.DirtyComponents == 0 {
			t.Fatalf("batch %d: expected dirty components", bi)
		}
	}
	// The caller's graph must be untouched.
	var a, b bytes.Buffer
	if err := g.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := orig.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("OpenSession/Apply mutated the caller's graph")
	}
	st := sess.Stats()
	if st.Applies != len(batches) || st.Components == 0 || st.Edges != sess.Graph().NumEdges() {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

// TestSessionRequiresModel: OpenSession without a trained or attached
// model fails like Reconstruct does.
func TestSessionRequiresModel(t *testing.T) {
	r, err := marioh.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.OpenSession(marioh.NewGraph(4)); err != marioh.ErrNoModel {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}
	if _, err := marioh.OpenSession(r, nil); err != marioh.ErrNoModel {
		t.Fatalf("nil-graph err = %v, want ErrNoModel (model is checked first)", err)
	}
}

// TestSessionProgressDirtyCount: progress events during Apply carry the
// batch's dirty-component count.
func TestSessionProgressDirtyCount(t *testing.T) {
	var dirty []int
	r, g := trainedReconstructor(t, marioh.WithProgress(func(p marioh.Progress) {
		dirty = append(dirty, p.Dirty)
	}))
	sess, err := r.OpenSession(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Apply(context.Background(), marioh.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) == 0 {
		t.Fatal("no progress events during Apply")
	}
	for _, d := range dirty {
		if d != res.DirtyComponents {
			t.Fatalf("event Dirty %d, want %d", d, res.DirtyComponents)
		}
	}
}

// TestSessionDeltaTextRoundTrip: the public delta reader/writer round-trip
// and feed Apply.
func TestSessionDeltaTextRoundTrip(t *testing.T) {
	ops, err := marioh.ReadDeltas(strings.NewReader("+ 1 2 3\n% comment\n- 4 5\n= 6 7 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || ops[0].Kind != marioh.DeltaAdd || ops[1].Kind != marioh.DeltaRemove || ops[2].Kind != marioh.DeltaSet {
		t.Fatalf("parsed %v", ops)
	}
	var buf bytes.Buffer
	if err := marioh.WriteDeltas(&buf, ops); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "+ 1 2 3\n- 4 5\n= 6 7 0\n" {
		t.Fatalf("serialized %q", got)
	}
}
