package marioh_test

import (
	"context"
	"sync"
	"testing"

	"marioh"
	"marioh/internal/corpus"
)

// BenchmarkCorpusReconstruct tracks full-reconstruction cost per scenario-
// corpus family, so a perf regression shows up attributed to the graph
// shape that triggers it (dense hubs vs bridge chains vs overlapping
// cliques) instead of averaged away in an aggregate number. Part of the
// substrate set recorded by `make bench-json` and gated by cmd/benchdiff.
// Run with
//
//	go test -run '^$' -bench BenchmarkCorpusReconstruct -benchmem .

var (
	corpusBenchOnce  sync.Once
	corpusBenchModel *marioh.Model
	corpusBenchErr   error
)

// corpusBenchSetup trains the gate-standard model (hosts source, seed 1,
// 15 epochs — the configuration every equivalence gate uses) once per
// bench process.
func corpusBenchSetup(tb testing.TB) *marioh.Model {
	tb.Helper()
	corpusBenchOnce.Do(func() {
		ds, err := marioh.GenerateDataset("hosts", 1)
		if err != nil {
			corpusBenchErr = err
			return
		}
		src := ds.Source.Reduced()
		r, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(15))
		if err != nil {
			corpusBenchErr = err
			return
		}
		corpusBenchModel, corpusBenchErr = r.Train(context.Background(), src.Project(), src)
	})
	if corpusBenchErr != nil {
		tb.Fatal(corpusBenchErr)
	}
	return corpusBenchModel
}

func BenchmarkCorpusReconstruct(b *testing.B) {
	model := corpusBenchSetup(b)
	r, err := marioh.New(marioh.WithSeed(1), marioh.WithModel(model))
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range corpus.Families {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			g := f.Gen(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Reconstruct(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
