package marioh_test

import (
	"context"
	"runtime"
	"testing"

	"marioh"
	"marioh/internal/corpus"
)

// Parallel round-engine benchmarks, part of the substrate set recorded by
// `make bench-json` and gated by cmd/benchdiff. They sweep the worker
// count over the two giant-component corpus families — powerlaw-hubs (one
// huge hub component) and clique-cores (overlapping dense cores) — which
// are exactly the shapes the parallel engine targets. par=1 is the serial
// reference (now fused and arena-backed, so its allocs/op are the number
// to watch on single-core recordings); par=max is GOMAXPROCS.
//
// Run with
//
//	go test -run '^$' -bench 'BenchmarkParallelRound|BenchmarkCliqueEnumParallel' -benchmem .

// parallelBenchFamilies are the giant-component shapes worth sweeping.
var parallelBenchFamilies = []string{"powerlaw-hubs", "clique-cores"}

// parallelBenchWorkers is the sweep: serial, a typical small fan-out, and
// everything the machine has (0 = GOMAXPROCS).
func parallelBenchWorkers() []struct {
	label string
	par   int
} {
	return []struct {
		label string
		par   int
	}{
		// The max label deliberately omits the core count so benchmark
		// names — and the benchdiff gate keyed on them — are stable
		// across machines.
		{label: "par=1", par: 1},
		{label: "par=4", par: 4},
		{label: "par=max", par: 0},
	}
}

// BenchmarkParallelRound measures full reconstruction through the parallel
// round engine at each parallelism setting.
func BenchmarkParallelRound(b *testing.B) {
	model := corpusBenchSetup(b)
	for _, name := range parallelBenchFamilies {
		f, ok := corpus.ByName(name)
		if !ok {
			b.Fatalf("corpus family %q missing", name)
		}
		g := f.Gen(1)
		for _, w := range parallelBenchWorkers() {
			r, err := marioh.New(marioh.WithSeed(1), marioh.WithModel(model), marioh.WithParallelism(w.par))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(name+"/"+w.label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := r.Reconstruct(context.Background(), g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCliqueEnumParallel isolates the enumeration layer: maximal-
// clique enumeration via the per-seed worker pool, against the same
// family graphs.
func BenchmarkCliqueEnumParallel(b *testing.B) {
	for _, name := range parallelBenchFamilies {
		f, ok := corpus.ByName(name)
		if !ok {
			b.Fatalf("corpus family %q missing", name)
		}
		g := f.Gen(1)
		for _, w := range parallelBenchWorkers() {
			workers := w.par
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			b.Run(name+"/"+w.label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if cliques := g.MaximalCliquesParallel(2, -1, workers); len(cliques) == 0 {
						b.Fatal("no cliques enumerated")
					}
				}
			})
		}
	}
}
