package marioh_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"marioh"
)

// The shard-engine benchmark reconstructs a multi-component graph — the
// disjoint union of several dataset-analog targets — serially and through
// the shard engine. The engine wins twice: shards reconstruct concurrently
// across cores, and each shard caches its clique enumeration + scores
// across the θ-decay rounds in which nothing is accepted, where the serial
// reference re-enumerates and re-scores the whole residual every round.
// Run with
//
//	go test -run '^$' -bench BenchmarkShardedReconstruct -benchmem .
//
// `make bench-json` records the results into BENCH_<date>.json and `make
// shard-check` verifies the outputs are byte-identical on top.

type shardBenchState struct {
	model *marioh.Model
	g     *marioh.Graph
}

var (
	shardBenchOnce sync.Once
	shardBenchErr  error
	shardBench     shardBenchState
)

// shardBenchSetup trains one model and builds the multi-component bench
// graph: thousands of small independent communities of overlapping
// hyperedges — the production shape sharding targets (per-user groups,
// message threads, transactions) and the regime of the paper's datasets,
// whose hyperedges are small and cluster locally. One dataset target is
// mixed in so the graph also carries a few large components.
func shardBenchSetup(tb testing.TB) *shardBenchState {
	tb.Helper()
	shardBenchOnce.Do(func() {
		train, err := marioh.GenerateDataset("crime", 1)
		if err != nil {
			shardBenchErr = err
			return
		}
		src := train.Source.Reduced()
		r, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(20))
		if err != nil {
			shardBenchErr = err
			return
		}
		model, err := r.Train(context.Background(), src.Project(), src)
		if err != nil {
			shardBenchErr = err
			return
		}

		// The bench corpus: thousands of small independent communities of
		// two hyperedge-like cliques sharing an edge — the production
		// shape of per-user groups, transactions, message threads, and
		// the paper's Fig. 3 ambiguity in miniature. The winning clique
		// of each community resolves in the early rounds; the fragments
		// of the losing one score low and wait many rounds for θ to
		// decay. While a community waits, the serial pipeline re-scans it
		// every round — exactly the redundancy the shard engine's
		// per-component cache removes (and on multi-core hardware the
		// shard fan-out compounds the win).
		rng := rand.New(rand.NewSource(42))
		g := marioh.NewGraph(0)
		offset := 0
		clique := func(nodes []int) {
			for i := 0; i < len(nodes); i++ {
				for j := i + 1; j < len(nodes); j++ {
					if g.Weight(nodes[i], nodes[j]) == 0 {
						g.AddWeight(nodes[i], nodes[j], 1)
					}
				}
			}
		}
		for c := 0; c < 2500; c++ {
			k := 4 + rng.Intn(3)
			g.EnsureNodes(offset + 2*k)
			a := make([]int, k)
			b := make([]int, k)
			for i := 0; i < k; i++ {
				a[i] = offset + i
			}
			b[0], b[1] = offset, offset+1 // b shares the edge {0,1} of a
			for i := 2; i < k; i++ {
				b[i] = offset + k + i - 2
			}
			clique(a)
			clique(b)
			offset += 2*k - 2
		}
		shardBench = shardBenchState{model: model, g: g}
	})
	if shardBenchErr != nil {
		tb.Fatal(shardBenchErr)
	}
	return &shardBench
}

// benchReconstruct times full reconstructions of the bench graph.
func benchReconstruct(b *testing.B, opts ...marioh.Option) {
	st := shardBenchSetup(b)
	r, err := marioh.New(append([]marioh.Option{
		marioh.WithSeed(9), marioh.WithModel(st.model),
	}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Reconstruct(context.Background(), st.g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedReconstruct compares the serial pipeline against the
// shard engine on the multi-component bench graph. The outputs are
// byte-identical (TestWithShardingMatchesSerial and the CI
// shard-equivalence job assert it); only the wall clock differs.
func BenchmarkShardedReconstruct(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchReconstruct(b)
	})
	b.Run("shards=4", func(b *testing.B) {
		benchReconstruct(b, marioh.WithSharding(marioh.ShardingOptions{Shards: 4}))
	})
	b.Run("shards=16", func(b *testing.B) {
		benchReconstruct(b, marioh.WithSharding(marioh.ShardingOptions{Shards: 16}))
	})
}
