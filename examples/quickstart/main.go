// Quickstart: build a tiny hypergraph, project it, train MARIOH on it, and
// reconstruct the hypergraph back from the projection alone — all through
// the Reconstructor service API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"marioh"
)

func main() {
	// A toy "collaboration network": four groups, one of which ({0,1})
	// worked together twice.
	truth := marioh.NewHypergraph(9)
	truth.AddMult([]int{0, 1}, 2)
	truth.Add([]int{0, 1, 2})
	truth.Add([]int{3, 4, 5})
	truth.Add([]int{5, 6})
	truth.Add([]int{6, 7, 8})

	// The projection is all a downstream consumer would normally see:
	// pairwise edges weighted by co-occurrence counts.
	g := truth.Project()
	fmt.Printf("projected graph: %d nodes, %d edges, total weight %d\n",
		g.NumNodes(), g.NumEdges(), g.TotalWeight())

	// A zero-option Reconstructor is the paper's exact configuration; the
	// progress option streams each round of the search.
	ctx := context.Background()
	r, err := marioh.New(
		marioh.WithSeed(1),
		marioh.WithProgress(func(p marioh.Progress) {
			if p.Round > 0 {
				fmt.Printf("  round %d: θ=%.2f, %d edges remain\n", p.Round, p.Theta, p.EdgesRemaining)
			}
		}),
	)
	if err != nil {
		panic(err)
	}

	// Supervised setting: here we train on the same domain (the truth
	// itself plays the source role; see examples/transfer for real
	// cross-dataset transfer).
	if _, err := r.Train(ctx, g, truth); err != nil {
		panic(err)
	}

	// Reconstruct from the projection alone.
	res, err := r.Reconstruct(ctx, g)
	if err != nil {
		panic(err)
	}

	fmt.Printf("reconstructed %d unique hyperedges (%d occurrences):\n",
		res.Hypergraph.NumUnique(), res.Hypergraph.NumTotal())
	for _, em := range res.Hypergraph.EdgesWithMult() {
		fmt.Printf("  %v x%d\n", em.Nodes, em.Mult)
	}
	fmt.Printf("Jaccard       = %.3f\n", marioh.Jaccard(truth, res.Hypergraph))
	fmt.Printf("multi-Jaccard = %.3f\n", marioh.MultiJaccard(truth, res.Hypergraph))
}
