// Quickstart: build a tiny hypergraph, project it, train MARIOH on it, and
// reconstruct the hypergraph back from the projection alone.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"marioh"
)

func main() {
	// A toy "collaboration network": four groups, one of which ({0,1})
	// worked together twice.
	truth := marioh.NewHypergraph(9)
	truth.AddMult([]int{0, 1}, 2)
	truth.Add([]int{0, 1, 2})
	truth.Add([]int{3, 4, 5})
	truth.Add([]int{5, 6})
	truth.Add([]int{6, 7, 8})

	// The projection is all a downstream consumer would normally see:
	// pairwise edges weighted by co-occurrence counts.
	g := truth.Project()
	fmt.Printf("projected graph: %d nodes, %d edges, total weight %d\n",
		g.NumNodes(), g.NumEdges(), g.TotalWeight())

	// Supervised setting: here we train on the same domain (the truth
	// itself plays the source role; see examples/transfer for real
	// cross-dataset transfer).
	model := marioh.TrainModel(g, truth, marioh.TrainOptions{Seed: 1})

	// Reconstruct from the projection alone.
	res := marioh.Reconstruct(g, model, marioh.Options{Seed: 1})

	fmt.Printf("reconstructed %d unique hyperedges (%d occurrences):\n",
		res.Hypergraph.NumUnique(), res.Hypergraph.NumTotal())
	for _, em := range res.Hypergraph.EdgesWithMult() {
		fmt.Printf("  %v x%d\n", em.Nodes, em.Mult)
	}
	fmt.Printf("Jaccard       = %.3f\n", marioh.Jaccard(truth, res.Hypergraph))
	fmt.Printf("multi-Jaccard = %.3f\n", marioh.MultiJaccard(truth, res.Hypergraph))
}
