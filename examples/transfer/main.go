// Transfer reproduces the paper's Table V scenario: a model trained on one
// co-authorship dataset (the DBLP analog) reconstructs *different*
// datasets from the same domain (the MAG analogs) without retraining — the
// transferability claim of the paper. The three targets are reconstructed
// as one concurrent batch through ReconstructBatch.
//
// Run with: go run ./examples/transfer
package main

import (
	"context"
	"fmt"

	"marioh"
)

func main() {
	ctx := context.Background()
	srcDS, err := marioh.GenerateDataset("dblp", 1)
	if err != nil {
		panic(err)
	}
	src := srcDS.Source.Reduced()
	fmt.Printf("training on dblp analog (%d hyperedges)\n", src.NumUnique())

	// One trained Reconstructor serves every same-domain target.
	r, err := marioh.New(marioh.WithSeed(1), marioh.WithParallelism(3))
	if err != nil {
		panic(err)
	}
	if _, err := r.Train(ctx, src.Project(), src); err != nil {
		panic(err)
	}

	names := []string{"mag-history", "mag-topcs", "mag-geology"}
	var truths []*marioh.Hypergraph
	var targets []*marioh.Graph
	for _, name := range names {
		tgtDS, err := marioh.GenerateDataset(name, 101)
		if err != nil {
			panic(err)
		}
		tgt := tgtDS.Target.Reduced()
		truths = append(truths, tgt)
		targets = append(targets, tgt.Project())
	}

	results, err := r.ReconstructBatch(ctx, targets)
	if err != nil {
		panic(err)
	}
	for i, res := range results {
		fmt.Printf("  dblp -> %-12s Jaccard = %.4f (%d hyperedges)\n",
			names[i], marioh.Jaccard(truths[i], res.Hypergraph), truths[i].NumUnique())
	}
}
