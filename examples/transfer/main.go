// Transfer reproduces the paper's Table V scenario: a model trained on one
// co-authorship dataset (the DBLP analog) reconstructs a *different*
// dataset from the same domain (the MAG-History analog) without
// retraining — the transferability claim of the paper.
//
// Run with: go run ./examples/transfer
package main

import (
	"fmt"

	"marioh"
)

func main() {
	srcDS, err := marioh.GenerateDataset("dblp", 1)
	if err != nil {
		panic(err)
	}
	src := srcDS.Source.Reduced()
	fmt.Printf("training on dblp analog (%d hyperedges)\n", src.NumUnique())
	model := marioh.TrainModel(src.Project(), src, marioh.TrainOptions{Seed: 1})

	for _, target := range []string{"mag-history", "mag-topcs", "mag-geology"} {
		tgtDS, err := marioh.GenerateDataset(target, 101)
		if err != nil {
			panic(err)
		}
		tgt := tgtDS.Target.Reduced()
		res := marioh.Reconstruct(tgt.Project(), model, marioh.Options{Seed: 1})
		fmt.Printf("  dblp -> %-12s Jaccard = %.4f (%d hyperedges)\n",
			target, marioh.Jaccard(tgt, res.Hypergraph), tgt.NumUnique())
	}
}
