// Storage demonstrates the paper's storage argument for hypergraph
// reconstruction: a clique of N nodes costs N(N−1)/2 weighted edges in the
// projected graph but only N node ids as a hyperedge, so on datasets with
// genuine higher-order structure a hypergraph is a more compact
// representation of the same information. The last column shows that the
// savings are *realizable*: it serializes the hypergraph MARIOH actually
// reconstructs from the projection, via the Pipeline API.
//
// The models themselves are storable too: after the table, the example
// round-trips the last trained classifier through the registry hooks —
// marioh.SaveModel → marioh.LoadModel → (*Reconstructor).SetModel, the
// exact path the mariohd model registry uses — and verifies the restored
// model reconstructs the same bytes.
//
// Run with: go run ./examples/storage
package main

import (
	"bytes"
	"context"
	"fmt"

	"marioh"
)

// countWriter counts serialized bytes without storing them.
type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

func bytesOf(write func(*countWriter) error) int {
	var cw countWriter
	if err := write(&cw); err != nil {
		panic(err)
	}
	return cw.n
}

func main() {
	ctx := context.Background()
	fmt.Printf("%-12s %12s %11s %11s %9s\n", "dataset", "graph bytes", "truth bytes", "rec bytes", "savings")
	var lastModel *marioh.Model
	var lastTarget *marioh.Graph
	var lastRec string
	for _, name := range []string{"enron", "pschool", "hschool", "dblp", "eu"} {
		r, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(25))
		if err != nil {
			panic(err)
		}
		pr, err := r.Pipeline(ctx, name)
		if err != nil {
			panic(err)
		}
		tgt := pr.Dataset.Target.Reduced()
		gBytes := bytesOf(func(w *countWriter) error { return tgt.Project().Write(w) })
		hBytes := bytesOf(func(w *countWriter) error { return tgt.Write(w) })
		recBytes := bytesOf(func(w *countWriter) error { return pr.Result.Hypergraph.Write(w) })
		savings := 100 * (1 - float64(recBytes)/float64(gBytes))
		fmt.Printf("%-12s %12d %11d %11d %8.1f%%\n", name, gBytes, hBytes, recBytes, savings)

		lastModel, lastTarget = pr.Model, tgt.Project()
		var buf bytes.Buffer
		if err := pr.Result.Hypergraph.Write(&buf); err != nil {
			panic(err)
		}
		lastRec = buf.String()
	}
	fmt.Println("\npositive savings = the reconstruction stores the same interactions in less space")

	// Round-trip the last classifier through the registry save/load hooks
	// and show the restored model reproduces the reconstruction exactly.
	var stored bytes.Buffer
	if err := marioh.SaveModel(&stored, lastModel); err != nil {
		panic(err)
	}
	modelBytes := stored.Len()
	restored, err := marioh.LoadModel(&stored)
	if err != nil {
		panic(err)
	}
	r, err := marioh.New(marioh.WithSeed(1))
	if err != nil {
		panic(err)
	}
	if err := r.SetModel(restored); err != nil {
		panic(err)
	}
	res, err := r.Reconstruct(ctx, lastTarget)
	if err != nil {
		panic(err)
	}
	var again bytes.Buffer
	if err := res.Hypergraph.Write(&again); err != nil {
		panic(err)
	}
	fmt.Printf("\nmodel round-trip (SaveModel -> LoadModel -> SetModel): %d model bytes, "+
		"reconstruction identical: %v\n", modelBytes, again.String() == lastRec)
}
