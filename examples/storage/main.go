// Storage demonstrates the paper's storage argument for hypergraph
// reconstruction: a clique of N nodes costs N(N−1)/2 weighted edges in the
// projected graph but only N node ids as a hyperedge, so on datasets with
// genuine higher-order structure a hypergraph is a more compact
// representation of the same information. The last column shows that the
// savings are *realizable*: it serializes the hypergraph MARIOH actually
// reconstructs from the projection, via the Pipeline API.
//
// Run with: go run ./examples/storage
package main

import (
	"context"
	"fmt"

	"marioh"
)

// countWriter counts serialized bytes without storing them.
type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

func bytesOf(write func(*countWriter) error) int {
	var cw countWriter
	if err := write(&cw); err != nil {
		panic(err)
	}
	return cw.n
}

func main() {
	ctx := context.Background()
	fmt.Printf("%-12s %12s %11s %11s %9s\n", "dataset", "graph bytes", "truth bytes", "rec bytes", "savings")
	for _, name := range []string{"enron", "pschool", "hschool", "dblp", "eu"} {
		r, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(25))
		if err != nil {
			panic(err)
		}
		pr, err := r.Pipeline(ctx, name)
		if err != nil {
			panic(err)
		}
		tgt := pr.Dataset.Target.Reduced()
		gBytes := bytesOf(func(w *countWriter) error { return tgt.Project().Write(w) })
		hBytes := bytesOf(func(w *countWriter) error { return tgt.Write(w) })
		recBytes := bytesOf(func(w *countWriter) error { return pr.Result.Hypergraph.Write(w) })
		savings := 100 * (1 - float64(recBytes)/float64(gBytes))
		fmt.Printf("%-12s %12d %11d %11d %8.1f%%\n", name, gBytes, hBytes, recBytes, savings)
	}
	fmt.Println("\npositive savings = the reconstruction stores the same interactions in less space")
}
