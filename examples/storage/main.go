// Storage demonstrates the paper's storage argument for hypergraph
// reconstruction: a clique of N nodes costs N(N−1)/2 weighted edges in the
// projected graph but only N node ids as a hyperedge, so on datasets with
// genuine higher-order structure the reconstructed hypergraph is a more
// compact representation of the same information.
//
// Run with: go run ./examples/storage
package main

import (
	"fmt"

	"marioh"
)

// countWriter counts serialized bytes without storing them.
type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

func main() {
	fmt.Printf("%-12s %14s %16s %9s\n", "dataset", "graph bytes", "hypergraph bytes", "savings")
	for _, name := range []string{"enron", "pschool", "hschool", "dblp", "eu"} {
		ds, err := marioh.GenerateDataset(name, 1)
		if err != nil {
			panic(err)
		}
		h := ds.Full
		var gBytes, hBytes countWriter
		if err := h.Project().Write(&gBytes); err != nil {
			panic(err)
		}
		if err := h.Write(&hBytes); err != nil {
			panic(err)
		}
		savings := 100 * (1 - float64(hBytes.n)/float64(gBytes.n))
		fmt.Printf("%-12s %14d %16d %8.1f%%\n", name, gBytes.n, hBytes.n, savings)
	}
	fmt.Println("\npositive savings = the hypergraph stores the same interactions in less space")
}
