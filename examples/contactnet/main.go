// Contactnet demonstrates the downstream value of reconstruction
// (the paper's Q3): on a school contact-network analog with known class
// labels, spectral clustering on the hypergraph MARIOH reconstructs beats
// clustering on the raw projected graph, approaching the ground-truth
// hypergraph's quality (Table VII).
//
// Run with: go run ./examples/contactnet
package main

import (
	"context"
	"fmt"

	"marioh"
)

func main() {
	r, err := marioh.New(marioh.WithSeed(1))
	if err != nil {
		panic(err)
	}
	pr, err := r.Pipeline(context.Background(), "pschool")
	if err != nil {
		panic(err)
	}
	ds := pr.Dataset
	tgt := ds.Target.Reduced()
	gT := tgt.Project()
	fmt.Printf("primary-school analog: %d students, %d classes, %d contact groups\n",
		gT.NumNodes(), numClasses(ds.Labels), tgt.NumUnique())
	fmt.Printf("reconstruction Jaccard = %.3f\n", pr.Jaccard)

	fmt.Println("\nspectral clustering NMI against class labels:")
	fmt.Printf("  projected graph          %.4f\n", marioh.ClusteringNMI(gT, nil, ds.Labels, 1))
	fmt.Printf("  MARIOH reconstruction    %.4f\n", marioh.ClusteringNMI(gT, pr.Result.Hypergraph, ds.Labels, 1))
	fmt.Printf("  ground-truth hypergraph  %.4f\n", marioh.ClusteringNMI(gT, tgt, ds.Labels, 1))
}

func numClasses(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
