// Coauthorship reproduces the paper's Fig. 2 case study on the DBLP
// analog: train MARIOH on the earlier half of a co-authorship hypergraph,
// reconstruct the later half from its projection, then zoom into the ego
// sub-hypergraph of the most prolific author and show the exact recovery
// that Fig. 2 illustrates for Jure Leskovec's ego network.
//
// Run with: go run ./examples/coauthorship
package main

import (
	"fmt"

	"marioh"
)

func main() {
	ds, err := marioh.GenerateDataset("dblp", 1)
	if err != nil {
		panic(err)
	}
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	fmt.Printf("co-authorship analog: %d source papers, %d target papers\n",
		src.NumUnique(), tgt.NumUnique())

	model := marioh.TrainModel(src.Project(), src, marioh.TrainOptions{Seed: 1})
	res := marioh.Reconstruct(tgt.Project(), model, marioh.Options{Seed: 1})
	fmt.Printf("whole-graph Jaccard = %.4f\n", marioh.Jaccard(tgt, res.Hypergraph))

	// Ego case study: the most prolific author in the target half.
	deg := tgt.NodeDegrees()
	hub := 0
	for u, d := range deg {
		if d > deg[hub] {
			hub = u
		}
	}
	egoTruth := tgt.Ego(hub)
	egoRec := res.Hypergraph.Ego(hub)
	fmt.Printf("\nego sub-hypergraph of author %d (%d papers):\n", hub, egoTruth.NumUnique())
	for _, e := range egoTruth.UniqueEdges() {
		marker := "MISSED"
		if egoRec.Contains(e) {
			marker = "recovered"
		}
		fmt.Printf("  %v  %s\n", e, marker)
	}
	fmt.Printf("ego Jaccard       = %.3f\n", marioh.Jaccard(egoTruth, egoRec))
	fmt.Printf("ego multi-Jaccard = %.3f\n", marioh.MultiJaccard(egoTruth, egoRec))
}
