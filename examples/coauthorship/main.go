// Coauthorship reproduces the paper's Fig. 2 case study on the DBLP
// analog: run the full generate→train→reconstruct→evaluate pipeline on the
// co-authorship hypergraph, then zoom into the ego sub-hypergraph of the
// most prolific author and show the exact recovery that Fig. 2 illustrates
// for Jure Leskovec's ego network.
//
// Run with: go run ./examples/coauthorship
package main

import (
	"context"
	"fmt"

	"marioh"
)

func main() {
	r, err := marioh.New(marioh.WithSeed(1))
	if err != nil {
		panic(err)
	}

	// Pipeline runs the end-to-end protocol in one call: generate the
	// dataset, train on the earlier half, reconstruct the later half from
	// its projection alone, and evaluate.
	pr, err := r.Pipeline(context.Background(), "dblp")
	if err != nil {
		panic(err)
	}
	src, tgt := pr.Dataset.Source.Reduced(), pr.Dataset.Target.Reduced()
	fmt.Printf("co-authorship analog: %d source papers, %d target papers\n",
		src.NumUnique(), tgt.NumUnique())
	fmt.Printf("whole-graph Jaccard = %.4f\n", pr.Jaccard)

	// Ego case study: the most prolific author in the target half.
	deg := tgt.NodeDegrees()
	hub := 0
	for u, d := range deg {
		if d > deg[hub] {
			hub = u
		}
	}
	egoTruth := tgt.Ego(hub)
	egoRec := pr.Result.Hypergraph.Ego(hub)
	fmt.Printf("\nego sub-hypergraph of author %d (%d papers):\n", hub, egoTruth.NumUnique())
	for _, e := range egoTruth.UniqueEdges() {
		marker := "MISSED"
		if egoRec.Contains(e) {
			marker = "recovered"
		}
		fmt.Printf("  %v  %s\n", e, marker)
	}
	fmt.Printf("ego Jaccard       = %.3f\n", marioh.Jaccard(egoTruth, egoRec))
	fmt.Printf("ego multi-Jaccard = %.3f\n", marioh.MultiJaccard(egoTruth, egoRec))
}
