// Client demonstrates serving MARIOH over HTTP: it boots a mariohd
// server in-process on a random port, then drives the full /v1 surface
// through the Go client — async training into the model registry, a
// synchronous reconstruction, an async batch with SSE progress, and the
// determinism guarantee (the served bytes equal a direct library call).
//
// Run with: go run ./examples/client
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"marioh"
	"marioh/internal/server"
)

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func text(write func(*bytes.Buffer) error) string {
	var buf bytes.Buffer
	must(write(&buf))
	return buf.String()
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Boot mariohd in-process on a random port. The server's lifetime
	// context must outlive ctx (which triggers the graceful drain), so
	// the in-flight work the drain waits for is not hard-stopped.
	root, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	srv, err := server.New(root, server.Config{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Logf:    func(string, ...any) {}, // keep the example's output clean
	})
	must(err)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	base := "http://" + srv.Addr()
	c := server.NewClient(base)
	fmt.Println("mariohd listening on", base)

	h, err := c.Health(ctx)
	must(err)
	fmt.Printf("health: %s (v%s, %d workers)\n", h.Status, h.Version, h.Workers)

	// Train on the source half of a generated dataset, server-side.
	ds, err := marioh.GenerateDataset("hosts", 1)
	must(err)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	job, err := c.Train(ctx, server.TrainRequest{
		Source:  text(func(b *bytes.Buffer) error { return src.Write(b) }),
		SaveAs:  "hosts-v1",
		Options: server.OptionSpec{Seed: 1, Epochs: 25},
	})
	must(err)
	job, err = c.WaitJob(ctx, job.ID, 50*time.Millisecond)
	must(err)
	var trained server.TrainResult
	must(server.JobResult(job, &trained))
	fmt.Printf("trained %q (%d positives, %.0f ms)\n",
		trained.Model, trained.Positives, 1000*(trained.SampleSeconds+trained.TrainSeconds))

	// Synchronous reconstruction of the target projection.
	target := text(func(b *bytes.Buffer) error { return tgt.Project().Write(b) })
	resp, _, err := c.Reconstruct(ctx, server.ReconstructRequest{
		Model: "hosts-v1", Target: target, Options: server.OptionSpec{Seed: 1},
	})
	must(err)
	fmt.Printf("sync reconstruct: %d unique hyperedges in %d rounds (job %s)\n",
		resp.Result.Unique, resp.Result.Rounds, resp.JobID)

	// Determinism: the served bytes equal the same run through the library.
	model, err := c.PullModel(ctx, "hosts-v1")
	must(err)
	m, err := marioh.LoadModel(bytes.NewReader(model))
	must(err)
	lib, err := marioh.New(marioh.WithSeed(1), marioh.WithModel(m))
	must(err)
	parsed, err := marioh.ReadGraph(strings.NewReader(target))
	must(err)
	res, err := lib.Reconstruct(ctx, parsed)
	must(err)
	libText := text(func(b *bytes.Buffer) error { return res.Hypergraph.Write(b) })
	fmt.Println("byte-identical to the library call:", libText == resp.Result.Hypergraph)

	// Async batch over two targets, watching SSE progress while it runs.
	batch, err := c.ReconstructBatch(ctx, server.ReconstructRequest{
		Model: "hosts-v1", Targets: []string{target, target},
		Options: server.OptionSpec{Seed: 1, Parallelism: 2},
	})
	must(err)
	events := 0
	sse, err := http.Get(base + "/v1/jobs/" + batch.ID + "/events")
	must(err)
	sc := bufio.NewScanner(sse.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: progress") {
			events++
		}
	}
	sse.Body.Close()
	batch, err = c.WaitJob(ctx, batch.ID, 50*time.Millisecond)
	must(err)
	var batchResult server.BatchResult
	must(server.JobResult(batch, &batchResult))
	fmt.Printf("batch: %d results, %d SSE progress events\n", len(batchResult.Results), events)

	// Graceful shutdown: cancel the serve context and wait for the drain.
	cancel()
	must(<-done)
	fmt.Println("drained and shut down cleanly")
}
