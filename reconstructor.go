package marioh

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"marioh/internal/core"
	"marioh/internal/eval"
	"marioh/internal/service"
)

// Version identifies this build of the marioh module (printed by
// `mariohctl version`).
const Version = "0.2.0"

// Progress is a per-round snapshot of a reconstruction run: round number,
// threshold θ, residual edge count and accepted hyperedge occurrences. For
// batch runs, Target is the index of the graph being reconstructed.
type Progress = core.Progress

// ProgressFunc observes reconstruction progress; see WithProgress.
type ProgressFunc = core.ProgressFunc

// ErrNoModel is returned by Reconstruct and ReconstructBatch when the
// Reconstructor has neither been trained nor given a model via WithModel.
var ErrNoModel = errors.New("marioh: no model (call Train first or construct with WithModel)")

// config is the resolved functional-option state of a Reconstructor.
//
// Float fields use internal/core's sentinel encoding (0 = paper default,
// negative = explicit zero); the With* options perform the encoding so
// users always pass plain values.
type config struct {
	variant     service.Variant
	featurizer  Featurizer // nil = the variant's featurizer
	thetaInit   float64
	r           float64
	alpha       float64
	maxRounds   int
	cliqueLimit int
	seed        int64
	epochs      int
	hidden      []int
	supervision float64
	negRatio    float64
	parallelism int
	progress    ProgressFunc
	model       *Model
	sharding    *ShardingOptions
}

func defaultConfig() config {
	v, _ := service.VariantByName("marioh")
	return config{variant: v, supervision: 1, negRatio: 1}
}

// Option configures a Reconstructor; see the With* constructors. Options
// validate eagerly, so New fails fast on unknown names or out-of-range
// values.
type Option func(*config) error

// encodeNonNeg maps a user-supplied non-negative value to core's sentinel
// encoding, where the zero value of an options struct means "default".
func encodeNonNeg(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

// WithVariant selects a registered algorithm variant: "marioh" (the
// default), or the paper's ablations "marioh-m", "marioh-f", "marioh-b".
func WithVariant(name string) Option {
	return func(c *config) error {
		v, ok := service.VariantByName(name)
		if !ok {
			return fmt.Errorf("marioh: unknown variant %q (have %v)", name, service.VariantNames())
		}
		c.variant = v
		return nil
	}
}

// WithFeaturizer selects the clique featurizer by registry name
// ("marioh", "marioh-nomhh", "shyre-count", "shyre-motif", or a custom
// registration), overriding the variant's choice.
func WithFeaturizer(name string) Option {
	return func(c *config) error {
		f, ok := service.FeaturizerByName(name)
		if !ok {
			return fmt.Errorf("marioh: unknown featurizer %q (have %v)", name, service.FeaturizerNames())
		}
		c.featurizer = f
		return nil
	}
}

// WithCustomFeaturizer installs a featurizer implementation directly,
// bypassing the registry.
func WithCustomFeaturizer(f Featurizer) Option {
	return func(c *config) error {
		if f == nil {
			return errors.New("marioh: nil featurizer")
		}
		c.featurizer = f
		return nil
	}
}

// WithThetaInit sets the initial classification threshold θ_init ∈ [0, 1].
// Default 0.9. Zero is honored as an explicit zero.
func WithThetaInit(v float64) Option {
	return func(c *config) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("marioh: θ_init %v out of [0, 1]", v)
		}
		c.thetaInit = encodeNonNeg(v)
		return nil
	}
}

// WithR sets the negative prediction processing ratio r ∈ [0, 100]
// percent. Default 40. Zero is honored as an explicit zero.
func WithR(v float64) Option {
	return func(c *config) error {
		if v < 0 || v > 100 {
			return fmt.Errorf("marioh: r %v out of [0, 100]", v)
		}
		c.r = encodeNonNeg(v)
		return nil
	}
}

// WithAlpha sets the threshold adjust ratio α ≥ 0. Default 1/20. Zero is
// honored as an explicit zero, freezing θ at θ_init.
func WithAlpha(v float64) Option {
	return func(c *config) error {
		if v < 0 {
			return fmt.Errorf("marioh: α %v must be ≥ 0", v)
		}
		c.alpha = encodeNonNeg(v)
		return nil
	}
}

// WithMaxRounds bounds the outer reconstruction loop. Default 10000.
func WithMaxRounds(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("marioh: max rounds %d must be > 0", n)
		}
		c.maxRounds = n
		return nil
	}
}

// WithMaxCliqueLimit caps per-round maximal-clique enumeration; 0 means
// unlimited (the default).
func WithMaxCliqueLimit(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("marioh: clique limit %d must be ≥ 0", n)
		}
		c.cliqueLimit = n
		return nil
	}
}

// WithSeed fixes the random seed used for training and reconstruction;
// runs with equal seeds (and inputs) are bit-for-bit reproducible.
func WithSeed(s int64) Option {
	return func(c *config) error {
		c.seed = s
		return nil
	}
}

// WithEpochs sets the classifier's training epochs. Default 60.
func WithEpochs(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("marioh: epochs %d must be > 0", n)
		}
		c.epochs = n
		return nil
	}
}

// WithHidden sets the classifier MLP's hidden layer widths. Default
// [32, 16].
func WithHidden(widths ...int) Option {
	return func(c *config) error {
		for _, w := range widths {
			if w <= 0 {
				return fmt.Errorf("marioh: hidden width %d must be > 0", w)
			}
		}
		c.hidden = append([]int(nil), widths...)
		return nil
	}
}

// WithSupervisionRatio trains on only this fraction (0, 1] of the source
// hyperedges (the paper's semi-supervised setting). Default 1.
func WithSupervisionRatio(v float64) Option {
	return func(c *config) error {
		if v <= 0 || v > 1 {
			return fmt.Errorf("marioh: supervision ratio %v out of (0, 1]", v)
		}
		c.supervision = v
		return nil
	}
}

// WithNegativeRatio samples this many negatives per positive during
// training. Default 1.
func WithNegativeRatio(v float64) Option {
	return func(c *config) error {
		if v <= 0 {
			return fmt.Errorf("marioh: negative ratio %v must be > 0", v)
		}
		c.negRatio = v
		return nil
	}
}

// WithParallelism bounds the reconstructor's worker fan-out: the
// ReconstructBatch pool, and the parallel round engine inside every
// reconstruction (clique enumeration, the fused enumerate→score pipeline,
// and per-component search — see README "Parallel round engine"). 0 (the
// default) uses GOMAXPROCS; 1 forces the fully serial reference pipeline.
// Output bytes are identical at every setting.
func WithParallelism(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("marioh: parallelism %d must be ≥ 0", n)
		}
		c.parallelism = n
		return nil
	}
}

// WithProgress subscribes fn to per-round progress events of every
// Reconstruct / ReconstructBatch / Pipeline call. Events are delivered
// sequentially (batch runs serialize them), so fn needs no locking, but it
// runs on the reconstruction path and must be fast.
func WithProgress(fn ProgressFunc) Option {
	return func(c *config) error {
		c.progress = fn
		return nil
	}
}

// ShardingOptions configure the shard-parallel reconstruction engine; see
// WithSharding.
type ShardingOptions struct {
	// Shards is the number of shards the target graph is partitioned
	// into; 0 uses GOMAXPROCS. The reconstruction is byte-identical for
	// every shard count, so this is purely a throughput knob.
	Shards int
	// TargetEdges is the shard size target: connected components owning
	// more edges are split along their bridges (the only intra-component
	// cut that preserves exactness). 0 derives the target from the edge
	// count and shard count.
	TargetEdges int
	// Workers bounds how many shards reconstruct concurrently; 0 uses
	// GOMAXPROCS. Ignored when Executor is set.
	Workers int
	// Executor, when non-nil, runs the per-shard tasks on an external
	// worker pool (e.g. a server job queue) instead of the built-in one.
	// It must execute every task exactly once and return only when all
	// of them finished.
	Executor func(tasks []func())
}

// WithSharding routes Reconstruct (and each target of ReconstructBatch)
// through the shard-parallel engine: the target graph is deterministically
// partitioned — connected components first, oversized components split
// along low-multiplicity bridges — and the shards are reconstructed
// concurrently and merged. The output is byte-identical to the unsharded
// pipeline for any shard count (asserted by the shard-equivalence tests
// and CI job); Progress events additionally carry the shard index. The
// guarantee assumes the built-in featurizers — a custom featurizer that
// reads graph state beyond a clique's component breaks it — and does not
// extend to WithMaxCliqueLimit, whose global budget is applied per shard.
func WithSharding(o ShardingOptions) Option {
	return func(c *config) error {
		if o.Shards < 0 {
			return fmt.Errorf("marioh: shard count %d must be ≥ 0", o.Shards)
		}
		if o.TargetEdges < 0 {
			return fmt.Errorf("marioh: shard target %d must be ≥ 0", o.TargetEdges)
		}
		if o.Workers < 0 {
			return fmt.Errorf("marioh: shard workers %d must be ≥ 0", o.Workers)
		}
		c.sharding = &o
		return nil
	}
}

// WithModel attaches a pre-trained model (e.g. one restored via
// LoadModel), so Reconstruct can be called without Train.
func WithModel(m *Model) Option {
	return func(c *config) error {
		if m == nil {
			return errors.New("marioh: nil model")
		}
		c.model = m
		return nil
	}
}

// Reconstructor is MARIOH as a long-lived, configurable service: construct
// one with New, train it once (or attach a saved model), then reconstruct
// any number of target graphs — sequentially, in cancellable batches, or
// as a full generate→train→reconstruct→evaluate pipeline.
//
// A Reconstructor is safe for concurrent use once trained: Train swaps the
// model under a lock, and every Reconstruct* method only reads it.
type Reconstructor struct {
	cfg config

	mu    sync.RWMutex
	model *Model // guarded by mu
}

// New builds a Reconstructor from functional options. The zero-option call
// New() is the paper's exact configuration (multiplicity-aware features,
// θ_init = 0.9, r = 40 %, α = 1/20, a [32, 16] MLP trained 60 epochs).
func New(opts ...Option) (*Reconstructor, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return &Reconstructor{cfg: cfg, model: cfg.model}, nil
}

// trainOptions resolves the config into internal/core training options.
func (r *Reconstructor) trainOptions() core.TrainOptions {
	feat := r.cfg.featurizer
	if feat == nil {
		feat, _ = service.FeaturizerByName(r.cfg.variant.Featurizer)
	}
	return core.TrainOptions{
		Featurizer:       feat,
		Hidden:           r.cfg.hidden,
		Epochs:           r.cfg.epochs,
		SupervisionRatio: r.cfg.supervision,
		NegativeRatio:    r.cfg.negRatio,
		Seed:             r.cfg.seed,
	}
}

// reconstructOptions resolves the config into internal/core reconstruction
// options; progress overrides the configured callback when non-nil.
func (r *Reconstructor) reconstructOptions(progress ProgressFunc) core.Options {
	if progress == nil {
		progress = r.cfg.progress
	}
	return core.Options{
		ThetaInit:            r.cfg.thetaInit,
		R:                    r.cfg.r,
		Alpha:                r.cfg.alpha,
		DisableFiltering:     r.cfg.variant.DisableFiltering,
		DisableBidirectional: r.cfg.variant.DisableBidirectional,
		MaxRounds:            r.cfg.maxRounds,
		MaxCliqueLimit:       r.cfg.cliqueLimit,
		Seed:                 r.cfg.seed,
		Parallelism:          r.cfg.parallelism,
		Progress:             progress,
	}
}

// Train fits the multiplicity-aware classifier on a source projected graph
// and its ground-truth hypergraph, stores it for subsequent Reconstruct
// calls, and returns it. Cancelling ctx aborts between sampling and
// optimization stages and at epoch granularity, returning ctx.Err()
// without replacing a previously stored model.
func (r *Reconstructor) Train(ctx context.Context, g *Graph, h *Hypergraph) (*Model, error) {
	m, err := core.TrainContext(ctx, g, h, r.trainOptions())
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.model = m
	r.mu.Unlock()
	return m, nil
}

// Model returns the trained (or attached) model, or nil.
func (r *Reconstructor) Model() *Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.model
}

// SetModel attaches or replaces the Reconstructor's model after
// construction, the hook model registries (e.g. the mariohd server's) use
// to swap stored classifiers into a configured service. It is safe to call
// concurrently with Reconstruct*; in-flight runs keep the model they
// started with.
func (r *Reconstructor) SetModel(m *Model) error {
	if m == nil {
		return errors.New("marioh: nil model")
	}
	r.mu.Lock()
	r.model = m
	r.mu.Unlock()
	return nil
}

// Reconstruct runs MARIOH on one target projected graph — through the
// shard-parallel engine when WithSharding is configured. Cancelling ctx
// stops the run between rounds and mid-search; the partial result built so
// far is returned together with ctx.Err().
func (r *Reconstructor) Reconstruct(ctx context.Context, g *Graph) (*Result, error) {
	m := r.Model()
	if m == nil {
		return nil, ErrNoModel
	}
	return r.reconstruct(ctx, g, m, r.reconstructOptions(nil))
}

// reconstruct dispatches one target to the serial pipeline or the shard
// orchestrator, per the configured sharding options.
func (r *Reconstructor) reconstruct(ctx context.Context, g *Graph, m *Model, opts core.Options) (*Result, error) {
	if s := r.cfg.sharding; s != nil {
		return core.ReconstructSharded(ctx, g, m, opts, core.ShardOptions{
			Shards:      s.Shards,
			TargetEdges: s.TargetEdges,
			Workers:     s.Workers,
			Executor:    s.Executor,
		})
	}
	return core.ReconstructContext(ctx, g, m, opts)
}

// ReconstructBatch reconstructs every target graph using a worker pool of
// WithParallelism size (GOMAXPROCS by default). Results are positionally
// aligned with targets. Each target is reconstructed with the same seed a
// lone Reconstruct call would use, so a batch run is reproducibly equal to
// len(targets) sequential runs regardless of parallelism.
//
// On cancellation the remaining targets are abandoned, in-flight ones stop
// mid-round, and the first error is returned alongside the partial results
// (finished entries stay valid; unstarted ones are nil).
func (r *Reconstructor) ReconstructBatch(ctx context.Context, targets []*Graph) ([]*Result, error) {
	m := r.Model()
	if m == nil {
		return nil, ErrNoModel
	}
	results := make([]*Result, len(targets))
	if len(targets) == 0 {
		return results, ctx.Err()
	}
	workers := r.cfg.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Serialize progress events across workers and stamp the target index,
	// so one WithProgress callback observes the whole batch without locks.
	var progressMu sync.Mutex
	progressFor := func(target int) ProgressFunc {
		fn := r.cfg.progress
		if fn == nil {
			return nil
		}
		return func(p Progress) {
			p.Target = target
			progressMu.Lock()
			defer progressMu.Unlock()
			fn(p)
		}
	}

	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				opts := r.reconstructOptions(progressFor(i))
				res, err := r.reconstruct(ctx, targets[i], m, opts)
				results[i] = res
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
feed:
	for i := range targets {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return results, firstErr
}

// PipelineResult is the outcome of a full Pipeline run.
type PipelineResult struct {
	// Dataset is the generated dataset; training and evaluation use
	// Reduced (multiplicity-1) copies of its halves, the paper's standard
	// protocol.
	Dataset *Dataset
	// Model is the classifier trained on the source half.
	Model *Model
	// Result is the reconstruction of the target half's projection.
	Result *Result
	// Jaccard and MultiJaccard score the reconstruction against the target
	// half.
	Jaccard      float64
	MultiJaccard float64
}

// Pipeline runs the paper's end-to-end protocol on a named synthetic
// dataset: generate it with the configured seed, train on the (reduced)
// source half, reconstruct the target half from its projection alone, and
// evaluate. The trained model is stored for later Reconstruct calls.
func (r *Reconstructor) Pipeline(ctx context.Context, dataset string) (*PipelineResult, error) {
	ds, err := GenerateDataset(dataset, r.cfg.seed)
	if err != nil {
		return nil, err
	}
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	model, err := r.Train(ctx, src.Project(), src)
	if err != nil {
		return nil, err
	}
	res, err := r.Reconstruct(ctx, tgt.Project())
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Dataset:      ds,
		Model:        model,
		Result:       res,
		Jaccard:      eval.Jaccard(tgt, res.Hypergraph),
		MultiJaccard: eval.MultiJaccard(tgt, res.Hypergraph),
	}, nil
}

// VariantNames lists the algorithm variants WithVariant accepts.
func VariantNames() []string { return service.VariantNames() }

// FeaturizerNames lists the featurizers WithFeaturizer accepts, including
// runtime registrations made via RegisterFeaturizer.
func FeaturizerNames() []string { return service.FeaturizerNames() }

// RegisterFeaturizer adds a custom featurizer to the registry under
// f.Name(), making it resolvable by WithFeaturizer and the CLI. It fails
// on empty or duplicate names.
func RegisterFeaturizer(f Featurizer) error { return service.RegisterFeaturizer(f) }
