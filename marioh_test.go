package marioh_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"marioh"
)

// Example demonstrates the documented package-level flow: project a
// hypergraph, train a Reconstructor on it, and reconstruct the hypergraph
// from the projection alone.
func Example() {
	truth := marioh.NewHypergraph(6)
	truth.Add([]int{0, 1, 2})
	truth.Add([]int{3, 4})
	truth.Add([]int{4, 5})

	ctx := context.Background()
	g := truth.Project()
	r, err := marioh.New(marioh.WithSeed(1))
	if err != nil {
		panic(err)
	}
	if _, err := r.Train(ctx, g, truth); err != nil {
		panic(err)
	}
	res, err := r.Reconstruct(ctx, g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Jaccard %.2f\n", marioh.Jaccard(truth, res.Hypergraph))
	// Output: Jaccard 1.00
}

// TestPublicAPIEndToEnd exercises the deprecated free-function flow, which
// must keep working unchanged.
func TestPublicAPIEndToEnd(t *testing.T) {
	truth := marioh.NewHypergraph(9)
	truth.AddMult([]int{0, 1}, 2)
	truth.Add([]int{0, 1, 2})
	truth.Add([]int{3, 4, 5})
	truth.Add([]int{5, 6})
	truth.Add([]int{6, 7, 8})

	g := truth.Project()
	model := marioh.TrainModel(g, truth, marioh.TrainOptions{Seed: 1})
	res := marioh.Reconstruct(g, model, marioh.Options{Seed: 1})
	if j := marioh.Jaccard(truth, res.Hypergraph); j < 0.99 {
		t.Fatalf("Jaccard = %v", j)
	}
	if mj := marioh.MultiJaccard(truth, res.Hypergraph); mj < 0.99 {
		t.Fatalf("multi-Jaccard = %v", mj)
	}
}

func TestGenerateDatasetAPI(t *testing.T) {
	names := marioh.DatasetNames()
	if len(names) == 0 {
		t.Fatal("no datasets")
	}
	ds, err := marioh.GenerateDataset("crime", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Source.NumUnique() == 0 || ds.Target.NumUnique() == 0 {
		t.Fatal("empty split")
	}
	if _, err := marioh.GenerateDataset("unknown", 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestReadersAPI(t *testing.T) {
	h, err := marioh.ReadHypergraph(strings.NewReader("0 1 2\n3 4 # 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumTotal() != 3 {
		t.Fatalf("NumTotal = %d", h.NumTotal())
	}
	g, err := marioh.ReadGraph(strings.NewReader("0 1 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != 5 {
		t.Fatal("graph reader lost weight")
	}
}

func TestDownstreamAPI(t *testing.T) {
	h := marioh.NewHypergraph(10)
	h.Add([]int{0, 1, 2, 3, 4})
	h.Add([]int{5, 6, 7, 8, 9})
	h.Add([]int{0, 1, 2})
	h.Add([]int{5, 6, 7})
	g := h.Project()
	labels := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	if nmi := marioh.ClusteringNMI(g, h, labels, 1); nmi < 0.9 {
		t.Fatalf("NMI = %v", nmi)
	}
	if auc := marioh.LinkPredictionAUC(g, h, 1); auc < 0.5 {
		t.Fatalf("AUC = %v", auc)
	}
}
