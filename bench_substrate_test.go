package marioh_test

import (
	"math/rand"
	"testing"

	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/features"
	"marioh/internal/mlp"
)

// Substrate micro-benchmarks: the adjacency-engine operations that dominate
// per-round reconstruction time (see README "Adjacency engine"). Run with
//
//	go test -run '^$' -bench 'HasEdge|MaximalCliques|ScoreCliques|FeaturesMarioh' -benchmem .
//
// and compare before/after with benchstat. `make bench-json` records a run
// into BENCH_<date>.json.

// benchGraph caches the eu target projection used by the substrate benches.
func benchGraph(b *testing.B) *trainedSetup {
	b.Helper()
	return setup(b, "eu")
}

// BenchmarkHasEdge probes a deterministic mix of present and absent pairs,
// the access pattern of Bron–Kerbosch pivoting and allEdgesPresent checks.
func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b).gT
	edges := g.Edges()
	rng := rand.New(rand.NewSource(7))
	const nPairs = 4096
	us := make([]int, nPairs)
	vs := make([]int, nPairs)
	for i := 0; i < nPairs; i++ {
		if i%2 == 0 { // present pair
			e := edges[rng.Intn(len(edges))]
			us[i], vs[i] = e.U, e.V
		} else { // random (usually absent) pair
			us[i] = rng.Intn(g.NumNodes())
			vs[i] = (us[i] + 1 + rng.Intn(g.NumNodes()-1)) % g.NumNodes()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		j := i % nPairs
		if g.HasEdge(us[j], vs[j]) {
			hits++
		}
	}
	_ = hits
}

// BenchmarkScoreCliques measures the full steady-state scoring pass
// (features + standardize + MLP forward) over one round's maximal cliques.
func BenchmarkScoreCliques(b *testing.B) {
	s := benchGraph(b)
	cliques := s.gT.MaximalCliques(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ScoreCliques(s.gT, s.model, cliques)
	}
}

// BenchmarkFeaturesMarioh isolates the multiplicity-aware featurizer (the
// WeightedDegree / ω / MHH access pattern) on the steady-state scratch
// path used by clique scoring.
func BenchmarkFeaturesMarioh(b *testing.B) {
	g := benchGraph(b).gT
	cliques := g.MaximalCliques(2)
	feat := features.Marioh{}
	var s features.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := cliques[i%len(cliques)]
		features.Compute(feat, &s, g, q, true)
	}
}

// BenchmarkFeaturesShyreMotif covers the common-neighbor-count sharing path
// of the SHyRe-Motif featurizer.
func BenchmarkFeaturesShyreMotif(b *testing.B) {
	g := benchGraph(b).gT
	cliques := g.MaximalCliques(2)
	feat := features.ShyreMotif{}
	var s features.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := cliques[i%len(cliques)]
		features.Compute(feat, &s, g, q, true)
	}
}

// BenchmarkMLPForwardScratch is the steady-state forward pass with reused
// activation buffers, as driven by clique scoring.
func BenchmarkMLPForwardScratch(b *testing.B) {
	net := mlp.New(23, []int{32, 16}, 1)
	x := make([]float64, 23)
	for i := range x {
		x[i] = float64(i)
	}
	var s mlp.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardScratch(x, &s)
	}
}

// BenchmarkDegeneracyOrdering exercises the bucket-queue peel that seeds
// every maximal-clique enumeration.
func BenchmarkDegeneracyOrdering(b *testing.B) {
	g := benchGraph(b).gT
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DegeneracyOrdering()
	}
}

// BenchmarkCommonNeighborCount measures the merge-based intersection size
// used by the SHyRe featurizers.
func BenchmarkCommonNeighborCount(b *testing.B) {
	ds := datasets.MustByName("eu", 1)
	g := ds.Target.Reduced().Project()
	edges := g.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		g.CountCommonNeighbors(e.U, e.V)
	}
}
