// Package marioh_test holds the benchmark harness: one testing.B per table
// and figure of the paper's evaluation section (run the full versions with
// cmd/benchall), plus micro-benchmarks for the substrate operations that
// dominate reconstruction time and the ablation benches called out in
// DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package marioh_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"marioh"
	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/downstream"
	"marioh/internal/experiments"
	"marioh/internal/gcn"
	"marioh/internal/hypergraph"
	"marioh/internal/mlp"
)

// benchCfg keeps per-iteration table runs around a second.
func benchCfg(ds ...string) experiments.RunConfig {
	return experiments.RunConfig{
		Seeds:    []int64{1},
		Timeout:  8 * time.Second,
		Datasets: ds,
		Quick:    true,
	}
}

// ---- Tables -------------------------------------------------------------

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableI(1)
	}
}

func BenchmarkTableII(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableII(cfg)
	}
}

func BenchmarkTableIII(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableIII(cfg)
	}
}

func BenchmarkTableIV(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableIV(cfg)
	}
}

func BenchmarkTableV(b *testing.B) {
	cfg := benchCfg() // Quick mode uses the non-DBLP transfer pairs
	for i := 0; i < b.N; i++ {
		experiments.TableV(cfg)
	}
}

func BenchmarkTableVI(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.TableVI(cfg)
	}
}

func BenchmarkTableVII(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.TableVII(cfg)
	}
}

func BenchmarkTableVIII(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.TableVIII(cfg)
	}
}

func BenchmarkTableIX(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableIX(cfg)
	}
}

// ---- Figures ------------------------------------------------------------

func BenchmarkFig4(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.Fig4(cfg)
	}
}

func BenchmarkFig5(b *testing.B) {
	cfg := benchCfg("crime", "hosts", "directors")
	for i := 0; i < b.N; i++ {
		experiments.Fig5(cfg)
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.Fig6(cfg)
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(cfg)
	}
}

// ---- Core pipeline benches ------------------------------------------------
//
// These exercise the public Reconstructor service API, so regressions in
// the option plumbing and context threading show up here too.

// trainedSetup caches a trained Reconstructor and target graph per dataset.
type trainedSetup struct {
	model *marioh.Model
	gT    *marioh.Graph
}

var setups = map[string]*trainedSetup{}

func setup(b *testing.B, name string) *trainedSetup {
	b.Helper()
	if s, ok := setups[name]; ok {
		return s
	}
	ds := datasets.MustByName(name, 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	r, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(25))
	if err != nil {
		b.Fatal(err)
	}
	model, err := r.Train(context.Background(), src.Project(), src)
	if err != nil {
		b.Fatal(err)
	}
	s := &trainedSetup{model: model, gT: tgt.Project()}
	setups[name] = s
	return s
}

// reconstructor builds a service instance around the cached model.
func (s *trainedSetup) reconstructor(b *testing.B, opts ...marioh.Option) *marioh.Reconstructor {
	b.Helper()
	r, err := marioh.New(append([]marioh.Option{marioh.WithSeed(1), marioh.WithModel(s.model)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func BenchmarkReconstruct(b *testing.B) {
	for _, name := range []string{"crime", "hosts", "eu"} {
		s := setup(b, name)
		r := s.reconstructor(b)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Reconstruct(context.Background(), s.gT); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReconstructBatch measures the worker-pool fan-out over four
// targets against the same batch run sequentially.
func BenchmarkReconstructBatch(b *testing.B) {
	s := setup(b, "hosts")
	targets := []*marioh.Graph{s.gT, s.gT, s.gT, s.gT}
	for _, workers := range []int{1, 4} {
		r := s.reconstructor(b, marioh.WithParallelism(workers))
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.ReconstructBatch(context.Background(), targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benches: the design choices DESIGN.md calls out, selected
// through the named-variant registry.

func BenchmarkAblationFiltering(b *testing.B) {
	s := setup(b, "hosts")
	for _, variant := range []string{"marioh", "marioh-f"} {
		r := s.reconstructor(b, marioh.WithVariant(variant))
		b.Run(fmt.Sprintf("variant=%s", variant), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Reconstruct(context.Background(), s.gT); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationBidirectional(b *testing.B) {
	s := setup(b, "hosts")
	for _, variant := range []string{"marioh", "marioh-b"} {
		r := s.reconstructor(b, marioh.WithVariant(variant))
		b.Run(fmt.Sprintf("variant=%s", variant), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Reconstruct(context.Background(), s.gT); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTrainClassifier(b *testing.B) {
	ds := datasets.MustByName("hosts", 1)
	src := ds.Source.Reduced()
	gS := src.Project()
	r, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(25))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Train(context.Background(), gS, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterStep(b *testing.B) {
	ds := datasets.MustByName("eu", 1)
	g := ds.Target.Reduced().Project()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := g.Clone()
		rec := hypergraph.New(g.NumNodes())
		b.StartTimer()
		core.Filter(work, rec)
	}
}

// ---- Substrate micro-benches ----------------------------------------------

func BenchmarkKeyEncoding(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := make([][]int, 1024)
	for i := range edges {
		s := 2 + rng.Intn(6)
		e := make([]int, s)
		for j := range e {
			e[j] = rng.Intn(100000)
		}
		edges[i] = e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hypergraph.Key(edges[i%len(edges)])
	}
}

// BenchmarkKeyEncodingNaive is the ablation comparator for the delta-varint
// key: a fmt-based string join, the obvious alternative encoding.
func BenchmarkKeyEncodingNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := make([][]int, 1024)
	for i := range edges {
		s := 2 + rng.Intn(6)
		e := make([]int, s)
		for j := range e {
			e[j] = rng.Intn(100000)
		}
		edges[i] = e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprint(edges[i%len(edges)])
	}
}

func BenchmarkProjection(b *testing.B) {
	ds := datasets.MustByName("eu", 1)
	h := ds.Target.Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Project()
	}
}

func BenchmarkMaximalCliques(b *testing.B) {
	for _, name := range []string{"hosts", "eu"} {
		ds := datasets.MustByName(name, 1)
		g := ds.Target.Reduced().Project()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.MaximalCliques(2)
			}
		})
	}
}

func BenchmarkSumMinCommonWeight(b *testing.B) {
	ds := datasets.MustByName("eu", 1)
	g := ds.Target.Reduced().Project()
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		g.SumMinCommonWeight(e.U, e.V)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	net := mlp.New(23, []int{32, 16}, 1)
	x := make([]float64, 23)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkGCNTrain(b *testing.B) {
	ds := datasets.MustByName("hosts", 1)
	g := ds.Target.Reduced().Project()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gcn.Train(g, gcn.Options{Seed: 1, Epochs: 30})
	}
}

// BenchmarkLinkPredEmbeddings compares the paper's GCN link embeddings
// against the spectral substitute on the same input (ablation called out
// in DESIGN.md).
func BenchmarkLinkPredEmbeddings(b *testing.B) {
	ds := datasets.MustByName("hosts", 1)
	g := ds.Target.Reduced().Project()
	h := ds.Target.Reduced()
	for _, useGCN := range []bool{false, true} {
		b.Run(fmt.Sprintf("gcn=%v", useGCN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				downstream.LinkPredictionAUC(g, h, downstream.LinkPredOptions{Seed: 1, UseGCN: useGCN})
			}
		})
	}
}

// BenchmarkParallelScoring exercises the scoring fan-out on a round with
// many maximal cliques (the eu analog) against GOMAXPROCS=1.
func BenchmarkParallelScoring(b *testing.B) {
	s := setup(b, "eu")
	for _, procs := range []int{1, 0} {
		name := "gomaxprocs=all"
		if procs == 1 {
			name = "gomaxprocs=1"
		}
		b.Run(name, func(b *testing.B) {
			if procs == 1 {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			}
			cliques := s.gT.MaximalCliques(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ScoreCliques(s.gT, s.model, cliques)
			}
		})
	}
}

func BenchmarkHypergraphJaccard(b *testing.B) {
	a := datasets.MustByName("eu", 1).Target.Reduced()
	c := datasets.MustByName("eu", 2).Target.Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = benchmarkJaccardResult(a, c)
	}
}

func benchmarkJaccardResult(a, c *hypergraph.Hypergraph) int {
	n := 0
	for _, k := range a.Keys() {
		if c.ContainsKey(k) {
			n++
		}
	}
	return n
}
