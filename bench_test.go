// Package marioh_test holds the benchmark harness: one testing.B per table
// and figure of the paper's evaluation section (run the full versions with
// cmd/benchall), plus micro-benchmarks for the substrate operations that
// dominate reconstruction time and the ablation benches called out in
// DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package marioh_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/downstream"
	"marioh/internal/experiments"
	"marioh/internal/gcn"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/mlp"
)

// benchCfg keeps per-iteration table runs around a second.
func benchCfg(ds ...string) experiments.RunConfig {
	return experiments.RunConfig{
		Seeds:    []int64{1},
		Timeout:  8 * time.Second,
		Datasets: ds,
		Quick:    true,
	}
}

// ---- Tables -------------------------------------------------------------

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableI(1)
	}
}

func BenchmarkTableII(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableII(cfg)
	}
}

func BenchmarkTableIII(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableIII(cfg)
	}
}

func BenchmarkTableIV(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableIV(cfg)
	}
}

func BenchmarkTableV(b *testing.B) {
	cfg := benchCfg() // Quick mode uses the non-DBLP transfer pairs
	for i := 0; i < b.N; i++ {
		experiments.TableV(cfg)
	}
}

func BenchmarkTableVI(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.TableVI(cfg)
	}
}

func BenchmarkTableVII(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.TableVII(cfg)
	}
}

func BenchmarkTableVIII(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.TableVIII(cfg)
	}
}

func BenchmarkTableIX(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.TableIX(cfg)
	}
}

// ---- Figures ------------------------------------------------------------

func BenchmarkFig4(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.Fig4(cfg)
	}
}

func BenchmarkFig5(b *testing.B) {
	cfg := benchCfg("crime", "hosts", "directors")
	for i := 0; i < b.N; i++ {
		experiments.Fig5(cfg)
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := benchCfg("crime", "hosts")
	for i := 0; i < b.N; i++ {
		experiments.Fig6(cfg)
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(cfg)
	}
}

// ---- Core pipeline benches ------------------------------------------------

// trainedSetup caches a trained model and target graph per dataset.
type trainedSetup struct {
	model *core.Model
	gT    *graph.Graph
}

var setups = map[string]*trainedSetup{}

func setup(b *testing.B, name string) *trainedSetup {
	b.Helper()
	if s, ok := setups[name]; ok {
		return s
	}
	ds := datasets.MustByName(name, 1)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	s := &trainedSetup{
		model: core.Train(src.Project(), src, core.TrainOptions{Seed: 1, Epochs: 25}),
		gT:    tgt.Project(),
	}
	setups[name] = s
	return s
}

func BenchmarkReconstruct(b *testing.B) {
	for _, name := range []string{"crime", "hosts", "eu"} {
		s := setup(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Reconstruct(s.gT, s.model, core.Options{Seed: 1})
			}
		})
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

func BenchmarkAblationFiltering(b *testing.B) {
	s := setup(b, "hosts")
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("disableFilter=%v", disable), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Reconstruct(s.gT, s.model, core.Options{Seed: 1, DisableFiltering: disable})
			}
		})
	}
}

func BenchmarkAblationBidirectional(b *testing.B) {
	s := setup(b, "hosts")
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("disableBidir=%v", disable), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Reconstruct(s.gT, s.model, core.Options{Seed: 1, DisableBidirectional: disable})
			}
		})
	}
}

func BenchmarkTrainClassifier(b *testing.B) {
	ds := datasets.MustByName("hosts", 1)
	src := ds.Source.Reduced()
	gS := src.Project()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Train(gS, src, core.TrainOptions{Seed: 1, Epochs: 25})
	}
}

func BenchmarkFilterStep(b *testing.B) {
	ds := datasets.MustByName("eu", 1)
	g := ds.Target.Reduced().Project()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := g.Clone()
		rec := hypergraph.New(g.NumNodes())
		b.StartTimer()
		core.Filter(work, rec)
	}
}

// ---- Substrate micro-benches ----------------------------------------------

func BenchmarkKeyEncoding(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := make([][]int, 1024)
	for i := range edges {
		s := 2 + rng.Intn(6)
		e := make([]int, s)
		for j := range e {
			e[j] = rng.Intn(100000)
		}
		edges[i] = e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hypergraph.Key(edges[i%len(edges)])
	}
}

// BenchmarkKeyEncodingNaive is the ablation comparator for the delta-varint
// key: a fmt-based string join, the obvious alternative encoding.
func BenchmarkKeyEncodingNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := make([][]int, 1024)
	for i := range edges {
		s := 2 + rng.Intn(6)
		e := make([]int, s)
		for j := range e {
			e[j] = rng.Intn(100000)
		}
		edges[i] = e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprint(edges[i%len(edges)])
	}
}

func BenchmarkProjection(b *testing.B) {
	ds := datasets.MustByName("eu", 1)
	h := ds.Target.Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Project()
	}
}

func BenchmarkMaximalCliques(b *testing.B) {
	for _, name := range []string{"hosts", "eu"} {
		ds := datasets.MustByName(name, 1)
		g := ds.Target.Reduced().Project()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.MaximalCliques(2)
			}
		})
	}
}

func BenchmarkSumMinCommonWeight(b *testing.B) {
	ds := datasets.MustByName("eu", 1)
	g := ds.Target.Reduced().Project()
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		g.SumMinCommonWeight(e.U, e.V)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	net := mlp.New(23, []int{32, 16}, 1)
	x := make([]float64, 23)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkGCNTrain(b *testing.B) {
	ds := datasets.MustByName("hosts", 1)
	g := ds.Target.Reduced().Project()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gcn.Train(g, gcn.Options{Seed: 1, Epochs: 30})
	}
}

// BenchmarkLinkPredEmbeddings compares the paper's GCN link embeddings
// against the spectral substitute on the same input (ablation called out
// in DESIGN.md).
func BenchmarkLinkPredEmbeddings(b *testing.B) {
	ds := datasets.MustByName("hosts", 1)
	g := ds.Target.Reduced().Project()
	h := ds.Target.Reduced()
	for _, useGCN := range []bool{false, true} {
		b.Run(fmt.Sprintf("gcn=%v", useGCN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				downstream.LinkPredictionAUC(g, h, downstream.LinkPredOptions{Seed: 1, UseGCN: useGCN})
			}
		})
	}
}

// BenchmarkParallelScoring exercises the scoring fan-out on a round with
// many maximal cliques (the eu analog) against GOMAXPROCS=1.
func BenchmarkParallelScoring(b *testing.B) {
	s := setup(b, "eu")
	for _, procs := range []int{1, 0} {
		name := "gomaxprocs=all"
		if procs == 1 {
			name = "gomaxprocs=1"
		}
		b.Run(name, func(b *testing.B) {
			if procs == 1 {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			}
			cliques := s.gT.MaximalCliques(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ScoreCliques(s.gT, s.model, cliques)
			}
		})
	}
}

func BenchmarkHypergraphJaccard(b *testing.B) {
	a := datasets.MustByName("eu", 1).Target.Reduced()
	c := datasets.MustByName("eu", 2).Target.Reduced()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = benchmarkJaccardResult(a, c)
	}
}

func benchmarkJaccardResult(a, c *hypergraph.Hypergraph) int {
	n := 0
	for _, k := range a.Keys() {
		if c.ContainsKey(k) {
			n++
		}
	}
	return n
}
