module marioh

go 1.22
