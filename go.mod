module marioh

go 1.21
