GO ?= go

# Substrate micro-benchmarks: the adjacency-engine hot paths tracked across
# PRs (compare runs with benchstat; see README "Benchmarks").
BENCH_SUBSTRATE ?= BenchmarkHasEdge|BenchmarkMaximalCliques|BenchmarkScoreCliques|BenchmarkFeatures|BenchmarkDegeneracyOrdering|BenchmarkCommonNeighborCount|BenchmarkSumMinCommonWeight|BenchmarkMLPForward

.PHONY: all build fmt fmt-fix vet test race bench bench-substrate bench-json check

all: check build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run 'Batch|Cancel|Progress|Parallel' ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Human-readable substrate benchmark run.
bench-substrate:
	$(GO) test -run '^$$' -bench '$(BENCH_SUBSTRATE)' -benchmem .

# Record the substrate benchmarks into BENCH_<date>.json (test2json event
# stream; the benchmark result lines are in the "Output" fields) so the
# perf trajectory of the repo is kept under version control. Refuses to
# overwrite an existing recording.
bench-json:
	@out=BENCH_$$(date +%Y-%m-%d).json; \
	if [ -e "$$out" ]; then \
		echo "$$out already exists; move it aside to re-record"; exit 1; \
	fi; \
	$(GO) test -run '^$$' -bench '$(BENCH_SUBSTRATE)' -benchmem -json . > "$$out" && \
	echo "recorded $$out"

check: fmt vet test
