GO ?= go

# Substrate micro-benchmarks: the adjacency-engine hot paths tracked across
# PRs (compare runs with benchstat; see README "Benchmarks"), plus the
# shard-engine reconstruction bench (serial vs -shards N on the
# multi-component graph; see README "Sharding").
BENCH_SUBSTRATE ?= BenchmarkHasEdge|BenchmarkMaximalCliques|BenchmarkScoreCliques|BenchmarkFeatures|BenchmarkDegeneracyOrdering|BenchmarkCommonNeighborCount|BenchmarkSumMinCommonWeight|BenchmarkMLPForward|BenchmarkParallelScoring|BenchmarkShardedReconstruct|BenchmarkIncrementalApply|BenchmarkCorpusReconstruct|BenchmarkParallelRound|BenchmarkCliqueEnumParallel

# Flags for the bench-regression gate (CI overrides warn-only on pushes).
BENCHDIFF_FLAGS ?= -warn-only

.PHONY: all build fmt fmt-fix vet lint lint-triage test race smoke shard-check incr-check crash-check load-check bench bench-substrate bench-json bench-json-force bench-regress check

all: check build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l . | grep -v '^vendor/' || true)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -l . | grep -v '^vendor/' | xargs -r gofmt -w

vet:
	$(GO) vet ./...

# Static analysis + known-vulnerability scan (mirrored by the CI lint
# job). mariohlint (cmd/mariohlint) enforces the repo's determinism and
# concurrency invariants and is a hard gate; the external tools are
# skipped with a pointer when not installed, so `make lint` stays useful
# on minimal dev machines.
lint: vet
	$(GO) run ./cmd/mariohlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Triage view of mariohlint: print every finding as file:line: message
# and exit 0 regardless, for working through a dirty tree finding by
# finding (fix it, or justify it with //lint:<analyzer> <reason>).
lint-triage:
	@$(GO) run ./cmd/mariohlint ./... 2>&1 | grep -v '^#' ; \
	true

test:
	$(GO) test ./...

race:
	$(GO) test -race -run 'Batch|Cancel|Progress|Parallel|Pipeline|Server|Queue|Registry|Shard|RunTasks|Session|Engine|Durability|WAL|Snapshot' ./...

# End-to-end mariohd smoke test: boot the daemon, round-trip a
# reconstruction against a golden CLI run, exercise graceful shutdown.
smoke:
	./scripts/smoke.sh

# Shard/serial equivalence matrix: reconstruct bundled datasets with
# -shards 1/4/16 and require byte-identical output versus the serial
# golden run (mirrored by the CI shard-equivalence job).
shard-check:
	./scripts/shard-check.sh

# Incremental/serial equivalence matrix: replay generated delta streams
# through a session (batch by batch, verified against from-scratch
# rebuilds) and require byte-identical output versus the serial and
# sharded goldens of the mutated graph, plus the >= 5x speedup floor
# (mirrored by the CI incremental-equivalence job; smoke.sh repeats the
# session flow against a live mariohd).
incr-check:
	./scripts/incr-check.sh

# Crash-recovery gate: SIGKILL a durable session replay at randomized
# points, resume from the WAL + snapshots, and require the recovered
# output byte-identical to a from-scratch serial golden (mirrored by the
# CI crash-recovery job; smoke.sh repeats the kill -9 flow against a live
# mariohd).
crash-check:
	./scripts/crash-check.sh

# Multi-tenant serving smoke: cmd/loadgen drives an in-process mariohd
# with concurrent reconstructions + session churn across tenants under a
# memory budget, and fails on any 5xx, any byte divergence from the
# serial library reconstruction, zero dedup hits, or RSS over bound
# (mirrored by the CI serving-load job).
load-check:
	./scripts/load-check.sh

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Human-readable substrate benchmark run.
bench-substrate:
	$(GO) test -run '^$$' -bench '$(BENCH_SUBSTRATE)' -benchmem .

# Record the substrate benchmarks into BENCH_<date>.json (test2json event
# stream; the benchmark result lines are in the "Output" fields) so the
# perf trajectory of the repo is kept under version control. Refuses to
# overwrite an existing recording; `make bench-json-force` re-records.
bench-json:
	@out=BENCH_$$(date +%Y-%m-%d).json; \
	if [ -e "$$out" ]; then \
		echo "$$out already exists; run 'make bench-json-force' to overwrite it"; exit 1; \
	fi; \
	$(MAKE) --no-print-directory bench-json-force

bench-json-force:
	@out=BENCH_$$(date +%Y-%m-%d).json; \
	prev=$$(ls BENCH_*.json 2>/dev/null | grep -vx "$$out" | grep -v -- '-loadgen.json' | sort | tail -1); \
	if ! $(GO) test -run '^$$' -bench '$(BENCH_SUBSTRATE)' -benchmem -json . > "$$out"; then \
		rm -f "$$out"; echo "bench-json: benchmark run failed, nothing recorded"; exit 1; \
	fi; \
	echo "recorded $$out"; \
	if [ -n "$$prev" ]; then \
		echo "compare against the previous recording with:"; \
		echo "  go run ./cmd/benchdiff -against $$prev -new $$out"; \
		echo "or with benchstat (go install golang.org/x/perf/cmd/benchstat@latest):"; \
		echo "  benchstat <(jq -r 'select(.Action==\"output\").Output' $$prev) <(jq -r 'select(.Action==\"output\").Output' $$out)"; \
	fi

# Compare a fresh substrate run against the latest committed BENCH_*.json
# (the CI bench-regression gate; warn-only by default, override with
# BENCHDIFF_FLAGS=""). The fresh run goes through a temp file so a
# crashing benchmark suite fails the gate instead of slipping past as
# "missing" benchmarks.
bench-regress:
	@tmp=$$(mktemp); \
	if ! $(GO) test -run '^$$' -bench '$(BENCH_SUBSTRATE)' -benchtime=0.2s . > "$$tmp"; then \
		cat "$$tmp"; rm -f "$$tmp"; \
		echo "bench-regress: benchmark run failed"; exit 1; \
	fi; \
	$(GO) run ./cmd/benchdiff -against latest -new "$$tmp" $(BENCHDIFF_FLAGS); \
	st=$$?; rm -f "$$tmp"; exit $$st

check: fmt vet test
