GO ?= go

.PHONY: all build fmt fmt-fix vet test race bench check

all: check build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run 'Batch|Cancel|Progress|Parallel' ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

check: fmt vet test
