package marioh

import (
	"context"
	"errors"
	"io"
	"sync"

	"marioh/internal/graph"
	"marioh/internal/incremental"
)

// DeltaKind discriminates the mutation a DeltaOp performs.
type DeltaKind = graph.DeltaKind

// The delta operations a projected-graph edge stream carries.
const (
	// DeltaAdd adds W (> 0) to ω(U, V), inserting the edge if absent.
	DeltaAdd = graph.DeltaAdd
	// DeltaRemove deletes the edge {U, V} regardless of its weight.
	DeltaRemove = graph.DeltaRemove
	// DeltaSet sets ω(U, V) to exactly W (≥ 0; 0 deletes the edge).
	DeltaSet = graph.DeltaSet
)

// DeltaOp is one mutation of a projected graph: an edge insert or weight
// increase, a delete, or an absolute weight change.
type DeltaOp = graph.DeltaOp

// Delta is a batch of projected-graph mutations, the unit of change a
// Session consumes. Ops are applied in order; a batch may freely mix
// kinds and reference nodes beyond the graph's current node set (which
// grows to fit).
type Delta struct {
	Ops []DeltaOp
}

// ReadDeltas parses the line-oriented delta text format: "+ u v w" (add),
// "- u v" (delete), "= u v w" (set). Blank lines and "%" comments are
// skipped.
func ReadDeltas(r io.Reader) ([]DeltaOp, error) { return graph.ReadDeltas(r) }

// WriteDeltas serializes a delta stream in the format ReadDeltas parses.
func WriteDeltas(w io.Writer, ops []DeltaOp) error { return graph.WriteDeltas(w, ops) }

// Session is a long-lived incremental reconstruction: it holds a
// projected graph, the reconstructed hypergraph of every connected
// component, and the per-component enumeration state, and recomputes only
// the components each delta batch touches.
//
// The determinism guarantee is the headline: after any sequence of Apply
// calls, the returned reconstruction is byte-identical to a from-scratch
// Reconstruct of the mutated graph with the same configuration (asserted
// by the incremental-equivalence tests and the CI incr-check job). As
// with sharding, the guarantee assumes the built-in component-local
// featurizers and does not extend to WithMaxCliqueLimit, whose global
// per-round budget is applied per component.
//
// A Session is safe for concurrent use; Apply calls serialize.
type Session struct {
	mu  sync.Mutex
	eng *incremental.Engine // guarded by mu
}

// SessionStats is a snapshot of a Session's state.
type SessionStats struct {
	// Nodes and Edges describe the session's current graph.
	Nodes, Edges int
	// Components is the number of live (edge-bearing) connected
	// components, each with a cached reconstruction.
	Components int
	// Applies is the number of Apply calls served.
	Applies int
	// LastDirty is the number of components the most recent Apply
	// recomputed.
	LastDirty int
}

// OpenSession starts an incremental reconstruction session over g using
// r's model and configuration. The graph is copied; the caller's g is
// never mutated. The session performs no work until the first Apply —
// Apply with an empty Delta produces the initial full reconstruction.
//
// The model is pinned at open time: a later r.Train or r.SetModel does
// not affect the session (mixing models across components would break the
// byte-equality guarantee).
func OpenSession(r *Reconstructor, g *Graph) (*Session, error) {
	return r.OpenSession(g)
}

// OpenSession is the method form of marioh.OpenSession.
func (r *Reconstructor) OpenSession(g *Graph) (*Session, error) {
	m := r.Model()
	if m == nil {
		return nil, ErrNoModel
	}
	if g == nil {
		return nil, errors.New("marioh: nil session graph")
	}
	workers := 0
	if s := r.cfg.sharding; s != nil && s.Workers > 0 {
		workers = s.Workers
	} else if r.cfg.parallelism > 0 {
		workers = r.cfg.parallelism
	}
	return &Session{
		eng: incremental.New(g.Clone(), m, r.reconstructOptions(nil), workers),
	}, nil
}

// Apply mutates the session graph with a batch of deltas and returns the
// reconstruction of the whole mutated graph, recomputing only the
// components the batch touched; everything else is merged from the
// session cache. Result.DirtyComponents reports how many components were
// recomputed, and Progress events emitted during the Apply carry the same
// count in their Dirty field.
//
// Cancelling ctx stops the recomputation; the deltas are already applied,
// and the partial result is returned with ctx's error. Components that
// finished stay cached, so retrying with an empty Delta completes the
// interrupted work.
func (s *Session) Apply(ctx context.Context, d Delta) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Apply(ctx, d.Ops)
}

// Graph returns a copy of the session's current projected graph.
func (s *Session) Graph() *Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Graph().Clone()
}

// Stats snapshots the session.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.eng.Graph()
	return SessionStats{
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Components: s.eng.CachedComponents(),
		Applies:    s.eng.Applies(),
		LastDirty:  s.eng.LastDirty(),
	}
}
