package marioh

import (
	"context"
	"errors"
	"io"
	"sync"

	"marioh/internal/durability"
	"marioh/internal/graph"
	"marioh/internal/incremental"
)

// DeltaKind discriminates the mutation a DeltaOp performs.
type DeltaKind = graph.DeltaKind

// The delta operations a projected-graph edge stream carries.
const (
	// DeltaAdd adds W (> 0) to ω(U, V), inserting the edge if absent.
	DeltaAdd = graph.DeltaAdd
	// DeltaRemove deletes the edge {U, V} regardless of its weight.
	DeltaRemove = graph.DeltaRemove
	// DeltaSet sets ω(U, V) to exactly W (≥ 0; 0 deletes the edge).
	DeltaSet = graph.DeltaSet
)

// DeltaOp is one mutation of a projected graph: an edge insert or weight
// increase, a delete, or an absolute weight change.
type DeltaOp = graph.DeltaOp

// Delta is a batch of projected-graph mutations, the unit of change a
// Session consumes. Ops are applied in order; a batch may freely mix
// kinds and reference nodes beyond the graph's current node set (which
// grows to fit).
type Delta struct {
	Ops []DeltaOp
}

// ReadDeltas parses the line-oriented delta text format: "+ u v w" (add),
// "- u v" (delete), "= u v w" (set). Blank lines and "%" comments are
// skipped.
func ReadDeltas(r io.Reader) ([]DeltaOp, error) { return graph.ReadDeltas(r) }

// WriteDeltas serializes a delta stream in the format ReadDeltas parses.
func WriteDeltas(w io.Writer, ops []DeltaOp) error { return graph.WriteDeltas(w, ops) }

// Session is a long-lived incremental reconstruction: it holds a
// projected graph, the reconstructed hypergraph of every connected
// component, and the per-component enumeration state, and recomputes only
// the components each delta batch touches.
//
// The determinism guarantee is the headline: after any sequence of Apply
// calls, the returned reconstruction is byte-identical to a from-scratch
// Reconstruct of the mutated graph with the same configuration (asserted
// by the incremental-equivalence tests and the CI incr-check job). As
// with sharding, the guarantee assumes the built-in component-local
// featurizers and does not extend to WithMaxCliqueLimit, whose global
// per-round budget is applied per component.
//
// A Session is safe for concurrent use; Apply calls serialize.
//
// A session opened durable (SessionConfig.Durable) additionally
// write-ahead-logs every delta batch and snapshots its engine state under
// a directory, so a crashed process resumes byte-identically to a cold
// rebuild of the same delta sequence (see DurableOptions).
type Session struct {
	mu  sync.Mutex
	eng *incremental.Engine // guarded by mu; nil when dur is set
	dur *durability.Session // guarded by mu; nil for in-memory sessions
}

// SessionStats is a snapshot of a Session's state.
type SessionStats struct {
	// Nodes and Edges describe the session's current graph.
	Nodes, Edges int
	// Components is the number of live (edge-bearing) connected
	// components, each with a cached reconstruction.
	Components int
	// Applies is the number of Apply calls served.
	Applies int
	// LastDirty is the number of components the most recent Apply
	// recomputed.
	LastDirty int

	// Durable reports whether the session persists to disk; the fields
	// below are zero for in-memory sessions.
	Durable bool
	// WALRecords and WALBytes count the delta batches (and their framed
	// bytes) this process appended to the write-ahead log.
	WALRecords, WALBytes int64
	// Snapshots counts the engine snapshots this process wrote.
	Snapshots int64
	// Replayed is the number of WAL records the last ResumeSession
	// replayed to reach the recovered state.
	Replayed int
	// RecoveryOutcome classifies the last recovery: "clean", "torn-tail",
	// "cache-dropped", "snapshot-fallback", or "lost-suffix" (empty for a
	// session created in this process).
	RecoveryOutcome string
}

// SessionConfig selects what kind of Session NewSession opens. The zero
// value plus a Graph opens a plain in-memory session; set Durable to
// persist to a directory, and Resume to recover a directory's existing
// session instead of creating one.
type SessionConfig struct {
	// Graph is the projected graph to reconstruct over. Required unless
	// Resume is set (a resumed session recovers its graph from disk). The
	// graph is copied; the caller's Graph is never mutated.
	Graph *Graph
	// Durable, when non-nil, backs the session by Durable.Dir: every
	// Apply appends its delta batch to a write-ahead log before
	// reconstructing, and engine state is snapshotted periodically.
	Durable *DurableOptions
	// Resume recovers the existing durable session in Durable.Dir
	// (newest valid snapshot + verified WAL replay) instead of creating
	// a new one. Requires Durable.
	Resume bool
}

// NewSession is the unified session entrypoint: it opens an in-memory,
// durable, or resumed incremental reconstruction session over r's model
// and configuration, selected by cfg. It subsumes OpenSession,
// OpenDurableSession, and ResumeSession, which remain as deprecated
// wrappers.
//
// The model is pinned at open time: a later r.Train or r.SetModel does
// not affect the session (mixing models across components would break
// the byte-equality guarantee). For Resume, the reconstructor must carry
// the same model and configuration the session was created with;
// byte-identity is asserted against the recorded fingerprints during
// replay, degrading along the snapshot chain rather than ever returning
// a wrong answer (see SessionStats.RecoveryOutcome).
//
// ctx bounds the open itself: cancellation is honored between the open's
// phases (an in-flight snapshot load or WAL replay step is not
// interrupted). The returned Session is not bound to ctx; each Apply
// takes its own context.
func (r *Reconstructor) NewSession(ctx context.Context, cfg SessionConfig) (*Session, error) {
	if ctx == nil {
		return nil, errors.New("marioh: nil context")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch {
	case cfg.Resume:
		if cfg.Durable == nil {
			return nil, errors.New("marioh: SessionConfig.Resume requires Durable")
		}
		if cfg.Graph != nil {
			return nil, errors.New("marioh: SessionConfig.Resume recovers its graph from disk; Graph must be nil")
		}
		s, err := r.resumeSession(*cfg.Durable)
		if err != nil {
			return nil, err
		}
		// The resume may have outlived the caller's interest; don't hand
		// back a session the caller has already abandoned.
		if err := ctx.Err(); err != nil {
			_ = s.Close()
			return nil, err
		}
		return s, nil
	case cfg.Durable != nil:
		return r.openDurableSession(cfg.Graph, *cfg.Durable)
	default:
		return r.openSession(cfg.Graph)
	}
}

// OpenSession starts an incremental reconstruction session over g using
// r's model and configuration. The graph is copied; the caller's g is
// never mutated. The session performs no work until the first Apply —
// Apply with an empty Delta produces the initial full reconstruction.
//
// The model is pinned at open time: a later r.Train or r.SetModel does
// not affect the session (mixing models across components would break the
// byte-equality guarantee).
//
// Deprecated: use r.NewSession(ctx, SessionConfig{Graph: g}).
func OpenSession(r *Reconstructor, g *Graph) (*Session, error) {
	return r.openSession(g)
}

// OpenSession is the method form of marioh.OpenSession.
//
// Deprecated: use NewSession(ctx, SessionConfig{Graph: g}).
func (r *Reconstructor) OpenSession(g *Graph) (*Session, error) {
	return r.openSession(g)
}

func (r *Reconstructor) openSession(g *Graph) (*Session, error) {
	m := r.Model()
	if m == nil {
		return nil, ErrNoModel
	}
	if g == nil {
		return nil, errors.New("marioh: nil session graph")
	}
	return &Session{
		eng: incremental.New(g.Clone(), m, r.reconstructOptions(nil), r.sessionWorkers()),
	}, nil
}

// sessionWorkers resolves the engine worker count from the
// reconstructor's sharding/parallelism configuration.
func (r *Reconstructor) sessionWorkers() int {
	if s := r.cfg.sharding; s != nil && s.Workers > 0 {
		return s.Workers
	}
	if r.cfg.parallelism > 0 {
		return r.cfg.parallelism
	}
	return 0
}

// DurableOptions configures an on-disk session directory.
type DurableOptions struct {
	// Dir is the session directory (created by OpenDurableSession if
	// needed). One directory holds exactly one session.
	Dir string
	// NoFsync skips fsync on WAL appends and snapshot renames. Appends
	// still reach the kernel before Apply returns — the session survives a
	// process kill — but a power loss may drop acknowledged batches.
	NoFsync bool
	// SnapshotEvery is the number of applies between engine snapshots; 0
	// means the default (8), negative disables periodic snapshots (Close
	// and ResumeSession still write one).
	SnapshotEvery int
	// Logf receives recovery and degradation notices; nil discards them.
	Logf func(format string, args ...any)
}

func (o DurableOptions) internal() durability.Options {
	return durability.Options{NoFsync: o.NoFsync, SnapshotEvery: o.SnapshotEvery, Logf: o.Logf}
}

// HasDurableSession reports whether dir holds a durable session (and so
// whether ResumeSession or OpenDurableSession is the right call).
func HasDurableSession(dir string) bool { return durability.Exists(dir) }

// OpenDurableSession starts a durable incremental session over g, backed
// by o.Dir: every Apply appends the delta batch to a write-ahead log
// before reconstructing, and the engine state is snapshotted
// periodically, so after a crash ResumeSession recovers the session
// byte-identically to a cold rebuild. The directory must not already
// hold a session. The graph is copied; the caller's g is never mutated.
//
// Deprecated: use r.NewSession(ctx, SessionConfig{Graph: g, Durable: &o}).
func OpenDurableSession(r *Reconstructor, g *Graph, o DurableOptions) (*Session, error) {
	return r.openDurableSession(g, o)
}

// OpenDurableSession is the method form of marioh.OpenDurableSession.
//
// Deprecated: use NewSession(ctx, SessionConfig{Graph: g, Durable: &o}).
func (r *Reconstructor) OpenDurableSession(g *Graph, o DurableOptions) (*Session, error) {
	return r.openDurableSession(g, o)
}

func (r *Reconstructor) openDurableSession(g *Graph, o DurableOptions) (*Session, error) {
	m := r.Model()
	if m == nil {
		return nil, ErrNoModel
	}
	if g == nil {
		return nil, errors.New("marioh: nil session graph")
	}
	if o.Dir == "" {
		return nil, errors.New("marioh: durable session needs a directory")
	}
	dur, err := durability.Create(o.Dir, g.Clone(), m, r.reconstructOptions(nil), r.sessionWorkers(), o.internal())
	if err != nil {
		return nil, err
	}
	return &Session{dur: dur}, nil
}

// ResumeSession recovers the durable session in o.Dir: the newest valid
// snapshot is loaded and the WAL tail is replayed through the engine
// with the recorded graph fingerprint verified after every record. A
// torn final record (the expected crash artifact) is discarded — that
// batch was never acknowledged. Deeper damage degrades along the
// snapshot chain and is reported in SessionStats.RecoveryOutcome; only
// when no consistent state can be proven does ResumeSession return an
// error, never a wrong answer.
//
// The reconstructor must carry the same model and configuration the
// session was created with; byte-identity is asserted against the
// recorded fingerprints during replay.
//
// Deprecated: use r.NewSession(ctx, SessionConfig{Durable: &o, Resume: true}).
func ResumeSession(r *Reconstructor, o DurableOptions) (*Session, error) {
	return r.resumeSession(o)
}

// ResumeSession is the method form of marioh.ResumeSession.
//
// Deprecated: use NewSession(ctx, SessionConfig{Durable: &o, Resume: true}).
func (r *Reconstructor) ResumeSession(o DurableOptions) (*Session, error) {
	return r.resumeSession(o)
}

func (r *Reconstructor) resumeSession(o DurableOptions) (*Session, error) {
	m := r.Model()
	if m == nil {
		return nil, ErrNoModel
	}
	dur, err := durability.Resume(o.Dir, m, r.reconstructOptions(nil), r.sessionWorkers(), o.internal())
	if err != nil {
		return nil, err
	}
	return &Session{dur: dur}, nil
}

// Apply mutates the session graph with a batch of deltas and returns the
// reconstruction of the whole mutated graph, recomputing only the
// components the batch touched; everything else is merged from the
// session cache. Result.DirtyComponents reports how many components were
// recomputed, and Progress events emitted during the Apply carry the same
// count in their Dirty field.
//
// Cancelling ctx stops the recomputation; the deltas are already applied,
// and the partial result is returned with ctx's error. Components that
// finished stay cached, so retrying with an empty Delta completes the
// interrupted work.
func (s *Session) Apply(ctx context.Context, d Delta) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		return s.dur.Apply(ctx, d.Ops)
	}
	return s.eng.Apply(ctx, d.Ops)
}

// Graph returns a copy of the session's current projected graph.
func (s *Session) Graph() *Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		return s.dur.Graph().Clone()
	}
	return s.eng.Graph().Clone()
}

// Stats snapshots the session.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		g := s.dur.Graph()
		ds := s.dur.Stats()
		return SessionStats{
			Nodes:           g.NumNodes(),
			Edges:           g.NumEdges(),
			Components:      s.dur.CachedComponents(),
			Applies:         s.dur.Applies(),
			LastDirty:       s.dur.LastDirty(),
			Durable:         true,
			WALRecords:      ds.WALRecords,
			WALBytes:        ds.WALBytes,
			Snapshots:       ds.Snapshots,
			Replayed:        ds.Replayed,
			RecoveryOutcome: ds.Outcome,
		}
	}
	g := s.eng.Graph()
	return SessionStats{
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Components: s.eng.CachedComponents(),
		Applies:    s.eng.Applies(),
		LastDirty:  s.eng.LastDirty(),
	}
}

// Sync forces the durable session's write-ahead log to disk, regardless
// of NoFsync. It is a no-op for in-memory sessions.
func (s *Session) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		return s.dur.Sync()
	}
	return nil
}

// Close writes a final snapshot (so the next ResumeSession replays
// nothing) and releases the durable session's file handles. In-memory
// sessions close trivially. Safe to call twice; a closed session's
// Apply returns an error.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		return s.dur.Close()
	}
	return nil
}
