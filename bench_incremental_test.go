package marioh_test

import (
	"context"
	"testing"
	"time"

	"marioh"
)

// The incremental-apply benchmark measures the tentpole claim of the
// session engine: when a delta batch touches a small fraction of the
// graph's components, Session.Apply — which recomputes only the touched
// components and merges the rest from its cache — beats a from-scratch
// reconstruction of the mutated graph by a wide margin, while producing
// byte-identical output (asserted by the session tests and `make
// incr-check`). Run with
//
//	go test -run '^$' -bench BenchmarkIncrementalApply -benchmem .

// sessionDirtyBatch builds a delta batch that bumps the weight of
// `count` edges spread across the bench graph, touching about `count`
// distinct communities (~1% of components at count 25).
func sessionDirtyBatch(g *marioh.Graph, round, count int) marioh.Delta {
	edges := g.Edges()
	if len(edges) == 0 {
		return marioh.Delta{}
	}
	sep := len(edges) / count
	if sep < 1 {
		sep = 1
	}
	var ops []marioh.DeltaOp
	for j := 0; j < count; j++ {
		e := edges[(round*7+j*sep)%len(edges)]
		ops = append(ops, marioh.DeltaOp{Kind: marioh.DeltaAdd, U: e.U, V: e.V, W: 1})
	}
	return marioh.Delta{Ops: ops}
}

// BenchmarkIncrementalApply compares applying a ~1%-dirty delta batch
// through a warm session against a full re-reconstruction of the same
// mutated graph (the only pre-session way to serve it). The session's
// per-iteration work is proportional to the dirty components, not the
// graph.
func BenchmarkIncrementalApply(b *testing.B) {
	st := shardBenchSetup(b)
	r, err := marioh.New(marioh.WithSeed(9), marioh.WithModel(st.model))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("session", func(b *testing.B) {
		sess, err := r.OpenSession(st.g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Apply(context.Background(), marioh.Delta{}); err != nil {
			b.Fatal(err) // warm: initial full build outside the timer
		}
		dirtyTotal := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Apply(context.Background(), sessionDirtyBatch(st.g, i, 25))
			if err != nil {
				b.Fatal(err)
			}
			dirtyTotal += res.DirtyComponents
		}
		b.StopTimer()
		if b.N > 0 {
			b.ReportMetric(float64(dirtyTotal)/float64(b.N), "dirty/op")
		}
	})

	b.Run("full-rebuild", func(b *testing.B) {
		// The same mutated workload, served the pre-session way: mutate a
		// working graph and reconstruct it from scratch.
		work := st.g.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range sessionDirtyBatch(work, i, 25).Ops {
				work.AddWeight(op.U, op.V, op.W)
			}
			if _, err := r.Reconstruct(context.Background(), work); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestIncrementalSessionSpeedup is the acceptance floor behind the
// benchmark: with ~1% of components dirty, a session apply must be at
// least 5x faster than a full re-reconstruction of the mutated graph.
// The real margin on this fixture is well above 20x, so the assertion
// tolerates slow shared CI machines.
func TestIncrementalSessionSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	st := shardBenchSetup(t)
	r, err := marioh.New(marioh.WithSeed(9), marioh.WithModel(st.model))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := r.OpenSession(st.g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply(context.Background(), marioh.Delta{}); err != nil {
		t.Fatal(err)
	}
	work := st.g.Clone()
	batch := sessionDirtyBatch(st.g, 1, 25)
	for _, op := range batch.Ops {
		work.AddWeight(op.U, op.V, op.W)
	}

	t0 := time.Now()
	res, err := sess.Apply(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	sessionTime := time.Since(t0)

	t0 = time.Now()
	full, err := r.Reconstruct(context.Background(), work)
	if err != nil {
		t.Fatal(err)
	}
	fullTime := time.Since(t0)

	if dirtyFrac := float64(res.DirtyComponents) / float64(sess.Stats().Components); dirtyFrac > 0.10 {
		t.Fatalf("batch dirtied %.1f%% of components; the fixture should stay under 10%%", 100*dirtyFrac)
	}
	if !res.Hypergraph.Equal(full.Hypergraph) {
		t.Fatal("session apply and full rebuild disagree")
	}
	if speedup := float64(fullTime) / float64(sessionTime); speedup < 5 {
		t.Fatalf("session apply %.3fs vs full rebuild %.3fs: %.1fx speedup, want >= 5x",
			sessionTime.Seconds(), fullTime.Seconds(), speedup)
	}
}
