package marioh_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"marioh"
)

// TestNewSessionInMemory: the unified entrypoint's in-memory form must
// behave exactly like the deprecated OpenSession — same bytes for the
// same applies.
func TestNewSessionInMemory(t *testing.T) {
	r, g := trainedReconstructor(t)
	ctx := context.Background()

	sess, err := r.NewSession(ctx, marioh.SessionConfig{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	old, err := r.OpenSession(g)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	d := marioh.Delta{Ops: []marioh.DeltaOp{{Kind: marioh.DeltaAdd, U: 0, V: 1, W: 2}}}
	for _, batch := range []marioh.Delta{{}, d} {
		resNew, err := sess.Apply(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		resOld, err := old.Apply(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderResult(t, resNew), renderResult(t, resOld)) {
			t.Fatal("NewSession output differs from OpenSession")
		}
	}
}

// TestNewSessionDurableResume: durable create + resume through the
// unified entrypoint round-trips session state.
func TestNewSessionDurableResume(t *testing.T) {
	r, g := trainedReconstructor(t)
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "sess")
	dopts := marioh.DurableOptions{Dir: dir, NoFsync: true}

	sess, err := r.NewSession(ctx, marioh.SessionConfig{Graph: g, Durable: &dopts})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Apply(ctx, marioh.Delta{Ops: []marioh.DeltaOp{{Kind: marioh.DeltaAdd, U: 0, V: 1, W: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	want := renderResult(t, res)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	if !marioh.HasDurableSession(dir) {
		t.Fatal("durable directory not recognized")
	}
	resumed, err := r.NewSession(ctx, marioh.SessionConfig{Durable: &dopts, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	st := resumed.Stats()
	if !st.Durable || st.Applies != 1 {
		t.Fatalf("resumed stats = %+v, want durable with 1 apply", st)
	}
	res2, err := resumed.Apply(ctx, marioh.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, renderResult(t, res2)) {
		t.Fatal("resumed session bytes differ from pre-close result")
	}
}

// TestNewSessionConfigValidation: the dispatch rejects contradictory or
// incomplete configs and honors context state.
func TestNewSessionConfigValidation(t *testing.T) {
	r, g := trainedReconstructor(t)
	ctx := context.Background()

	if _, err := r.NewSession(ctx, marioh.SessionConfig{Resume: true}); err == nil {
		t.Fatal("Resume without Durable accepted")
	}
	dopts := marioh.DurableOptions{Dir: t.TempDir()}
	if _, err := r.NewSession(ctx, marioh.SessionConfig{Graph: g, Durable: &dopts, Resume: true}); err == nil {
		t.Fatal("Resume with Graph accepted")
	}
	if _, err := r.NewSession(ctx, marioh.SessionConfig{}); err == nil {
		t.Fatal("nil graph accepted for in-memory session")
	}
	//lint:ignore SA1012 nil-context rejection is the behavior under test
	if _, err := r.NewSession(nil, marioh.SessionConfig{Graph: g}); err == nil {
		t.Fatal("nil context accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := r.NewSession(cancelled, marioh.SessionConfig{Graph: g}); err != context.Canceled {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}
