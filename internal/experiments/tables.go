package experiments

import (
	"fmt"

	"marioh/internal/baselines"
	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/eval"
)

// TableI regenerates the dataset-summary table: |V|, |E_H|, avg M_H for
// the hypergraph and |E_G|, avg ω for its projection, per dataset analog.
func TableI(seed int64) *Table {
	t := &Table{
		Title:  "Table I: dataset summary (synthetic analogs)",
		Header: []string{"|V|", "|E_H|", "Avg. M_H", "|E_G|", "Avg. w"},
	}
	for _, name := range datasets.TableINames() {
		ds := datasets.MustByName(name, seed)
		g := ds.Full.Project()
		avgW := 0.0
		if g.NumEdges() > 0 {
			avgW = float64(g.TotalWeight()) / float64(g.NumEdges())
		}
		t.AddRow(name,
			Cell{Raw: fmt.Sprintf("%d", ds.Full.NumNodes())},
			Cell{Raw: fmt.Sprintf("%d", ds.Full.NumUnique())},
			Cell{Raw: fmt.Sprintf("%.2f", ds.Full.AvgMultiplicity())},
			Cell{Raw: fmt.Sprintf("%d", g.NumEdges())},
			Cell{Raw: fmt.Sprintf("%.2f", avgW)},
		)
	}
	return t
}

// accuracyTable is the shared engine behind Tables II and III: it runs the
// given methods on every dataset column and fills mean ± std of the metric
// over seeds. reduced selects the multiplicity-reduced setting (Jaccard)
// versus the multiplicity-preserved one (multi-Jaccard); values are scaled
// by 100 like the paper's tables.
func accuracyTable(title string, methodNames []string, reduced bool, cfg RunConfig) *Table {
	cfg = cfg.defaults()
	t := &Table{Title: title, Header: cfg.Datasets}
	vals := make(map[string][][]float64) // method -> column -> per-seed values
	oot := make(map[string][]bool)
	for _, m := range methodNames {
		vals[m] = make([][]float64, len(cfg.Datasets))
		oot[m] = make([]bool, len(cfg.Datasets))
	}
	for col, dsName := range cfg.Datasets {
		for _, seed := range cfg.Seeds {
			ds := datasets.MustByName(dsName, seed)
			src, tgt := ds.Source, ds.Target
			if reduced {
				src, tgt = src.Reduced(), tgt.Reduced()
			}
			gT := tgt.Project()
			methods := buildMethods(src, seed, cfg, methodNames)
			for _, m := range methodNames {
				rec, err := methods[m](gT)
				if err == baselines.ErrTimeout {
					oot[m][col] = true
					continue
				}
				var v float64
				if reduced {
					v = eval.Jaccard(tgt, rec)
				} else {
					v = eval.MultiJaccard(tgt, rec)
				}
				vals[m][col] = append(vals[m][col], 100*v)
			}
		}
	}
	for _, m := range methodNames {
		cells := make([]Cell, len(cfg.Datasets))
		for col := range cfg.Datasets {
			if len(vals[m][col]) == 0 {
				cells[col] = Cell{OOT: oot[m][col], NA: !oot[m][col]}
				continue
			}
			mean, std := eval.MeanStd(vals[m][col])
			cells[col] = Cell{Mean: mean, Std: std}
		}
		t.AddRow(m, cells...)
	}
	return t
}

// TableII regenerates the multiplicity-reduced reconstruction-accuracy
// table (Jaccard × 100, all twelve methods).
func TableII(cfg RunConfig) *Table {
	return accuracyTable(
		"Table II: reconstruction accuracy, multiplicity-reduced (Jaccard x100)",
		MethodNames, true, cfg)
}

// TableIII regenerates the multiplicity-preserved reconstruction-accuracy
// table (multi-Jaccard × 100, multiplicity-capable methods only).
func TableIII(cfg RunConfig) *Table {
	return accuracyTable(
		"Table III: reconstruction accuracy, multiplicity-preserved (multi-Jaccard x100)",
		MultiplicityMethodNames, false, cfg)
}

// transferPairs defines the Table V source→target mapping on our analogs.
var transferPairs = []struct{ src, dst string }{
	{"dblp", "dblp"},
	{"dblp", "mag-history"},
	{"dblp", "mag-topcs"},
	{"dblp", "mag-geology"},
	{"eu", "eu"},
	{"eu", "enron"},
	{"pschool", "pschool"},
	{"pschool", "hschool"},
}

// TableV regenerates the transfer-learning table: supervised methods are
// trained on one dataset's source half and evaluated on a different
// dataset's target half within the same domain.
func TableV(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	pairs := transferPairs
	if cfg.Quick {
		// Quick mode drops the expensive DBLP-sourced columns.
		pairs = pairs[4:]
	}
	header := make([]string, len(pairs))
	for i, p := range pairs {
		header[i] = p.src + "->" + p.dst
	}
	t := &Table{
		Title:  "Table V: transfer learning (Jaccard x100)",
		Header: header,
	}
	methodNames := []string{"SHyRe-Unsup", "SHyRe-Motif", "SHyRe-Count", "MARIOH"}
	vals := make(map[string][][]float64)
	oot := make(map[string][]bool)
	for _, m := range methodNames {
		vals[m] = make([][]float64, len(pairs))
		oot[m] = make([]bool, len(pairs))
	}
	for col, p := range pairs {
		for _, seed := range cfg.Seeds {
			srcDS := datasets.MustByName(p.src, seed)
			dstDS := datasets.MustByName(p.dst, seed+100) // distinct generation
			src := srcDS.Source.Reduced()
			tgt := dstDS.Target.Reduced()
			gT := tgt.Project()
			methods := buildMethods(src, seed, cfg, methodNames)
			for _, m := range methodNames {
				rec, err := methods[m](gT)
				if err == baselines.ErrTimeout {
					oot[m][col] = true
					continue
				}
				vals[m][col] = append(vals[m][col], 100*eval.Jaccard(tgt, rec))
			}
		}
	}
	for _, m := range methodNames {
		cells := make([]Cell, len(pairs))
		for col := range pairs {
			if len(vals[m][col]) == 0 {
				cells[col] = Cell{OOT: oot[m][col], NA: !oot[m][col]}
				continue
			}
			mean, std := eval.MeanStd(vals[m][col])
			cells[col] = Cell{Mean: mean, Std: std}
		}
		t.AddRow(m, cells...)
	}
	return t
}

// TableVI regenerates the semi-supervised table: MARIOH trained with 10%,
// 20%, 50% and 100% of the source hyperedges on DBLP, Hosts and Enron,
// against fully-supervised baselines.
func TableVI(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	dsNames := []string{"dblp", "hosts", "enron"}
	if cfg.Quick {
		dsNames = []string{"hosts", "enron"} // skip the expensive DBLP column
	}
	t := &Table{
		Title:  "Table VI: semi-supervised learning (Jaccard x100)",
		Header: dsNames,
	}
	baselineNames := []string{"Bayesian-MDL", "SHyRe-Motif", "SHyRe-Count"}
	ratios := []float64{0.1, 0.2, 0.5, 1.0}

	type key struct {
		row string
		col int
	}
	vals := make(map[key][]float64)
	oots := make(map[key]bool)
	for col, dsName := range dsNames {
		for _, seed := range cfg.Seeds {
			ds := datasets.MustByName(dsName, seed)
			src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
			gT := tgt.Project()
			methods := buildMethods(src, seed, cfg, baselineNames)
			for _, m := range baselineNames {
				rec, err := methods[m](gT)
				k := key{m, col}
				if err == baselines.ErrTimeout {
					oots[k] = true
					continue
				}
				vals[k] = append(vals[k], 100*eval.Jaccard(tgt, rec))
			}
			gS := src.Project()
			for _, r := range ratios {
				model := core.Train(gS, src, core.TrainOptions{
					Seed: seed, Epochs: cfg.epochs(), SupervisionRatio: r,
				})
				res := core.Reconstruct(gT, model, core.Options{Seed: seed})
				k := key{fmt.Sprintf("MARIOH (%d%%)", int(r*100)), col}
				vals[k] = append(vals[k], 100*eval.Jaccard(tgt, res.Hypergraph))
			}
		}
	}
	rowNames := append(append([]string{}, baselineNames...),
		"MARIOH (10%)", "MARIOH (20%)", "MARIOH (50%)", "MARIOH (100%)")
	for _, rn := range rowNames {
		cells := make([]Cell, len(dsNames))
		for col := range dsNames {
			k := key{rn, col}
			if len(vals[k]) == 0 {
				cells[col] = Cell{OOT: oots[k], NA: !oots[k]}
				continue
			}
			mean, std := eval.MeanStd(vals[k])
			cells[col] = Cell{Mean: mean, Std: std}
		}
		t.AddRow(rn, cells...)
	}
	return t
}
