package experiments

import (
	"fmt"

	"marioh/internal/baselines"
	"marioh/internal/datasets"
	"marioh/internal/downstream"
	"marioh/internal/eval"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/linalg"
)

// downstreamMethodNames are the reconstruction methods compared in the
// downstream-task tables (VII–IX); "Projected graph" and "Original
// hypergraph" rows are added by the drivers.
var downstreamMethodNames = []string{
	"SHyRe-Unsup", "SHyRe-Motif", "SHyRe-Count", "MARIOH",
}

// downstreamInputs builds, for one dataset seed, the list of inputs the
// downstream tables compare: the projected graph, each method's
// reconstruction, and the ground truth.
type downstreamInput struct {
	name string
	g    *graph.Graph           // always the target projection
	h    *hypergraph.Hypergraph // nil for the projected-graph row
	oot  bool
}

func buildDownstreamInputs(dsName string, seed int64, cfg RunConfig) []downstreamInput {
	ds := datasets.MustByName(dsName, seed)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	gT := tgt.Project()
	methods := buildMethods(src, seed, cfg, downstreamMethodNames)
	inputs := []downstreamInput{{name: "Projected graph G", g: gT}}
	for _, m := range downstreamMethodNames {
		rec, err := methods[m](gT)
		in := downstreamInput{name: "H by " + m, g: gT, h: rec}
		if err == baselines.ErrTimeout {
			in.oot = true
		}
		inputs = append(inputs, in)
	}
	inputs = append(inputs, downstreamInput{name: "Original hypergraph H", g: gT, h: tgt})
	return inputs
}

// downstreamRowNames returns the row labels in table order.
func downstreamRowNames() []string {
	rows := []string{"Projected graph G"}
	for _, m := range downstreamMethodNames {
		rows = append(rows, "H by "+m)
	}
	return append(rows, "Original hypergraph H")
}

// TableVII regenerates the node-clustering table: NMI of spectral
// clustering on each input for the school contact datasets.
func TableVII(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	dsNames := []string{"pschool", "hschool"}
	t := &Table{
		Title:  "Table VII: node clustering (NMI, higher is better)",
		Header: dsNames,
	}
	vals := make(map[string][][]float64)
	oot := make(map[string][]bool)
	for _, rn := range downstreamRowNames() {
		vals[rn] = make([][]float64, len(dsNames))
		oot[rn] = make([]bool, len(dsNames))
	}
	for col, dsName := range dsNames {
		labels := datasets.MustByName(dsName, cfg.Seeds[0]).Labels
		for _, seed := range cfg.Seeds {
			for _, in := range buildDownstreamInputs(dsName, seed, cfg) {
				if in.oot {
					oot[in.name][col] = true
					continue
				}
				nmi := downstream.ClusteringNMI(in.g, in.h, labels, seed)
				vals[in.name][col] = append(vals[in.name][col], nmi)
			}
		}
	}
	fillRows(t, downstreamRowNames(), dsNames, vals, oot)
	return t
}

// TableVIII regenerates the node-classification table: micro and macro F1
// of an MLP on spectral embeddings for the school contact datasets.
func TableVIII(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	dsNames := []string{"pschool", "hschool"}
	t := &Table{
		Title:  "Table VIII: node classification (F1, higher is better)",
		Header: []string{"Micro pschool", "Micro hschool", "Macro pschool", "Macro hschool"},
	}
	const embDim = 16
	micro := make(map[string][][]float64)
	macro := make(map[string][][]float64)
	oot := make(map[string][]bool)
	for _, rn := range downstreamRowNames() {
		micro[rn] = make([][]float64, len(dsNames))
		macro[rn] = make([][]float64, len(dsNames))
		oot[rn] = make([]bool, len(dsNames))
	}
	for col, dsName := range dsNames {
		labels := datasets.MustByName(dsName, cfg.Seeds[0]).Labels
		for _, seed := range cfg.Seeds {
			for _, in := range buildDownstreamInputs(dsName, seed, cfg) {
				if in.oot {
					oot[in.name][col] = true
					continue
				}
				var emb = embeddingFor(in, embDim)
				mi, ma := downstream.ClassificationF1(emb, labels, 3, seed)
				micro[in.name][col] = append(micro[in.name][col], mi)
				macro[in.name][col] = append(macro[in.name][col], ma)
			}
		}
	}
	for _, rn := range downstreamRowNames() {
		cells := make([]Cell, 0, 4)
		for _, m := range [][][]float64{micro[rn], macro[rn]} {
			for col := range dsNames {
				if len(m[col]) == 0 {
					cells = append(cells, Cell{OOT: oot[rn][col], NA: !oot[rn][col]})
					continue
				}
				mean, std := eval.MeanStd(m[col])
				cells = append(cells, Cell{Mean: mean, Std: std})
			}
		}
		t.AddRow(rn, cells...)
	}
	return t
}

func embeddingFor(in downstreamInput, dim int) *linalg.Matrix {
	if in.h != nil {
		return downstream.HypergraphEmbedding(in.h, dim)
	}
	return downstream.GraphEmbedding(in.g, dim)
}

// TableIX regenerates the link-prediction table: AUC with graph features
// versus hypergraph-enriched features across all datasets.
func TableIX(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Table IX: link prediction (AUC x100, higher is better)",
		Header: cfg.Datasets,
	}
	rows := downstreamRowNames()
	vals := make(map[string][][]float64)
	oot := make(map[string][]bool)
	for _, rn := range rows {
		vals[rn] = make([][]float64, len(cfg.Datasets))
		oot[rn] = make([]bool, len(cfg.Datasets))
	}
	for col, dsName := range cfg.Datasets {
		for _, seed := range cfg.Seeds {
			for _, in := range buildDownstreamInputs(dsName, seed, cfg) {
				if in.oot {
					oot[in.name][col] = true
					continue
				}
				auc := downstream.LinkPredictionAUC(in.g, in.h, downstream.LinkPredOptions{Seed: seed})
				vals[in.name][col] = append(vals[in.name][col], 100*auc)
			}
		}
	}
	fillRows(t, rows, cfg.Datasets, vals, oot)
	addAvgRankColumn(t)
	return t
}

// addAvgRankColumn appends the paper's "Avg. Rank" column: per dataset
// column, rows are ranked by mean (higher is better, rank 1 best; OOT/NA
// cells get the worst rank), then ranks are averaged per row.
func addAvgRankColumn(t *Table) {
	nCols := len(t.Header)
	rankSums := make([]float64, len(t.Rows))
	for col := 0; col < nCols; col++ {
		type rv struct {
			row  int
			mean float64
			ok   bool
		}
		vals := make([]rv, len(t.Rows))
		for i, r := range t.Rows {
			c := r.Cells[col]
			vals[i] = rv{row: i, mean: c.Mean, ok: !c.OOT && !c.NA}
		}
		// Higher mean = better rank. Missing entries rank last.
		order := make([]int, len(vals))
		for i := range order {
			order[i] = i
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a, b := vals[order[j-1]], vals[order[j]]
				worse := (!a.ok && b.ok) || (a.ok == b.ok && a.mean < b.mean)
				if worse {
					order[j-1], order[j] = order[j], order[j-1]
				} else {
					break
				}
			}
		}
		for rank, idx := range order {
			rankSums[vals[idx].row] += float64(rank + 1)
		}
	}
	t.Header = append(t.Header, "Avg. Rank")
	for i := range t.Rows {
		t.Rows[i].Cells = append(t.Rows[i].Cells,
			Cell{Raw: fmt.Sprintf("%.2f", rankSums[i]/float64(nCols))})
	}
}

// fillRows converts accumulated per-column samples into table rows.
func fillRows(t *Table, rowNames, cols []string, vals map[string][][]float64, oot map[string][]bool) {
	for _, rn := range rowNames {
		cells := make([]Cell, len(cols))
		for col := range cols {
			if len(vals[rn][col]) == 0 {
				cells[col] = Cell{OOT: oot[rn][col], NA: !oot[rn][col]}
				continue
			}
			mean, std := eval.MeanStd(vals[rn][col])
			cells[col] = Cell{Mean: mean, Std: std}
		}
		t.AddRow(rn, cells...)
	}
}
