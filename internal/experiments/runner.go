package experiments

import (
	"context"
	"sort"
	"time"

	"marioh/internal/baselines"
	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/features"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// RunConfig controls experiment cost so the same drivers serve both the
// full cmd/benchall run and the quick root-level benchmarks.
type RunConfig struct {
	// Seeds are the dataset/reconstruction seeds averaged over; default
	// {1, 2, 3}.
	Seeds []int64
	// Timeout is the per-(method, dataset, seed) reconstruction budget;
	// methods exceeding it are reported as OOT, mirroring the paper's 24 h
	// budget at laptop scale. Default 20 s.
	Timeout time.Duration
	// Datasets restricts the dataset columns; default: the paper's ten.
	Datasets []string
	// Quick halves training epochs and skips the slowest baselines where a
	// table allows it.
	Quick bool
	// Context, when non-nil, cancels in-flight MARIOH reconstructions (the
	// baselines poll their own deadlines); cmd/benchall wires it to
	// SIGINT. Defaults to context.Background().
	Context context.Context
}

func (c RunConfig) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

func (c RunConfig) defaults() RunConfig {
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Timeout <= 0 {
		c.Timeout = 20 * time.Second
	}
	if len(c.Datasets) == 0 {
		c.Datasets = datasets.TableINames()
	}
	return c
}

func (c RunConfig) epochs() int {
	if c.Quick {
		return 25
	}
	return 60
}

// reconstructor runs one method against a target projected graph.
type reconstructor func(g *graph.Graph) (*hypergraph.Hypergraph, error)

// MethodNames is the Table II method order.
var MethodNames = []string{
	"CFinder", "Demon", "MaxClique", "CliqueCovering", "Bayesian-MDL",
	"SHyRe-Unsup", "SHyRe-Motif", "SHyRe-Count",
	"MARIOH-M", "MARIOH-F", "MARIOH-B", "MARIOH",
}

// MultiplicityMethodNames is the Table III method order (only methods that
// can emit hyperedge multiplicities).
var MultiplicityMethodNames = []string{
	"Bayesian-MDL", "SHyRe-Unsup", "MARIOH-M", "MARIOH-F", "MARIOH-B", "MARIOH",
}

// buildMethods trains every supervised method on the dataset's source half
// and returns reconstructors keyed by method name. Only the methods in
// `which` are built (nil = all). Shared classifiers are trained once: the
// MARIOH/-F/-B variants share the multiplicity-aware model, MARIOH-M uses
// the SHyRe-Count featurizer inside the MARIOH search.
func buildMethods(src *hypergraph.Hypergraph, seed int64, cfg RunConfig, which []string) map[string]reconstructor {
	// Re-apply defaults: a caller passing a zero RunConfig must not hand
	// the MARIOH variants an already-expired zero-duration timeout.
	cfg = cfg.defaults()
	wanted := make(map[string]bool)
	if which == nil {
		which = MethodNames
	}
	for _, w := range which {
		wanted[w] = true
	}
	out := make(map[string]reconstructor, len(which))
	gSrc := src.Project()

	needMariohModel := wanted["MARIOH"] || wanted["MARIOH-F"] || wanted["MARIOH-B"]
	var mariohModel, mariohM *core.Model
	if needMariohModel {
		mariohModel = core.Train(gSrc, src, core.TrainOptions{Seed: seed, Epochs: cfg.epochs()})
	}
	if wanted["MARIOH-M"] {
		mariohM = core.Train(gSrc, src, core.TrainOptions{
			Featurizer: features.ShyreCount{}, Seed: seed, Epochs: cfg.epochs(),
		})
	}
	// MARIOH variants honor the per-run budget through context, the same
	// cancellation path the public Reconstructor API uses; exceeding it
	// surfaces as an error and is rendered as OOT.
	mariohRec := func(m *core.Model, opt core.Options) reconstructor {
		return func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			ctx, cancel := context.WithTimeout(cfg.ctx(), cfg.Timeout)
			defer cancel()
			res, err := core.ReconstructContext(ctx, g, m, opt)
			if err != nil {
				// The tables render every failure as OOT, matching the
				// baselines' deadline sentinel.
				return nil, baselines.ErrTimeout
			}
			return res.Hypergraph, nil
		}
	}
	if wanted["MARIOH"] {
		out["MARIOH"] = mariohRec(mariohModel, core.Options{Seed: seed})
	}
	if wanted["MARIOH-F"] {
		out["MARIOH-F"] = mariohRec(mariohModel, core.Options{Seed: seed, DisableFiltering: true})
	}
	if wanted["MARIOH-B"] {
		out["MARIOH-B"] = mariohRec(mariohModel, core.Options{Seed: seed, DisableBidirectional: true})
	}
	if wanted["MARIOH-M"] {
		out["MARIOH-M"] = mariohRec(mariohM, core.Options{Seed: seed})
	}
	if wanted["SHyRe-Count"] {
		sh := &baselines.Shyre{Seed: seed}
		sh.Train(gSrc, src)
		out["SHyRe-Count"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			sh2 := *sh
			sh2.Deadline = time.Now().Add(cfg.Timeout)
			return sh2.Reconstruct(g)
		}
	}
	if wanted["SHyRe-Motif"] {
		sh := &baselines.Shyre{Motif: true, Seed: seed}
		sh.Train(gSrc, src)
		out["SHyRe-Motif"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			sh2 := *sh
			sh2.Deadline = time.Now().Add(cfg.Timeout)
			return sh2.Reconstruct(g)
		}
	}
	if wanted["SHyRe-Unsup"] {
		out["SHyRe-Unsup"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			return baselines.ShyreUnsup{Deadline: time.Now().Add(cfg.Timeout)}.Reconstruct(g)
		}
	}
	if wanted["Bayesian-MDL"] {
		out["Bayesian-MDL"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			return baselines.BayesianMDL{Seed: seed, Deadline: time.Now().Add(cfg.Timeout)}.Reconstruct(g)
		}
	}
	if wanted["MaxClique"] {
		out["MaxClique"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			return baselines.MaxClique{}.Reconstruct(g)
		}
	}
	if wanted["CliqueCovering"] {
		out["CliqueCovering"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			return baselines.CliqueCovering{}.Reconstruct(g)
		}
	}
	if wanted["Demon"] {
		out["Demon"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			return baselines.Demon{Deadline: time.Now().Add(cfg.Timeout)}.Reconstruct(g)
		}
	}
	if wanted["CFinder"] {
		k := cfinderK(src)
		out["CFinder"] = func(g *graph.Graph) (*hypergraph.Hypergraph, error) {
			return baselines.CFinder{K: k, Deadline: time.Now().Add(cfg.Timeout)}.Reconstruct(g)
		}
	}
	return out
}

// cfinderK picks the percolation clique size from the 0.3 quantile of the
// source hyperedge sizes, clamped to [3, 6] — the paper selects k within
// the [0.1, 0.5] size-quantile range.
func cfinderK(src *hypergraph.Hypergraph) int {
	sizes := src.EdgeSizes()
	if len(sizes) == 0 {
		return 3
	}
	sort.Ints(sizes)
	k := sizes[len(sizes)*3/10]
	if k < 3 {
		k = 3
	}
	if k > 6 {
		k = 6
	}
	return k
}
