package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFig4Shape(t *testing.T) {
	tables := Fig4(quickCfg("crime"))
	if len(tables) != 3 {
		t.Fatalf("Fig4 returned %d tables, want 3 (alpha, r, theta)", len(tables))
	}
	for _, tab := range tables {
		// One Jaccard and one multi-Jaccard row per dataset.
		if len(tab.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2", tab.Title, len(tab.Rows))
		}
		for _, r := range tab.Rows {
			if len(r.Cells) != len(tab.Header) {
				t.Fatalf("%s: ragged row %q", tab.Title, r.Name)
			}
			// Crime is easy at every hyperparameter setting.
			for i, c := range r.Cells {
				v, err := strconv.ParseFloat(c.Raw, 64)
				if err != nil {
					t.Fatalf("%s: cell %d not a number: %q", tab.Title, i, c.Raw)
				}
				if v < 0.8 {
					t.Errorf("%s %s @%s = %v, want ≥ 0.8", tab.Title, r.Name, tab.Header[i], v)
				}
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tab := Fig5(quickCfg("crime", "directors"))
	if len(tab.Rows) != len(MethodNames) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != 2 {
			t.Fatalf("row %q has %d cells", r.Name, len(r.Cells))
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6(quickCfg("crime"))
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Rows[0].Cells) != 7 {
		t.Fatalf("cells = %d, want 7 breakdown segments", len(tab.Rows[0].Cells))
	}
}

func TestFig7ScalesNearLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is slow")
	}
	tab := Fig7(quickCfg())
	last := tab.Rows[len(tab.Rows)-1]
	if last.Name != "log-log slope" {
		t.Fatalf("missing slope row: %q", last.Name)
	}
	// The paper reports slope ≈ 1; allow a generous band since quick mode
	// uses only three sizes and small absolute times.
	for i, c := range last.Cells[1:] {
		slope, err := strconv.ParseFloat(c.Raw, 64)
		if err != nil {
			t.Fatalf("slope cell %d: %q", i, c.Raw)
		}
		if slope < 0.3 || slope > 2.5 {
			t.Errorf("log-log slope %d = %v, want near-linear", i, slope)
		}
	}
}

func TestTableVIIOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering experiment is slow")
	}
	tab := TableVII(RunConfig{Seeds: []int64{1}, Quick: true, Timeout: quickCfg().Timeout})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// All NMI values must be valid probabilities-ish.
	for _, r := range tab.Rows {
		for i, c := range r.Cells {
			if c.OOT || c.NA {
				continue
			}
			if c.Mean < 0 || c.Mean > 1.0001 {
				t.Errorf("%s col %d NMI = %v", r.Name, i, c.Mean)
			}
		}
	}
}

func TestTableIXShape(t *testing.T) {
	if testing.Short() {
		t.Skip("link prediction is slow")
	}
	tab := TableIX(quickCfg("crime"))
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	if !strings.Contains(tab.Title, "AUC") {
		t.Fatal("title should mention AUC")
	}
}
