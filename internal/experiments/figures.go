package experiments

import (
	"fmt"
	"math"
	"time"

	"marioh/internal/baselines"
	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/eval"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// Short aliases keep the Fig4 prep struct readable.
type (
	graphAlias      = graph.Graph
	hypergraphAlias = hypergraph.Hypergraph
)

// Fig4 regenerates the hyperparameter-sensitivity study: Jaccard (reduced
// setting) and multi-Jaccard (preserved setting) as each of α, r and
// θ_init sweeps its range while the others stay at the defaults. One table
// per swept parameter; columns are the swept values, rows are datasets ×
// {Jaccard, Multi-Jaccard}.
func Fig4(cfg RunConfig) []*Table {
	cfg = cfg.defaults()
	dsNames := cfg.Datasets
	if len(dsNames) > 3 {
		dsNames = []string{"crime", "hosts", "pschool"}
	}
	seed := cfg.Seeds[0]

	type sweep struct {
		name   string
		values []float64
		apply  func(*core.Options, float64)
		label  func(float64) string
	}
	sweeps := []sweep{
		{
			name:   "alpha",
			values: []float64{1.0 / 5, 1.0 / 15, 1.0 / 25, 1.0 / 35},
			apply:  func(o *core.Options, v float64) { o.Alpha = v },
			label:  func(v float64) string { return fmt.Sprintf("1/%d", int(math.Round(1/v))) },
		},
		{
			name:   "r",
			values: []float64{20, 40, 60, 80, 100},
			apply:  func(o *core.Options, v float64) { o.R = v },
			label:  func(v float64) string { return fmt.Sprintf("%d%%", int(v)) },
		},
		{
			name:   "theta_init",
			values: []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
			apply:  func(o *core.Options, v float64) { o.ThetaInit = v },
			label:  func(v float64) string { return fmt.Sprintf("%.1f", v) },
		},
	}

	// Train the reduced- and preserved-setting models once per dataset;
	// every sweep reuses them.
	type prepped struct {
		mR, mP   *core.Model
		gR, gP   *graphAlias
		tgtR     *hypergraphAlias
		tgtMulti *hypergraphAlias
	}
	prep := make(map[string]prepped, len(dsNames))
	for _, dsName := range dsNames {
		ds := datasets.MustByName(dsName, seed)
		srcR, tgtR := ds.Source.Reduced(), ds.Target.Reduced()
		prep[dsName] = prepped{
			mR:       core.Train(srcR.Project(), srcR, core.TrainOptions{Seed: seed, Epochs: cfg.epochs()}),
			mP:       core.Train(ds.Source.Project(), ds.Source, core.TrainOptions{Seed: seed, Epochs: cfg.epochs()}),
			gR:       tgtR.Project(),
			gP:       ds.Target.Project(),
			tgtR:     tgtR,
			tgtMulti: ds.Target,
		}
	}

	var out []*Table
	for _, sw := range sweeps {
		header := make([]string, len(sw.values))
		for i, v := range sw.values {
			header[i] = sw.label(v)
		}
		t := &Table{
			Title:  "Fig 4: sensitivity to " + sw.name,
			Header: header,
		}
		for _, dsName := range dsNames {
			p := prep[dsName]
			mR, mP, gR, gP, tgtR := p.mR, p.mP, p.gR, p.gP, p.tgtR

			jc := make([]Cell, len(sw.values))
			mj := make([]Cell, len(sw.values))
			for i, v := range sw.values {
				opt := core.Options{Seed: seed}
				sw.apply(&opt, v)
				res := core.Reconstruct(gR, mR, opt)
				jc[i] = Cell{Raw: fmt.Sprintf("%.3f", eval.Jaccard(tgtR, res.Hypergraph))}
				opt2 := core.Options{Seed: seed}
				sw.apply(&opt2, v)
				res2 := core.Reconstruct(gP, mP, opt2)
				mj[i] = Cell{Raw: fmt.Sprintf("%.3f", eval.MultiJaccard(p.tgtMulti, res2.Hypergraph))}
			}
			t.AddRow(dsName+" Jaccard", jc...)
			t.AddRow(dsName+" Multi-Jaccard", mj...)
		}
		out = append(out, t)
	}
	return out
}

// Fig5 regenerates the average-runtime comparison: wall-clock seconds per
// method, averaged over the datasets the method finishes within budget.
func Fig5(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Fig 5: average runtime (seconds; reconstruction only)",
		Header: []string{"Avg runtime (s)", "Datasets finished"},
	}
	seed := cfg.Seeds[0]
	durs := make(map[string][]float64)
	for _, dsName := range cfg.Datasets {
		ds := datasets.MustByName(dsName, seed)
		src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
		gT := tgt.Project()
		methods := buildMethods(src, seed, cfg, MethodNames)
		for _, m := range MethodNames {
			t0 := time.Now()
			_, err := methods[m](gT)
			if err == baselines.ErrTimeout {
				continue
			}
			durs[m] = append(durs[m], time.Since(t0).Seconds())
		}
	}
	for _, m := range MethodNames {
		if len(durs[m]) == 0 {
			t.AddRow(m, Cell{OOT: true}, Cell{Raw: "0"})
			continue
		}
		mean, _ := eval.MeanStd(durs[m])
		t.AddRow(m,
			Cell{Raw: fmt.Sprintf("%.3f", mean)},
			Cell{Raw: fmt.Sprintf("%d/%d", len(durs[m]), len(cfg.Datasets))})
	}
	return t
}

// Fig6 regenerates the runtime breakdown of MARIOH versus SHyRe-Count:
// per dataset, the time spent in load/sample, train, and the
// inference-side steps (filtering + bidirectional search for MARIOH; the
// classification pass for SHyRe-Count).
func Fig6(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	t := &Table{
		Title: "Fig 6: runtime breakdown (seconds)",
		Header: []string{
			"SHyRe sample", "SHyRe train", "SHyRe infer",
			"MARIOH sample", "MARIOH train", "MARIOH filter", "MARIOH bidir",
		},
	}
	seed := cfg.Seeds[0]
	for _, dsName := range cfg.Datasets {
		ds := datasets.MustByName(dsName, seed)
		src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
		gS, gT := src.Project(), tgt.Project()

		sh := &baselines.Shyre{Seed: seed}
		sh.Train(gS, src)
		shModelStats := sh.TrainStats()
		t0 := time.Now()
		shCopy := *sh
		shCopy.Deadline = time.Now().Add(cfg.Timeout)
		_, shErr := shCopy.Reconstruct(gT)
		shInfer := time.Since(t0).Seconds()

		m := core.Train(gS, src, core.TrainOptions{Seed: seed, Epochs: cfg.epochs()})
		res := core.Reconstruct(gT, m, core.Options{Seed: seed})

		shInferCell := Cell{Raw: fmt.Sprintf("%.3f", shInfer)}
		if shErr == baselines.ErrTimeout {
			shInferCell = Cell{OOT: true}
		}
		t.AddRow(dsName,
			Cell{Raw: fmt.Sprintf("%.3f", shModelStats.SampleTime.Seconds())},
			Cell{Raw: fmt.Sprintf("%.3f", shModelStats.TrainTime.Seconds())},
			shInferCell,
			Cell{Raw: fmt.Sprintf("%.3f", m.Stats.SampleTime.Seconds())},
			Cell{Raw: fmt.Sprintf("%.3f", m.Stats.TrainTime.Seconds())},
			Cell{Raw: fmt.Sprintf("%.3f", res.Times.Filtering.Seconds())},
			Cell{Raw: fmt.Sprintf("%.3f", res.Times.Bidirectional.Seconds())},
		)
	}
	return t
}

// Fig7 regenerates the scalability study: HyperCL-generated graphs of
// growing size (DBLP statistics), reporting the filtering and
// bidirectional-search runtimes and the fitted log-log slope, which the
// paper shows to be ≈ 1 (near-linear scaling).
func Fig7(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	factors := []float64{0.25, 0.5, 1, 2, 4}
	if cfg.Quick {
		factors = []float64{0.25, 0.5, 1}
	}
	seed := cfg.Seeds[0]
	t := &Table{
		Title:  "Fig 7: scalability on HyperCL (DBLP stats)",
		Header: []string{"|E_G|", "Filter (s)", "Bidirectional (s)"},
	}
	// Train once on the real DBLP analog, as the paper does.
	train := datasets.MustByName("dblp", seed)
	src := train.Source.Reduced()
	model := core.Train(src.Project(), src, core.TrainOptions{Seed: seed, Epochs: cfg.epochs()})

	var logE, logF, logB []float64
	for _, f := range factors {
		h := datasets.DBLPLikeHyperCL(f, seed)
		g := h.Project()
		res := core.Reconstruct(g, model, core.Options{Seed: seed})
		t.AddRow(fmt.Sprintf("x%.2g", f),
			Cell{Raw: fmt.Sprintf("%d", g.NumEdges())},
			Cell{Raw: fmt.Sprintf("%.4f", res.Times.Filtering.Seconds())},
			Cell{Raw: fmt.Sprintf("%.4f", res.Times.Bidirectional.Seconds())},
		)
		logE = append(logE, math.Log(float64(g.NumEdges())))
		logF = append(logF, math.Log(math.Max(res.Times.Filtering.Seconds(), 1e-6)))
		logB = append(logB, math.Log(math.Max(res.Times.Bidirectional.Seconds(), 1e-6)))
	}
	t.AddRow("log-log slope",
		Cell{Raw: "-"},
		Cell{Raw: fmt.Sprintf("%.2f", slope(logE, logF))},
		Cell{Raw: fmt.Sprintf("%.2f", slope(logE, logB))},
	)
	return t
}

// slope returns the least-squares slope of y against x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
