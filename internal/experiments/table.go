// Package experiments contains one driver per table and figure of the
// MARIOH paper's evaluation section. Each driver regenerates the same rows
// the paper reports — methods × datasets with mean ± std over seeds, "OOT"
// markers for methods that exceed their time budget — so that cmd/benchall
// and the root-level benchmarks can print paper-shaped output.
package experiments

import (
	"fmt"
	"strings"
)

// Cell is one table entry: a mean ± std, or a marker.
type Cell struct {
	Mean, Std float64
	OOT       bool // out of time (exceeded the harness deadline)
	NA        bool // not applicable (method not defined for the setting)
	Raw       string
}

// FmtCell renders a cell the way the paper prints accuracy values
// (scaled by 100 where the driver chooses to).
func (c Cell) String() string {
	switch {
	case c.Raw != "":
		return c.Raw
	case c.OOT:
		return "OOT"
	case c.NA:
		return "-"
	default:
		return fmt.Sprintf("%.2f±%.2f", c.Mean, c.Std)
	}
}

// Row is a named table row.
type Row struct {
	Name  string
	Cells []Cell
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   []Row
}

// AddRow appends a row.
func (t *Table) AddRow(name string, cells ...Cell) {
	t.Rows = append(t.Rows, Row{Name: name, Cells: cells})
}

// Cell returns the cell at (row name, column index) or a zero Cell.
func (t *Table) Cell(rowName string, col int) Cell {
	for _, r := range t.Rows {
		if r.Name == rowName && col < len(r.Cells) {
			return r.Cells[col]
		}
	}
	return Cell{NA: true}
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header)+1)
	widths[0] = len("Method")
	for _, r := range t.Rows {
		if len(r.Name) > widths[0] {
			widths[0] = len(r.Name)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Cells))
		for j, c := range r.Cells {
			cells[i][j] = c.String()
			if j+1 < len(widths) && len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	for j, h := range t.Header {
		if len(h) > widths[j+1] {
			widths[j+1] = len(h)
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0]+2, "Method")
	for j, h := range t.Header {
		fmt.Fprintf(&b, "%*s", widths[j+1]+2, h)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, r.Name)
		for j := range r.Cells {
			fmt.Fprintf(&b, "%*s", widths[j+1]+2, cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
