package experiments

import (
	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/eval"
	"marioh/internal/features"
)

// featurizerAblationSet lists the clique representations compared in the
// Sect. IV-E feature study: the full multiplicity-aware set against the
// alternatives a designer might plausibly pick.
var featurizerAblationSet = []features.Featurizer{
	features.Marioh{},
	features.MariohNoMHH{},
	features.ShyreCount{},
	features.ShyreMotif{},
}

// FeaturizerAblation runs the MARIOH search with each candidate clique
// representation and reports reconstruction Jaccard (×100) per dataset —
// the experiment behind the paper's claim that multiplicity-derived
// features beat other feasible representations.
func FeaturizerAblation(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Ablation: clique feature representations inside the MARIOH search (Jaccard x100)",
		Header: cfg.Datasets,
	}
	vals := make(map[string][][]float64)
	for _, f := range featurizerAblationSet {
		vals[f.Name()] = make([][]float64, len(cfg.Datasets))
	}
	for col, dsName := range cfg.Datasets {
		for _, seed := range cfg.Seeds {
			ds := datasets.MustByName(dsName, seed)
			src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
			gS, gT := src.Project(), tgt.Project()
			for _, f := range featurizerAblationSet {
				model := core.Train(gS, src, core.TrainOptions{
					Featurizer: f, Seed: seed, Epochs: cfg.epochs(),
				})
				res := core.Reconstruct(gT, model, core.Options{Seed: seed})
				vals[f.Name()][col] = append(vals[f.Name()][col],
					100*eval.Jaccard(tgt, res.Hypergraph))
			}
		}
	}
	for _, f := range featurizerAblationSet {
		cells := make([]Cell, len(cfg.Datasets))
		for col := range cfg.Datasets {
			mean, std := eval.MeanStd(vals[f.Name()][col])
			cells[col] = Cell{Mean: mean, Std: std}
		}
		t.AddRow(f.Name(), cells...)
	}
	return t
}
