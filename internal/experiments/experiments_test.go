package experiments

import (
	"strings"
	"testing"
	"time"

	"marioh/internal/hypergraph"
)

// quickCfg keeps harness tests fast: tiny datasets, one seed, low epochs.
func quickCfg(datasets ...string) RunConfig {
	return RunConfig{
		Seeds:    []int64{1},
		Timeout:  8 * time.Second,
		Datasets: datasets,
		Quick:    true,
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}}
	tab.AddRow("m1", Cell{Mean: 1.5, Std: 0.1}, Cell{OOT: true})
	tab.AddRow("m2", Cell{NA: true}, Cell{Raw: "x"})
	out := tab.Render()
	for _, want := range []string{"T", "m1", "1.50±0.10", "OOT", "-", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if got := tab.Cell("m1", 1); !got.OOT {
		t.Fatal("Cell lookup failed")
	}
	if got := tab.Cell("nope", 0); !got.NA {
		t.Fatal("missing row should be NA")
	}
}

func TestTableI(t *testing.T) {
	tab := TableI(1)
	if len(tab.Rows) != 10 {
		t.Fatalf("Table I rows = %d", len(tab.Rows))
	}
}

func TestTableIIShape(t *testing.T) {
	tab := TableII(quickCfg("crime", "directors"))
	if len(tab.Rows) != len(MethodNames) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(MethodNames))
	}
	// The paper's headline shape: MARIOH must be at least as good as every
	// baseline on the easy, unambiguous datasets, and CFinder must not win.
	for col := range tab.Header {
		marioh := tab.Cell("MARIOH", col)
		if marioh.Mean < 99 {
			t.Errorf("MARIOH on %s = %v, want ≈ 100", tab.Header[col], marioh.Mean)
		}
		cf := tab.Cell("CFinder", col)
		if cf.Mean > marioh.Mean {
			t.Errorf("CFinder beat MARIOH on %s", tab.Header[col])
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	tab := TableIII(quickCfg("crime"))
	if len(tab.Rows) != len(MultiplicityMethodNames) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if got := tab.Cell("MARIOH", 0); got.Mean < 95 {
		t.Errorf("MARIOH multi-Jaccard on crime = %v", got.Mean)
	}
}

func TestTableIVShape(t *testing.T) {
	tab := TableIV(quickCfg("crime", "hosts"))
	// 12 property rows + the overall average.
	if len(tab.Rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Name != "Average (Overall)" {
		t.Fatalf("last row = %q", last.Name)
	}
	// MARIOH's overall preservation error should be small on easy data.
	mi := -1
	for i, m := range structuralMethodNames {
		if m == "MARIOH" {
			mi = i
		}
	}
	if c := last.Cells[mi]; c.NA || c.Mean > 0.3 {
		t.Errorf("MARIOH overall error = %+v", c)
	}
}

func TestTableVIShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = nil // TableVI uses its own dataset list
	tab := TableVI(RunConfig{Seeds: []int64{1}, Timeout: 8 * time.Second, Quick: true})
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	// 100% supervision should not be (much) worse than 10%.
	full := tab.Cell("MARIOH (100%)", 1) // hosts column
	ten := tab.Cell("MARIOH (10%)", 1)
	if full.Mean+15 < ten.Mean {
		t.Errorf("full supervision much worse than 10%%: %v vs %v", full.Mean, ten.Mean)
	}
}

func TestCfinderKClamps(t *testing.T) {
	small := quickHypergraph([][]int{{0, 1}, {2, 3}})
	if k := cfinderK(small); k != 3 {
		t.Fatalf("k = %d, want clamp to 3", k)
	}
}

func quickHypergraph(edges [][]int) *hypergraph.Hypergraph {
	h := hypergraph.New(10)
	for _, e := range edges {
		h.Add(e)
	}
	return h
}
