package experiments

import (
	"fmt"
	"math/rand"

	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/eval"
)

// featureGroups names the blocks of the MARIOH feature vector (Sect.
// III-D) for the appendix's feature-importance analysis. Indices follow
// features.Marioh's layout: five aggregates per node/edge family, then the
// three clique-level scalars.
var featureGroups = []struct {
	name    string
	indices []int
}{
	{"node weighted degree", []int{0, 1, 2, 3, 4}},
	{"edge multiplicity w", []int{5, 6, 7, 8, 9}},
	{"edge MHH", []int{10, 11, 12, 13, 14}},
	{"edge MHH/w ratio", []int{15, 16, 17, 18, 19}},
	{"clique size", []int{20}},
	{"clique cut ratio", []int{21}},
	{"maximality flag", []int{22}},
}

// FeatureImportance regenerates the appendix's feature-importance
// analysis via permutation importance: a multiplicity-aware classifier is
// trained on each dataset's source half, a held-out example set is built
// with a different sampling seed, and each feature group's columns are
// shuffled to measure the resulting AUC drop. Larger drops mean the group
// carries more signal.
func FeatureImportance(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Appendix: permutation feature importance (AUC drop)",
		Header: cfg.Datasets,
	}
	drops := make([][][]float64, len(featureGroups))
	for gi := range featureGroups {
		drops[gi] = make([][]float64, len(cfg.Datasets))
	}
	base := make([][]float64, len(cfg.Datasets))
	for col, dsName := range cfg.Datasets {
		for _, seed := range cfg.Seeds {
			ds := datasets.MustByName(dsName, seed)
			src := ds.Source.Reduced()
			gS := src.Project()
			model := core.Train(gS, src, core.TrainOptions{Seed: seed, Epochs: cfg.epochs()})

			// Held-out example set: same construction, different seed.
			X, y, _ := core.BuildExamples(gS, src, core.TrainOptions{Seed: seed + 999})
			if len(X) == 0 {
				continue
			}
			scores := scoreAll(model, X)
			baseAUC := eval.AUC(scores, toInt(y))
			base[col] = append(base[col], baseAUC)

			rng := rand.New(rand.NewSource(seed + 7))
			for gi, grp := range featureGroups {
				perm := permuteColumns(X, grp.indices, rng)
				aucPerm := eval.AUC(scoreAll(model, perm), toInt(y))
				drops[gi][col] = append(drops[gi][col], baseAUC-aucPerm)
			}
		}
	}
	for gi, grp := range featureGroups {
		cells := make([]Cell, len(cfg.Datasets))
		for col := range cfg.Datasets {
			if len(drops[gi][col]) == 0 {
				cells[col] = Cell{NA: true}
				continue
			}
			mean, std := eval.MeanStd(drops[gi][col])
			cells[col] = Cell{Raw: fmt.Sprintf("%.4f±%.4f", mean, std)}
		}
		t.AddRow(grp.name, cells...)
	}
	cells := make([]Cell, len(cfg.Datasets))
	for col := range cfg.Datasets {
		if len(base[col]) == 0 {
			cells[col] = Cell{NA: true}
			continue
		}
		mean, _ := eval.MeanStd(base[col])
		cells[col] = Cell{Raw: fmt.Sprintf("%.4f", mean)}
	}
	t.AddRow("(baseline AUC)", cells...)
	return t
}

// scoreAll runs the model on raw feature rows (standardizing copies).
func scoreAll(m *core.Model, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		cp := append([]float64(nil), row...)
		m.Std.Transform(cp)
		out[i] = m.Net.Forward(cp)
	}
	return out
}

// permuteColumns returns a copy of X with the given columns shuffled
// jointly across rows (preserving within-group correlation, as in grouped
// permutation importance).
func permuteColumns(X [][]float64, cols []int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = append([]float64(nil), row...)
	}
	perm := rng.Perm(len(X))
	for i, j := range perm {
		for _, c := range cols {
			if c < len(out[i]) {
				out[i][c] = X[j][c]
			}
		}
	}
	return out
}

func toInt(y []float64) []int {
	out := make([]int, len(y))
	for i, v := range y {
		if v > 0.5 {
			out[i] = 1
		}
	}
	return out
}

// StorageSavings regenerates the appendix's storage analysis: the
// serialized size of each dataset's projected graph versus its hypergraph
// representation (a clique of size N costs N(N−1)/2 edges in the graph but
// only N node ids in the hypergraph).
func StorageSavings(seed int64) *Table {
	t := &Table{
		Title:  "Appendix: storage of projection vs hypergraph (bytes, text encoding)",
		Header: []string{"Graph bytes", "Hypergraph bytes", "Savings"},
	}
	for _, name := range datasets.TableINames() {
		ds := datasets.MustByName(name, seed)
		h := ds.Full
		g := h.Project()
		var cg, ch countWriter
		if err := g.Write(&cg); err != nil {
			panic(err)
		}
		if err := h.Write(&ch); err != nil {
			panic(err)
		}
		savings := 0.0
		if cg.n > 0 {
			savings = 1 - float64(ch.n)/float64(cg.n)
		}
		t.AddRow(name,
			Cell{Raw: fmt.Sprintf("%d", cg.n)},
			Cell{Raw: fmt.Sprintf("%d", ch.n)},
			Cell{Raw: fmt.Sprintf("%.1f%%", 100*savings)},
		)
	}
	return t
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// CaseStudy reproduces the appendix's per-dataset case studies: it
// reconstructs the dataset and reports, for the ego sub-hypergraph of the
// busiest node, which ground-truth hyperedges were recovered exactly.
func CaseStudy(dsName string, seed int64, cfg RunConfig) *Table {
	cfg = cfg.defaults()
	ds := datasets.MustByName(dsName, seed)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	model := core.Train(src.Project(), src, core.TrainOptions{Seed: seed, Epochs: cfg.epochs()})
	res := core.Reconstruct(tgt.Project(), model, core.Options{Seed: seed})

	deg := tgt.NodeDegrees()
	hub := 0
	for u, d := range deg {
		if d > deg[hub] {
			hub = u
		}
	}
	ego := tgt.Ego(hub)
	egoRec := res.Hypergraph.Ego(hub)

	t := &Table{
		Title: fmt.Sprintf("Appendix case study: %s, ego of node %d (Jaccard %.3f, ego Jaccard %.3f)",
			dsName, hub, eval.Jaccard(tgt, res.Hypergraph), eval.Jaccard(ego, egoRec)),
		Header: []string{"recovered"},
	}
	ego.Each(func(nodes []int, _ int) {
		mark := "no"
		if egoRec.Contains(nodes) {
			mark = "yes"
		}
		t.AddRow(fmt.Sprintf("%v", nodes), Cell{Raw: mark})
	})
	return t
}
