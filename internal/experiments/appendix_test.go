package experiments

import (
	"strings"
	"testing"
)

func TestFeatureImportanceShape(t *testing.T) {
	tab := FeatureImportance(quickCfg("crime", "hosts"))
	// 7 feature groups + the baseline AUC row.
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	if tab.Rows[len(tab.Rows)-1].Name != "(baseline AUC)" {
		t.Fatalf("last row = %q", tab.Rows[len(tab.Rows)-1].Name)
	}
	// Baseline AUC should be well above chance on these datasets.
	for col := range tab.Header {
		raw := tab.Rows[len(tab.Rows)-1].Cells[col].Raw
		if raw == "" {
			t.Fatalf("missing baseline AUC for %s", tab.Header[col])
		}
		if !strings.HasPrefix(raw, "0.9") && !strings.HasPrefix(raw, "1.0") &&
			!strings.HasPrefix(raw, "0.8") && !strings.HasPrefix(raw, "0.7") {
			t.Errorf("baseline AUC %s on %s looks like chance", raw, tab.Header[col])
		}
	}
}

func TestStorageSavingsShape(t *testing.T) {
	tab := StorageSavings(1)
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// On contact datasets with big overlaps the hypergraph must be smaller
	// than the projection (the paper's storage argument). Check hschool.
	for _, r := range tab.Rows {
		if r.Name != "hschool" {
			continue
		}
		if !strings.Contains(tab.Render(), "%") {
			t.Fatal("savings column missing")
		}
	}
}

func TestCaseStudyRuns(t *testing.T) {
	tab := CaseStudy("crime", 1, quickCfg("crime"))
	if len(tab.Rows) == 0 {
		t.Fatal("case study produced no rows")
	}
	recovered := 0
	for _, r := range tab.Rows {
		if r.Cells[0].Raw == "yes" {
			recovered++
		}
	}
	// Crime reconstructs near-perfectly; the hub's hyperedges must mostly
	// be recovered.
	if recovered*2 < len(tab.Rows) {
		t.Errorf("only %d/%d ego hyperedges recovered", recovered, len(tab.Rows))
	}
}

func TestFeaturizerAblationShape(t *testing.T) {
	tab := FeaturizerAblation(quickCfg("crime"))
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// All representations reconstruct the trivial dataset perfectly.
	for _, r := range tab.Rows {
		if r.Cells[0].Mean < 90 {
			t.Errorf("%s on crime = %v", r.Name, r.Cells[0].Mean)
		}
	}
}
