package experiments

import (
	"marioh/internal/baselines"
	"marioh/internal/datasets"
	"marioh/internal/eval"
	"marioh/internal/hypergraph"
)

// structuralMethodNames is the Table IV method set.
var structuralMethodNames = []string{
	"Bayesian-MDL", "SHyRe-Count", "SHyRe-Motif", "SHyRe-Unsup", "MARIOH",
}

// propertyNames lists the 12 structural properties of Table IV in order:
// 7 scalar (normalized difference) + 5 distributional (KS D-statistic).
var propertyNames = []string{
	"Number of Nodes", "Number of Hyperedges", "Average Node Degree",
	"Average Hyperedge Size", "Simplicial Closure Ratio",
	"Hypergraph Density", "Hypergraph Overlapness",
	"Node Degree", "Node-Pair Degree", "Node-Triple Degree",
	"Hyperedge Homogeneity", "Singular Values",
}

// structuralErrors returns the 12 preservation errors of a reconstruction
// against the ground truth, in propertyNames order.
func structuralErrors(truth, rec *hypergraph.Hypergraph) []float64 {
	ts, rs := truth.Scalars(), rec.Scalars()
	out := []float64{
		eval.NormalizedDiff(ts.NumNodes, rs.NumNodes),
		eval.NormalizedDiff(ts.NumHyperedges, rs.NumHyperedges),
		eval.NormalizedDiff(ts.AvgNodeDegree, rs.AvgNodeDegree),
		eval.NormalizedDiff(ts.AvgEdgeSize, rs.AvgEdgeSize),
		eval.NormalizedDiff(ts.SimplicialClosureRatio, rs.SimplicialClosureRatio),
		eval.NormalizedDiff(ts.Density, rs.Density),
		eval.NormalizedDiff(ts.Overlapness, rs.Overlapness),
		eval.KSStatistic(truth.NodeDegreeDist(), rec.NodeDegreeDist()),
		eval.KSStatistic(truth.NodePairDegreeDist(), rec.NodePairDegreeDist()),
		eval.KSStatistic(truth.NodeTripleDegreeDist(), rec.NodeTripleDegreeDist()),
		eval.KSStatistic(truth.HomogeneityDist(), rec.HomogeneityDist()),
		eval.KSStatistic(truth.SingularValues(10), rec.SingularValues(10)),
	}
	return out
}

// TableIV regenerates the structural-preservation table: for every method,
// the mean ± std (across datasets) of each property's preservation error,
// plus the overall average. Lower is better. Datasets where a method runs
// out of time are skipped for that method, as in the paper.
func TableIV(cfg RunConfig) *Table {
	cfg = cfg.defaults()
	t := &Table{
		Title:  "Table IV: preservation of structural properties (lower is better)",
		Header: structuralMethodNames,
	}
	// errs[method][property] = per-dataset values
	errs := make(map[string][][]float64)
	for _, m := range structuralMethodNames {
		errs[m] = make([][]float64, len(propertyNames))
	}
	seed := cfg.Seeds[0]
	for _, dsName := range cfg.Datasets {
		ds := datasets.MustByName(dsName, seed)
		src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
		gT := tgt.Project()
		methods := buildMethods(src, seed, cfg, structuralMethodNames)
		for _, m := range structuralMethodNames {
			rec, err := methods[m](gT)
			if err == baselines.ErrTimeout {
				continue
			}
			for p, e := range structuralErrors(tgt, rec) {
				errs[m][p] = append(errs[m][p], e)
			}
		}
	}
	// Rows = properties, columns = methods (the paper's orientation).
	for p, prop := range propertyNames {
		cells := make([]Cell, len(structuralMethodNames))
		for mi, m := range structuralMethodNames {
			if len(errs[m][p]) == 0 {
				cells[mi] = Cell{NA: true}
				continue
			}
			mean, std := eval.MeanStd(errs[m][p])
			cells[mi] = Cell{Mean: mean, Std: std}
		}
		t.AddRow(prop, cells...)
	}
	// Overall average row.
	cells := make([]Cell, len(structuralMethodNames))
	for mi, m := range structuralMethodNames {
		var all []float64
		for p := range propertyNames {
			if len(errs[m][p]) > 0 {
				mean, _ := eval.MeanStd(errs[m][p])
				all = append(all, mean)
			}
		}
		if len(all) == 0 {
			cells[mi] = Cell{NA: true}
			continue
		}
		mean, std := eval.MeanStd(all)
		cells[mi] = Cell{Mean: mean, Std: std}
	}
	t.AddRow("Average (Overall)", cells...)
	return t
}
