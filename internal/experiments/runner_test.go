package experiments

import (
	"testing"

	"marioh/internal/datasets"
)

func TestBuildMethodsSubset(t *testing.T) {
	ds := datasets.MustByName("crime", 1)
	src := ds.Source.Reduced()
	cfg := quickCfg("crime")
	methods := buildMethods(src, 1, cfg, []string{"MaxClique", "MARIOH"})
	if len(methods) != 2 {
		t.Fatalf("built %d methods, want 2", len(methods))
	}
	for _, name := range []string{"MaxClique", "MARIOH"} {
		if methods[name] == nil {
			t.Fatalf("method %s missing", name)
		}
	}
	if methods["Demon"] != nil {
		t.Fatal("unrequested method built")
	}
}

func TestBuildMethodsAll(t *testing.T) {
	ds := datasets.MustByName("crime", 1)
	src := ds.Source.Reduced()
	methods := buildMethods(src, 1, quickCfg("crime"), nil)
	if len(methods) != len(MethodNames) {
		t.Fatalf("built %d methods, want %d", len(methods), len(MethodNames))
	}
	gT := ds.Target.Reduced().Project()
	for _, name := range MethodNames {
		rec, err := methods[name](gT)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec == nil {
			t.Fatalf("%s returned nil hypergraph", name)
		}
	}
}

func TestMariohVariantsShareModelButDiffer(t *testing.T) {
	// The -F and -B variants must be wired to different Options than the
	// full method: on a dataset where ablations matter they may produce
	// different outputs, but at minimum they must all run and consume the
	// graph fully.
	ds := datasets.MustByName("hosts", 2)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	methods := buildMethods(src, 2, quickCfg("hosts"),
		[]string{"MARIOH", "MARIOH-F", "MARIOH-B", "MARIOH-M"})
	gT := tgt.Project()
	want := gT.TotalWeight()
	for name, m := range methods {
		rec, err := m(gT)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := rec.Project().TotalWeight(); got != want {
			t.Errorf("%s: projection weight %d, want %d", name, got, want)
		}
	}
}

func TestRunConfigDefaults(t *testing.T) {
	cfg := RunConfig{}.defaults()
	if len(cfg.Seeds) != 3 || cfg.Timeout <= 0 || len(cfg.Datasets) != 10 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.epochs() != 60 {
		t.Fatalf("epochs = %d", cfg.epochs())
	}
	cfg.Quick = true
	if cfg.epochs() != 25 {
		t.Fatalf("quick epochs = %d", cfg.epochs())
	}
}
