// Package server implements mariohd, the HTTP daemon that serves the
// MARIOH reconstruction pipeline: asynchronous train jobs, synchronous and
// asynchronous reconstruction, batch fan-out, per-job SSE progress
// streams, a named model registry, and health/metrics endpoints. Graphs
// and hypergraphs cross the wire in the same line-oriented text formats
// the library and CLI use, so a server-side reconstruction is byte-
// identical to the equivalent library call.
package server

import (
	"fmt"
	"strings"

	"marioh"
	"marioh/internal/service"
)

// OptionSpec is the JSON form of the Reconstructor's functional options,
// carried by train and reconstruct request payloads. Zero values mean
// "paper default"; the float pointers distinguish "absent" from an
// explicit zero (θ_init, r and α all accept genuine zeros).
type OptionSpec struct {
	Variant     string   `json:"variant,omitempty"`
	Featurizer  string   `json:"featurizer,omitempty"`
	ThetaInit   *float64 `json:"theta_init,omitempty"`
	R           *float64 `json:"r,omitempty"`
	Alpha       *float64 `json:"alpha,omitempty"`
	MaxRounds   int      `json:"max_rounds,omitempty"`
	CliqueLimit int      `json:"clique_limit,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Epochs      int      `json:"epochs,omitempty"`
	Hidden      []int    `json:"hidden,omitempty"`
	Supervision float64  `json:"supervision,omitempty"`
	NegRatio    float64  `json:"negative_ratio,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	// Shards routes reconstruction through the shard-parallel engine
	// (0 = serial; output is byte-identical either way). The server fans
	// the shards onto its job queue's worker pool. ShardTarget is the
	// shard size target in edges (0 = auto).
	Shards      int `json:"shards,omitempty"`
	ShardTarget int `json:"shard_target,omitempty"`
}

// Options resolves the spec into functional options for marioh.New. The
// variant/featurizer names are resolved through the service registry
// first, so unknown names fail here — before a job is queued — with an
// error listing the valid alternatives.
func (s OptionSpec) Options() ([]marioh.Option, error) {
	if _, _, err := service.Resolve(s.Variant, s.Featurizer); err != nil {
		return nil, err
	}
	if s.Shards < 0 || s.ShardTarget < 0 {
		return nil, fmt.Errorf("options: shards %d / shard_target %d must be ≥ 0", s.Shards, s.ShardTarget)
	}
	if s.Shards == 0 && s.ShardTarget > 0 {
		return nil, fmt.Errorf("options: shard_target requires shards (sharding is off at shards 0)")
	}
	opts := []marioh.Option{marioh.WithSeed(s.Seed)}
	if s.Variant != "" {
		opts = append(opts, marioh.WithVariant(s.Variant))
	}
	if s.Featurizer != "" {
		opts = append(opts, marioh.WithFeaturizer(s.Featurizer))
	}
	if s.ThetaInit != nil {
		opts = append(opts, marioh.WithThetaInit(*s.ThetaInit))
	}
	if s.R != nil {
		opts = append(opts, marioh.WithR(*s.R))
	}
	if s.Alpha != nil {
		opts = append(opts, marioh.WithAlpha(*s.Alpha))
	}
	if s.MaxRounds > 0 {
		opts = append(opts, marioh.WithMaxRounds(s.MaxRounds))
	}
	if s.CliqueLimit > 0 {
		opts = append(opts, marioh.WithMaxCliqueLimit(s.CliqueLimit))
	}
	if s.Epochs > 0 {
		opts = append(opts, marioh.WithEpochs(s.Epochs))
	}
	if len(s.Hidden) > 0 {
		opts = append(opts, marioh.WithHidden(s.Hidden...))
	}
	if s.Supervision > 0 {
		opts = append(opts, marioh.WithSupervisionRatio(s.Supervision))
	}
	if s.NegRatio > 0 {
		opts = append(opts, marioh.WithNegativeRatio(s.NegRatio))
	}
	if s.Parallelism > 0 {
		opts = append(opts, marioh.WithParallelism(s.Parallelism))
	}
	return opts, nil
}

// TrainRequest is the body of POST /v1/train. Source is a hypergraph in
// the text format of marioh.ReadHypergraph; the trained model is saved in
// the registry under SaveAs (default: the job ID).
type TrainRequest struct {
	Source  string     `json:"source"`
	SaveAs  string     `json:"save_as,omitempty"`
	Options OptionSpec `json:"options,omitempty"`
}

// TrainResult is a train job's result payload.
type TrainResult struct {
	Model         string  `json:"model"`
	Featurizer    string  `json:"featurizer"`
	Positives     int     `json:"positives"`
	Negatives     int     `json:"negatives"`
	SampleSeconds float64 `json:"sample_seconds"`
	TrainSeconds  float64 `json:"train_seconds"`
}

// ReconstructRequest is the body of POST /v1/reconstruct (one Target) and
// POST /v1/reconstruct/batch (Targets). Model names a registry entry;
// targets are projected graphs in the text format of marioh.ReadGraph.
// Async forces the execution mode; when nil, single reconstructions run
// synchronously up to the server's sync edge limit.
type ReconstructRequest struct {
	Model   string     `json:"model"`
	Target  string     `json:"target,omitempty"`
	Targets []string   `json:"targets,omitempty"`
	Options OptionSpec `json:"options,omitempty"`
	Async   *bool      `json:"async,omitempty"`
}

// ReconstructResult is the result payload of one reconstruction: the
// hypergraph in marioh text format plus the run's metadata.
type ReconstructResult struct {
	Hypergraph    string  `json:"hypergraph"`
	Unique        int     `json:"unique"`
	Total         int     `json:"total"`
	Rounds        int     `json:"rounds"`
	FilteredSize2 int     `json:"filtered_size2"`
	FilterSeconds float64 `json:"filter_seconds"`
	SearchSeconds float64 `json:"search_seconds"`
	// Shards is the shard count of a shard-parallel run; 0 = serial.
	Shards int `json:"shards,omitempty"`
}

// BatchResult is a batch job's result payload, positionally aligned with
// the request's Targets.
type BatchResult struct {
	Results []ReconstructResult `json:"results"`
}

// ReconstructResponse is the 200 body of a synchronous reconstruction;
// asynchronous submissions return a JobInfo with status 202 instead.
type ReconstructResponse struct {
	JobID  string            `json:"job_id"`
	Result ReconstructResult `json:"result"`
}

// ProgressEvent is the SSE wire form of a marioh.Progress snapshot.
type ProgressEvent struct {
	Target         int     `json:"target"`
	Shard          int     `json:"shard"`
	Round          int     `json:"round"`
	Theta          float64 `json:"theta"`
	EdgesRemaining int     `json:"edges_remaining"`
	AcceptedRound  int     `json:"accepted_round"`
	AcceptedTotal  int     `json:"accepted_total"`
}

func progressEvent(p marioh.Progress) ProgressEvent {
	return ProgressEvent{
		Target:         p.Target,
		Shard:          p.Shard,
		Round:          p.Round,
		Theta:          p.Theta,
		EdgesRemaining: p.EdgesRemaining,
		AcceptedRound:  p.AcceptedRound,
		AcceptedTotal:  p.AcceptedTotal,
	}
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	Models        int     `json:"models"`
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// parseHypergraph decodes the wire text format of a hypergraph.
func parseHypergraph(text string) (*marioh.Hypergraph, error) {
	return marioh.ReadHypergraph(strings.NewReader(text))
}

// parseGraph decodes the wire text format of a projected graph.
func parseGraph(text string) (*marioh.Graph, error) {
	return marioh.ReadGraph(strings.NewReader(text))
}
