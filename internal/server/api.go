// Package server implements mariohd, the HTTP daemon that serves the
// MARIOH reconstruction pipeline: asynchronous train jobs, synchronous and
// asynchronous reconstruction, batch fan-out, per-job SSE progress
// streams, a named model registry, and health/metrics endpoints. Graphs
// and hypergraphs cross the wire in the same line-oriented text formats
// the library and CLI use, so a server-side reconstruction is byte-
// identical to the equivalent library call.
package server

import (
	"fmt"
	"strings"
	"time"

	"marioh"
	"marioh/internal/service"
)

// OptionSpec is the JSON form of the Reconstructor's functional options,
// carried by train and reconstruct request payloads. Zero values mean
// "paper default"; the float pointers distinguish "absent" from an
// explicit zero (θ_init, r and α all accept genuine zeros).
type OptionSpec struct {
	Variant     string   `json:"variant,omitempty"`
	Featurizer  string   `json:"featurizer,omitempty"`
	ThetaInit   *float64 `json:"theta_init,omitempty"`
	R           *float64 `json:"r,omitempty"`
	Alpha       *float64 `json:"alpha,omitempty"`
	MaxRounds   int      `json:"max_rounds,omitempty"`
	CliqueLimit int      `json:"clique_limit,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Epochs      int      `json:"epochs,omitempty"`
	Hidden      []int    `json:"hidden,omitempty"`
	Supervision float64  `json:"supervision,omitempty"`
	NegRatio    float64  `json:"negative_ratio,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	// Shards routes reconstruction through the shard-parallel engine
	// (0 = serial; output is byte-identical either way). The server fans
	// the shards onto its job queue's worker pool. ShardTarget is the
	// shard size target in edges (0 = auto).
	Shards      int `json:"shards,omitempty"`
	ShardTarget int `json:"shard_target,omitempty"`
}

// Options resolves the spec into functional options for marioh.New. The
// variant/featurizer names are resolved through the service registry
// first, so unknown names fail here — before a job is queued — with an
// error listing the valid alternatives.
func (s OptionSpec) Options() ([]marioh.Option, error) {
	if _, _, err := service.Resolve(s.Variant, s.Featurizer); err != nil {
		return nil, err
	}
	if s.Shards < 0 || s.ShardTarget < 0 {
		return nil, fmt.Errorf("options: shards %d / shard_target %d must be ≥ 0", s.Shards, s.ShardTarget)
	}
	if s.Shards == 0 && s.ShardTarget > 0 {
		return nil, fmt.Errorf("options: shard_target requires shards (sharding is off at shards 0)")
	}
	opts := []marioh.Option{marioh.WithSeed(s.Seed)}
	if s.Variant != "" {
		opts = append(opts, marioh.WithVariant(s.Variant))
	}
	if s.Featurizer != "" {
		opts = append(opts, marioh.WithFeaturizer(s.Featurizer))
	}
	if s.ThetaInit != nil {
		opts = append(opts, marioh.WithThetaInit(*s.ThetaInit))
	}
	if s.R != nil {
		opts = append(opts, marioh.WithR(*s.R))
	}
	if s.Alpha != nil {
		opts = append(opts, marioh.WithAlpha(*s.Alpha))
	}
	if s.MaxRounds > 0 {
		opts = append(opts, marioh.WithMaxRounds(s.MaxRounds))
	}
	if s.CliqueLimit > 0 {
		opts = append(opts, marioh.WithMaxCliqueLimit(s.CliqueLimit))
	}
	if s.Epochs > 0 {
		opts = append(opts, marioh.WithEpochs(s.Epochs))
	}
	if len(s.Hidden) > 0 {
		opts = append(opts, marioh.WithHidden(s.Hidden...))
	}
	if s.Supervision > 0 {
		opts = append(opts, marioh.WithSupervisionRatio(s.Supervision))
	}
	if s.NegRatio > 0 {
		opts = append(opts, marioh.WithNegativeRatio(s.NegRatio))
	}
	if s.Parallelism > 0 {
		opts = append(opts, marioh.WithParallelism(s.Parallelism))
	}
	return opts, nil
}

// TrainRequest is the body of POST /v1/train. Source is a hypergraph in
// the text format of marioh.ReadHypergraph; the trained model is saved in
// the registry under SaveAs (default: the job ID).
type TrainRequest struct {
	Source  string     `json:"source"`
	SaveAs  string     `json:"save_as,omitempty"`
	Options OptionSpec `json:"options,omitempty"`
}

// TrainResult is a train job's result payload.
type TrainResult struct {
	Model         string  `json:"model"`
	Featurizer    string  `json:"featurizer"`
	Positives     int     `json:"positives"`
	Negatives     int     `json:"negatives"`
	SampleSeconds float64 `json:"sample_seconds"`
	TrainSeconds  float64 `json:"train_seconds"`
}

// ReconstructRequest is the body of POST /v1/reconstruct (one Target) and
// POST /v1/reconstruct/batch (Targets). Model names a registry entry;
// targets are projected graphs in the text format of marioh.ReadGraph.
// Async forces the execution mode; when nil, single reconstructions run
// synchronously up to the server's sync edge limit.
type ReconstructRequest struct {
	Model   string     `json:"model"`
	Target  string     `json:"target,omitempty"`
	Targets []string   `json:"targets,omitempty"`
	Options OptionSpec `json:"options,omitempty"`
	Async   *bool      `json:"async,omitempty"`
}

// ReconstructResult is the result payload of one reconstruction: the
// hypergraph in marioh text format plus the run's metadata.
type ReconstructResult struct {
	Hypergraph    string  `json:"hypergraph"`
	Unique        int     `json:"unique"`
	Total         int     `json:"total"`
	Rounds        int     `json:"rounds"`
	FilteredSize2 int     `json:"filtered_size2"`
	FilterSeconds float64 `json:"filter_seconds"`
	SearchSeconds float64 `json:"search_seconds"`
	// Shards is the shard count of a shard-parallel run; 0 = serial.
	Shards int `json:"shards,omitempty"`
	// Dirty is the number of components an incremental session apply
	// recomputed; 0 for non-incremental runs.
	Dirty int `json:"dirty,omitempty"`
}

// BatchResult is a batch job's result payload, positionally aligned with
// the request's Targets.
type BatchResult struct {
	Results []ReconstructResult `json:"results"`
}

// ReconstructResponse is the 200 body of a synchronous reconstruction;
// asynchronous submissions return a JobInfo with status 202 instead.
type ReconstructResponse struct {
	JobID  string            `json:"job_id"`
	Result ReconstructResult `json:"result"`
}

// ProgressEvent is the SSE wire form of a marioh.Progress snapshot.
type ProgressEvent struct {
	Target         int     `json:"target"`
	Shard          int     `json:"shard"`
	Round          int     `json:"round"`
	Dirty          int     `json:"dirty,omitempty"`
	Theta          float64 `json:"theta"`
	EdgesRemaining int     `json:"edges_remaining"`
	AcceptedRound  int     `json:"accepted_round"`
	AcceptedTotal  int     `json:"accepted_total"`
}

func progressEvent(p marioh.Progress) ProgressEvent {
	return ProgressEvent{
		Target:         p.Target,
		Shard:          p.Shard,
		Round:          p.Round,
		Dirty:          p.Dirty,
		Theta:          p.Theta,
		EdgesRemaining: p.EdgesRemaining,
		AcceptedRound:  p.AcceptedRound,
		AcceptedTotal:  p.AcceptedTotal,
	}
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	Models        int     `json:"models"`
	Sessions      int     `json:"sessions"`
	// Parked counts durable sessions currently flushed to disk (not in
	// Sessions, which counts loaded engines).
	Parked int `json:"parked,omitempty"`
}

// SessionRequest is the body of POST /v1/sessions: open an incremental
// reconstruction session over a base projected graph, using a registry
// model and the usual option spec.
type SessionRequest struct {
	Model   string     `json:"model"`
	Graph   string     `json:"graph"`
	Options OptionSpec `json:"options,omitempty"`
}

// SessionInfo is the JSON snapshot of a server session.
type SessionInfo struct {
	ID    string `json:"id"`
	Model string `json:"model"`
	// Tenant is the identity the session was created under (quota
	// accounting; "default" when the creator sent no tenant header).
	Tenant string `json:"tenant,omitempty"`
	// Nodes/Edges describe the session's current graph; Components is the
	// number of live components with a cached reconstruction.
	Nodes      int `json:"nodes"`
	Edges      int `json:"edges"`
	Components int `json:"components"`
	// Applies counts delta batches served; LastDirty is the component
	// count the latest batch recomputed.
	Applies   int       `json:"applies"`
	LastDirty int       `json:"last_dirty"`
	LastJob   string    `json:"last_job,omitempty"`
	Created   time.Time `json:"created"`
	LastUsed  time.Time `json:"last_used"`
	// Durable reports whether the session persists under the daemon's
	// data dir; Parked means its engine is currently flushed to disk (it
	// rehydrates transparently on the next apply).
	Durable bool `json:"durable,omitempty"`
	Parked  bool `json:"parked,omitempty"`
	// Recovery classifies the session's last crash recovery ("clean",
	// "torn-tail", "cache-dropped", "snapshot-fallback", "lost-suffix");
	// Replayed is how many WAL records that recovery replayed.
	Recovery string `json:"recovery,omitempty"`
	Replayed int    `json:"replayed,omitempty"`
}

// SessionApplyRequest is the body of POST /v1/sessions/{id}/apply. Deltas
// is an edge-delta stream in the marioh.ReadDeltas text format ("+ u v w",
// "- u v", "= u v w" lines); an empty stream reconstructs whatever is not
// cached yet (on a fresh session, the whole graph). Async forces the
// execution mode; when nil, applies run synchronously on the request
// goroutine up to the server's sync edge limit and are queued above it.
// A session accepts one apply at a time (overlap answers 409 Conflict).
//
// Delta batches are NOT idempotent ("+ u v w" accumulates). The deltas
// are applied to the session graph before reconstruction starts, so when
// a sync apply fails ambiguously (timeout, disconnect, 503 during
// drain), the client must not blindly re-send the batch: check the
// session's `applies` counter via GET /v1/sessions/{id} to see whether
// the batch landed, prefer async applies (the job outcome is inspectable
// after the fact), or recreate the session from a known graph.
type SessionApplyRequest struct {
	Deltas string `json:"deltas"`
	Async  *bool  `json:"async,omitempty"`
	// Seq, when set, asserts the session's applies counter before this
	// batch; a mismatch answers 409 Conflict without mutating anything.
	// This is the safe way to retry after an ambiguous failure: assert
	// the count you last observed, and a 409 tells you the batch already
	// landed (re-read the session instead of re-sending).
	Seq *int `json:"seq,omitempty"`
}

// SessionApplyResponse is the 200 body of a synchronous apply;
// asynchronous submissions return a JobInfo with status 202 instead. The
// embedded result's Dirty field reports how many components the apply
// recomputed.
type SessionApplyResponse struct {
	JobID   string            `json:"job_id"`
	Session SessionInfo       `json:"session"`
	Result  ReconstructResult `json:"result"`
}

// parseHypergraph decodes the wire text format of a hypergraph.
func parseHypergraph(text string) (*marioh.Hypergraph, error) {
	return marioh.ReadHypergraph(strings.NewReader(text))
}

// parseGraph decodes the wire text format of a projected graph.
func parseGraph(text string) (*marioh.Graph, error) {
	return marioh.ReadGraph(strings.NewReader(text))
}
