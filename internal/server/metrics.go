package server

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"marioh/internal/admission"
)

// Metrics aggregates the counters behind GET /metrics: per-route request
// and status counts, in-flight requests, job outcomes, and per-stage
// latency totals. Everything is exported in the Prometheus text format,
// hand-rolled so the server stays dependency-free.
type Metrics struct {
	mu       sync.Mutex
	start    time.Time
	requests map[string]int64      // guarded by mu; route → count
	statuses map[int]int64         // guarded by mu; HTTP status → count
	inflight int64                 // guarded by mu
	jobs     map[string]int64      // guarded by mu; submitted/succeeded/failed/cancelled
	stages   map[string]*stageStat // guarded by mu

	shardedRuns     int64 // guarded by mu; reconstructions that went through the shard engine
	shardsProcessed int64 // guarded by mu; total shards reconstructed across those runs

	sessionsCreated int64 // guarded by mu; incremental sessions opened
	sessionsEvicted int64 // guarded by mu; sessions dropped by the LRU bound
	sessionApplies  int64 // guarded by mu; delta batches served by sessions
	sessionDirty    int64 // guarded by mu; components recomputed across those applies
	sessionReused   int64 // guarded by mu; components merged from the session cache instead

	evictedPersisted int64 // guarded by mu; LRU evictions that parked durable state to disk
	evictedDropped   int64 // guarded by mu; LRU evictions that discarded a memory-only session

	walAppends     int64            // guarded by mu; WAL records appended across durable sessions
	walBytes       int64            // guarded by mu; framed WAL bytes appended
	snapshotWrites int64            // guarded by mu; engine snapshots written
	recoveries     map[string]int64 // guarded by mu; recovery outcome → count
	recoveryReplay int64            // guarded by mu; WAL records replayed across recoveries

	admissionRejected map[string]int64 // guarded by mu; rejection reason → count
	resultsEvicted    int64            // guarded by mu; retained job results shed by the memory budget
}

// stageStat accumulates wall-clock spent in one pipeline stage.
type stageStat struct {
	count int64
	total time.Duration
	max   time.Duration
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:             time.Now(),
		requests:          map[string]int64{},
		statuses:          map[int]int64{},
		jobs:              map[string]int64{},
		stages:            map[string]*stageStat{},
		recoveries:        map[string]int64{},
		admissionRejected: map[string]int64{},
	}
}

// AdmissionRejected records one request or acquisition refused by the
// admission controller, by rejection reason.
func (m *Metrics) AdmissionRejected(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admissionRejected[reason]++
}

// ResultEvicted records one retained job result shed by the memory
// budget.
func (m *Metrics) ResultEvicted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resultsEvicted++
}

// Request records one served request on a route with its response status.
func (m *Metrics) Request(route string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[route]++
	m.statuses[status]++
}

// InflightAdd tracks requests currently being served (delta ±1).
func (m *Metrics) InflightAdd(delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight += delta
}

// Job records a job lifecycle event ("submitted", or a terminal status).
func (m *Metrics) Job(event string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[event]++
}

// ShardRun records one shard-parallel reconstruction of n shards.
func (m *Metrics) ShardRun(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardedRuns++
	m.shardsProcessed += int64(n)
}

// SessionOpen records one opened session.
func (m *Metrics) SessionOpen() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsCreated++
}

// SessionEvicted records one LRU eviction; persisted says whether the
// session's state was parked to disk (durable) or discarded.
func (m *Metrics) SessionEvicted(persisted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsEvicted++
	if persisted {
		m.evictedPersisted++
	} else {
		m.evictedDropped++
	}
}

// Durability accumulates WAL and snapshot activity harvested from the
// durable sessions' own counters.
func (m *Metrics) Durability(walRecords, walBytes, snapshots int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.walAppends += walRecords
	m.walBytes += walBytes
	m.snapshotWrites += snapshots
}

// Recovery records one durable-session recovery and its replay length.
func (m *Metrics) Recovery(outcome string, replayed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if outcome == "" {
		outcome = "clean"
	}
	m.recoveries[outcome]++
	m.recoveryReplay += int64(replayed)
}

// SessionApply records one served delta batch: dirty components were
// recomputed, reused ones merged from the session cache.
func (m *Metrics) SessionApply(dirty, reused int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionApplies++
	m.sessionDirty += int64(dirty)
	m.sessionReused += int64(reused)
}

// Stage records time spent in a named pipeline stage (train_sample,
// train_optimize, filter, search).
func (m *Metrics) Stage(name string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.stages[name]
	if !ok {
		s = &stageStat{}
		m.stages[name] = s
	}
	s.count++
	s.total += d
	if d > s.max {
		s.max = d
	}
}

// MetricsSnapshot carries the live gauges the caller samples at scrape
// time from the queue, session store, admission controller, dedup cache
// and memory budget.
type MetricsSnapshot struct {
	QueueDepth     int
	JobCounts      map[JobStatus]int
	OpenSessions   int
	ParkedSessions int
	ActiveTenants  int
	Dedup          admission.CacheStats
	BudgetPools    []admission.PoolBytes
	BudgetTotal    int64
	RSSBytes       int64
}

// Render writes the Prometheus text exposition; snap carries the live
// gauges sampled by the caller.
func (m *Metrics) Render(w io.Writer, snap MetricsSnapshot) {
	queueDepth := snap.QueueDepth
	jobCounts := snap.JobCounts
	openSessions, parkedSessions := snap.OpenSessions, snap.ParkedSessions
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE marioh_uptime_seconds gauge\n")
	fmt.Fprintf(w, "marioh_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# TYPE marioh_requests_total counter\n")
	for _, route := range sortedKeys(m.requests) {
		fmt.Fprintf(w, "marioh_requests_total{route=%q} %d\n", route, m.requests[route])
	}
	fmt.Fprintf(w, "# TYPE marioh_responses_total counter\n")
	statuses := make([]int, 0, len(m.statuses))
	for s := range m.statuses {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(w, "marioh_responses_total{status=\"%d\"} %d\n", s, m.statuses[s])
	}
	fmt.Fprintf(w, "# TYPE marioh_requests_inflight gauge\n")
	fmt.Fprintf(w, "marioh_requests_inflight %d\n", m.inflight)

	fmt.Fprintf(w, "# TYPE marioh_queue_depth gauge\n")
	fmt.Fprintf(w, "marioh_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# TYPE marioh_jobs gauge\n")
	for _, st := range []JobStatus{StatusQueued, StatusRunning, StatusSucceeded, StatusFailed, StatusCancelled} {
		fmt.Fprintf(w, "marioh_jobs{status=%q} %d\n", st, jobCounts[st])
	}
	fmt.Fprintf(w, "# TYPE marioh_job_events_total counter\n")
	for _, ev := range sortedKeys(m.jobs) {
		fmt.Fprintf(w, "marioh_job_events_total{event=%q} %d\n", ev, m.jobs[ev])
	}

	fmt.Fprintf(w, "# TYPE marioh_sharded_runs_total counter\n")
	fmt.Fprintf(w, "marioh_sharded_runs_total %d\n", m.shardedRuns)
	fmt.Fprintf(w, "# TYPE marioh_shards_processed_total counter\n")
	fmt.Fprintf(w, "marioh_shards_processed_total %d\n", m.shardsProcessed)

	fmt.Fprintf(w, "# TYPE marioh_sessions_open gauge\n")
	fmt.Fprintf(w, "marioh_sessions_open %d\n", openSessions)
	fmt.Fprintf(w, "# TYPE marioh_session_created_total counter\n")
	fmt.Fprintf(w, "marioh_session_created_total %d\n", m.sessionsCreated)
	fmt.Fprintf(w, "# TYPE marioh_session_evictions_total counter\n")
	fmt.Fprintf(w, "marioh_session_evictions_total %d\n", m.sessionsEvicted)
	fmt.Fprintf(w, "# TYPE marioh_session_applies_total counter\n")
	fmt.Fprintf(w, "marioh_session_applies_total %d\n", m.sessionApplies)
	fmt.Fprintf(w, "# TYPE marioh_session_dirty_components_total counter\n")
	fmt.Fprintf(w, "marioh_session_dirty_components_total %d\n", m.sessionDirty)
	fmt.Fprintf(w, "# TYPE marioh_session_reused_components_total counter\n")
	fmt.Fprintf(w, "marioh_session_reused_components_total %d\n", m.sessionReused)
	fmt.Fprintf(w, "# TYPE marioh_session_evicted_total counter\n")
	fmt.Fprintf(w, "marioh_session_evicted_total{persisted=\"false\"} %d\n", m.evictedDropped)
	fmt.Fprintf(w, "marioh_session_evicted_total{persisted=\"true\"} %d\n", m.evictedPersisted)
	fmt.Fprintf(w, "# TYPE marioh_sessions_parked gauge\n")
	fmt.Fprintf(w, "marioh_sessions_parked %d\n", parkedSessions)

	fmt.Fprintf(w, "# TYPE marioh_wal_appends_total counter\n")
	fmt.Fprintf(w, "marioh_wal_appends_total %d\n", m.walAppends)
	fmt.Fprintf(w, "# TYPE marioh_wal_bytes_total counter\n")
	fmt.Fprintf(w, "marioh_wal_bytes_total %d\n", m.walBytes)
	fmt.Fprintf(w, "# TYPE marioh_snapshot_writes_total counter\n")
	fmt.Fprintf(w, "marioh_snapshot_writes_total %d\n", m.snapshotWrites)
	fmt.Fprintf(w, "# TYPE marioh_recovery_total counter\n")
	for _, outcome := range sortedKeys(m.recoveries) {
		fmt.Fprintf(w, "marioh_recovery_total{outcome=%q} %d\n", outcome, m.recoveries[outcome])
	}
	fmt.Fprintf(w, "# TYPE marioh_recovery_replayed_total counter\n")
	fmt.Fprintf(w, "marioh_recovery_replayed_total %d\n", m.recoveryReplay)

	fmt.Fprintf(w, "# TYPE marioh_admission_rejected_total counter\n")
	for _, reason := range sortedKeys(m.admissionRejected) {
		fmt.Fprintf(w, "marioh_admission_rejected_total{reason=%q} %d\n", reason, m.admissionRejected[reason])
	}
	fmt.Fprintf(w, "# TYPE marioh_tenants_active gauge\n")
	fmt.Fprintf(w, "marioh_tenants_active %d\n", snap.ActiveTenants)

	fmt.Fprintf(w, "# TYPE marioh_dedup_hits_total counter\n")
	fmt.Fprintf(w, "marioh_dedup_hits_total %d\n", snap.Dedup.Hits)
	fmt.Fprintf(w, "# TYPE marioh_dedup_misses_total counter\n")
	fmt.Fprintf(w, "marioh_dedup_misses_total %d\n", snap.Dedup.Misses)
	fmt.Fprintf(w, "# TYPE marioh_dedup_waiters_total counter\n")
	fmt.Fprintf(w, "marioh_dedup_waiters_total %d\n", snap.Dedup.Waiters)
	fmt.Fprintf(w, "# TYPE marioh_dedup_evictions_total counter\n")
	fmt.Fprintf(w, "marioh_dedup_evictions_total %d\n", snap.Dedup.Evictions)
	fmt.Fprintf(w, "# TYPE marioh_dedup_entries gauge\n")
	fmt.Fprintf(w, "marioh_dedup_entries %d\n", snap.Dedup.Entries)
	fmt.Fprintf(w, "# TYPE marioh_dedup_bytes gauge\n")
	fmt.Fprintf(w, "marioh_dedup_bytes %d\n", snap.Dedup.Bytes)

	fmt.Fprintf(w, "# TYPE marioh_memory_bytes gauge\n")
	for _, p := range snap.BudgetPools {
		fmt.Fprintf(w, "marioh_memory_bytes{pool=%q} %d\n", p.Pool, p.Bytes)
	}
	fmt.Fprintf(w, "# TYPE marioh_memory_budget_bytes gauge\n")
	fmt.Fprintf(w, "marioh_memory_budget_bytes %d\n", snap.BudgetTotal)
	fmt.Fprintf(w, "# TYPE marioh_results_evicted_total counter\n")
	fmt.Fprintf(w, "marioh_results_evicted_total %d\n", m.resultsEvicted)
	fmt.Fprintf(w, "# TYPE marioh_rss_bytes gauge\n")
	fmt.Fprintf(w, "marioh_rss_bytes %d\n", snap.RSSBytes)

	fmt.Fprintf(w, "# TYPE marioh_stage_seconds_total counter\n")
	for _, name := range sortedStageKeys(m.stages) {
		s := m.stages[name]
		fmt.Fprintf(w, "marioh_stage_seconds_total{stage=%q} %.6f\n", name, s.total.Seconds())
		fmt.Fprintf(w, "marioh_stage_runs_total{stage=%q} %d\n", name, s.count)
		fmt.Fprintf(w, "marioh_stage_seconds_max{stage=%q} %.6f\n", name, s.max.Seconds())
	}
}

// rssBytes samples the process resident set from /proc/self/statm
// (0 where the proc filesystem is unavailable).
func rssBytes() int64 {
	raw, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(raw))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStageKeys(m map[string]*stageStat) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
