package server

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"marioh"
	"marioh/internal/admission"
)

// ErrModelNotFound is returned by registry lookups for unknown names;
// handlers map it to 404.
var ErrModelNotFound = errors.New("server: model not found")

// ErrStorage marks registry failures caused by the backing store (disk
// full, permissions, I/O) rather than the request; handlers map it to
// 500 instead of 400.
var ErrStorage = errors.New("server: model storage")

// modelNameRe restricts registry names to path-safe tokens, so a name can
// never escape the registry directory.
var modelNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

const modelExt = ".model.json"

// ModelInfo describes one registry entry for listings.
type ModelInfo struct {
	Name       string    `json:"name"`
	Featurizer string    `json:"featurizer"`
	Sizes      []int     `json:"sizes"`
	Bytes      int       `json:"bytes"`
	Saved      time.Time `json:"saved"`
}

// Registry is a named store of trained models: serialized JSON on disk
// (or in memory when no directory is configured) with an LRU cache of
// decoded models in front, so repeated reconstructions against the same
// model skip deserialization.
type Registry struct {
	dir string // "" = memory-only
	cap int

	// budget, when set (before any traffic), meters decoded cached models
	// under budgetPoolModels (by their serialized size, the best cheap
	// proxy for the decoded weights).
	budget *admission.Budget

	mu     sync.Mutex
	raw    map[string][]byte        // guarded by mu; memory-only backing store (dir == "")
	saved  map[string]time.Time     // guarded by mu
	meta   map[string]ModelInfo     // guarded by mu; listing metadata, recorded at Put
	hashes map[string]string        // guarded by mu; name → hex SHA-256 of the serialized bytes
	cache  map[string]*list.Element // guarded by mu; name → lru element
	lru    *list.List               // guarded by mu; front = most recent, values are *cacheEntry
}

// budgetPoolModels is the Budget pool metering decoded cached models.
const budgetPoolModels = "models"

// cacheEntry pairs a decoded model with its registry name and metered
// size for LRU eviction.
type cacheEntry struct {
	name  string
	model *marioh.Model
	size  int64
}

// NewRegistry opens (and creates) the registry directory and indexes the
// models already present. dir == "" keeps everything in memory. cacheSize
// bounds the decoded-model LRU (minimum 1).
func NewRegistry(dir string, cacheSize int) (*Registry, error) {
	if cacheSize < 1 {
		cacheSize = 1
	}
	r := &Registry{
		dir:    dir,
		cap:    cacheSize,
		raw:    map[string][]byte{},
		saved:  map[string]time.Time{},
		meta:   map[string]ModelInfo{},
		hashes: map[string]string{},
		cache:  map[string]*list.Element{},
		lru:    list.New(),
	}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: registry dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: registry dir: %w", err)
	}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), modelExt)
		if !ok || e.IsDir() || !modelNameRe.MatchString(name) {
			continue
		}
		if info, err := e.Info(); err == nil {
			r.saved[name] = info.ModTime()
		} else {
			r.saved[name] = time.Now()
		}
	}
	return r, nil
}

func (r *Registry) path(name string) string {
	return filepath.Join(r.dir, name+modelExt)
}

// validName rejects names that are empty, oversized, or not path-safe.
func validName(name string) error {
	if !modelNameRe.MatchString(name) {
		return fmt.Errorf("server: invalid model name %q (want %s)", name, modelNameRe)
	}
	return nil
}

// Save serializes a trained model under name, replacing any previous
// entry.
func (r *Registry) Save(name string, m *marioh.Model) error {
	var buf bytes.Buffer
	if err := marioh.SaveModel(&buf, m); err != nil {
		return err
	}
	return r.Put(name, buf.Bytes())
}

// Put stores a serialized model under name after validating that it
// decodes (so the registry can never hold a model Get would fail on).
// Disk writes happen outside the registry lock (via a temp file + atomic
// rename), so a slow disk never stalls concurrent lookups.
func (r *Registry) Put(name string, raw []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	m, err := marioh.LoadModel(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if r.dir != "" {
		tmp, err := os.CreateTemp(r.dir, name+".tmp-*")
		if err != nil {
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
		if _, err := tmp.Write(raw); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
		if err := os.Chmod(tmp.Name(), 0o644); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
		if err := os.Rename(tmp.Name(), r.path(name)); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dir == "" {
		r.raw[name] = append([]byte(nil), raw...)
	}
	now := time.Now()
	r.saved[name] = now
	delete(r.hashes, name) // the bytes changed; re-hash lazily
	r.meta[name] = ModelInfo{
		Name:       name,
		Featurizer: m.Feat.Name(),
		Sizes:      append([]int(nil), m.Net.Sizes...),
		Bytes:      len(raw),
		Saved:      now,
	}
	r.cacheLocked(name, m, int64(len(raw)))
	return nil
}

// Hash returns the hex SHA-256 of the model's serialized bytes, memoized
// until the entry changes. It is the model component of content-addressed
// dedup keys: two registry entries with the same bytes reconstruct
// identically, whatever they are named.
func (r *Registry) Hash(name string) (string, error) {
	if err := validName(name); err != nil {
		return "", err
	}
	r.mu.Lock()
	if h, ok := r.hashes[name]; ok {
		r.mu.Unlock()
		return h, nil
	}
	r.mu.Unlock()
	raw, err := r.rawBytes(name)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	h := hex.EncodeToString(sum[:])
	r.mu.Lock()
	if _, ok := r.saved[name]; ok { // don't re-memoize a concurrent delete
		r.hashes[name] = h
	}
	r.mu.Unlock()
	return h, nil
}

// Raw returns the serialized bytes of a stored model.
func (r *Registry) Raw(name string) ([]byte, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return r.rawBytes(name)
}

// rawBytes loads a model's serialization, reading disk outside the lock.
func (r *Registry) rawBytes(name string) ([]byte, error) {
	r.mu.Lock()
	_, ok := r.saved[name]
	var mem []byte
	if ok && r.dir == "" {
		mem = append([]byte(nil), r.raw[name]...)
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	if r.dir == "" {
		return mem, nil
	}
	raw, err := os.ReadFile(r.path(name))
	switch {
	case errors.Is(err, os.ErrNotExist): // deleted concurrently
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	case err != nil:
		return nil, fmt.Errorf("%w: %v", ErrStorage, err)
	}
	return raw, nil
}

// Get returns the decoded model stored under name, from the LRU cache
// when warm. Cache misses read and decode outside the lock.
func (r *Registry) Get(name string) (*marioh.Model, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if el, ok := r.cache[name]; ok {
		r.lru.MoveToFront(el)
		m := el.Value.(*cacheEntry).model
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	raw, err := r.rawBytes(name)
	if err != nil {
		return nil, err
	}
	m, err := marioh.LoadModel(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.cache[name]; ok { // another goroutine decoded it first
		r.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).model, nil
	}
	if _, ok := r.saved[name]; ok { // don't re-cache a concurrent delete
		r.cacheLocked(name, m, int64(len(raw)))
	}
	return m, nil
}

// cacheLocked inserts (or refreshes) a cache entry, evicting the least
// recently used one past capacity and keeping the budget's models pool in
// step; callers hold r.mu.
func (r *Registry) cacheLocked(name string, m *marioh.Model, size int64) {
	if el, ok := r.cache[name]; ok {
		e := el.Value.(*cacheEntry)
		if r.budget != nil {
			r.budget.Charge(budgetPoolModels, size-e.size)
		}
		e.model, e.size = m, size
		r.lru.MoveToFront(el)
		return
	}
	r.cache[name] = r.lru.PushFront(&cacheEntry{name: name, model: m, size: size})
	if r.budget != nil {
		r.budget.Charge(budgetPoolModels, size)
	}
	for r.lru.Len() > r.cap {
		last := r.lru.Back()
		r.lru.Remove(last)
		e := last.Value.(*cacheEntry)
		delete(r.cache, e.name)
		if r.budget != nil {
			r.budget.Charge(budgetPoolModels, -e.size)
		}
	}
}

// Delete removes a stored model; the file removal runs outside the lock.
func (r *Registry) Delete(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	r.mu.Lock()
	if _, ok := r.saved[name]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	delete(r.saved, name)
	delete(r.raw, name)
	delete(r.meta, name)
	delete(r.hashes, name)
	if el, ok := r.cache[name]; ok {
		r.lru.Remove(el)
		delete(r.cache, name)
		if r.budget != nil {
			r.budget.Charge(budgetPoolModels, -el.Value.(*cacheEntry).size)
		}
	}
	r.mu.Unlock()
	if r.dir != "" {
		if err := os.Remove(r.path(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %v", ErrStorage, err)
		}
	}
	return nil
}

// Len returns the number of stored models without touching disk or the
// cache (the healthz-friendly counterpart of List).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.saved)
}

// Info describes one stored model. Metadata recorded at Put time is
// served as-is; models discovered on disk at startup are decoded once —
// without touching the hot decoded-model LRU — and memoized.
func (r *Registry) Info(name string) (ModelInfo, error) {
	if err := validName(name); err != nil {
		return ModelInfo{}, err
	}
	r.mu.Lock()
	info, ok := r.meta[name]
	saved := r.saved[name]
	r.mu.Unlock()
	if ok {
		return info, nil
	}
	raw, err := r.rawBytes(name)
	if err != nil {
		return ModelInfo{}, err
	}
	m, err := marioh.LoadModel(bytes.NewReader(raw))
	if err != nil {
		return ModelInfo{}, err
	}
	info = ModelInfo{
		Name:       name,
		Featurizer: m.Feat.Name(),
		Sizes:      append([]int(nil), m.Net.Sizes...),
		Bytes:      len(raw),
		Saved:      saved,
	}
	r.mu.Lock()
	// Re-check the name still exists (a concurrent Delete wins).
	if _, ok := r.saved[name]; ok {
		r.meta[name] = info
	}
	r.mu.Unlock()
	return info, nil
}

// List describes every stored model, sorted by name. Entries that fail to
// load (e.g. a corrupted file dropped into the directory) are skipped.
func (r *Registry) List() []ModelInfo {
	r.mu.Lock()
	names := make([]string, 0, len(r.saved))
	for name := range r.saved {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)

	out := make([]ModelInfo, 0, len(names))
	for _, name := range names {
		info, err := r.Info(name)
		if err != nil {
			continue
		}
		out = append(out, info)
	}
	return out
}
