package server

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"marioh"
)

// testSource is a small deterministic supervision hypergraph.
func testSource(t *testing.T) *marioh.Hypergraph {
	t.Helper()
	h := marioh.NewHypergraph(0)
	for _, e := range [][]int{
		{0, 1, 2}, {1, 2, 3}, {3, 4, 5}, {4, 5, 6}, {6, 7, 8},
		{0, 2, 4}, {2, 4, 6}, {7, 8}, {1, 3}, {5, 7, 9},
		{8, 9, 10}, {9, 10, 11}, {2, 5, 8}, {0, 3, 6, 9},
	} {
		h.Add(e)
	}
	return h
}

// testTarget is a small deterministic target projection.
func testTarget(t *testing.T) *marioh.Graph {
	t.Helper()
	h := marioh.NewHypergraph(0)
	for _, e := range [][]int{
		{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {1, 3, 5},
		{6, 7}, {0, 2, 4, 6}, {3, 5, 7}, {1, 4, 7},
	} {
		h.Add(e)
	}
	return h.Project()
}

func graphText(t *testing.T, g *marioh.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func hypergraphText(t *testing.T, h *marioh.Hypergraph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newTestServer boots a Server over httptest with small limits; mutate cfg
// via the optional hook before construction.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *Client) {
	t.Helper()
	cfg := Config{
		Workers:    2,
		QueueDepth: 8,
		Logf:       t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.queue.Drain(drainCtx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, NewClient(ts.URL)
}

// trainOn synchronously drives a training job to completion and returns
// its registry model name.
func trainOn(t *testing.T, c *Client, src *marioh.Hypergraph, saveAs string, spec OptionSpec) TrainResult {
	t.Helper()
	ctx := context.Background()
	info, err := c.Train(ctx, TrainRequest{Source: hypergraphText(t, src), SaveAs: saveAs, Options: spec})
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusQueued && info.Status != StatusRunning {
		t.Fatalf("train job submitted with status %q", info.Status)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	done, err := c.WaitJob(waitCtx, info.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var result TrainResult
	if err := JobResult(done, &result); err != nil {
		t.Fatal(err)
	}
	return result
}

// TestServerTrainReconstructMatchesLibrary is the acceptance criterion: a
// reconstruction served over HTTP must be byte-identical to the same
// request made through the library API, and the model trained server-side
// must serialize to the same bytes as the library-trained one.
func TestServerTrainReconstructMatchesLibrary(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	// Canonicalize both inputs through their wire form first: training
	// depends on hyperedge order, and the equivalence contract is between
	// the server and a library caller reading the same serialized inputs
	// (exactly what the CI smoke test does with files and mariohctl).
	src, err := parseHypergraph(hypergraphText(t, src))
	if err != nil {
		t.Fatal(err)
	}
	tgt, err = parseGraph(graphText(t, tgt))
	if err != nil {
		t.Fatal(err)
	}
	spec := OptionSpec{Seed: 3, Epochs: 6}

	lib, err := marioh.New(marioh.WithSeed(3), marioh.WithEpochs(6))
	if err != nil {
		t.Fatal(err)
	}
	model, err := lib.Train(ctx, src.Project(), src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lib.Reconstruct(ctx, tgt)
	if err != nil {
		t.Fatal(err)
	}
	var wantModel, wantRec bytes.Buffer
	if err := marioh.SaveModel(&wantModel, model); err != nil {
		t.Fatal(err)
	}
	if err := res.Hypergraph.Write(&wantRec); err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, nil)
	trained := trainOn(t, c, src, "det", spec)
	if trained.Model != "det" || trained.Featurizer != "marioh" {
		t.Fatalf("train result = %+v", trained)
	}

	gotModel, err := c.PullModel(ctx, "det")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotModel) != wantModel.String() {
		t.Fatalf("server-trained model bytes differ from library-trained ones:\nserver: %s\nlib:    %s",
			gotModel, wantModel.String())
	}

	resp, job, err := c.Reconstruct(ctx, ReconstructRequest{
		Model: "det", Target: graphText(t, tgt), Options: OptionSpec{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job != nil {
		t.Fatalf("small target should run synchronously, got async job %+v", job)
	}
	if resp.Result.Hypergraph != wantRec.String() {
		t.Fatalf("server reconstruction differs from library call:\nserver:\n%s\nlib:\n%s",
			resp.Result.Hypergraph, wantRec.String())
	}
	if resp.Result.Unique != res.Hypergraph.NumUnique() || resp.Result.Total != res.Hypergraph.NumTotal() {
		t.Fatalf("stats mismatch: %+v vs %d/%d", resp.Result, res.Hypergraph.NumUnique(), res.Hypergraph.NumTotal())
	}
}

// TestServerAsyncReconstructAndBatch covers the forced-async path, job
// polling, and the batch fan-out being positionally aligned and equal to
// the sync results.
func TestServerAsyncReconstructAndBatch(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m", OptionSpec{Seed: 1, Epochs: 5})

	// Sync baseline.
	sync1, _, err := c.Reconstruct(ctx, ReconstructRequest{Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}

	// Forced async.
	forceAsync := true
	resp, job, err := c.Reconstruct(ctx, ReconstructRequest{
		Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 1}, Async: &forceAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil || job == nil {
		t.Fatalf("async=true must return a job, got resp=%v job=%v", resp, job)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	done, err := c.WaitJob(waitCtx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var asyncResult ReconstructResult
	if err := JobResult(done, &asyncResult); err != nil {
		t.Fatal(err)
	}
	if asyncResult.Hypergraph != sync1.Result.Hypergraph {
		t.Fatal("async reconstruction differs from sync")
	}

	// Batch over the same target twice: aligned, equal to sync.
	batchJob, err := c.ReconstructBatch(ctx, ReconstructRequest{
		Model: "m", Targets: []string{graphText(t, tgt), graphText(t, tgt)}, Options: OptionSpec{Seed: 1, Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err = c.WaitJob(waitCtx, batchJob.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResult
	if err := JobResult(done, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch returned %d results", len(batch.Results))
	}
	for i, r := range batch.Results {
		if r.Hypergraph != sync1.Result.Hypergraph {
			t.Fatalf("batch result %d differs from sync reconstruction", i)
		}
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// parseSSE parses a complete SSE stream into frames, failing on malformed
// framing.
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, frame := range strings.Split(body, "\n\n") {
		if strings.TrimSpace(frame) == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(frame, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				ev.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("malformed SSE line %q in frame %q", line, frame)
			}
		}
		if ev.event == "" || ev.data == "" {
			t.Fatalf("incomplete SSE frame %q", frame)
		}
		events = append(events, ev)
	}
	return events
}

// TestServerJobEventsSSE checks SSE framing: replayed progress events for
// a finished job, monotonically increasing ids, and a final "done" event
// with the terminal status.
func TestServerJobEventsSSE(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m", OptionSpec{Seed: 1, Epochs: 5})

	forceAsync := true
	_, job, err := c.Reconstruct(ctx, ReconstructRequest{
		Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 1}, Async: &forceAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if _, err := c.WaitJob(waitCtx, job.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.Base + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(bufio.NewReader(resp.Body)); err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, buf.String())
	if len(events) < 2 {
		t.Fatalf("want >= 1 progress + done, got %d events: %v", len(events), events)
	}
	for i, ev := range events[:len(events)-1] {
		if ev.event != "progress" {
			t.Fatalf("event %d = %q, want progress", i, ev.event)
		}
		if !strings.Contains(ev.data, "\"edges_remaining\"") {
			t.Fatalf("progress data misses fields: %s", ev.data)
		}
	}
	last := events[len(events)-1]
	if last.event != "done" || !strings.Contains(last.data, string(StatusSucceeded)) {
		t.Fatalf("final event = %+v, want done/succeeded", last)
	}
}

// TestServerSyncDisconnectCancelsJob pins the cancellation plumbing: a
// synchronous reconstruction whose client goes away is cancelled through
// its request context and lands in the cancelled state.
func TestServerSyncDisconnectCancelsJob(t *testing.T) {
	src, tgt := testSource(t), testTarget(t)
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	s, c := newTestServer(t, func(cfg *Config) {
		cfg.testProgressHook = func(marioh.Progress) {
			once.Do(func() { close(started) })
			<-gate
		}
	})
	trainOn(t, c, src, "m", OptionSpec{Seed: 1, Epochs: 5})

	reqCtx, cancelReq := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.Reconstruct(reqCtx, ReconstructRequest{
			Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 1},
		})
		errCh <- err
	}()

	<-started // the job is mid-run, blocked in the progress hook
	var recJob *Job
	for _, job := range s.queue.Jobs() {
		if job.Kind == JobReconstruct {
			recJob = job
		}
	}
	if recJob == nil {
		t.Fatal("reconstruct job not registered")
	}
	recJob.mu.Lock()
	runCtx := recJob.runCtx
	recJob.mu.Unlock()

	cancelReq() // client disconnects
	<-runCtx.Done()
	close(gate) // unblock the hook; the run loop now observes the cancellation
	if err := <-errCh; err == nil {
		t.Fatal("disconnected request must error")
	}

	select {
	case <-recJob.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached a terminal state")
	}
	if got := recJob.Status(); got != StatusCancelled {
		t.Fatalf("job status = %q, want cancelled", got)
	}
}

// TestServerModelsEndpoints covers the registry surface: upload,
// validation, listing, download round-trip, delete, and 404s.
func TestServerModelsEndpoints(t *testing.T) {
	ctx := context.Background()
	src := testSource(t)
	_, c := newTestServer(t, nil)

	// Upload a library-trained model.
	lib, err := marioh.New(marioh.WithSeed(2), marioh.WithEpochs(5))
	if err != nil {
		t.Fatal(err)
	}
	model, err := lib.Train(ctx, src.Project(), src)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := marioh.SaveModel(&raw, model); err != nil {
		t.Fatal(err)
	}
	info, err := c.PushModel(ctx, "uploaded", raw.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "uploaded" || info.Featurizer != "marioh" || len(info.Sizes) == 0 {
		t.Fatalf("push info = %+v", info)
	}

	// Garbage payloads and bad names are rejected.
	if _, err := c.PushModel(ctx, "bad", []byte("not a model")); err == nil {
		t.Fatal("garbage model must be rejected")
	}
	if _, err := c.PushModel(ctx, "..", raw.Bytes()); err == nil {
		t.Fatal("path-escaping name must be rejected")
	}

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != "uploaded" {
		t.Fatalf("models = %+v", models)
	}

	got, err := c.PullModel(ctx, "uploaded")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != raw.String() {
		t.Fatal("model download does not round-trip")
	}
	if _, err := marioh.LoadModel(bytes.NewReader(got)); err != nil {
		t.Fatalf("downloaded model does not load: %v", err)
	}

	if err := c.DeleteModel(ctx, "uploaded"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PullModel(ctx, "uploaded"); err == nil {
		t.Fatal("deleted model must 404")
	}
	if err := c.DeleteModel(ctx, "uploaded"); err == nil {
		t.Fatal("double delete must 404")
	}
}

// TestServerValidationAndNotFound covers the 4xx surface of the job and
// reconstruct endpoints.
func TestServerValidationAndNotFound(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, nil)

	if _, err := c.Job(ctx, "j-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job: %v", err)
	}
	if _, err := c.CancelJob(ctx, "j-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("cancel unknown job: %v", err)
	}
	if _, _, err := c.Reconstruct(ctx, ReconstructRequest{Target: "0 1 1"}); err == nil {
		t.Fatal("missing model must be rejected")
	}
	if _, _, err := c.Reconstruct(ctx, ReconstructRequest{Model: "nope", Target: "0 1 1"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := c.Train(ctx, TrainRequest{Source: ""}); err == nil {
		t.Fatal("empty source must be rejected")
	}
	if _, err := c.Train(ctx, TrainRequest{Source: "0 1 2", Options: OptionSpec{Variant: "nope"}}); err == nil {
		t.Fatal("unknown variant must be rejected before queueing")
	}
	if _, err := c.ReconstructBatch(ctx, ReconstructRequest{Model: "m"}); err == nil {
		t.Fatal("batch without targets must be rejected")
	}
}

// TestServerHealthAndMetrics checks the observability endpoints.
func TestServerHealthAndMetrics(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m", OptionSpec{Seed: 1, Epochs: 5})
	if _, _, err := c.Reconstruct(ctx, ReconstructRequest{Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 1}}); err != nil {
		t.Fatal(err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != marioh.Version || h.Workers != 2 || h.Models != 1 {
		t.Fatalf("health = %+v", h)
	}

	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`marioh_requests_total{route="POST /v1/train"} 1`,
		`marioh_requests_total{route="POST /v1/reconstruct"} 1`,
		`marioh_job_events_total{event="submitted"} 2`,
		`marioh_job_events_total{event="succeeded"} 2`,
		`marioh_stage_runs_total{stage="filter"} 1`,
		`marioh_stage_runs_total{stage="train_optimize"} 1`,
		"marioh_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output misses %q:\n%s", want, text)
		}
	}
}

// TestServerPersistentRegistry checks that a disk-backed registry
// survives a server restart.
func TestServerPersistentRegistry(t *testing.T) {
	ctx := context.Background()
	src := testSource(t)
	dir := t.TempDir()

	_, c := newTestServer(t, func(cfg *Config) { cfg.ModelsDir = dir })
	trainOn(t, c, src, "persisted", OptionSpec{Seed: 1, Epochs: 5})
	raw, err := c.PullModel(ctx, "persisted")
	if err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, func(cfg *Config) { cfg.ModelsDir = dir })
	raw2, err := c2.PullModel(ctx, "persisted")
	if err != nil {
		t.Fatalf("model lost across restart: %v", err)
	}
	if string(raw) != string(raw2) {
		t.Fatal("model bytes changed across restart")
	}
}

// TestServerShardedReconstructMatchesSerial: a reconstruct request with
// shards set must fan out through the queue's task lane and still return
// exactly the serial pipeline's bytes, with shard metadata in the result
// and shard counters in /metrics.
func TestServerShardedReconstructMatchesSerial(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m", OptionSpec{Seed: 2, Epochs: 5})

	serial, _, err := c.Reconstruct(ctx, ReconstructRequest{
		Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Result.Shards != 0 {
		t.Fatalf("serial result reports %d shards", serial.Result.Shards)
	}
	for _, shards := range []int{1, 4, 16} {
		res, _, err := c.Reconstruct(ctx, ReconstructRequest{
			Model: "m", Target: graphText(t, tgt),
			Options: OptionSpec{Seed: 2, Shards: shards, ShardTarget: 4},
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Result.Hypergraph != serial.Result.Hypergraph {
			t.Fatalf("shards=%d: served reconstruction diverges from the serial pipeline", shards)
		}
		if res.Result.Shards < 1 {
			t.Fatalf("shards=%d: result reports %d shards", shards, res.Result.Shards)
		}
	}

	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "marioh_sharded_runs_total 3") {
		t.Fatalf("metrics miss sharded run counter:\n%s", text)
	}
	if !strings.Contains(text, "marioh_shards_processed_total") {
		t.Fatalf("metrics miss shards processed counter:\n%s", text)
	}

	// Negative shard counts are rejected before a job is queued.
	if _, _, err := c.Reconstruct(ctx, ReconstructRequest{
		Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Shards: -1},
	}); err == nil {
		t.Fatal("negative shard count must be rejected")
	}
}
