package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marioh"
)

// blockUntilCtx is a workload that publishes one event and then waits for
// its context, the stand-in for a long reconstruction.
func blockUntilCtx(ctx context.Context, job *Job) (any, error) {
	job.publish(marioh.Progress{Round: 1})
	<-ctx.Done()
	return nil, ctx.Err()
}

// quickJob is a workload that finishes immediately.
func quickJob(ctx context.Context, job *Job) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	job.publish(marioh.Progress{Round: 1})
	return "done", nil
}

// TestQueueDrainRunsAcceptedJobs pins the graceful-shutdown contract:
// every job accepted before Drain runs to completion.
func TestQueueDrainRunsAcceptedJobs(t *testing.T) {
	q := NewQueue(context.Background(), 2, 32, 0)
	var jobs []*Job
	for i := 0; i < 10; i++ {
		job, err := q.Submit(JobReconstruct, quickJob)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs {
		if got := job.Status(); got != StatusSucceeded {
			t.Fatalf("job %s = %q after drain, want succeeded", job.ID, got)
		}
		if result, _ := job.Result(); result != "done" {
			t.Fatalf("job %s result = %v", job.ID, result)
		}
	}
	if _, err := q.Submit(JobTrain, quickJob); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after drain = %v, want ErrShuttingDown", err)
	}
}

// TestQueuePanickingJobFailsWithoutKillingWorker: a workload panic must
// fail its own job and leave the worker alive to run the next one — a
// crafted request that slips past validation must never take down the
// daemon from the async lane.
func TestQueuePanickingJobFailsWithoutKillingWorker(t *testing.T) {
	q := NewQueue(context.Background(), 1, 8, 0)
	bad, err := q.Submit(JobReconstruct, func(context.Context, *Job) (any, error) {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := q.Submit(JobReconstruct, quickJob)
	if err != nil {
		t.Fatal(err)
	}
	<-bad.Done()
	if got := bad.Status(); got != StatusFailed {
		t.Fatalf("panicking job = %q, want failed", got)
	}
	if _, err := bad.Result(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panicking job error = %v, want the panic value", err)
	}
	// The single worker survived and services the next job.
	<-good.Done()
	if got := good.Status(); got != StatusSucceeded {
		t.Fatalf("follow-up job = %q, want succeeded", got)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueDrainTimeoutCancelsStuckJobs: when the drain budget expires,
// running jobs are cancelled rather than leaking.
func TestQueueDrainTimeoutCancelsStuckJobs(t *testing.T) {
	q := NewQueue(context.Background(), 1, 8, 0)
	job, err := q.Submit(JobReconstruct, blockUntilCtx)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want deadline exceeded", err)
	}
	if got := job.Status(); got != StatusCancelled {
		t.Fatalf("stuck job = %q after forced drain, want cancelled", got)
	}
}

// TestQueueBoundedRejectsWhenFull pins the 503 path: with one worker
// blocked and the buffer full, the next submission fails fast and leaves
// no orphan job behind.
func TestQueueBoundedRejectsWhenFull(t *testing.T) {
	q := NewQueue(context.Background(), 1, 1, 0)
	running, err := q.Submit(JobReconstruct, blockUntilCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked the job up so the buffer is empty.
	waitStatus(t, running, StatusRunning)

	queued, err := q.Submit(JobReconstruct, blockUntilCtx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(JobReconstruct, blockUntilCtx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
	if n := len(q.Jobs()); n != 2 {
		t.Fatalf("rejected submit left a trace: %d jobs", n)
	}

	// Cancelling the buffered job must finish it without running it.
	if !q.Cancel(queued.ID) {
		t.Fatal("cancel queued job")
	}
	if got := queued.Status(); got != StatusCancelled {
		t.Fatalf("queued job = %q after cancel, want cancelled", got)
	}
	if !q.Cancel(running.ID) {
		t.Fatal("cancel running job")
	}
	waitStatus(t, running, StatusCancelled)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func waitStatus(t *testing.T, job *Job, want JobStatus) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for job.Status() != want {
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %q waiting for %q", job.ID, job.Status(), want)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestQueueConcurrentSubmitCancelDrain is the -race exercise: many
// goroutines submitting, cancelling and subscribing while the queue
// drains. The assertions are that nothing deadlocks, every accepted job
// reaches a terminal state, and IDs stay unique.
func TestQueueConcurrentSubmitCancelDrain(t *testing.T) {
	q := NewQueue(context.Background(), 4, 16, 0)
	const submitters = 8
	const perSubmitter = 10

	var mu sync.Mutex
	var accepted []*Job

	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				kind := JobReconstruct
				run := quickJob
				if i%3 == 0 {
					run = blockUntilCtx
					kind = JobBatch
				}
				job, err := q.Submit(kind, run)
				if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				accepted = append(accepted, job)
				mu.Unlock()
				// Subscribe/unsubscribe and cancel concurrently with the run.
				past, ch := job.Subscribe()
				_ = past
				if i%2 == 0 {
					q.Cancel(job.ID)
				}
				job.Unsubscribe(ch)
			}
		}(s)
	}
	wg.Wait()

	// Cancel the long-running jobs so a plain drain terminates.
	mu.Lock()
	for _, job := range accepted {
		if job.Kind == JobBatch {
			q.Cancel(job.ID)
		}
	}
	jobs := append([]*Job(nil), accepted...)
	mu.Unlock()

	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := q.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	seen := map[string]bool{}
	for _, job := range jobs {
		if !job.Status().Terminal() {
			t.Fatalf("job %s not terminal after drain: %q", job.ID, job.Status())
		}
		if seen[job.ID] {
			t.Fatalf("duplicate job ID %s", job.ID)
		}
		seen[job.ID] = true
	}
}

// TestQueueSubscribeReplaysAndCloses covers the event-log contract backing
// SSE: late subscribers get the full replay, and channels close on finish.
func TestQueueSubscribeReplaysAndCloses(t *testing.T) {
	q := NewQueue(context.Background(), 1, 8, 0)
	job, err := q.Submit(JobReconstruct, func(ctx context.Context, job *Job) (any, error) {
		for i := 1; i <= 5; i++ {
			job.publish(marioh.Progress{Round: i})
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	past, ch := job.Subscribe()
	if len(past) != 5 {
		t.Fatalf("replay has %d events, want 5", len(past))
	}
	for i, p := range past {
		if p.Round != i+1 {
			t.Fatalf("replay out of order: %v", past)
		}
	}
	if _, open := <-ch; open {
		t.Fatal("live channel of a finished job must be closed")
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueRunInlineHonorsCallerContext covers the synchronous path: the
// caller's context cancels the job, and queue-root cancellation (hard
// shutdown) does too.
func TestQueueRunInlineHonorsCallerContext(t *testing.T) {
	q := NewQueue(context.Background(), 1, 8, 0)
	job, err := q.NewJob(JobReconstruct, blockUntilCtx)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the workload has started publishing; the first event
		// may already be in the replay buffer by subscription time.
		past, ch := job.Subscribe()
		defer job.Unsubscribe(ch)
		if len(past) == 0 {
			select {
			case <-ch:
			case <-time.After(30 * time.Second):
			}
		}
		cancel()
	}()
	q.RunInline(ctx, job)
	if got := job.Status(); got != StatusCancelled {
		t.Fatalf("inline job = %q, want cancelled", got)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueHistoryEvictsTerminalJobs pins the memory bound: finished jobs
// beyond the history cap are evicted oldest-first, while live jobs are
// never evicted regardless of age.
func TestQueueHistoryEvictsTerminalJobs(t *testing.T) {
	q := NewQueue(context.Background(), 1, 8, 3)
	blocked, err := q.Submit(JobBatch, blockUntilCtx)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocked, StatusRunning)

	var done []*Job
	for i := 0; i < 5; i++ {
		job, err := q.NewJob(JobReconstruct, quickJob)
		if err != nil {
			t.Fatal(err)
		}
		q.RunInline(context.Background(), job)
		done = append(done, job)
	}

	if n := len(q.Jobs()); n != 3 {
		t.Fatalf("history keeps %d jobs, want 3", n)
	}
	if _, ok := q.Get(blocked.ID); !ok {
		t.Fatal("running job must survive eviction")
	}
	if _, ok := q.Get(done[0].ID); ok {
		t.Fatal("oldest finished job must be evicted")
	}
	if _, ok := q.Get(done[len(done)-1].ID); !ok {
		t.Fatal("newest finished job must be retained")
	}

	q.Cancel(blocked.ID)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueIDsAreSequential pins the ID format the CLI and logs rely on.
func TestQueueIDsAreSequential(t *testing.T) {
	q := NewQueue(context.Background(), 1, 8, 0)
	for i := 1; i <= 3; i++ {
		job, err := q.NewJob(JobTrain, quickJob)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("j-%06d", i); job.ID != want {
			t.Fatalf("job ID = %q, want %q", job.ID, want)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueRunTasksStealing: RunTasks executes every task exactly once,
// whether stolen by idle workers or run inline by the caller, and never
// deadlocks — even when invoked from inside a job occupying the only
// worker, and even after the queue started draining.
func TestQueueRunTasksStealing(t *testing.T) {
	q := NewQueue(context.Background(), 1, 4, 16)
	var ran int64
	job, err := q.Submit(JobReconstruct, func(ctx context.Context, job *Job) (any, error) {
		tasks := make([]func(), 32)
		for i := range tasks {
			tasks[i] = func() { atomic.AddInt64(&ran, 1) }
		}
		q.RunTasks(tasks) // the lone worker is busy running us: all inline
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if got := atomic.LoadInt64(&ran); got != 32 {
		t.Fatalf("ran %d tasks, want 32", got)
	}

	// Multi-worker: a concurrent RunTasks drains with help from the pool.
	q2 := NewQueue(context.Background(), 4, 4, 16)
	var ran2 int64
	tasks := make([]func(), 64)
	for i := range tasks {
		tasks[i] = func() { time.Sleep(time.Millisecond); atomic.AddInt64(&ran2, 1) }
	}
	q2.RunTasks(tasks)
	if got := atomic.LoadInt64(&ran2); got != 64 {
		t.Fatalf("ran %d tasks, want 64", got)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if err := q2.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	// After draining the workers are gone; RunTasks must still complete.
	var ran3 int64
	q2.RunTasks([]func(){func() { atomic.AddInt64(&ran3, 1) }})
	if ran3 != 1 {
		t.Fatal("post-drain RunTasks did not run inline")
	}
}
