package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"marioh"
	"marioh/internal/admission"
)

// JobKind names the workload a job carries.
type JobKind string

// The job kinds mariohd runs.
const (
	JobTrain       JobKind = "train"
	JobReconstruct JobKind = "reconstruct"
	JobBatch       JobKind = "batch"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle: Queued → Running → one of the three terminal states.
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusSucceeded JobStatus = "succeeded"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// Terminal reports whether s is a final state.
func (s JobStatus) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// ErrQueueFull is returned by Submit when the bounded queue has no room;
// handlers map it to 503 Service Unavailable.
var ErrQueueFull = errors.New("server: job queue is full")

// ErrShuttingDown is returned by Submit once the queue stopped accepting
// work.
var ErrShuttingDown = errors.New("server: shutting down")

// runFunc is a job's workload. It must honor ctx and report per-round
// progress through job.publish (which buffers events and fans them out to
// SSE subscribers).
type runFunc func(ctx context.Context, job *Job) (any, error)

// Job is one unit of asynchronous (or inline synchronous) work tracked by
// the Queue: a workload plus its lifecycle state, buffered progress
// events, and live event subscribers.
type Job struct {
	ID   string
	Kind JobKind
	// Tenant is the identity the job is accounted to; immutable after
	// registration.
	Tenant string

	run runFunc
	q   *Queue // owning queue; immutable after registration

	mu       sync.Mutex
	status   JobStatus                         // guarded by mu
	err      error                             // guarded by mu
	result   any                               // guarded by mu
	created  time.Time                         // guarded by mu
	started  time.Time                         // guarded by mu
	finished time.Time                         // guarded by mu
	events   []marioh.Progress                 // guarded by mu
	subs     map[chan marioh.Progress]struct{} // guarded by mu
	done     chan struct{}                     // closed exactly once by finish (with mu held)
	runCtx   context.Context                   // guarded by mu; the context the workload runs under, tests synchronize on it
	onFinish func()                            // guarded by mu; runs once after the terminal transition (tenant slot release)
	retained int64                             // guarded by mu; budget bytes charged for the kept result
}

// JobInfo is the JSON-serializable snapshot of a Job returned by the jobs
// endpoints.
type JobInfo struct {
	ID       string     `json:"id"`
	Kind     JobKind    `json:"kind"`
	Status   JobStatus  `json:"status"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Events   int        `json:"events"`
	Result   any        `json:"result,omitempty"`
}

// Info snapshots the job. The result is included only in terminal states.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:      j.ID,
		Kind:    j.Kind,
		Status:  j.status,
		Created: j.created,
		Events:  len(j.events),
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
	}
	if j.status.Terminal() {
		info.Result = j.result
	}
	return info
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the workload's return value and error; valid once Done is
// closed.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// publish buffers a progress event and fans it out to subscribers. A
// subscriber whose channel is full misses the event (it still has the
// buffered prefix to recover from via resubscribe; SSE channels are sized
// so this only happens to pathologically slow clients).
func (j *Job) publish(p marioh.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, p)
	for ch := range j.subs {
		select {
		case ch <- p:
		default:
		}
	}
}

// Subscribe returns a copy of the events so far plus a channel of
// subsequent events. The channel is closed when the job finishes. Callers
// must Unsubscribe.
func (j *Job) Subscribe() ([]marioh.Progress, <-chan marioh.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	past := append([]marioh.Progress(nil), j.events...)
	ch := make(chan marioh.Progress, 256)
	if j.status.Terminal() {
		close(ch)
		return past, ch
	}
	if j.subs == nil {
		j.subs = map[chan marioh.Progress]struct{}{}
	}
	j.subs[ch] = struct{}{}
	return past, ch
}

// Unsubscribe removes a Subscribe channel.
func (j *Job) Unsubscribe(ch <-chan marioh.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for sub := range j.subs {
		if sub == ch {
			delete(j.subs, sub)
			return
		}
	}
}

// finish moves the job to a terminal state, stores the outcome, closes the
// done channel and all subscriber channels, charges the retained result
// against the memory budget, and releases the tenant's job slot.
func (j *Job) finish(status JobStatus, result any, err error) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.result = result
	j.err = err
	j.finished = time.Now()
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	if j.q != nil && j.q.budget != nil {
		j.retained = resultCost(result)
		if j.retained > 0 {
			j.q.budget.Charge(budgetPoolResults, j.retained)
		}
	}
	hook := j.onFinish
	j.onFinish = nil
	close(j.done)
	j.mu.Unlock()
	// The hook releases external accounting (tenant job slot, queued
	// bytes); it runs outside j.mu so it may take other locks freely.
	if hook != nil {
		hook()
	}
}

// execute runs the workload under ctx, classifying the outcome: a workload
// error equal to ctx.Err() counts as cancellation, not failure. A panicking
// workload fails its own job instead of killing the worker goroutine (and
// with it the daemon) — malformed inputs that slip past request validation
// must never be able to crash the process from the async lane.
func (j *Job) execute(ctx context.Context) {
	j.mu.Lock()
	if j.status.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.runCtx = ctx
	run := j.run
	j.mu.Unlock()

	result, err := func() (result any, err error) {
		defer func() {
			if p := recover(); p != nil {
				// Keep the stack: the whole point of surviving the panic
				// is being able to find it afterwards.
				result, err = nil, fmt.Errorf("job panicked: %v\n%s", p, debug.Stack())
			}
		}()
		return run(ctx, j)
	}()
	switch {
	case err == nil:
		j.finish(StatusSucceeded, result, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StatusCancelled, result, err)
	default:
		j.finish(StatusFailed, result, err)
	}
}

// Queue is a bounded worker-pool job queue: Submit enqueues (rejecting
// when full), a fixed set of workers executes, Cancel aborts one job, and
// Drain performs graceful shutdown — stop accepting, finish everything
// already accepted, then return.
type Queue struct {
	jobs  chan *Job
	tasks chan queueTask

	// budget, when set (before any traffic), meters retained job results
	// under budgetPoolResults; onEvict observes each result eviction.
	budget  *admission.Budget
	onEvict func()

	mu         sync.Mutex
	byID       map[string]*Job // guarded by mu
	order      []string        // guarded by mu; insertion order for listings
	nextID     int             // guarded by mu
	history    int             // immutable after NewQueue; terminal jobs retained for inspection
	root       context.Context
	rootCancel context.CancelFunc
	cancels    map[string]context.CancelFunc // guarded by mu
	closed     bool                          // guarded by mu

	wg sync.WaitGroup
}

// budgetPoolResults is the Budget pool metering retained job results.
const budgetPoolResults = "results"

// resultCost estimates the retained bytes of a terminal job's result
// payload. The hypergraph text dominates every payload that carries one;
// fixed-size metadata gets a small constant.
func resultCost(v any) int64 {
	const meta = 256
	switch r := v.(type) {
	case ReconstructResult:
		return int64(len(r.Hypergraph)) + meta
	case *ReconstructResult:
		return int64(len(r.Hypergraph)) + meta
	case BatchResult:
		var sum int64
		for i := range r.Results {
			sum += int64(len(r.Results[i].Hypergraph)) + meta
		}
		return sum
	case *BatchResult:
		return resultCost(*r)
	case SessionApplyResponse:
		return int64(len(r.Result.Hypergraph)) + meta
	case *SessionApplyResponse:
		return int64(len(r.Result.Hypergraph)) + meta
	case TrainResult, *TrainResult:
		return meta
	case nil:
		return 0
	default:
		return meta
	}
}

// NewQueue starts workers goroutines servicing a queue of at most depth
// pending jobs. root bounds every job's context: cancelling it aborts all
// queued and running work (the hard-shutdown path). history bounds how
// many finished jobs (with their results and event buffers) are retained
// for GET /v1/jobs inspection — the oldest terminal jobs are evicted past
// it, so a long-lived daemon's memory stays bounded.
func NewQueue(root context.Context, workers, depth, history int) *Queue {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 64
	}
	if history <= 0 {
		history = 256
	}
	rootCtx, rootCancel := context.WithCancel(root)
	q := &Queue{
		jobs:       make(chan *Job, depth),
		tasks:      make(chan queueTask),
		byID:       map[string]*Job{},
		history:    history,
		cancels:    map[string]context.CancelFunc{},
		root:       rootCtx,
		rootCancel: rootCancel,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.work()
	}
	return q
}

func (q *Queue) work() {
	defer q.wg.Done()
	for {
		// Workers service two lanes: whole jobs, and the sub-job shard
		// tasks running jobs fan out through RunTasks. An idle worker
		// steals whichever arrives first.
		select {
		case job, ok := <-q.jobs:
			if !ok {
				return
			}
			ctx, cancel := context.WithCancel(q.root)
			q.mu.Lock()
			q.cancels[job.ID] = cancel
			q.mu.Unlock()
			job.execute(ctx)
			cancel()
			q.mu.Lock()
			delete(q.cancels, job.ID)
			q.mu.Unlock()
		case t := <-q.tasks:
			t.fn()
			t.done()
		}
	}
}

// queueTask is one stolen unit of intra-job work (e.g. one shard of a
// sharded reconstruction).
type queueTask struct {
	fn   func()
	done func()
}

// RunTasks executes every fn, letting idle queue workers steal tasks so
// one job can saturate the whole pool. The calling goroutine always makes
// progress by running tasks itself whenever no worker is free to take one,
// so fan-out can never deadlock the pool — even with a single worker, and
// even while the queue is draining.
func (q *Queue) RunTasks(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		t := queueTask{fn: fn, done: wg.Done}
		select {
		case q.tasks <- t:
		default:
			t.fn()
			t.done()
		}
	}
	wg.Wait()
}

// JobMeta is the admission accounting attached to a job at registration:
// the tenant it is billed to and a hook released exactly once when the
// job reaches a terminal state (tenant job slot + queued bytes).
type JobMeta struct {
	Tenant   string
	OnFinish func()
}

// NewJob registers a job without queueing it, for workloads executed
// inline on a request goroutine (the synchronous /v1/reconstruct path).
// The caller runs it with RunInline.
func (q *Queue) NewJob(kind JobKind, run runFunc) (*Job, error) {
	return q.NewJobMeta(kind, JobMeta{}, run)
}

// NewJobMeta is NewJob with admission accounting attached.
func (q *Queue) NewJobMeta(kind JobKind, meta JobMeta, run runFunc) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrShuttingDown
	}
	return q.register(kind, meta, run), nil
}

// register allocates and indexes a job, evicting the oldest terminal jobs
// beyond the history bound; callers hold q.mu.
func (q *Queue) register(kind JobKind, meta JobMeta, run runFunc) *Job {
	q.nextID++
	job := &Job{
		ID:       fmt.Sprintf("j-%06d", q.nextID),
		Kind:     kind,
		Tenant:   meta.Tenant,
		run:      run,
		q:        q,
		status:   StatusQueued,
		created:  time.Now(),
		done:     make(chan struct{}),
		onFinish: meta.OnFinish,
	}
	q.byID[job.ID] = job
	q.order = append(q.order, job.ID)
	if len(q.order) > q.history {
		kept := q.order[:0]
		excess := len(q.order) - q.history
		for _, id := range q.order {
			if excess > 0 && q.dropLocked(id) {
				excess--
				continue
			}
			kept = append(kept, id)
		}
		q.order = kept
	}
	return job
}

// dropLocked forgets a terminal job, releasing its retained-result bytes
// from the budget; it reports whether the job was dropped (non-terminal
// jobs never are). Callers hold q.mu and fix up q.order themselves.
func (q *Queue) dropLocked(id string) bool {
	job := q.byID[id]
	if job == nil || !job.Status().Terminal() {
		return false
	}
	delete(q.byID, id)
	job.mu.Lock()
	retained := job.retained
	job.retained = 0
	job.mu.Unlock()
	if retained > 0 && q.budget != nil {
		q.budget.Charge(budgetPoolResults, -retained)
	}
	if q.onEvict != nil {
		q.onEvict()
	}
	return true
}

// ShedResults evicts the oldest terminal jobs until at least n retained
// bytes are freed (or no terminal job remains), returning the bytes
// actually freed. The server calls it under memory pressure — kept job
// results are cheaper to lose than live sessions.
func (q *Queue) ShedResults(n int64) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var freed int64
	kept := q.order[:0]
	for i, id := range q.order {
		if freed >= n {
			kept = append(kept, q.order[i:]...)
			break
		}
		job := q.byID[id]
		if job == nil {
			continue
		}
		job.mu.Lock()
		retained := job.retained
		job.mu.Unlock()
		if retained <= 0 || !q.dropLocked(id) {
			kept = append(kept, id)
			continue
		}
		freed += retained
	}
	q.order = kept
	return freed
}

// RunInline executes a NewJob-registered job on the calling goroutine,
// bound to both ctx (typically the HTTP request context, so a client
// disconnect cancels the job) and the queue root. It returns when the job
// finishes.
func (q *Queue) RunInline(ctx context.Context, job *Job) {
	joint, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(q.root, cancel)
	defer stop()
	q.mu.Lock()
	q.cancels[job.ID] = cancel
	q.mu.Unlock()
	job.execute(joint)
	q.mu.Lock()
	delete(q.cancels, job.ID)
	q.mu.Unlock()
}

// Submit registers a job and enqueues it for the worker pool, returning
// ErrQueueFull when the bounded buffer is at capacity.
func (q *Queue) Submit(kind JobKind, run runFunc) (*Job, error) {
	return q.SubmitMeta(kind, JobMeta{}, run)
}

// SubmitMeta is Submit with admission accounting attached. On rejection
// meta.OnFinish is NOT called — the job was never registered, so the
// caller still owns its admission slot.
func (q *Queue) SubmitMeta(kind JobKind, meta JobMeta, run runFunc) (*Job, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrShuttingDown
	}
	job := q.register(kind, meta, run)
	select {
	case q.jobs <- job:
		q.mu.Unlock()
		return job, nil
	default:
		// Roll the registration back so a rejected submit leaves no trace.
		delete(q.byID, job.ID)
		q.order = q.order[:len(q.order)-1]
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Get looks a job up by ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.byID[id]
	return job, ok
}

// Cancel aborts a job: a queued job is finished as cancelled immediately,
// a running one has its context cancelled (and reaches the cancelled state
// once the workload observes it). It reports whether the job exists.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	job, ok := q.byID[id]
	cancel := q.cancels[id]
	q.mu.Unlock()
	if !ok {
		return false
	}
	if cancel != nil {
		cancel()
		return true
	}
	job.finish(StatusCancelled, nil, context.Canceled)
	return true
}

// Jobs lists every known job in submission order.
func (q *Queue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.byID[id])
	}
	return out
}

// Depth returns the number of jobs waiting in the buffer (not yet picked
// up by a worker).
func (q *Queue) Depth() int { return len(q.jobs) }

// Counts tallies jobs by status.
func (q *Queue) Counts() map[JobStatus]int {
	out := map[JobStatus]int{}
	for _, job := range q.Jobs() {
		out[job.Status()]++
	}
	return out
}

// Drain gracefully shuts the queue down: no new submissions, every job
// already accepted runs to completion, then the workers exit. If ctx
// expires first, the queue root is cancelled — aborting every queued and
// running job — and Drain waits for the workers to observe the
// cancellation before returning ctx's error.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.rootCancel()
		<-done
		return ctx.Err()
	}
}
