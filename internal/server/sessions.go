package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marioh"
)

// JobSession is the job kind of an asynchronous session apply.
const JobSession JobKind = "session"

// ErrSessionBusy is returned when a session already has an apply in
// flight; handlers map it to 409 Conflict. Applies mutate the session
// graph in submission order, so overlapping batches from one client
// would interleave unpredictably — the server refuses them instead and
// the client retries (or waits on the in-flight job).
var ErrSessionBusy = errors.New("server: session has an apply in flight")

// serverSession is one incremental reconstruction session hosted by the
// daemon: a marioh.Session plus bookkeeping for listings and LRU
// eviction.
type serverSession struct {
	ID    string
	Model string

	sess    *marioh.Session
	created time.Time

	// pub is the progress sink of the apply currently running (fanning
	// events into its job); the session's Reconstructor was configured
	// with a callback that forwards through it. Exclusive thanks to the
	// busy guard — at most one apply runs per session.
	pub atomic.Value // marioh.ProgressFunc

	mu       sync.Mutex
	lastUsed time.Time // guarded by mu
	lastJob  string    // guarded by mu
	busy     bool      // guarded by mu
	// stats is the last known snapshot (guarded by mu), refreshed after
	// every apply, so info() never blocks on the Session mutex behind a
	// running apply.
	stats marioh.SessionStats
}

// acquire claims the session's single apply slot.
func (ss *serverSession) acquire() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.busy {
		return ErrSessionBusy
	}
	ss.busy = true
	return nil
}

// release frees the apply slot and refreshes the cached stats snapshot.
func (ss *serverSession) release() {
	st := ss.sess.Stats()
	ss.mu.Lock()
	ss.stats = st
	ss.busy = false
	ss.mu.Unlock()
}

// publish forwards a progress event to the active apply's sink, if any.
func (ss *serverSession) publish(p marioh.Progress) {
	if fn, ok := ss.pub.Load().(marioh.ProgressFunc); ok && fn != nil {
		fn(p)
	}
}

// touch updates the LRU stamp and the last-apply job pointer.
func (ss *serverSession) touch(job string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.lastUsed = time.Now()
	if job != "" {
		ss.lastJob = job
	}
}

// info snapshots the session for the API from the cached stats — never
// from the live Session, whose mutex a running apply holds for its whole
// duration (listings must not hang behind a long build).
func (ss *serverSession) info() SessionInfo {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return SessionInfo{
		ID:         ss.ID,
		Model:      ss.Model,
		Nodes:      ss.stats.Nodes,
		Edges:      ss.stats.Edges,
		Components: ss.stats.Components,
		Applies:    ss.stats.Applies,
		LastDirty:  ss.stats.LastDirty,
		LastJob:    ss.lastJob,
		Created:    ss.created,
		LastUsed:   ss.lastUsed,
	}
}

// sessionStore owns the daemon's sessions with LRU eviction: opening a
// session beyond the limit evicts the least-recently-used one, so a
// long-lived daemon's memory is bounded by limit live graphs + caches.
type sessionStore struct {
	mu     sync.Mutex
	limit  int                       // immutable after newSessionStore
	nextID int                       // guarded by mu
	byID   map[string]*serverSession // guarded by mu
}

func newSessionStore(limit int) *sessionStore {
	if limit <= 0 {
		limit = 16
	}
	return &sessionStore{limit: limit, byID: map[string]*serverSession{}}
}

// Add registers a session, evicting LRU entries beyond the limit. It
// returns the ids evicted (for metrics/logs).
func (st *sessionStore) Add(ss *serverSession) []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	ss.ID = fmt.Sprintf("s-%06d", st.nextID)
	st.byID[ss.ID] = ss
	var evicted []string
	for len(st.byID) > st.limit {
		var lru *serverSession
		for _, cand := range st.byID {
			if cand == ss {
				continue
			}
			if lru == nil || cand.lastStamp().Before(lru.lastStamp()) {
				lru = cand
			}
		}
		if lru == nil {
			break
		}
		delete(st.byID, lru.ID)
		evicted = append(evicted, lru.ID)
	}
	return evicted
}

// lastStamp returns the LRU ordering key.
func (ss *serverSession) lastStamp() time.Time {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastUsed
}

// Get looks a session up by id.
func (st *sessionStore) Get(id string) (*serverSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.byID[id]
	return ss, ok
}

// Delete removes a session; an in-flight apply keeps its own reference
// and finishes harmlessly.
func (st *sessionStore) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; !ok {
		return false
	}
	delete(st.byID, id)
	return true
}

// List returns every session in creation order (ids are zero-padded, so
// string order is creation order), matching the jobs listing convention.
func (st *sessionStore) List() []*serverSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*serverSession, 0, len(st.byID))
	for _, ss := range st.byID {
		out = append(out, ss)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of live sessions.
func (st *sessionStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// handleSessionCreate implements POST /v1/sessions: open an incremental
// session over a base graph with a registry model.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Model == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("sessions: model is required"))
		return
	}
	if req.Graph == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("sessions: base graph is required"))
		return
	}
	g, err := parseGraph(req.Graph)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.registry.Get(req.Model)
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	opts, err := req.Options.Options()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	ss := &serverSession{Model: req.Model, created: time.Now(), lastUsed: time.Now()}
	opts = append(opts, s.shardingOptions(req.Options)...)
	opts = append(opts, marioh.WithModel(m), marioh.WithProgress(ss.publish))
	rec, err := marioh.New(opts...)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := rec.OpenSession(g)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ss.sess = sess
	ss.stats = sess.Stats()
	evicted := s.sessions.Add(ss)
	s.metrics.SessionOpen(len(evicted))
	for _, id := range evicted {
		s.cfg.Logf("mariohd: session %s evicted (LRU, limit %d)", id, s.cfg.SessionLimit)
	}
	s.cfg.Logf("mariohd: session %s opened (model %s, %d nodes, %d edges)",
		ss.ID, ss.Model, g.NumNodes(), g.NumEdges())
	s.writeJSON(w, http.StatusCreated, ss.info())
}

// handleSessions implements GET /v1/sessions.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.sessions.List()
	out := make([]SessionInfo, len(sessions))
	for i, ss := range sessions {
		out[i] = ss.info()
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleSessionGet implements GET /v1/sessions/{id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, ss.info())
}

// handleSessionDelete implements DELETE /v1/sessions/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Delete(r.PathValue("id")) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionApply implements POST /v1/sessions/{id}/apply: parse the
// delta stream, run Session.Apply as a job (inline on the request
// goroutine by default, queued with {"async": true}), and answer with the
// full reconstruction of the mutated graph.
func (s *Server) handleSessionApply(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	var req SessionApplyRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ops, err := marioh.ReadDeltas(strings.NewReader(req.Deltas))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Delta streams grow the node set densely (an op introduces at most
	// two nodes), so bound the growth a batch may request — an id far
	// beyond it would make the engine allocate per-node state up to the
	// id before any real work, an easy remote memory exhaustion.
	limit := ss.info().Nodes + 2*len(ops)
	for _, op := range ops {
		if op.U >= limit || op.V >= limit {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf(
				"sessions: delta node id %d beyond the session's growth bound %d (graph has %d nodes)",
				max(op.U, op.V), limit, ss.info().Nodes))
			return
		}
	}
	// One apply at a time per session: deltas are ordered mutations, and
	// two in flight would interleave unpredictably on the worker pool.
	if err := ss.acquire(); err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	// The slot is freed exactly once per acquisition, on whichever comes
	// first: the workload's defer, the job's terminal state (covers an
	// async job cancelled while still queued, whose workload never runs),
	// or a failed submission.
	var relOnce sync.Once
	release := func() { relOnce.Do(ss.release) }

	run := func(ctx context.Context, job *Job) (any, error) {
		defer release()
		ss.pub.Store(s.publisher(job))
		defer ss.pub.Store(marioh.ProgressFunc(nil))
		res, err := ss.sess.Apply(ctx, marioh.Delta{Ops: ops})
		ss.touch(job.ID)
		if err != nil {
			return nil, err
		}
		s.metrics.Stage("session_apply", res.Times.Filtering+res.Times.Bidirectional)
		st := ss.sess.Stats()
		s.metrics.SessionApply(res.DirtyComponents, st.Components-res.DirtyComponents)
		rr, err := reconstructResult(res)
		if err != nil {
			return nil, err
		}
		rr.Dirty = res.DirtyComponents
		return rr, nil
	}

	// Default to the queue for sessions over big graphs, mirroring
	// /v1/reconstruct's sync gate: a worst-case apply (the initial build,
	// or a delta merging giant components) reconstructs a graph-sized
	// dirty set, which must not monopolize a request goroutine unless the
	// client explicitly asks for it.
	async := ss.info().Edges > s.cfg.SyncEdgeLimit
	if req.Async != nil {
		async = *req.Async
	}
	if async {
		job, err := s.submit(JobSession, run)
		if err != nil {
			release()
			s.writeError(w, errStatus(err), err)
			return
		}
		ss.touch(job.ID) // stamp eagerly so /events can find the job at once
		go func() {
			<-job.Done()
			release()
		}()
		s.writeJSON(w, http.StatusAccepted, job.Info())
		return
	}

	job, err := s.queue.NewJob(JobSession, run)
	if err != nil {
		release()
		s.writeError(w, errStatus(err), err)
		return
	}
	s.watch(job)
	s.queue.RunInline(r.Context(), job)
	release() // refresh cached stats before snapshotting the response
	result, err := job.Result()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, SessionApplyResponse{
		JobID:   job.ID,
		Session: ss.info(),
		Result:  result.(ReconstructResult),
	})
}

// handleSessionEvents implements GET /v1/sessions/{id}/events: the SSE
// progress stream of the session's most recent apply job.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	ss.mu.Lock()
	lastJob := ss.lastJob
	ss.mu.Unlock()
	if lastJob == "" {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("session %q has no applies yet", ss.ID))
		return
	}
	job, ok := s.queue.Get(lastJob)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("session %q: job %q expired from history", ss.ID, lastJob))
		return
	}
	s.streamJobEvents(w, r, job)
}
