package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marioh"
	"marioh/internal/admission"
	"marioh/internal/durability"
)

// budgetPoolSessions is the memory-budget pool charged for loaded
// session engines.
const budgetPoolSessions = "sessions"

// JobSession is the job kind of an asynchronous session apply.
const JobSession JobKind = "session"

// ErrSessionBusy is returned when a session already has an apply in
// flight; handlers map it to 409 Conflict. Applies mutate the session
// graph in submission order, so overlapping batches from one client
// would interleave unpredictably — the server refuses them instead and
// the client retries (or waits on the in-flight job).
var ErrSessionBusy = errors.New("server: session has an apply in flight")

// ErrSeqMismatch is returned when an apply carries a seq guard that does
// not match the session's applies counter; handlers map it to 409.
// Because delta batches are not idempotent, the guard is how a client
// resumes after an ambiguous failure without double-applying.
var ErrSeqMismatch = errors.New("server: seq guard does not match the session's applies counter")

// sessionMetaName is the per-session metadata file a durable session
// directory carries alongside its WAL and snapshots.
const sessionMetaName = "meta.json"

// sessionMeta is the durable identity of a server session: everything
// needed to rebuild its Reconstructor after a restart, plus the last
// known stats so listings don't have to rehydrate the engine.
type sessionMeta struct {
	ID       string     `json:"id"`
	Model    string     `json:"model"`
	Tenant   string     `json:"tenant,omitempty"`
	Options  OptionSpec `json:"options"`
	Created  time.Time  `json:"created"`
	LastUsed time.Time  `json:"last_used"`

	Nodes      int `json:"nodes"`
	Edges      int `json:"edges"`
	Components int `json:"components"`
	Applies    int `json:"applies"`
	LastDirty  int `json:"last_dirty"`
}

// serverSession is one incremental reconstruction session hosted by the
// daemon: a marioh.Session plus bookkeeping for listings, LRU eviction
// and (when the daemon runs with a data dir) durable park/restore.
//
// Lock ordering: loadMu → sessionStore.mu → mu. loadMu serializes the
// load/park transitions (and is held across the whole restore, so only
// one goroutine rehydrates); mu guards the hot fields.
type serverSession struct {
	ID     string
	Model  string
	Tenant string            // owning tenant; its session quota slot is held until delete
	spec   OptionSpec        // options the session was created with (rebuilds the Reconstructor at restore)
	dir    string            // durable session directory; "" = memory-only
	budget *admission.Budget // copied from the store at Install/Register; nil = unmetered

	created time.Time

	// pub is the progress sink of the apply currently running (fanning
	// events into its job); the session's Reconstructor was configured
	// with a callback that forwards through it. Exclusive thanks to the
	// busy guard — at most one apply runs per session.
	pub atomic.Value // marioh.ProgressFunc

	loadMu sync.Mutex // serializes park/restore; see lock ordering above

	mu       sync.Mutex
	sess     *marioh.Session // guarded by mu (swapped under loadMu); nil = parked
	lastUsed time.Time       // guarded by mu
	lastJob  string          // guarded by mu
	busy     bool            // guarded by mu
	// stats is the last known snapshot (guarded by mu), refreshed after
	// every apply, so info() never blocks on the Session mutex behind a
	// running apply. For a parked session it carries the meta.json values.
	stats marioh.SessionStats
	// recovery/replayed describe the last restore of a durable session
	// (guarded by mu).
	recovery string
	replayed int
	// cost is the bytes currently charged to the sessions budget pool
	// (guarded by mu); removed pins it at zero so a late refresh from an
	// in-flight apply cannot re-charge a deleted session.
	cost    int64
	removed bool
	// WAL/snapshot counter baselines for metric deltas (guarded by mu).
	durWALRecords, durWALBytes, durSnapshots int64
}

// durable reports whether the session persists under a data dir.
func (ss *serverSession) durable() bool { return ss.dir != "" }

// loaded reports whether the session's engine is resident in memory.
func (ss *serverSession) loaded() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.sess != nil
}

// acquire claims the session's single apply slot.
func (ss *serverSession) acquire() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.busy {
		return ErrSessionBusy
	}
	ss.busy = true
	return nil
}

// release frees the apply slot and refreshes the cached stats snapshot
// (and the session's budget charge — applies grow the graph).
func (ss *serverSession) release() {
	ss.mu.Lock()
	sess := ss.sess
	ss.mu.Unlock()
	var st marioh.SessionStats
	if sess != nil {
		st = sess.Stats()
	}
	ss.mu.Lock()
	if sess != nil {
		ss.stats = st
	}
	ss.busy = false
	ss.mu.Unlock()
	if sess != nil {
		ss.setCost(sessionCost(st))
	}
}

// sessionCost estimates the resident bytes of a loaded session engine
// from its stats: per-edge adjacency, per-node state, per-component
// cached reconstruction, plus fixed overhead. An estimate, not
// allocator truth — the budget trades exactness for zero instrumentation
// cost on the hot path.
func sessionCost(st marioh.SessionStats) int64 {
	return 96*int64(st.Edges) + 48*int64(st.Nodes) + 64*int64(st.Components) + 4096
}

// setCost settles the session's estimated memory cost against the
// budget's sessions pool (parked sessions carry zero).
func (ss *serverSession) setCost(n int64) {
	ss.mu.Lock()
	if ss.removed {
		n = 0
	}
	delta := n - ss.cost
	ss.cost = n
	ss.mu.Unlock()
	if delta != 0 && ss.budget != nil {
		ss.budget.Charge(budgetPoolSessions, delta)
	}
}

// drop marks the session removed and releases its budget charge; called
// when the session leaves the store for good (delete or memory-only
// eviction).
func (ss *serverSession) drop() {
	ss.mu.Lock()
	ss.removed = true
	ss.mu.Unlock()
	ss.setCost(0)
}

// publish forwards a progress event to the active apply's sink, if any.
func (ss *serverSession) publish(p marioh.Progress) {
	if fn, ok := ss.pub.Load().(marioh.ProgressFunc); ok && fn != nil {
		fn(p)
	}
}

// touch updates the LRU stamp and the last-apply job pointer.
func (ss *serverSession) touch(job string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.lastUsed = time.Now()
	if job != "" {
		ss.lastJob = job
	}
}

// info snapshots the session for the API from the cached stats — never
// from the live Session, whose mutex a running apply holds for its whole
// duration (listings must not hang behind a long build).
func (ss *serverSession) info() SessionInfo {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return SessionInfo{
		ID:         ss.ID,
		Model:      ss.Model,
		Tenant:     ss.Tenant,
		Nodes:      ss.stats.Nodes,
		Edges:      ss.stats.Edges,
		Components: ss.stats.Components,
		Applies:    ss.stats.Applies,
		LastDirty:  ss.stats.LastDirty,
		LastJob:    ss.lastJob,
		Created:    ss.created,
		LastUsed:   ss.lastUsed,
		Durable:    ss.durable(),
		Parked:     ss.sess == nil,
		Recovery:   ss.recovery,
		Replayed:   ss.replayed,
	}
}

// meta snapshots the session's durable metadata.
func (ss *serverSession) meta() sessionMeta {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return sessionMeta{
		ID:         ss.ID,
		Model:      ss.Model,
		Tenant:     ss.Tenant,
		Options:    ss.spec,
		Created:    ss.created,
		LastUsed:   ss.lastUsed,
		Nodes:      ss.stats.Nodes,
		Edges:      ss.stats.Edges,
		Components: ss.stats.Components,
		Applies:    ss.stats.Applies,
		LastDirty:  ss.stats.LastDirty,
	}
}

// writeMeta persists meta.json in the session directory with the
// registry's atomic-rename pattern.
func (ss *serverSession) writeMeta() error {
	m := ss.meta()
	return durability.WriteFileAtomic(filepath.Join(ss.dir, sessionMetaName), true, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// sessionStore owns the daemon's sessions with LRU eviction: opening a
// session beyond the limit evicts the least-recently-used loaded one —
// durable sessions are parked to disk (and rehydrate on next use),
// memory-only sessions are dropped — so a long-lived daemon's memory is
// bounded by limit live graphs + caches.
type sessionStore struct {
	// budget meters loaded engines; set once before traffic, handed to
	// each session at Install/Register. Nil = unmetered.
	budget *admission.Budget

	mu     sync.Mutex
	limit  int                       // immutable after newSessionStore
	nextID int                       // guarded by mu
	byID   map[string]*serverSession // guarded by mu
}

func newSessionStore(limit int) *sessionStore {
	if limit <= 0 {
		limit = 16
	}
	return &sessionStore{limit: limit, byID: map[string]*serverSession{}}
}

// Reserve allocates the next session id (so a durable session can name
// its directory before it is installed).
func (st *sessionStore) Reserve() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	return fmt.Sprintf("s-%06d", st.nextID)
}

// Install registers a session under its reserved id.
func (st *sessionStore) Install(ss *serverSession) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss.budget = st.budget
	st.byID[ss.ID] = ss
}

// Register adds a session recovered from disk at startup, keeping the id
// counter ahead of every recovered id.
func (st *sessionStore) Register(ss *serverSession) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var n int
	if _, err := fmt.Sscanf(ss.ID, "s-%d", &n); err == nil && n > st.nextID {
		st.nextID = n
	}
	ss.budget = st.budget
	st.byID[ss.ID] = ss
}

// Get looks a session up by id.
func (st *sessionStore) Get(id string) (*serverSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.byID[id]
	return ss, ok
}

// Remove unregisters a session; an in-flight apply keeps its own
// reference and finishes harmlessly.
func (st *sessionStore) Remove(id string) (*serverSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	delete(st.byID, id)
	return ss, true
}

// List returns every session in creation order (ids are zero-padded, so
// string order is creation order), matching the jobs listing convention.
func (st *sessionStore) List() []*serverSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*serverSession, 0, len(st.byID))
	for _, ss := range st.byID {
		out = append(out, ss)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Counts returns how many sessions are loaded in memory and how many are
// parked on disk.
func (st *sessionStore) Counts() (loaded, parked int) {
	st.mu.Lock()
	sessions := make([]*serverSession, 0, len(st.byID))
	for _, ss := range st.byID {
		sessions = append(sessions, ss)
	}
	st.mu.Unlock()
	for _, ss := range sessions {
		if ss.loaded() {
			loaded++
		} else {
			parked++
		}
	}
	return loaded, parked
}

// lruVictim picks the least-recently-used loaded, non-busy session not
// in skip. Without force it returns nil while the loaded count is
// within the limit; with force (memory-budget shedding) it returns a
// victim regardless of the count bound.
func (st *sessionStore) lruVictim(skip map[string]bool, force bool) *serverSession {
	st.mu.Lock()
	sessions := make([]*serverSession, 0, len(st.byID))
	for _, ss := range st.byID {
		sessions = append(sessions, ss)
	}
	st.mu.Unlock()

	loaded := 0
	var lru *serverSession
	var lruStamp time.Time
	for _, cand := range sessions {
		cand.mu.Lock()
		ok := cand.sess != nil
		busy := cand.busy
		stamp := cand.lastUsed
		cand.mu.Unlock()
		if !ok {
			continue
		}
		loaded++
		if busy || skip[cand.ID] {
			continue
		}
		if lru == nil || stamp.Before(lruStamp) {
			lru, lruStamp = cand, stamp
		}
	}
	if !force && loaded <= st.limit {
		return nil
	}
	return lru
}

// sessionsRoot is the directory durable sessions live under.
func (s *Server) sessionsRoot() string {
	return filepath.Join(s.cfg.DataDir, "sessions")
}

// durableOptions builds the library durability knobs from the server
// config.
func (s *Server) durableOptions(dir string) marioh.DurableOptions {
	return marioh.DurableOptions{
		Dir:           dir,
		NoFsync:       s.cfg.WALNoFsync,
		SnapshotEvery: s.cfg.SnapshotEvery,
		Logf:          s.cfg.Logf,
	}
}

// sessionReconstructor rebuilds the Reconstructor a session runs on from
// its recorded spec (shared by create and restore so a restored session
// reconstructs byte-identically).
func (s *Server) sessionReconstructor(ss *serverSession, m *marioh.Model) (*marioh.Reconstructor, error) {
	opts, err := ss.spec.Options()
	if err != nil {
		return nil, err
	}
	opts = append(opts, s.shardingOptions(ss.spec)...)
	opts = append(opts, marioh.WithModel(m), marioh.WithProgress(ss.publish))
	return marioh.New(opts...)
}

// ensureLoaded rehydrates a parked durable session: resume from its
// snapshot+WAL, record the recovery outcome, then re-park something else
// if the load pushed memory over the limit. Loaded sessions return
// immediately. ctx bounds the restore (the caller's request context).
func (s *Server) ensureLoaded(ctx context.Context, ss *serverSession) (*marioh.Session, error) {
	ss.loadMu.Lock()
	defer ss.loadMu.Unlock()
	ss.mu.Lock()
	sess := ss.sess
	ss.mu.Unlock()
	if sess != nil {
		return sess, nil
	}
	if !ss.durable() {
		return nil, fmt.Errorf("server: session %s has no engine and no durable state", ss.ID)
	}
	m, err := s.registry.Get(ss.Model)
	if err != nil {
		return nil, fmt.Errorf("restoring session %s: %w", ss.ID, err)
	}
	rec, err := s.sessionReconstructor(ss, m)
	if err != nil {
		return nil, fmt.Errorf("restoring session %s: %w", ss.ID, err)
	}
	dopts := s.durableOptions(ss.dir)
	sess, err = rec.NewSession(ctx, marioh.SessionConfig{Durable: &dopts, Resume: true})
	if err != nil {
		return nil, fmt.Errorf("restoring session %s: %w", ss.ID, err)
	}
	st := sess.Stats()
	ss.mu.Lock()
	ss.sess = sess
	ss.stats = st
	ss.recovery = st.RecoveryOutcome
	ss.replayed = st.Replayed
	// Reset the metric baselines: the counters restart with the process.
	ss.durWALRecords, ss.durWALBytes, ss.durSnapshots = 0, 0, 0
	ss.mu.Unlock()
	ss.setCost(sessionCost(st))
	s.metrics.Recovery(st.RecoveryOutcome, st.Replayed)
	s.harvestDurability(ss, st)
	s.cfg.Logf("mariohd: session %s restored from %s (outcome %s, %d records replayed, %d applies)",
		ss.ID, ss.dir, st.RecoveryOutcome, st.Replayed, st.Applies)
	s.enforceLimit(ss.ID)
	s.enforceBudget(ss.ID)
	return sess, nil
}

// harvestDurability feeds the growth of a session's WAL/snapshot
// counters into the server metrics.
func (s *Server) harvestDurability(ss *serverSession, st marioh.SessionStats) {
	if !st.Durable {
		return
	}
	ss.mu.Lock()
	dr := st.WALRecords - ss.durWALRecords
	db := st.WALBytes - ss.durWALBytes
	dn := st.Snapshots - ss.durSnapshots
	ss.durWALRecords, ss.durWALBytes, ss.durSnapshots = st.WALRecords, st.WALBytes, st.Snapshots
	ss.mu.Unlock()
	s.metrics.Durability(dr, db, dn)
}

// park flushes a durable session to disk and releases its engine. The
// caller must NOT hold loadMu. Returns false when the session is busy,
// already parked, or its loadMu is contended (a concurrent restore).
func (s *Server) park(ss *serverSession) bool {
	if !ss.loadMu.TryLock() {
		return false
	}
	defer ss.loadMu.Unlock()
	ss.mu.Lock()
	if ss.busy || ss.sess == nil {
		ss.mu.Unlock()
		return false
	}
	sess := ss.sess
	ss.mu.Unlock()
	// Close writes the final snapshot; harvest afterwards so the metric
	// deltas include it.
	if err := sess.Close(); err != nil {
		s.cfg.Logf("mariohd: session %s: closing durable state: %v", ss.ID, err)
	}
	s.harvestDurability(ss, sess.Stats())
	ss.mu.Lock()
	ss.sess = nil
	ss.mu.Unlock()
	ss.setCost(0) // the engine is gone; only the on-disk state remains
	if err := ss.writeMeta(); err != nil {
		s.cfg.Logf("mariohd: session %s: writing meta: %v", ss.ID, err)
	}
	return true
}

// evictOne parks (durable) or drops (memory-only) one victim session.
// Returns false when the victim could not be parked — busy, or a
// restore holds its loadMu — in which case it was added to skip so the
// caller's next lruVictim pick moves on.
func (s *Server) evictOne(victim *serverSession, skip map[string]bool, why string) bool {
	persisted := false
	switch {
	case victim.durable():
		if !s.park(victim) {
			skip[victim.ID] = true
			return false
		}
		persisted = true
		s.cfg.Logf("mariohd: session %s parked to %s (%s)", victim.ID, victim.dir, why)
	default:
		if _, ok := s.sessions.Remove(victim.ID); ok {
			victim.drop()
			if victim.Tenant != "" {
				s.admission.ReleaseSession(victim.Tenant)
			}
		}
		s.cfg.Logf("mariohd: session %s evicted (%s)", victim.ID, why)
	}
	s.metrics.SessionEvicted(persisted)
	return true
}

// enforceLimit evicts loaded sessions past the count limit, least
// recently used first: durable sessions park to disk, memory-only ones
// are dropped. Busy sessions are never evicted; keep is the id to
// exempt (the session that triggered the enforcement).
func (s *Server) enforceLimit(keep string) {
	skip := map[string]bool{}
	if keep != "" {
		skip[keep] = true
	}
	for {
		victim := s.sessions.lruVictim(skip, false)
		if victim == nil {
			return
		}
		s.evictOne(victim, skip, fmt.Sprintf("LRU, limit %d", s.cfg.SessionLimit))
	}
}

// enforceBudget sheds retained memory while the global budget is over
// capacity, cheapest-to-rebuild first: dedup cache entries (pure
// recomputation), then retained job results (inspectable history), then
// idle sessions (durable ones park to disk and rehydrate on next use;
// memory-only ones are dropped for good). keep exempts the session that
// triggered the enforcement.
func (s *Server) enforceBudget(keep string) {
	over := s.budget.Over()
	if over <= 0 {
		return
	}
	s.dedup.ShrinkTo(s.dedup.Bytes() - over)
	if over = s.budget.Over(); over <= 0 {
		return
	}
	if freed := s.queue.ShedResults(over); freed > 0 {
		s.cfg.Logf("mariohd: memory budget: shed %d bytes of retained job results", freed)
	}
	skip := map[string]bool{}
	if keep != "" {
		skip[keep] = true
	}
	for s.budget.Over() > 0 {
		victim := s.sessions.lruVictim(skip, true)
		if victim == nil {
			return
		}
		s.evictOne(victim, skip, fmt.Sprintf("memory budget %d", s.cfg.MemoryBudget))
	}
}

// loadParkedSessions scans the data dir at startup and registers every
// durable session found there (parked; the engine rehydrates on first
// use).
func (s *Server) loadParkedSessions() {
	root := s.sessionsRoot()
	entries, err := os.ReadDir(root)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.cfg.Logf("mariohd: scanning %s: %v", root, err)
		}
		return
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		raw, err := os.ReadFile(filepath.Join(dir, sessionMetaName))
		if err != nil || !marioh.HasDurableSession(dir) {
			s.cfg.Logf("mariohd: %s: not a recoverable session, skipping", dir)
			continue
		}
		var m sessionMeta
		if err := json.Unmarshal(raw, &m); err != nil || m.ID == "" {
			s.cfg.Logf("mariohd: %s: unreadable meta.json, skipping: %v", dir, err)
			continue
		}
		tenant := m.Tenant
		if tenant == "" || !admission.ValidTenant(tenant) {
			tenant = admission.DefaultTenant
		}
		ss := &serverSession{
			ID:       m.ID,
			Model:    m.Model,
			Tenant:   tenant,
			spec:     m.Options,
			dir:      dir,
			created:  m.Created,
			lastUsed: m.LastUsed,
			stats: marioh.SessionStats{
				Nodes:      m.Nodes,
				Edges:      m.Edges,
				Components: m.Components,
				Applies:    m.Applies,
				LastDirty:  m.LastDirty,
				Durable:    true,
			},
		}
		s.sessions.Register(ss)
		// Recovered sessions count against their tenant but are never
		// refused — the quota re-applies to new opens.
		s.admission.AdoptSession(tenant)
		n++
	}
	if n > 0 {
		s.cfg.Logf("mariohd: registered %d durable session(s) from %s", n, root)
	}
}

// parkSessions parks every loaded durable session (used at shutdown so
// the next start resumes with zero replay). Returns how many it parked.
func (s *Server) parkSessions() int {
	n := 0
	for _, ss := range s.sessions.List() {
		if ss.durable() && s.park(ss) {
			n++
		}
	}
	return n
}

// handleSessionCreate implements POST /v1/sessions: open an incremental
// session over a base graph with a registry model. With a data dir
// configured the session is durable: its deltas WAL to disk and it
// survives daemon restarts.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Model == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("sessions: model is required"))
		return
	}
	if req.Graph == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("sessions: base graph is required"))
		return
	}
	g, err := parseGraph(req.Graph)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.registry.Get(req.Model)
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}

	// Claim the tenant's session quota slot before building anything; it
	// is held until the session is deleted (parking keeps it).
	tenant := tenantFrom(r)
	if err := s.admission.AcquireSession(tenant); err != nil {
		s.reject(w, err)
		return
	}
	installed := false
	defer func() {
		if !installed {
			s.admission.ReleaseSession(tenant)
		}
	}()

	ss := &serverSession{Model: req.Model, Tenant: tenant, spec: req.Options, created: time.Now(), lastUsed: time.Now()}
	rec, err := s.sessionReconstructor(ss, m)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ss.ID = s.sessions.Reserve()
	var sess *marioh.Session
	if s.cfg.DataDir != "" {
		ss.dir = filepath.Join(s.sessionsRoot(), ss.ID)
		dopts := s.durableOptions(ss.dir)
		sess, err = rec.NewSession(r.Context(), marioh.SessionConfig{Graph: g, Durable: &dopts})
	} else {
		sess, err = rec.NewSession(r.Context(), marioh.SessionConfig{Graph: g})
	}
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	ss.sess = sess
	ss.stats = sess.Stats()
	if ss.durable() {
		if err := ss.writeMeta(); err != nil {
			s.cfg.Logf("mariohd: session %s: writing meta: %v", ss.ID, err)
		}
	}
	s.sessions.Install(ss)
	installed = true
	ss.setCost(sessionCost(ss.stats))
	s.metrics.SessionOpen()
	s.enforceLimit(ss.ID)
	s.enforceBudget(ss.ID)
	durable := ""
	if ss.durable() {
		durable = ", durable"
	}
	s.cfg.Logf("mariohd: session %s opened (model %s, %d nodes, %d edges%s)",
		ss.ID, ss.Model, g.NumNodes(), g.NumEdges(), durable)
	s.writeJSON(w, http.StatusCreated, ss.info())
}

// handleSessions implements GET /v1/sessions.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.sessions.List()
	out := make([]SessionInfo, len(sessions))
	for i, ss := range sessions {
		out[i] = ss.info()
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleSessionGet implements GET /v1/sessions/{id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, ss.info())
}

// handleSessionDelete implements DELETE /v1/sessions/{id}. A durable
// session's on-disk state is removed with it; the close (which may wait
// behind an in-flight apply) happens off the request goroutine.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.Remove(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	ss.drop()
	if ss.Tenant != "" {
		s.admission.ReleaseSession(ss.Tenant)
	}
	if ss.durable() {
		go func() {
			ss.mu.Lock()
			sess := ss.sess
			ss.mu.Unlock()
			if sess != nil {
				if err := sess.Close(); err != nil {
					s.cfg.Logf("mariohd: session %s: closing durable state: %v", ss.ID, err)
				}
			}
			if err := os.RemoveAll(ss.dir); err != nil {
				s.cfg.Logf("mariohd: session %s: removing %s: %v", ss.ID, ss.dir, err)
			}
		}()
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionApply implements POST /v1/sessions/{id}/apply: parse the
// delta stream, run Session.Apply as a job (inline on the request
// goroutine by default, queued with {"async": true}), and answer with the
// full reconstruction of the mutated graph.
func (s *Server) handleSessionApply(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	var req SessionApplyRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ops, err := marioh.ReadDeltas(strings.NewReader(req.Deltas))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Delta streams grow the node set densely (an op introduces at most
	// two nodes), so bound the growth a batch may request — an id far
	// beyond it would make the engine allocate per-node state up to the
	// id before any real work, an easy remote memory exhaustion.
	limit := ss.info().Nodes + 2*len(ops)
	for _, op := range ops {
		if op.U >= limit || op.V >= limit {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf(
				"sessions: delta node id %d beyond the session's growth bound %d (graph has %d nodes)",
				max(op.U, op.V), limit, ss.info().Nodes))
			return
		}
	}
	// An apply is a job like any other for the tenant's quotas: claim a
	// concurrent-job slot and charge the delta bytes before any work.
	relJob, err := s.admission.AcquireJob(tenantFrom(r), int64(len(req.Deltas)))
	if err != nil {
		s.reject(w, err)
		return
	}
	// One apply at a time per session: deltas are ordered mutations, and
	// two in flight would interleave unpredictably on the worker pool.
	// Acquiring before the load also pins the session in memory — the LRU
	// enforcer never touches a busy session.
	if err := ss.acquire(); err != nil {
		relJob()
		s.writeError(w, errStatus(err), err)
		return
	}
	// The slot is freed exactly once per acquisition, on whichever comes
	// first: the workload's defer, the job's terminal state (covers an
	// async job cancelled while still queued, whose workload never runs),
	// or a failed submission. Releasing re-checks the memory bounds: a
	// session that was too busy to evict is fair game afterwards.
	var relOnce sync.Once
	release := func() {
		relOnce.Do(func() {
			ss.release()
			relJob()
			// Refresh the on-disk meta so a crash before the next park
			// still leaves an accurate applies counter for the parked
			// listing (and for clients computing a Seq guard against it).
			if ss.durable() && ss.loaded() {
				if err := ss.writeMeta(); err != nil {
					s.cfg.Logf("mariohd: session %s: writing meta: %v", ss.ID, err)
				}
			}
			s.enforceLimit("")
			s.enforceBudget("")
		})
	}

	sess, err := s.ensureLoaded(r.Context(), ss)
	if err != nil {
		release()
		s.writeError(w, errStatus(err), err)
		return
	}
	// Seq guard: deltas are not idempotent, so a client resuming after an
	// ambiguous failure asserts the applies counter it believes the
	// session is at; a mismatch means the batch (or someone else's)
	// already landed. Checked under the acquired slot, so it cannot race
	// another apply.
	if req.Seq != nil && *req.Seq != sess.Stats().Applies {
		err := fmt.Errorf("%w: session %s is at %d, request asserted %d",
			ErrSeqMismatch, ss.ID, sess.Stats().Applies, *req.Seq)
		release()
		s.writeError(w, errStatus(err), err)
		return
	}

	run := func(ctx context.Context, job *Job) (any, error) {
		defer release()
		ss.pub.Store(s.publisher(job))
		defer ss.pub.Store(marioh.ProgressFunc(nil))
		res, err := sess.Apply(ctx, marioh.Delta{Ops: ops})
		ss.touch(job.ID)
		if err != nil {
			return nil, err
		}
		s.metrics.Stage("session_apply", res.Times.Filtering+res.Times.Bidirectional)
		st := sess.Stats()
		s.metrics.SessionApply(res.DirtyComponents, st.Components-res.DirtyComponents)
		s.harvestDurability(ss, st)
		rr, err := reconstructResult(res)
		if err != nil {
			return nil, err
		}
		rr.Dirty = res.DirtyComponents
		return rr, nil
	}

	// Default to the queue for sessions over big graphs, mirroring
	// /v1/reconstruct's sync gate: a worst-case apply (the initial build,
	// or a delta merging giant components) reconstructs a graph-sized
	// dirty set, which must not monopolize a request goroutine unless the
	// client explicitly asks for it.
	async := ss.info().Edges > s.cfg.SyncEdgeLimit
	if req.Async != nil {
		async = *req.Async
	}
	if async {
		job, err := s.submit(JobSession, run)
		if err != nil {
			release()
			s.writeError(w, errStatus(err), err)
			return
		}
		ss.touch(job.ID) // stamp eagerly so /events can find the job at once
		go func() {
			<-job.Done()
			release()
		}()
		s.writeJSON(w, http.StatusAccepted, job.Info())
		return
	}

	job, err := s.queue.NewJob(JobSession, run)
	if err != nil {
		release()
		s.writeError(w, errStatus(err), err)
		return
	}
	s.watch(job)
	s.queue.RunInline(r.Context(), job)
	release() // refresh cached stats before snapshotting the response
	result, err := job.Result()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, SessionApplyResponse{
		JobID:   job.ID,
		Session: ss.info(),
		Result:  result.(ReconstructResult),
	})
}

// handleSessionEvents implements GET /v1/sessions/{id}/events: the SSE
// progress stream of the session's most recent apply job.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	ss.mu.Lock()
	lastJob := ss.lastJob
	ss.mu.Unlock()
	if lastJob == "" {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("session %q has no applies yet", ss.ID))
		return
	}
	job, ok := s.queue.Get(lastJob)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("session %q: job %q expired from history", ss.ID, lastJob))
		return
	}
	s.streamJobEvents(w, r, job)
}
