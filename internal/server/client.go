package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Retry defaults; see Client.MaxRetries and Client.RetryBackoff.
const (
	defaultMaxRetries   = 3
	defaultRetryBackoff = 100 * time.Millisecond
)

// Client is a thin Go client for a running mariohd: it speaks the /v1 API
// and backs the mariohctl remote subcommands and examples/client.
//
// Transient failures are retried with exponential backoff and jitter:
// requests that provably never reached a handler (connection refused and
// other dial failures) are retried for every method, while failures that
// may have landed (5xx responses, EOF mid-body and other transport
// errors after the request was sent) are retried only for idempotent
// methods — a retried POST could double-apply a non-idempotent delta
// batch. The retry budget is bounded by MaxRetries and the context
// deadline.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds how many times a transiently-failed request is
	// reissued: 0 means the default (3), negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry delay; it doubles per attempt with
	// ±50% jitter. 0 means the default (100ms).
	RetryBackoff time.Duration

	jitterMu sync.Mutex
	jitter   *rand.Rand // guarded by jitterMu; lazily seeded
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// retries resolves the retry budget.
func (c *Client) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return defaultMaxRetries
	default:
		return c.MaxRetries
	}
}

// backoff returns the sleep before retry attempt (1-based), doubling per
// attempt with ±50% jitter so a fleet of retrying clients doesn't
// stampede a restarting daemon.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		base = defaultRetryBackoff
	}
	d := base << (attempt - 1)
	c.jitterMu.Lock()
	if c.jitter == nil {
		c.jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + c.jitter.Float64() // ×[0.5, 1.5)
	c.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// idempotentMethod reports whether a request may be retried even when
// the first attempt might have been processed.
func idempotentMethod(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

// errNeverSent reports whether a transport error happened before the
// request could have reached a handler (dial failures: connection
// refused, no such host, ...), making a retry safe for any method.
func errNeverSent(err error) bool {
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return opErr.Op == "dial"
	}
	return false
}

// retryableStatus reports whether a response status signals a transient
// server-side condition.
func retryableStatus(status int) bool {
	return status >= 500
}

// doRaw issues a request with a JSON body (nil for none) and returns the
// response status and raw body, retrying transient failures per the
// client's retry policy. Non-2xx responses are returned as errors
// carrying the server's error envelope.
func (c *Client) doRaw(ctx context.Context, method, path string, body any) (int, []byte, error) {
	var payload []byte
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		payload = raw
	}
	hdr := http.Header{}
	if body != nil {
		hdr.Set("Content-Type", "application/json")
	}
	return c.doRetry(ctx, method, path, payload, hdr)
}

// doRetry is the shared retrying request loop under doRaw, PushModel and
// PullModel. payload may be nil for bodyless requests.
func (c *Client) doRetry(ctx context.Context, method, path string, payload []byte, hdr http.Header) (int, []byte, error) {
	budget := c.retries()
	for attempt := 0; ; attempt++ {
		status, raw, err, transient := c.attempt(ctx, method, path, payload, hdr)
		retryable := transient && (idempotentMethod(method) || (err != nil && errNeverSent(err)))
		if !retryable || attempt >= budget || ctx.Err() != nil {
			return status, raw, err
		}
		select {
		case <-ctx.Done():
			return status, raw, err
		case <-time.After(c.backoff(attempt + 1)):
		}
	}
}

// attempt performs one request; transient reports whether the failure is
// the retryable kind (transport error or 5xx).
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, hdr http.Header) (status int, raw []byte, err error, transient bool) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, nil, err, false
	}
	for k, v := range hdr {
		req.Header[k] = v
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, err, true
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		// EOF mid-body: the connection died while streaming the response.
		return resp.StatusCode, nil, err, true
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr apiError
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return resp.StatusCode, raw, fmt.Errorf("server: %s %s: %s (%s)", method, path, apiErr.Error, resp.Status), retryableStatus(resp.StatusCode)
		}
		return resp.StatusCode, raw, fmt.Errorf("server: %s %s: %s", method, path, resp.Status), retryableStatus(resp.StatusCode)
	}
	return resp.StatusCode, raw, nil, false
}

// do issues a request and decodes the JSON response into out (nil to
// discard).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	_, raw, err := c.doRaw(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Train submits an async training job.
func (c *Client) Train(ctx context.Context, req TrainRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/train", req, &info)
	return info, err
}

// Reconstruct submits a reconstruction. A synchronous run (HTTP 200)
// returns the result; an asynchronous submission (HTTP 202) returns the
// job to poll (resp nil).
func (c *Client) Reconstruct(ctx context.Context, req ReconstructRequest) (*ReconstructResponse, *JobInfo, error) {
	status, raw, err := c.doRaw(ctx, http.MethodPost, "/v1/reconstruct", req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var info JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return nil, nil, err
		}
		return nil, &info, nil
	}
	var resp ReconstructResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, err
	}
	return &resp, nil, nil
}

// ReconstructBatch submits an async batch job over several targets.
func (c *Client) ReconstructBatch(ctx context.Context, req ReconstructRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/reconstruct/batch", req, &info)
	return info, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// CancelJob requests cancellation of a job.
func (c *Client) CancelJob(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// WaitJob polls a job until it reaches a terminal state (or ctx ends).
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.Status.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-ticker.C:
		}
	}
}

// JobResult decodes a terminal job's result payload into out (pass a
// *TrainResult, *ReconstructResult or *BatchResult matching the job kind).
func JobResult(info JobInfo, out any) error {
	if !info.Status.Terminal() {
		return fmt.Errorf("server: job %s is %s, not finished", info.ID, info.Status)
	}
	if info.Status != StatusSucceeded {
		return fmt.Errorf("server: job %s %s: %s", info.ID, info.Status, info.Error)
	}
	raw, err := json.Marshal(info.Result)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// CreateSession opens an incremental reconstruction session on the
// server.
func (c *Client) CreateSession(ctx context.Context, req SessionRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Sessions lists the server's open sessions.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// Session fetches one session.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteSession closes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// ApplySession applies a delta batch to a session. A synchronous apply
// (HTTP 200) returns the response; an asynchronous submission (HTTP 202)
// returns the job to poll (resp nil).
func (c *Client) ApplySession(ctx context.Context, id string, req SessionApplyRequest) (*SessionApplyResponse, *JobInfo, error) {
	status, raw, err := c.doRaw(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/apply", req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var info JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return nil, nil, err
		}
		return nil, &info, nil
	}
	var resp SessionApplyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, err
	}
	return &resp, nil, nil
}

// Models lists the registry.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out []ModelInfo
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out)
	return out, err
}

// PushModel uploads a serialized model under name. PUT is idempotent, so
// transient failures retry per the client's retry policy.
func (c *Client) PushModel(ctx context.Context, name string, raw []byte) (ModelInfo, error) {
	var info ModelInfo
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	_, body, err := c.doRetry(ctx, http.MethodPut, "/v1/models/"+url.PathEscape(name), raw, hdr)
	if err != nil {
		return info, err
	}
	err = json.Unmarshal(body, &info)
	return info, err
}

// PullModel downloads a model's serialized JSON.
func (c *Client) PullModel(ctx context.Context, name string) ([]byte, error) {
	_, raw, err := c.doRetry(ctx, http.MethodGet, "/v1/models/"+url.PathEscape(name), nil, http.Header{})
	return raw, err
}

// DeleteModel removes a registry entry.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/models/"+url.PathEscape(name), nil, nil)
}
