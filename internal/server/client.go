package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Retry defaults; see Client.MaxRetries and Client.RetryBackoff.
const (
	defaultMaxRetries   = 3
	defaultRetryBackoff = 100 * time.Millisecond
	// maxRetryAfterDelay caps how long the client honors a server's
	// Retry-After advice — a misconfigured (or hostile) server must not be
	// able to park a client for minutes.
	maxRetryAfterDelay = 10 * time.Second
)

// Client is a thin Go client for a running mariohd: it speaks the /v1 API
// and backs the mariohctl remote subcommands and examples/client.
//
// Transient failures are retried with exponential backoff and jitter:
// requests that provably never reached a handler (connection refused and
// other dial failures) are retried for every method, while failures that
// may have landed (5xx responses, EOF mid-body and other transport
// errors after the request was sent) are retried only for idempotent
// methods — a retried POST could double-apply a non-idempotent delta
// batch. A 429 admission rejection never reached a handler's workload,
// but a retried POST would still re-spend quota another caller may be
// waiting on, so 429s are retried only for idempotent methods too —
// honoring the server's Retry-After (capped at maxRetryAfterDelay)
// instead of the backoff schedule. The retry budget is bounded by
// MaxRetries and the context deadline.
//
// Every non-2xx response surfaces as an error wrapping *APIError, so
// callers switch on its Code/Status instead of parsing messages.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Tenant is sent as the X-Marioh-Tenant header on every request,
	// identifying the caller for the server's per-tenant admission
	// control. Empty means the server's "default" tenant.
	Tenant string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds how many times a transiently-failed request is
	// reissued: 0 means the default (3), negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry delay; it doubles per attempt with
	// ±50% jitter. 0 means the default (100ms).
	RetryBackoff time.Duration

	jitterMu sync.Mutex
	jitter   *rand.Rand // guarded by jitterMu; lazily seeded
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// retries resolves the retry budget.
func (c *Client) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return defaultMaxRetries
	default:
		return c.MaxRetries
	}
}

// backoff returns the sleep before retry attempt (1-based), doubling per
// attempt with ±50% jitter so a fleet of retrying clients doesn't
// stampede a restarting daemon.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		base = defaultRetryBackoff
	}
	d := base << (attempt - 1)
	c.jitterMu.Lock()
	if c.jitter == nil {
		c.jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + c.jitter.Float64() // ×[0.5, 1.5)
	c.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// idempotentMethod reports whether a request may be retried even when
// the first attempt might have been processed.
func idempotentMethod(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

// errNeverSent reports whether a transport error happened before the
// request could have reached a handler (dial failures: connection
// refused, no such host, ...), making a retry safe for any method.
func errNeverSent(err error) bool {
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return opErr.Op == "dial"
	}
	return false
}

// retryableStatus reports whether a response status signals a transient
// server-side condition.
func retryableStatus(status int) bool {
	return status >= 500
}

// doRaw issues a request with a JSON body (nil for none) and returns the
// response status and raw body, retrying transient failures per the
// client's retry policy. Non-2xx responses are returned as errors
// carrying the server's error envelope.
func (c *Client) doRaw(ctx context.Context, method, path string, body any) (int, []byte, error) {
	var payload []byte
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		payload = raw
	}
	hdr := http.Header{}
	if body != nil {
		hdr.Set("Content-Type", "application/json")
	}
	return c.doRetry(ctx, method, path, payload, hdr)
}

// doRetry is the shared retrying request loop under doRaw, PushModel and
// PullModel. payload may be nil for bodyless requests.
func (c *Client) doRetry(ctx context.Context, method, path string, payload []byte, hdr http.Header) (int, []byte, error) {
	budget := c.retries()
	for attempt := 0; ; attempt++ {
		status, raw, err, transient := c.attempt(ctx, method, path, payload, hdr)
		var aerr *APIError
		throttled := errors.As(err, &aerr) && aerr.Status == http.StatusTooManyRequests
		retryable := (transient && (idempotentMethod(method) || (err != nil && errNeverSent(err)))) ||
			(throttled && idempotentMethod(method))
		if !retryable || attempt >= budget || ctx.Err() != nil {
			return status, raw, err
		}
		delay := c.backoff(attempt + 1)
		if throttled && aerr.RetryAfter > 0 {
			// The server knows when capacity frees; trust it, bounded.
			delay = min(aerr.RetryAfter, maxRetryAfterDelay)
		}
		select {
		case <-ctx.Done():
			return status, raw, err
		case <-time.After(delay):
		}
	}
}

// attempt performs one request; transient reports whether the failure is
// the retryable kind (transport error or 5xx).
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, hdr http.Header) (status int, raw []byte, err error, transient bool) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, nil, err, false
	}
	for k, v := range hdr {
		req.Header[k] = v
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, err, true
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		// EOF mid-body: the connection died while streaming the response.
		return resp.StatusCode, nil, err, true
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		aerr := parseAPIError(resp, raw)
		return resp.StatusCode, raw, fmt.Errorf("%s %s: %w", method, path, aerr), retryableStatus(resp.StatusCode)
	}
	return resp.StatusCode, raw, nil, false
}

// parseAPIError decodes a non-2xx response into a typed *APIError. It
// understands the unified envelope {"error":{"code","message",...}} and
// falls back to the legacy {"error":"message"} shape (older daemons) and
// the bare HTTP status.
func parseAPIError(resp *http.Response, raw []byte) *APIError {
	out := &APIError{Status: resp.StatusCode, Message: resp.Status}
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && len(env.Error) > 0 {
		var body errorBody
		var msg string
		switch {
		case json.Unmarshal(env.Error, &body) == nil && body.Code != "":
			out.Code = body.Code
			out.Message = body.Message
			out.RetryAfter = time.Duration(body.RetryAfterS * float64(time.Second))
		case json.Unmarshal(env.Error, &msg) == nil && msg != "":
			out.Message = msg
		}
	}
	if out.Code == "" {
		out.Code = codeForStatus(resp.StatusCode)
	}
	if out.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return out
}

// codeForStatus supplies an error code when the response body carried
// none (legacy envelope or non-JSON error page).
func codeForStatus(status int) string {
	switch {
	case status == http.StatusNotFound:
		return CodeNotFound
	case status == http.StatusConflict:
		return CodeConflict
	case status == http.StatusTooManyRequests:
		return CodeRateLimited
	case status == http.StatusServiceUnavailable:
		return CodeQueueFull
	case status >= 500:
		return CodeInternal
	default:
		return CodeBadRequest
	}
}

// do issues a request and decodes the JSON response into out (nil to
// discard).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	_, raw, err := c.doRaw(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Train submits an async training job.
func (c *Client) Train(ctx context.Context, req TrainRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/train", req, &info)
	return info, err
}

// Reconstruct submits a reconstruction. A synchronous run (HTTP 200)
// returns the result; an asynchronous submission (HTTP 202) returns the
// job to poll (resp nil).
func (c *Client) Reconstruct(ctx context.Context, req ReconstructRequest) (*ReconstructResponse, *JobInfo, error) {
	status, raw, err := c.doRaw(ctx, http.MethodPost, "/v1/reconstruct", req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var info JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return nil, nil, err
		}
		return nil, &info, nil
	}
	var resp ReconstructResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, err
	}
	return &resp, nil, nil
}

// ReconstructBatch submits an async batch job over several targets.
func (c *Client) ReconstructBatch(ctx context.Context, req ReconstructRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/reconstruct/batch", req, &info)
	return info, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// CancelJob requests cancellation of a job.
func (c *Client) CancelJob(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// WaitJob polls a job until it reaches a terminal state (or ctx ends).
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.Status.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-ticker.C:
		}
	}
}

// JobResult decodes a terminal job's result payload into out (pass a
// *TrainResult, *ReconstructResult or *BatchResult matching the job kind).
func JobResult(info JobInfo, out any) error {
	if !info.Status.Terminal() {
		return fmt.Errorf("server: job %s is %s, not finished", info.ID, info.Status)
	}
	if info.Status != StatusSucceeded {
		return fmt.Errorf("server: job %s %s: %s", info.ID, info.Status, info.Error)
	}
	raw, err := json.Marshal(info.Result)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// CreateSession opens an incremental reconstruction session on the
// server.
func (c *Client) CreateSession(ctx context.Context, req SessionRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Sessions lists the server's open sessions.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// Session fetches one session.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteSession closes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// ApplySession applies a delta batch to a session. A synchronous apply
// (HTTP 200) returns the response; an asynchronous submission (HTTP 202)
// returns the job to poll (resp nil).
func (c *Client) ApplySession(ctx context.Context, id string, req SessionApplyRequest) (*SessionApplyResponse, *JobInfo, error) {
	status, raw, err := c.doRaw(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/apply", req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var info JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return nil, nil, err
		}
		return nil, &info, nil
	}
	var resp SessionApplyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, err
	}
	return &resp, nil, nil
}

// Models lists the registry.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out []ModelInfo
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out)
	return out, err
}

// PushModel uploads a serialized model under name. PUT is idempotent, so
// transient failures retry per the client's retry policy.
func (c *Client) PushModel(ctx context.Context, name string, raw []byte) (ModelInfo, error) {
	var info ModelInfo
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	_, body, err := c.doRetry(ctx, http.MethodPut, "/v1/models/"+url.PathEscape(name), raw, hdr)
	if err != nil {
		return info, err
	}
	err = json.Unmarshal(body, &info)
	return info, err
}

// PullModel downloads a model's serialized JSON.
func (c *Client) PullModel(ctx context.Context, name string) ([]byte, error) {
	_, raw, err := c.doRetry(ctx, http.MethodGet, "/v1/models/"+url.PathEscape(name), nil, http.Header{})
	return raw, err
}

// DeleteModel removes a registry entry.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/models/"+url.PathEscape(name), nil, nil)
}
