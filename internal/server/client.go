package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is a thin Go client for a running mariohd: it speaks the /v1 API
// and backs the mariohctl remote subcommands and examples/client.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// doRaw issues a request with a JSON body (nil for none) and returns the
// response status and raw body. Non-2xx responses are returned as errors
// carrying the server's error envelope.
func (c *Client) doRaw(ctx context.Context, method, path string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr apiError
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return resp.StatusCode, raw, fmt.Errorf("server: %s %s: %s (%s)", method, path, apiErr.Error, resp.Status)
		}
		return resp.StatusCode, raw, fmt.Errorf("server: %s %s: %s", method, path, resp.Status)
	}
	return resp.StatusCode, raw, nil
}

// do issues a request and decodes the JSON response into out (nil to
// discard).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	_, raw, err := c.doRaw(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Train submits an async training job.
func (c *Client) Train(ctx context.Context, req TrainRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/train", req, &info)
	return info, err
}

// Reconstruct submits a reconstruction. A synchronous run (HTTP 200)
// returns the result; an asynchronous submission (HTTP 202) returns the
// job to poll (resp nil).
func (c *Client) Reconstruct(ctx context.Context, req ReconstructRequest) (*ReconstructResponse, *JobInfo, error) {
	status, raw, err := c.doRaw(ctx, http.MethodPost, "/v1/reconstruct", req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var info JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return nil, nil, err
		}
		return nil, &info, nil
	}
	var resp ReconstructResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, err
	}
	return &resp, nil, nil
}

// ReconstructBatch submits an async batch job over several targets.
func (c *Client) ReconstructBatch(ctx context.Context, req ReconstructRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/reconstruct/batch", req, &info)
	return info, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// CancelJob requests cancellation of a job.
func (c *Client) CancelJob(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// WaitJob polls a job until it reaches a terminal state (or ctx ends).
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.Status.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-ticker.C:
		}
	}
}

// JobResult decodes a terminal job's result payload into out (pass a
// *TrainResult, *ReconstructResult or *BatchResult matching the job kind).
func JobResult(info JobInfo, out any) error {
	if !info.Status.Terminal() {
		return fmt.Errorf("server: job %s is %s, not finished", info.ID, info.Status)
	}
	if info.Status != StatusSucceeded {
		return fmt.Errorf("server: job %s %s: %s", info.ID, info.Status, info.Error)
	}
	raw, err := json.Marshal(info.Result)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

// CreateSession opens an incremental reconstruction session on the
// server.
func (c *Client) CreateSession(ctx context.Context, req SessionRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Sessions lists the server's open sessions.
func (c *Client) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// Session fetches one session.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteSession closes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// ApplySession applies a delta batch to a session. A synchronous apply
// (HTTP 200) returns the response; an asynchronous submission (HTTP 202)
// returns the job to poll (resp nil).
func (c *Client) ApplySession(ctx context.Context, id string, req SessionApplyRequest) (*SessionApplyResponse, *JobInfo, error) {
	status, raw, err := c.doRaw(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/apply", req)
	if err != nil {
		return nil, nil, err
	}
	if status == http.StatusAccepted {
		var info JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return nil, nil, err
		}
		return nil, &info, nil
	}
	var resp SessionApplyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, err
	}
	return &resp, nil, nil
}

// Models lists the registry.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out []ModelInfo
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out)
	return out, err
}

// PushModel uploads a serialized model under name.
func (c *Client) PushModel(ctx context.Context, name string, raw []byte) (ModelInfo, error) {
	var info ModelInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.Base+"/v1/models/"+url.PathEscape(name), bytes.NewReader(raw))
	if err != nil {
		return info, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return info, err
	}
	if resp.StatusCode != http.StatusCreated {
		var apiErr apiError
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return info, fmt.Errorf("server: push model: %s (%s)", apiErr.Error, resp.Status)
		}
		return info, fmt.Errorf("server: push model: %s", resp.Status)
	}
	err = json.Unmarshal(body, &info)
	return info, err
}

// PullModel downloads a model's serialized JSON.
func (c *Client) PullModel(ctx context.Context, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/v1/models/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr apiError
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("server: pull model: %s (%s)", apiErr.Error, resp.Status)
		}
		return nil, fmt.Errorf("server: pull model: %s", resp.Status)
	}
	return raw, nil
}

// DeleteModel removes a registry entry.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/models/"+url.PathEscape(name), nil, nil)
}
