package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"marioh"
)

// maxBody bounds request bodies (graph/hypergraph texts are a few bytes
// per edge, so this admits graphs with tens of millions of edges).
const maxBody = 256 << 20

// decode parses a JSON request body into dst.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// submit queues an async job and attaches the metrics/log watcher.
func (s *Server) submit(kind JobKind, run runFunc) (*Job, error) {
	return s.submitMeta(kind, JobMeta{}, run)
}

// submitMeta is submit with admission accounting attached; on rejection
// meta.OnFinish is not called (the caller still owns its slot).
func (s *Server) submitMeta(kind JobKind, meta JobMeta, run runFunc) (*Job, error) {
	job, err := s.queue.SubmitMeta(kind, meta, run)
	if err != nil {
		return nil, err
	}
	s.watch(job)
	return job, nil
}

// watch logs and counts a job's terminal transition, then re-checks the
// memory budget — the finished job may have retained a result.
func (s *Server) watch(job *Job) {
	s.metrics.Job("submitted")
	go func() {
		<-job.Done()
		status := job.Status()
		s.metrics.Job(string(status))
		if _, err := job.Result(); err != nil {
			s.cfg.Logf("mariohd: job %s (%s) %s: %v", job.ID, job.Kind, status, err)
		} else {
			s.cfg.Logf("mariohd: job %s (%s) %s", job.ID, job.Kind, status)
		}
		s.enforceBudget("")
	}()
}

// acquireJob claims a tenant job slot charging bytes of queued payload,
// writing the 429 itself on rejection. The caller must release the slot
// exactly once (directly or via JobMeta.OnFinish); ok reports whether
// the slot was granted.
func (s *Server) acquireJob(w http.ResponseWriter, r *http.Request, bytes int64) (tenant string, release func(), ok bool) {
	tenant = tenantFrom(r)
	release, err := s.admission.AcquireJob(tenant, bytes)
	if err != nil {
		s.reject(w, err)
		return tenant, nil, false
	}
	return tenant, release, true
}

// publisher adapts a job to a ProgressFunc, threading the test hook in
// front of the fan-out.
func (s *Server) publisher(job *Job) marioh.ProgressFunc {
	hook := s.cfg.testProgressHook
	return func(p marioh.Progress) {
		if hook != nil {
			hook(p)
		}
		job.publish(p)
	}
}

// reconstructResult converts a library result to its wire form.
func reconstructResult(res *marioh.Result) (ReconstructResult, error) {
	var buf bytes.Buffer
	if err := res.Hypergraph.Write(&buf); err != nil {
		return ReconstructResult{}, err
	}
	return ReconstructResult{
		Hypergraph:    buf.String(),
		Unique:        res.Hypergraph.NumUnique(),
		Total:         res.Hypergraph.NumTotal(),
		Rounds:        res.Times.Rounds,
		FilteredSize2: res.FilteredSize2,
		FilterSeconds: res.Times.Filtering.Seconds(),
		SearchSeconds: res.Times.Bidirectional.Seconds(),
		Shards:        res.Shards,
	}, nil
}

// shardingOptions turns a request's shard fields into the WithSharding
// option, fanning the per-shard tasks onto the job queue so one request
// saturates the whole worker pool (idle workers steal shards; the job's
// own goroutine runs shards whenever no worker is free).
func (s *Server) shardingOptions(spec OptionSpec) []marioh.Option {
	if spec.Shards == 0 {
		return nil
	}
	return []marioh.Option{marioh.WithSharding(marioh.ShardingOptions{
		Shards:      spec.Shards,
		TargetEdges: spec.ShardTarget,
		Executor:    s.queue.RunTasks,
	})}
}

// handleTrain implements POST /v1/train: always asynchronous, answering
// 202 with the job; the trained model lands in the registry under save_as
// (default: the job ID).
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	src, err := parseHypergraph(req.Source)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if src.NumUnique() == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("train: empty source hypergraph"))
		return
	}
	if req.SaveAs != "" {
		if err := validName(req.SaveAs); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	opts, err := req.Options.Options()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant, relJob, ok := s.acquireJob(w, r, int64(len(req.Source)))
	if !ok {
		return
	}

	job, err := s.submitMeta(JobTrain, JobMeta{Tenant: tenant, OnFinish: relJob}, func(ctx context.Context, job *Job) (any, error) {
		rec, err := marioh.New(opts...)
		if err != nil {
			return nil, err
		}
		model, err := rec.Train(ctx, src.Project(), src)
		if err != nil {
			return nil, err
		}
		s.metrics.Stage("train_sample", model.Stats.SampleTime)
		s.metrics.Stage("train_optimize", model.Stats.TrainTime)
		name := req.SaveAs
		if name == "" {
			name = job.ID
		}
		if err := s.registry.Save(name, model); err != nil {
			return nil, err
		}
		return TrainResult{
			Model:         name,
			Featurizer:    model.Feat.Name(),
			Positives:     model.Stats.Positives,
			Negatives:     model.Stats.Negatives,
			SampleSeconds: model.Stats.SampleTime.Seconds(),
			TrainSeconds:  model.Stats.TrainTime.Seconds(),
		}, nil
	})
	if err != nil {
		relJob()
		s.writeError(w, errStatus(err), err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, job.Info())
}

// reconstructRun builds the workload shared by the sync path, the async
// path and batch entries.
func (s *Server) reconstructRun(opts []marioh.Option, m *marioh.Model, g *marioh.Graph) runFunc {
	return func(ctx context.Context, job *Job) (any, error) {
		ropts := append(append([]marioh.Option(nil), opts...),
			marioh.WithModel(m), marioh.WithProgress(s.publisher(job)))
		rec, err := marioh.New(ropts...)
		if err != nil {
			return nil, err
		}
		res, err := rec.Reconstruct(ctx, g)
		if err != nil {
			return nil, err
		}
		s.metrics.Stage("filter", res.Times.Filtering)
		s.metrics.Stage("search", res.Times.Bidirectional)
		if res.Shards > 0 {
			s.metrics.ShardRun(res.Shards)
		}
		return reconstructResult(res)
	}
}

// handleReconstruct implements POST /v1/reconstruct: synchronous for
// targets at or below the sync edge limit (the job runs on the request
// goroutine, so a client disconnect cancels it), 202-asynchronous above
// it or when the request forces async.
func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	var req ReconstructRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Targets) > 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("reconstruct: use /v1/reconstruct/batch for multiple targets"))
		return
	}
	g, m, opts, err := s.reconstructInputs(req.Model, req.Target, req.Options)
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	opts = append(opts, s.shardingOptions(req.Options)...)

	async := g.NumEdges() > s.cfg.SyncEdgeLimit
	if req.Async != nil {
		async = *req.Async
	}
	run := s.reconstructRun(opts, m, g)
	if async {
		tenant, relJob, ok := s.acquireJob(w, r, int64(len(req.Target)))
		if !ok {
			return
		}
		job, err := s.submitMeta(JobReconstruct, JobMeta{Tenant: tenant, OnFinish: relJob}, run)
		if err != nil {
			relJob()
			s.writeError(w, errStatus(err), err)
			return
		}
		s.writeJSON(w, http.StatusAccepted, job.Info())
		return
	}

	// Synchronous path: the tenant's job slot covers the request duration
	// (leading the computation or waiting on an identical one in flight).
	tenant, relJob, ok := s.acquireJob(w, r, int64(len(req.Target)))
	if !ok {
		return
	}
	defer relJob()

	// Reconstruction is deterministic, so identical (model hash, graph,
	// semantic options) requests collapse into one computation and its
	// result is served content-addressed from the cache.
	key, err := s.dedupKey(req.Model, g, req.Options)
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	val, _, err := s.dedup.Do(r.Context(), key, func(fctx context.Context) (any, int64, error) {
		job, err := s.queue.NewJobMeta(JobReconstruct, JobMeta{Tenant: tenant}, run)
		if err != nil {
			return nil, 0, err
		}
		s.watch(job)
		// fctx lives as long as any interested caller — the leader
		// disconnecting does not abort a computation others wait on.
		s.queue.RunInline(fctx, job)
		result, err := job.Result()
		if err != nil {
			return nil, 0, err
		}
		rr := result.(ReconstructResult)
		resp := ReconstructResponse{JobID: job.ID, Result: rr}
		return resp, resultCost(rr), nil
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is usually gone; 499-style close for the record.
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, val.(ReconstructResponse))
}

// dedupKey derives the content address of a synchronous reconstruction:
// the model's serialized hash, the canonical graph text, and the full
// option spec. The hypergraph bytes are identical across execution-shape
// knobs (shards, parallelism), but the response metadata (Shards, stage
// timings) is not — so the whole spec keys the entry and only truly
// identical requests share a response.
func (s *Server) dedupKey(model string, g *marioh.Graph, spec OptionSpec) (string, error) {
	mh, err := s.registry.Hash(model)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, mh)
	io.WriteString(h, "\x00")
	if err := g.Write(h); err != nil {
		return "", err
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	io.WriteString(h, "\x00")
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// reconstructInputs parses and resolves the shared parts of reconstruction
// requests: the target graph, the registry model, and the options.
func (s *Server) reconstructInputs(model, target string, spec OptionSpec) (*marioh.Graph, *marioh.Model, []marioh.Option, error) {
	if model == "" {
		return nil, nil, nil, errors.New("reconstruct: model is required (train first or PUT /v1/models/{name})")
	}
	if target == "" {
		return nil, nil, nil, errors.New("reconstruct: target graph is required")
	}
	g, err := parseGraph(target)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := s.registry.Get(model)
	if err != nil {
		return nil, nil, nil, err
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, nil, nil, err
	}
	return g, m, opts, nil
}

// handleBatch implements POST /v1/reconstruct/batch: always asynchronous,
// fanning out through ReconstructBatch's worker pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req ReconstructRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Targets) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("batch: targets is required"))
		return
	}
	if req.Model == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("batch: model is required"))
		return
	}
	graphs := make([]*marioh.Graph, len(req.Targets))
	for i, t := range req.Targets {
		g, err := parseGraph(t)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("target %d: %w", i, err))
			return
		}
		graphs[i] = g
	}
	m, err := s.registry.Get(req.Model)
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	opts, err := req.Options.Options()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	opts = append(opts, s.shardingOptions(req.Options)...)
	var queued int64
	for _, t := range req.Targets {
		queued += int64(len(t))
	}
	tenant, relJob, ok := s.acquireJob(w, r, queued)
	if !ok {
		return
	}

	job, err := s.submitMeta(JobBatch, JobMeta{Tenant: tenant, OnFinish: relJob}, func(ctx context.Context, job *Job) (any, error) {
		ropts := append(append([]marioh.Option(nil), opts...),
			marioh.WithModel(m), marioh.WithProgress(s.publisher(job)))
		rec, err := marioh.New(ropts...)
		if err != nil {
			return nil, err
		}
		results, err := rec.ReconstructBatch(ctx, graphs)
		if err != nil {
			return nil, err
		}
		out := BatchResult{Results: make([]ReconstructResult, len(results))}
		for i, res := range results {
			s.metrics.Stage("filter", res.Times.Filtering)
			s.metrics.Stage("search", res.Times.Bidirectional)
			if res.Shards > 0 {
				s.metrics.ShardRun(res.Shards)
			}
			rr, err := reconstructResult(res)
			if err != nil {
				return nil, err
			}
			out.Results[i] = rr
		}
		return out, nil
	})
	if err != nil {
		relJob()
		s.writeError(w, errStatus(err), err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, job.Info())
}

// handleJobs implements GET /v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.Jobs()
	out := make([]JobInfo, len(jobs))
	for i, job := range jobs {
		out[i] = job.Info()
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleJob implements GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, job.Info())
}

// handleJobCancel implements DELETE /v1/jobs/{id}: cancellation is
// asynchronous — the response reports the state at cancel time, and the
// job reaches "cancelled" once the workload observes its context. The
// job is fetched before cancelling so a concurrent history eviction
// cannot void the response snapshot.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.queue.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.queue.Cancel(id)
	s.writeJSON(w, http.StatusAccepted, job.Info())
}

// handleJobEvents implements GET /v1/jobs/{id}/events: a Server-Sent
// Events stream that replays the job's buffered progress events, follows
// with live ones, and terminates with a "done" event carrying the final
// status. Client disconnects just unsubscribe; they never affect the job.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.streamJobEvents(w, r, job)
}

// streamJobEvents writes a job's SSE progress stream: buffered replay,
// live events, then a terminal "done" frame. Shared by the job and
// session event endpoints.
func (s *Server) streamJobEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	past, live := job.Subscribe()
	defer job.Unsubscribe(live)

	seq := 0
	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, event, data); err != nil {
			return false
		}
		seq++
		flusher.Flush()
		return true
	}
	for _, p := range past {
		if !emit("progress", progressEvent(p)) {
			return
		}
	}
	for {
		select {
		case p, ok := <-live:
			if !ok {
				info := job.Info()
				emit("done", map[string]any{"status": info.Status, "error": info.Error})
				return
			}
			if !emit("progress", progressEvent(p)) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleModels implements GET /v1/models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.registry.List())
}

// handleModelGet implements GET /v1/models/{name}, returning the model's
// serialized JSON (loadable by marioh.LoadModel).
func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	raw, err := s.registry.Raw(r.PathValue("name"))
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// handleModelPut implements PUT /v1/models/{name}: upload a model saved
// with marioh.SaveModel. The payload is validated before it is stored.
func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	if err := s.registry.Put(name, raw); err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	info, err := s.registry.Info(name)
	if err != nil {
		info = ModelInfo{Name: name}
	}
	s.writeJSON(w, http.StatusCreated, info)
}

// handleModelDelete implements DELETE /v1/models/{name}.
func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.registry.Delete(r.PathValue("name")); err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	loaded, parked := s.sessions.Counts()
	s.writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		Version:       marioh.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queue.Depth(),
		Models:        s.registry.Len(),
		Sessions:      loaded,
		Parked:        parked,
	})
}

// handleMetrics implements GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	loaded, parked := s.sessions.Counts()
	s.metrics.Render(w, MetricsSnapshot{
		QueueDepth:     s.queue.Depth(),
		JobCounts:      s.queue.Counts(),
		OpenSessions:   loaded,
		ParkedSessions: parked,
		ActiveTenants:  s.admission.ActiveTenants(),
		Dedup:          s.dedup.Stats(),
		BudgetPools:    s.budget.Snapshot(),
		BudgetTotal:    s.budget.Total(),
		RSSBytes:       rssBytes(),
	})
}
