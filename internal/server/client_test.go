package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers 503 for the first fail requests, then delegates.
type flakyHandler struct {
	fail  int32
	seen  int32
	inner http.Handler
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := atomic.AddInt32(&h.seen, 1)
	if n <= atomic.LoadInt32(&h.fail) {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		return
	}
	h.inner.ServeHTTP(w, r)
}

func TestClientRetriesTransient5xx(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := &flakyHandler{fail: 2, inner: s.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	health, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health after transient 503s: %v", err)
	}
	if health.Status != "ok" {
		t.Fatalf("health status = %q, want ok", health.Status)
	}
	if got := atomic.LoadInt32(&h.seen); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + 1 success)", got)
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := &flakyHandler{fail: 100, inner: s.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.MaxRetries = 2
	c.RetryBackoff = time.Millisecond
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("Health succeeded against a permanently-503 server")
	}
	if got := atomic.LoadInt32(&h.seen); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestClientNoRetryNonIdempotent5xx(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := &flakyHandler{fail: 1, inner: s.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	_, _, err := c.ApplySession(context.Background(), "s-000001", SessionApplyRequest{})
	if err == nil {
		t.Fatal("POST apply succeeded despite the 503")
	}
	if got := atomic.LoadInt32(&h.seen); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (a 503 POST must not be retried)", got)
	}
}

func TestClientRetriesConnectionRefusedPOST(t *testing.T) {
	// Reserve a port by binding and closing a listener, then boot the real
	// server there after a delay — the POST's first attempts are refused.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	s, _ := newTestServer(t, nil)
	var seen int32
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&seen, 1)
		s.Handler().ServeHTTP(w, r)
	})
	done := make(chan struct{})
	var late *httptest.Server
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		late = &httptest.Server{Listener: l, Config: &http.Server{Handler: handler}}
		late.Start()
	}()
	t.Cleanup(func() {
		<-done
		if late != nil {
			late.Close()
		}
	})

	c := NewClient("http://" + addr)
	c.MaxRetries = 10
	c.RetryBackoff = 20 * time.Millisecond
	// POST /v1/train is non-idempotent, but connection-refused means the
	// request never reached a handler, so it retries anyway.
	if _, err := c.Train(context.Background(), TrainRequest{Source: hypergraphText(t, testSource(t))}); err != nil {
		t.Fatalf("Train through daemon restart window: %v", err)
	}
	if got := atomic.LoadInt32(&seen); got != 1 {
		t.Fatalf("server ran %d train submissions, want exactly 1", got)
	}
}

func TestClientRetriesDisabled(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := &flakyHandler{fail: 1, inner: s.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.MaxRetries = -1
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("Health succeeded with retries disabled against a first-hit 503")
	}
	if got := atomic.LoadInt32(&h.seen); got != 1 {
		t.Fatalf("server saw %d requests, want 1 with MaxRetries -1", got)
	}
}
