package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"marioh/internal/admission"
	"marioh/internal/durability"
)

// Machine-readable error codes carried by every non-2xx /v1 response in
// the unified envelope {"error":{"code","message","retry_after_s?"}}.
// Clients switch on the code; the message is for humans.
const (
	CodeBadRequest    = "bad_request"
	CodeNotFound      = "not_found"
	CodeConflict      = "conflict"
	CodeRateLimited   = "rate_limited"   // per-tenant token bucket empty
	CodeQuotaExceeded = "quota_exceeded" // per-tenant job/session/bytes quota
	CodeQueueFull     = "queue_full"
	CodeShuttingDown  = "shutting_down"
	CodeStorage       = "storage"
	CodeInternal      = "internal"
)

// errorBody is the wire form inside the envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterS mirrors the Retry-After header (fractional seconds) on
	// 429 responses, so body-only clients see the delay too.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// errorEnvelope is the body of every non-2xx response.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// APIError is the typed error the Go Client returns for any non-2xx
// response: callers switch on Code (or Status) instead of parsing
// message strings. It satisfies errors.As.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code (Code* constants).
	Code string
	// Message is the human-readable description from the server.
	Message string
	// RetryAfter is the server-advised delay before retrying (429 only;
	// zero otherwise).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (%d %s, retry after %s)", e.Message, e.Status, e.Code, e.RetryAfter.Round(time.Millisecond))
	}
	return fmt.Sprintf("server: %s (%d %s)", e.Message, e.Status, e.Code)
}

// errStatus maps workload/registry errors to HTTP statuses: admission
// rejections throttle (429), storage faults are the server's (500), and
// everything else unrecognized is treated as a bad request.
func errStatus(err error) int {
	var aerr *admission.Error
	switch {
	case errors.As(err, &aerr):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionBusy):
		return http.StatusConflict
	case errors.Is(err, ErrSeqMismatch):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStorage), errors.Is(err, durability.ErrStorage):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// errCode picks the envelope code for a (status, err) pair.
func errCode(status int, err error) string {
	var aerr *admission.Error
	if errors.As(err, &aerr) {
		if aerr.Reason == admission.ReasonRate {
			return CodeRateLimited
		}
		return CodeQuotaExceeded
	}
	switch status {
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusTooManyRequests:
		return CodeRateLimited
	case http.StatusServiceUnavailable:
		if errors.Is(err, ErrShuttingDown) {
			return CodeShuttingDown
		}
		return CodeQueueFull
	case http.StatusInternalServerError:
		if errors.Is(err, ErrStorage) || errors.Is(err, durability.ErrStorage) {
			return CodeStorage
		}
		return CodeInternal
	default:
		return CodeBadRequest
	}
}

// retryAfter extracts the server-advised retry delay from an admission
// rejection (zero for everything else).
func retryAfter(err error) time.Duration {
	var aerr *admission.Error
	if errors.As(err, &aerr) {
		return aerr.RetryAfter
	}
	return 0
}

// retryAfterHeader renders a delay for the Retry-After header: whole
// seconds, rounded up so "wait 200ms" does not become "retry now".
func retryAfterHeader(d time.Duration) string {
	return fmt.Sprintf("%d", int64(math.Ceil(d.Seconds())))
}
