package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"marioh"
)

// trainedModelBytes trains one tiny model and returns its serialization.
func trainedModelBytes(t *testing.T) []byte {
	t.Helper()
	src := testSource(t)
	rec, err := marioh.New(marioh.WithSeed(5), marioh.WithEpochs(5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rec.Train(context.Background(), src.Project(), src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := marioh.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRegistryMemoryRoundTrip(t *testing.T) {
	raw := trainedModelBytes(t)
	reg, err := NewRegistry("", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("a", raw); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Raw("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("raw bytes do not round-trip")
	}
	m, err := reg.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if m.Feat.Name() != "marioh" {
		t.Fatalf("decoded featurizer = %q", m.Feat.Name())
	}
	// Get must hit the cache: same pointer on repeat.
	m2, err := reg.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if m != m2 {
		t.Fatal("second Get must return the cached decode")
	}
	if _, err := reg.Get("missing"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("missing model error = %v", err)
	}
}

func TestRegistryDiskPersistsAndReindexes(t *testing.T) {
	raw := trainedModelBytes(t)
	dir := t.TempDir()
	reg, err := NewRegistry(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("keeper", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "keeper"+modelExt)); err != nil {
		t.Fatalf("model file not on disk: %v", err)
	}

	// A fresh registry over the same directory sees the model.
	reg2, err := NewRegistry(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	list := reg2.List()
	if len(list) != 1 || list[0].Name != "keeper" || list[0].Bytes != len(raw) {
		t.Fatalf("reindexed list = %+v", list)
	}
	if _, err := reg2.Get("keeper"); err != nil {
		t.Fatal(err)
	}

	// Corrupted strays are skipped by List, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "junk"+modelExt), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg3, err := NewRegistry(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if list := reg3.List(); len(list) != 1 {
		t.Fatalf("corrupted entry leaked into list: %+v", list)
	}

	if err := reg2.Delete("keeper"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "keeper"+modelExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("delete must remove the file")
	}
	if err := reg2.Delete("keeper"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	raw := trainedModelBytes(t)
	reg, err := NewRegistry("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("a", raw); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("b", raw); err != nil { // evicts a from the cache
		t.Fatal(err)
	}
	ma1, err := reg.Get("a") // re-decoded (cache miss), evicts b
	if err != nil {
		t.Fatal(err)
	}
	mb, err := reg.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	ma2, err := reg.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if ma1 == ma2 {
		t.Fatal("a must have been evicted and re-decoded after b's Get")
	}
	if mb == nil || ma1 == nil {
		t.Fatal("models must decode")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	raw := trainedModelBytes(t)
	reg, err := NewRegistry(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "..", "../evil", "a/b", ".hidden", "x y"} {
		if err := reg.Put(name, raw); err == nil {
			t.Fatalf("name %q must be rejected", name)
		}
		if _, err := reg.Get(name); err == nil {
			t.Fatalf("Get(%q) must be rejected", name)
		}
	}
	if err := reg.Put("ok-name.v1", raw); err != nil {
		t.Fatalf("valid name rejected: %v", err)
	}
	if err := reg.Put("x", []byte(`{"featurizer":"marioh"}`)); err == nil {
		t.Fatal("incomplete model must be rejected")
	}
}
