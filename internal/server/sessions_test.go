package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"marioh"
)

// TestServerSessionLifecycle drives the full session flow over HTTP:
// create, initial apply (full build), delta apply (incremental), info,
// list, SSE events, delete — asserting the served reconstructions are
// byte-identical to library full rebuilds of the same mutated graph.
func TestServerSessionLifecycle(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	src, err := parseHypergraph(hypergraphText(t, src))
	if err != nil {
		t.Fatal(err)
	}
	tgt, err = parseGraph(graphText(t, tgt))
	if err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m1", OptionSpec{Seed: 3, Epochs: 6})

	lib, err := marioh.New(marioh.WithSeed(3), marioh.WithEpochs(6))
	if err != nil {
		t.Fatal(err)
	}
	model, err := lib.Train(ctx, src.Project(), src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := marioh.New(marioh.WithSeed(3), marioh.WithModel(model))
	if err != nil {
		t.Fatal(err)
	}

	info, err := c.CreateSession(ctx, SessionRequest{
		Model: "m1", Graph: graphText(t, tgt), Options: OptionSpec{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Model != "m1" || info.Edges != tgt.NumEdges() {
		t.Fatalf("session info = %+v", info)
	}

	// Initial apply: empty delta stream builds everything.
	resp, job, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if job != nil {
		t.Fatal("default apply should be synchronous")
	}
	wantRes, err := full.Reconstruct(ctx, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Hypergraph != hypergraphText(t, wantRes.Hypergraph) {
		t.Fatal("initial session apply diverges from library reconstruction")
	}
	if resp.Result.Dirty == 0 || resp.Session.Applies != 1 {
		t.Fatalf("initial apply: dirty %d applies %d", resp.Result.Dirty, resp.Session.Applies)
	}

	// Delta apply: mutate a shadow copy the same way and full-rebuild it.
	deltas := "+ 0 7 2\n- 6 7\n= 1 2 3\n"
	shadow := tgt.Clone()
	ops, err := marioh.ReadDeltas(strings.NewReader(deltas))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		switch op.Kind {
		case marioh.DeltaAdd:
			shadow.AddWeight(op.U, op.V, op.W)
		case marioh.DeltaRemove:
			shadow.RemoveEdge(op.U, op.V)
		case marioh.DeltaSet:
			shadow.SetWeight(op.U, op.V, op.W)
		}
	}
	resp, _, err = c.ApplySession(ctx, info.ID, SessionApplyRequest{Deltas: deltas})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err = full.Reconstruct(ctx, shadow)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Hypergraph != hypergraphText(t, wantRes.Hypergraph) {
		t.Fatal("incremental session apply diverges from full rebuild of the mutated graph")
	}

	// Info and listing reflect the applies.
	got, err := c.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Applies != 2 || got.LastJob == "" {
		t.Fatalf("session after applies = %+v", got)
	}
	list, err := c.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("sessions list = %+v", list)
	}

	// SSE: the session events endpoint replays the last apply's progress.
	httpResp, err := http.Get(c.Base + "/v1/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var sse bytes.Buffer
	if _, err := sse.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	events := parseSSE(t, sse.String())
	sawProgress, sawDone := false, false
	for _, ev := range events {
		switch ev.event {
		case "progress":
			sawProgress = true
			if !strings.Contains(ev.data, "\"dirty\"") {
				t.Fatalf("session progress event misses dirty count: %s", ev.data)
			}
		case "done":
			sawDone = true
		}
	}
	if !sawProgress || !sawDone {
		t.Fatalf("session SSE stream incomplete: %+v", events)
	}

	// Delete; the id must stop resolving.
	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, info.ID); err == nil {
		t.Fatal("deleted session still resolvable")
	}
	if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{}); err == nil {
		t.Fatal("apply on deleted session succeeded")
	}
}

// TestServerSessionAsyncApply: {"async": true} queues the apply as a job
// whose result carries the reconstruction.
func TestServerSessionAsyncApply(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m1", OptionSpec{Seed: 1, Epochs: 5})
	info, err := c.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt), Options: OptionSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	async := true
	resp, job, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{Async: &async})
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil || job == nil {
		t.Fatalf("async apply: resp=%v job=%v", resp, job)
	}
	if job.Kind != JobSession {
		t.Fatalf("job kind %q, want %q", job.Kind, JobSession)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	done, err := c.WaitJob(waitCtx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReconstructResult
	if err := JobResult(done, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Unique == 0 || rr.Dirty == 0 {
		t.Fatalf("async apply result = %+v", rr)
	}
	// The session's info now points at the finished job.
	got, err := c.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastJob != job.ID {
		t.Fatalf("session last job %q, want %q", got.LastJob, job.ID)
	}
}

// TestServerSessionLRUEviction: the session store evicts the
// least-recently-used session past the configured limit, and the
// marioh_session_* metrics move.
func TestServerSessionLRUEviction(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, func(cfg *Config) { cfg.SessionLimit = 2 })
	trainOn(t, c, src, "m1", OptionSpec{Seed: 1, Epochs: 5})

	var ids []string
	for i := 0; i < 3; i++ {
		info, err := c.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		// Touch the latest so LRU order matches creation order.
		if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Session(ctx, ids[0]); err == nil {
		t.Fatal("oldest session survived past the LRU limit")
	}
	for _, id := range ids[1:] {
		if _, err := c.Session(ctx, id); err != nil {
			t.Fatalf("session %s evicted unexpectedly: %v", id, err)
		}
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 2 {
		t.Fatalf("health sessions = %d, want 2", h.Sessions)
	}
	metricsResp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(metricsResp.Body); err != nil {
		t.Fatal(err)
	}
	metricsResp.Body.Close()
	metrics := mbuf.String()
	for _, want := range []string{
		"marioh_sessions_open 2",
		"marioh_session_created_total 3",
		"marioh_session_evictions_total 1",
		"marioh_session_applies_total 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "marioh_session_dirty_components_total") {
		t.Error("metrics missing session dirty-components counter")
	}
}

// TestServerSessionApplyHardening pins the abuse-resistance of the apply
// path: int32-overflowing weights and node ids far beyond the session's
// growth bound are rejected at the wire (400, session stays usable), and
// a second apply while one is in flight gets 409 instead of interleaving.
func TestServerSessionApplyHardening(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	release := make(chan struct{})
	var block sync.Once
	_, c := newTestServer(t, func(cfg *Config) {
		cfg.testProgressHook = func(marioh.Progress) {
			block.Do(func() { <-release })
		}
	})
	trainOn(t, c, src, "m1", OptionSpec{Seed: 1, Epochs: 5})
	info, err := c.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt)})
	if err != nil {
		t.Fatal(err)
	}

	// Overflowing weight: rejected by the delta parser, 400.
	if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{Deltas: "+ 0 1 3000000000\n"}); err == nil {
		t.Fatal("int32-overflowing delta weight accepted")
	}
	// Node id far beyond the dense growth bound: rejected before any
	// allocation happens.
	if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{Deltas: "+ 0 999999999 1\n"}); err == nil {
		t.Fatal("unbounded node id accepted")
	}

	// Concurrent applies: the first blocks on the progress hook, the
	// second must get 409 Conflict, and after the first finishes the
	// session accepts work again.
	async := true
	_, job, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{Async: &async})
	if err != nil {
		t.Fatal(err)
	}
	status, _, err := c.doRaw(ctx, http.MethodPost, "/v1/sessions/"+info.ID+"/apply", SessionApplyRequest{})
	if err == nil || status != http.StatusConflict {
		t.Fatalf("overlapping apply: status %d err %v, want 409", status, err)
	}
	close(release)
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if _, err := c.WaitJob(waitCtx, job.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{}); err != nil {
		t.Fatalf("apply after slot release: %v", err)
	}
}

// TestServerSessionValidation: malformed creates and applies fail with
// 4xx, unknown ids with 404.
func TestServerSessionValidation(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m1", OptionSpec{Seed: 1, Epochs: 5})

	for name, req := range map[string]SessionRequest{
		"missing model": {Graph: graphText(t, tgt)},
		"missing graph": {Model: "m1"},
		"unknown model": {Model: "nope", Graph: graphText(t, tgt)},
		"bad graph":     {Model: "m1", Graph: "not a graph"},
	} {
		if _, err := c.CreateSession(ctx, req); err == nil {
			t.Errorf("%s: create succeeded", name)
		}
	}
	if _, err := c.Session(ctx, "s-999999"); err == nil {
		t.Error("unknown session id resolved")
	}
	if err := c.DeleteSession(ctx, "s-999999"); err == nil {
		t.Error("unknown session id deleted")
	}
	info, err := c.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{Deltas: "+ 1 1 1\n"}); err == nil {
		t.Error("self-loop delta accepted")
	}
	if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{Deltas: "? 1 2\n"}); err == nil {
		t.Error("malformed delta accepted")
	}
	// Events before any apply: a clean 404, not a hang.
	resp, err := http.Get(c.Base + "/v1/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events before first apply: status %d, want 404", resp.StatusCode)
	}
}

// newDurableTestServer boots a server with on-disk models and sessions
// rooted at dir, so a second instance over the same dir simulates a
// daemon restart.
func newDurableTestServer(t *testing.T, dir string, mutate func(*Config)) (*Server, *Client) {
	t.Helper()
	return newTestServer(t, func(cfg *Config) {
		cfg.ModelsDir = dir + "/models"
		cfg.DataDir = dir + "/data"
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// TestServerSessionDurableRestart: a session created with a data dir
// survives an unclean daemon restart (no shutdown parking — the second
// instance recovers purely from the WAL and snapshots), and the resumed
// session's next apply is byte-identical to a library rebuild of the
// same delta sequence.
func TestServerSessionDurableRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	src, tgt := testSource(t), testTarget(t)

	_, c1 := newDurableTestServer(t, dir, nil)
	trainOn(t, c1, src, "m1", OptionSpec{Seed: 3, Epochs: 6})
	info, err := c1.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt), Options: OptionSpec{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Durable {
		t.Fatalf("session with a data dir is not durable: %+v", info)
	}
	if _, _, err := c1.ApplySession(ctx, info.ID, SessionApplyRequest{}); err != nil {
		t.Fatal(err)
	}
	deltas := "+ 0 7 2\n- 6 7\n= 1 2 3\n"
	before, _, err := c1.ApplySession(ctx, info.ID, SessionApplyRequest{Deltas: deltas})
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": boot a second server over the same directories without any
	// clean shutdown of the first.
	_, c2 := newDurableTestServer(t, dir, nil)
	list, err := c2.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != info.ID || !list[0].Durable || !list[0].Parked {
		t.Fatalf("restarted server sessions = %+v", list)
	}
	// An empty apply on the recovered session must reproduce the exact
	// pre-crash reconstruction.
	after, _, err := c2.ApplySession(ctx, info.ID, SessionApplyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Result.Hypergraph != before.Result.Hypergraph {
		t.Fatal("recovered session reconstruction diverges from the pre-crash result")
	}
	got, err := c2.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Applies != 3 || got.Parked || got.Recovery == "" {
		t.Fatalf("recovered session info = %+v", got)
	}

	metricsResp, err := http.Get(c2.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(metricsResp.Body); err != nil {
		t.Fatal(err)
	}
	metricsResp.Body.Close()
	metrics := mbuf.String()
	for _, want := range []string{
		"marioh_recovery_total{outcome=",
		"marioh_wal_appends_total 1", // the empty post-recovery apply
		"marioh_snapshot_writes_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServerSessionDurableEviction: past the session limit a durable
// session parks to disk (persisted eviction) instead of being dropped,
// stays listed, and transparently rehydrates on its next apply.
func TestServerSessionDurableEviction(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	src, tgt := testSource(t), testTarget(t)
	_, c := newDurableTestServer(t, dir, func(cfg *Config) { cfg.SessionLimit = 1 })
	trainOn(t, c, src, "m1", OptionSpec{Seed: 1, Epochs: 5})

	a, err := c.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt)})
	if err != nil {
		t.Fatal(err)
	}
	firstA, _, err := c.ApplySession(ctx, a.ID, SessionApplyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt)}); err != nil {
		t.Fatal(err)
	}

	// A must be parked, not gone.
	got, err := c.Session(ctx, a.ID)
	if err != nil {
		t.Fatalf("parked session dropped from the listing: %v", err)
	}
	if !got.Parked || !got.Durable {
		t.Fatalf("evicted durable session info = %+v", got)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 1 || h.Parked != 1 {
		t.Fatalf("health = sessions %d parked %d, want 1/1", h.Sessions, h.Parked)
	}

	// Rehydrate by applying again; the reconstruction must match the
	// pre-park one exactly.
	again, _, err := c.ApplySession(ctx, a.ID, SessionApplyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Result.Hypergraph != firstA.Result.Hypergraph {
		t.Fatal("rehydrated session reconstruction diverges")
	}
	if again.Session.Parked || again.Session.Recovery == "" {
		t.Fatalf("rehydrated session info = %+v", again.Session)
	}

	metricsResp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(metricsResp.Body); err != nil {
		t.Fatal(err)
	}
	metricsResp.Body.Close()
	if !strings.Contains(mbuf.String(), `marioh_session_evicted_total{persisted="true"} `) {
		t.Error("metrics missing persisted eviction counter")
	}
}

// TestServerSessionSeqGuard: an apply asserting a stale applies counter
// gets 409 without mutating; the matching guard passes.
func TestServerSessionSeqGuard(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, nil)
	trainOn(t, c, src, "m1", OptionSpec{Seed: 1, Epochs: 5})
	info, err := c.CreateSession(ctx, SessionRequest{Model: "m1", Graph: graphText(t, tgt)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{}); err != nil {
		t.Fatal(err)
	}

	stale := 0
	status, _, err := c.doRaw(ctx, http.MethodPost, "/v1/sessions/"+info.ID+"/apply",
		SessionApplyRequest{Deltas: "+ 0 7 2\n", Seq: &stale})
	if err == nil || status != http.StatusConflict {
		t.Fatalf("stale seq guard: status %d err %v, want 409", status, err)
	}
	got, err := c.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Applies != 1 {
		t.Fatalf("guarded-out apply still mutated: applies %d", got.Applies)
	}

	match := 1
	resp, _, err := c.ApplySession(ctx, info.ID, SessionApplyRequest{Deltas: "+ 0 7 2\n", Seq: &match})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Session.Applies != 2 {
		t.Fatalf("matching seq guard apply = %+v", resp.Session)
	}
}
