package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"marioh"
	"marioh/internal/admission"
)

// Config are mariohd's knobs; the zero value serves on :8080 with
// GOMAXPROCS workers, a 64-job queue, an 8-model cache and a memory-only
// registry.
type Config struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// Workers is the job worker-pool size. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending-job buffer; submissions beyond it get
	// 503. Default 64.
	QueueDepth int
	// JobHistory bounds how many finished jobs (with results and event
	// buffers) stay inspectable through the jobs endpoints; the oldest
	// terminal jobs are evicted past it. Default 256.
	JobHistory int
	// ModelsDir persists the model registry; empty keeps models in memory.
	ModelsDir string
	// ModelCache is the decoded-model LRU size. Default 8.
	ModelCache int
	// SyncEdgeLimit is the largest target graph (in edges) POST
	// /v1/reconstruct runs synchronously; bigger targets are queued as
	// jobs. Default 20000.
	SyncEdgeLimit int
	// SessionLimit bounds how many incremental reconstruction sessions
	// stay open; opening one beyond it evicts the least-recently-used
	// session (parked to disk when DataDir is set, dropped otherwise).
	// Default 16.
	SessionLimit int
	// DataDir makes sessions durable: each session write-ahead-logs its
	// delta batches and snapshots its engine under DataDir/sessions/<id>,
	// surviving daemon restarts and crashes. Empty keeps sessions in
	// memory only.
	DataDir string
	// WALNoFsync skips fsync on session WAL appends and snapshot renames:
	// sessions still survive a process kill but a power loss may drop
	// acknowledged batches.
	WALNoFsync bool
	// SnapshotEvery is the number of applies between session engine
	// snapshots; 0 means the library default (8).
	SnapshotEvery int
	// ShutdownTimeout bounds graceful shutdown: in-flight jobs get this
	// long to drain before their contexts are cancelled. Default 30s.
	ShutdownTimeout time.Duration
	// Logf receives server logs. Default log.Printf.
	Logf func(format string, args ...any)

	// TenantRate / TenantBurst rate-limit each tenant's /v1 requests with
	// a token bucket (requests per second and bucket size); 0 disables.
	// Tenants identify themselves with the X-Marioh-Tenant header
	// ("default" when absent).
	TenantRate  float64
	TenantBurst int
	// TenantMaxJobs / TenantMaxSessions / TenantMaxQueuedBytes bound each
	// tenant's concurrent jobs (queued + running, including synchronous
	// reconstructions), open sessions, and total queued request-body
	// bytes; 0 disables. Over-quota requests answer 429 + Retry-After
	// without queueing.
	TenantMaxJobs        int
	TenantMaxSessions    int
	TenantMaxQueuedBytes int64
	// MemoryBudget caps the bytes the daemon retains across session
	// engines, decoded registry models, kept job results and the dedup
	// cache (estimates, not allocator truth). Past it the server sheds
	// cost-based: dedup entries first, then retained job results, then
	// idle sessions (durable ones park to disk). 0 = unlimited.
	MemoryBudget int64
	// DedupCacheBytes bounds the content-addressed reconstruction result
	// cache. Identical (graph fingerprint, model hash, options) sync
	// reconstructions collapse into one computation regardless; the cache
	// additionally serves repeat requests without recomputing. 0 means
	// the default (64 MiB); negative disables retention.
	DedupCacheBytes int64

	// testProgressHook, when set (by tests), observes every progress event
	// before it is published, letting tests block a reconstruction at a
	// deterministic point.
	testProgressHook marioh.ProgressFunc
}

func (c *Config) defaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 256
	}
	if c.ModelCache <= 0 {
		c.ModelCache = 8
	}
	if c.SyncEdgeLimit <= 0 {
		c.SyncEdgeLimit = 20000
	}
	if c.SessionLimit <= 0 {
		c.SessionLimit = 16
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.DedupCacheBytes == 0 {
		c.DedupCacheBytes = 64 << 20
	}
}

// Server is the mariohd HTTP service: a router over the job queue, the
// model registry and the metrics registry.
type Server struct {
	cfg       Config
	base      context.Context // lifetime context captured by New; bounds the queue root, request contexts and the drain deadline
	queue     *Queue
	registry  *Registry
	metrics   *Metrics
	sessions  *sessionStore
	admission *admission.Controller
	budget    *admission.Budget
	dedup     *admission.Cache
	mux       *http.ServeMux
	start     time.Time

	addrOnce  sync.Once
	addrReady chan struct{} // closed once addr is final (bound or failed)
	addr      string        // bound address; "" if listening failed
}

// New builds a Server (and its queue workers) from cfg. ctx is the
// server's lifetime: cancelling it hard-stops every queued and running
// job and every in-flight request — it must outlive graceful shutdown,
// so pass the process context, not the signal context that triggers the
// drain (Serve takes that one). The queue lives until Serve returns; a
// Server is single-use.
func New(ctx context.Context, cfg Config) (*Server, error) {
	cfg.defaults()
	budget := admission.NewBudget(cfg.MemoryBudget)
	reg, err := NewRegistry(cfg.ModelsDir, cfg.ModelCache)
	if err != nil {
		return nil, err
	}
	reg.budget = budget
	s := &Server{
		cfg:      cfg,
		base:     ctx,
		queue:    NewQueue(ctx, cfg.Workers, cfg.QueueDepth, cfg.JobHistory),
		registry: reg,
		metrics:  NewMetrics(),
		sessions: newSessionStore(cfg.SessionLimit),
		admission: admission.NewController(admission.Limits{
			Rate:           cfg.TenantRate,
			Burst:          cfg.TenantBurst,
			MaxJobs:        cfg.TenantMaxJobs,
			MaxSessions:    cfg.TenantMaxSessions,
			MaxQueuedBytes: cfg.TenantMaxQueuedBytes,
		}),
		budget:    budget,
		dedup:     admission.NewCache(ctx, cfg.DedupCacheBytes, budget),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		addrReady: make(chan struct{}),
	}
	s.queue.budget = budget
	s.queue.onEvict = s.metrics.ResultEvicted
	s.sessions.budget = budget
	if cfg.DataDir != "" {
		s.loadParkedSessions()
	}
	s.routes()
	return s, nil
}

// routes wires every endpoint through the metrics middleware; /v1
// endpoints additionally pass tenant admission (health and metrics stay
// un-throttled so probes and scrapes survive a flood).
func (s *Server) routes() {
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.Handle(pattern, s.instrument(pattern, s.admit(h)))
	}
	handle("POST /v1/train", s.handleTrain)
	handle("POST /v1/reconstruct", s.handleReconstruct)
	handle("POST /v1/reconstruct/batch", s.handleBatch)
	handle("GET /v1/jobs", s.handleJobs)
	handle("GET /v1/jobs/{id}", s.handleJob)
	handle("DELETE /v1/jobs/{id}", s.handleJobCancel)
	handle("GET /v1/jobs/{id}/events", s.handleJobEvents)
	handle("POST /v1/sessions", s.handleSessionCreate)
	handle("GET /v1/sessions", s.handleSessions)
	handle("GET /v1/sessions/{id}", s.handleSessionGet)
	handle("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	handle("POST /v1/sessions/{id}/apply", s.handleSessionApply)
	handle("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	handle("GET /v1/models", s.handleModels)
	handle("GET /v1/models/{name}", s.handleModelGet)
	handle("PUT /v1/models/{name}", s.handleModelPut)
	handle("DELETE /v1/models/{name}", s.handleModelDelete)
	s.mux.Handle("GET /healthz", s.instrument("GET /healthz", s.handleHealth))
	s.mux.Handle("GET /metrics", s.instrument("GET /metrics", s.handleMetrics))
}

// TenantHeader is the HTTP header carrying the caller's tenant identity;
// absent means admission.DefaultTenant.
const TenantHeader = "X-Marioh-Tenant"

// tenantKey is the request-context key carrying the admitted tenant.
type tenantKey struct{}

// tenantFrom returns the tenant the admission middleware attributed to
// the request.
func tenantFrom(r *http.Request) string {
	if t, ok := r.Context().Value(tenantKey{}).(string); ok {
		return t
	}
	return admission.DefaultTenant
}

// admit identifies the request's tenant and spends one of its rate
// tokens; over-rate requests answer 429 + Retry-After here, before any
// body is read or work queued.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get(TenantHeader)
		if tenant == "" {
			tenant = admission.DefaultTenant
		}
		if !admission.ValidTenant(tenant) {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid %s header %q", TenantHeader, tenant))
			return
		}
		if err := s.admission.AllowRequest(tenant); err != nil {
			s.reject(w, err)
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tenant)))
	}
}

// reject counts an admission rejection by reason and writes it (429 +
// Retry-After through the usual envelope path).
func (s *Server) reject(w http.ResponseWriter, err error) {
	var aerr *admission.Error
	if errors.As(err, &aerr) {
		s.metrics.AdmissionRejected(aerr.Reason)
	}
	s.writeError(w, errStatus(err), err)
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// flushStatusWriter adds Flush forwarding for underlying writers that
// support it; statusWriter deliberately does NOT implement http.Flusher,
// so the SSE handler's streaming-support check sees the truth about the
// wrapped writer.
type flushStatusWriter struct {
	*statusWriter
	flusher http.Flusher
}

func (w *flushStatusWriter) Flush() { w.flusher.Flush() }

// instrument wraps a handler with panic recovery, in-flight tracking and
// per-route request/status counting.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		var rw http.ResponseWriter = sw
		if f, ok := w.(http.Flusher); ok {
			rw = &flushStatusWriter{statusWriter: sw, flusher: f}
		}
		s.metrics.InflightAdd(1)
		defer func() {
			s.metrics.InflightAdd(-1)
			if p := recover(); p != nil {
				s.cfg.Logf("mariohd: panic serving %s: %v", route, p)
				if sw.status == 0 {
					s.writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal error"))
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			s.metrics.Request(route, sw.status)
		}()
		h(rw, r)
	})
}

// Handler returns the routed handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON writes a JSON response body with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.Logf("mariohd: encoding response: %v", err)
	}
}

// writeError writes the unified JSON error envelope
// {"error":{"code","message","retry_after_s?"}}. Admission rejections
// additionally carry a Retry-After header.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Code: errCode(status, err), Message: err.Error()}
	if ra := retryAfter(err); ra > 0 {
		body.RetryAfterS = ra.Seconds()
		w.Header().Set("Retry-After", retryAfterHeader(ra))
	}
	s.writeJSON(w, status, errorEnvelope{Error: body})
}

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, then
// shuts down gracefully: the listener closes, in-flight requests and every
// accepted job drain (bounded by ShutdownTimeout), and a clean drain
// returns nil.
func (s *Server) ListenAndServe(ctx context.Context) error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.setAddr("") // unblock Addr() so embedders see the failure
		return err
	}
	return s.Serve(ctx, l)
}

// setAddr publishes the final listen address exactly once.
func (s *Server) setAddr(addr string) {
	s.addrOnce.Do(func() {
		s.addr = addr
		close(s.addrReady)
	})
}

// Addr returns the bound address once it is known (blocking until then),
// so callers binding port 0 can discover the port. It returns "" if the
// listener failed to bind; repeated calls return the same value.
func (s *Server) Addr() string {
	<-s.addrReady
	return s.addr
}

// Serve serves on l until ctx is cancelled, then drains gracefully.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	addr := l.Addr().String()
	s.setAddr(addr)
	s.cfg.Logf("mariohd %s listening on %s", marioh.Version, addr)

	httpSrv := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return s.base },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(l) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// The drain deadline derives from the lifetime context, not the
	// (already cancelled) signal context that requested the shutdown:
	// in-flight work gets the full timeout unless the process itself is
	// being torn down.
	s.cfg.Logf("mariohd: shutdown requested, draining (timeout %s)", s.cfg.ShutdownTimeout)
	drainCtx, cancel := context.WithTimeout(s.base, s.cfg.ShutdownTimeout)
	defer cancel()

	// Stop accepting requests and wait for in-flight ones (this includes
	// synchronous reconstructions and SSE streams of running jobs).
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		s.cfg.Logf("mariohd: http shutdown: %v", err)
	}
	// Then drain the queued/running async jobs.
	if err := s.queue.Drain(drainCtx); err != nil {
		s.cfg.Logf("mariohd: queue drain aborted: %v", err)
		if n := s.parkSessions(); n > 0 {
			s.cfg.Logf("mariohd: parked %d durable session(s)", n)
		}
		return fmt.Errorf("server: drain: %w", err)
	}
	// Park durable sessions last (their final snapshots make the next
	// start a zero-replay resume).
	if n := s.parkSessions(); n > 0 {
		s.cfg.Logf("mariohd: parked %d durable session(s)", n)
	}
	counts := s.queue.Counts()
	s.cfg.Logf("mariohd: drained cleanly (%d succeeded, %d failed, %d cancelled), exiting",
		counts[StatusSucceeded], counts[StatusFailed], counts[StatusCancelled])
	return nil
}
