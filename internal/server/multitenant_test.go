package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"marioh"
	"marioh/internal/admission"
)

// doTenant issues a raw request with a tenant header, returning the
// response (the caller closes the body). Raw HTTP, not the Client, so
// tests see exact statuses and bodies without retry interference.
func doTenant(t *testing.T, method, url, tenant string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope reads and parses the unified error envelope from a
// non-2xx response body.
func decodeEnvelope(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("response body is not the error envelope: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope misses code/message: %+v", env.Error)
	}
	return env.Error
}

// metricsText scrapes /metrics.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServerTenantRateLimit: each tenant gets its own token bucket; the
// bucket emptying answers 429 with the rate_limited envelope and a
// Retry-After header, without affecting other tenants. A malformed
// tenant header is a 400 before any admission state is touched.
func TestServerTenantRateLimit(t *testing.T) {
	_, c := newTestServer(t, func(cfg *Config) {
		cfg.TenantRate = 0.001 // refill far slower than the test runs
		cfg.TenantBurst = 2
	})

	for i := 0; i < 2; i++ {
		resp := doTenant(t, http.MethodGet, c.Base+"/v1/jobs", "alice", nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("alice request %d = %d, want 200", i+1, resp.StatusCode)
		}
	}
	resp := doTenant(t, http.MethodGet, c.Base+"/v1/jobs", "alice", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want a positive delay", ra)
	}
	body := decodeEnvelope(t, resp)
	if body.Code != CodeRateLimited {
		t.Fatalf("envelope code = %q, want %q", body.Code, CodeRateLimited)
	}
	if body.RetryAfterS <= 0 {
		t.Fatalf("envelope retry_after_s = %v, want > 0", body.RetryAfterS)
	}

	// Another tenant's bucket is untouched.
	resp = doTenant(t, http.MethodGet, c.Base+"/v1/jobs", "bob", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob rides alice's rate limit: %d", resp.StatusCode)
	}

	// Malformed tenant identities never reach the buckets.
	resp = doTenant(t, http.MethodGet, c.Base+"/v1/jobs", "no spaces allowed", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid tenant header = %d, want 400", resp.StatusCode)
	}
	if body := decodeEnvelope(t, resp); body.Code != CodeBadRequest {
		t.Fatalf("invalid tenant code = %q, want %q", body.Code, CodeBadRequest)
	}

	text := metricsText(t, c.Base)
	if !strings.Contains(text, `marioh_admission_rejected_total{reason="rate"} 1`) {
		t.Fatalf("metrics miss the rate rejection counter:\n%s", text)
	}
	if !strings.Contains(text, "marioh_tenants_active") {
		t.Fatalf("metrics miss the active tenants gauge:\n%s", text)
	}
}

// TestServerTenantSessionQuota: TenantMaxSessions bounds each tenant's
// open sessions; the quota slot is held until the session is deleted and
// rejections carry the quota_exceeded envelope through the typed client
// error.
func TestServerTenantSessionQuota(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	_, c := newTestServer(t, func(cfg *Config) { cfg.TenantMaxSessions = 1 })
	trainOn(t, c, src, "m", OptionSpec{Seed: 1, Epochs: 5})

	alice := NewClient(c.Base)
	alice.Tenant = "alice"
	req := SessionRequest{Model: "m", Graph: graphText(t, tgt), Options: OptionSpec{Seed: 1}}

	first, err := alice.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tenant != "alice" {
		t.Fatalf("session tenant = %q, want alice", first.Tenant)
	}

	_, err = alice.CreateSession(ctx, req)
	var aerr *APIError
	if !errors.As(err, &aerr) {
		t.Fatalf("second session error is not an *APIError: %v", err)
	}
	if aerr.Status != http.StatusTooManyRequests || aerr.Code != CodeQuotaExceeded {
		t.Fatalf("second session rejection = %+v, want 429 %s", aerr, CodeQuotaExceeded)
	}
	if aerr.RetryAfter <= 0 {
		t.Fatalf("quota rejection carries no Retry-After: %+v", aerr)
	}

	// The quota is per tenant, not global.
	bob := NewClient(c.Base)
	bob.Tenant = "bob"
	if _, err := bob.CreateSession(ctx, req); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}

	// Deleting the session frees the slot.
	if err := alice.DeleteSession(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.CreateSession(ctx, req); err != nil {
		t.Fatalf("slot not released on delete: %v", err)
	}

	text := metricsText(t, c.Base)
	if !strings.Contains(text, `marioh_admission_rejected_total{reason="sessions"} 1`) {
		t.Fatalf("metrics miss the session quota rejection:\n%s", text)
	}
}

// TestServerTenantQueuedBytesQuota: TenantMaxQueuedBytes rejects a
// request whose payload alone exceeds the tenant's byte quota, before
// anything is queued — and the client never auto-retries a throttled
// POST, so the server sees the submission exactly once.
func TestServerTenantQueuedBytesQuota(t *testing.T) {
	ctx := context.Background()
	src := testSource(t)
	_, c := newTestServer(t, func(cfg *Config) { cfg.TenantMaxQueuedBytes = 16 })

	_, err := c.Train(ctx, TrainRequest{Source: hypergraphText(t, src), SaveAs: "m"})
	var aerr *APIError
	if !errors.As(err, &aerr) {
		t.Fatalf("over-quota train error is not an *APIError: %v", err)
	}
	if aerr.Status != http.StatusTooManyRequests || aerr.Code != CodeQuotaExceeded {
		t.Fatalf("over-quota train = %+v, want 429 %s", aerr, CodeQuotaExceeded)
	}

	text := metricsText(t, c.Base)
	if !strings.Contains(text, `marioh_requests_total{route="POST /v1/train"} 1`) {
		t.Fatalf("throttled POST was reissued (want exactly 1 attempt):\n%s", text)
	}
	if !strings.Contains(text, `marioh_admission_rejected_total{reason="queued_bytes"} 1`) {
		t.Fatalf("metrics miss the queued-bytes rejection:\n%s", text)
	}
}

// TestServerDedupSingleflight is the dedup acceptance test: many
// concurrent identical synchronous reconstructions collapse into exactly
// one computation, every caller gets byte-identical bodies, and the
// bytes equal the serial library run. A follow-up request is served from
// the content-addressed cache without recomputing.
func TestServerDedupSingleflight(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)

	// Gate the leader's computation on a channel so every concurrent
	// request provably arrives while the flight is open.
	var gateOn atomic.Bool
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	s, c := newTestServer(t, func(cfg *Config) {
		cfg.testProgressHook = func(marioh.Progress) {
			if !gateOn.Load() {
				return
			}
			select {
			case started <- struct{}{}:
			default:
			}
			<-gate
		}
	})
	trainOn(t, c, src, "m", OptionSpec{Seed: 3, Epochs: 6})

	// Serial golden through the library, from the same wire-form inputs.
	canonSrc, err := parseHypergraph(hypergraphText(t, src))
	if err != nil {
		t.Fatal(err)
	}
	canonTgt, err := parseGraph(graphText(t, tgt))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := marioh.New(marioh.WithSeed(3), marioh.WithEpochs(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Train(ctx, canonSrc.Project(), canonSrc); err != nil {
		t.Fatal(err)
	}
	golden, err := lib.Reconstruct(ctx, canonTgt)
	if err != nil {
		t.Fatal(err)
	}
	goldenText := hypergraphText(t, golden.Hypergraph)

	payload, err := json.Marshal(ReconstructRequest{
		Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	const concurrent = 10
	gateOn.Store(true)
	bodies := make([][]byte, concurrent)
	statuses := make([]int, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := doTenant(t, http.MethodPost, c.Base+"/v1/reconstruct", "", payload)
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			bodies[i] = raw
		}(i)
	}

	// The leader is mid-computation; wait for the other nine to join its
	// flight, then let it finish.
	<-started
	deadline := time.Now().Add(30 * time.Second)
	for s.dedup.Stats().Waiters < concurrent-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined the flight", s.dedup.Stats().Waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	gateOn.Store(false)

	for i := 0; i < concurrent; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var resp ReconstructResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Hypergraph != goldenText {
		t.Fatalf("deduped reconstruction diverges from the serial library run:\n%s\nvs\n%s",
			resp.Result.Hypergraph, goldenText)
	}

	// Exactly one reconstruction executed for the ten requests.
	recJobs := 0
	for _, job := range s.queue.Jobs() {
		if job.Kind == JobReconstruct {
			recJobs++
		}
	}
	if recJobs != 1 {
		t.Fatalf("%d reconstruct jobs ran for %d identical requests, want 1", recJobs, concurrent)
	}
	st := s.dedup.Stats()
	if st.Misses != 1 || st.Hits != concurrent-1 || st.Waiters != concurrent-1 {
		t.Fatalf("dedup stats = %+v, want 1 miss, %d hits/waiters", st, concurrent-1)
	}

	// A later identical request hits the retained entry: same bytes, no
	// new computation, no new job.
	late := doTenant(t, http.MethodPost, c.Base+"/v1/reconstruct", "", payload)
	raw, err := io.ReadAll(late.Body)
	late.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if late.StatusCode != http.StatusOK || !bytes.Equal(raw, bodies[0]) {
		t.Fatalf("cached request = %d, body differs from the flight's", late.StatusCode)
	}
	st = s.dedup.Stats()
	if st.Misses != 1 || st.Hits != concurrent || st.Entries != 1 {
		t.Fatalf("dedup stats after cache hit = %+v", st)
	}

	// A request with different options is a different content address.
	other, _, err := c.Reconstruct(ctx, ReconstructRequest{
		Model: "m", Target: graphText(t, tgt), Options: OptionSpec{Seed: 3, Shards: 2, ShardTarget: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.Result.Hypergraph != goldenText {
		t.Fatal("sharded run's hypergraph must still match the serial bytes")
	}
	if got := s.dedup.Stats().Misses; got != 2 {
		t.Fatalf("distinct options shared a cache entry (misses = %d, want 2)", got)
	}

	text := metricsText(t, c.Base)
	for _, want := range []string{
		"marioh_dedup_hits_total 10",
		"marioh_dedup_misses_total 2",
		"marioh_dedup_waiters_total 9",
		"marioh_dedup_entries 2",
		`marioh_memory_bytes{pool="dedup"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics miss %q:\n%s", want, text)
		}
	}
}

// TestServerMemoryBudgetParksSessions: a tiny MemoryBudget forces
// cost-based shedding — opening a second durable session parks the idle
// first one to disk, and touching the parked one rehydrates it (parking
// the other), so the daemon's resident engines stay within budget.
func TestServerMemoryBudgetParksSessions(t *testing.T) {
	ctx := context.Background()
	src, tgt := testSource(t), testTarget(t)
	s, c := newTestServer(t, func(cfg *Config) {
		cfg.DataDir = t.TempDir()
		cfg.MemoryBudget = 1 // any loaded engine overflows it
	})
	// Push a library-trained model: with a 1-byte budget a train job's
	// retained result would be shed from the inspectable history before a
	// polling client could observe the terminal status.
	lib, err := marioh.New(marioh.WithSeed(1), marioh.WithEpochs(5))
	if err != nil {
		t.Fatal(err)
	}
	model, err := lib.Train(ctx, src.Project(), src)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := marioh.SaveModel(&raw, model); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushModel(ctx, "m", raw.Bytes()); err != nil {
		t.Fatal(err)
	}

	req := SessionRequest{Model: "m", Graph: graphText(t, tgt), Options: OptionSpec{Seed: 1}}
	a, err := c.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	infoA, err := c.Session(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := c.Session(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !infoA.Parked || infoB.Parked {
		t.Fatalf("want A parked and B loaded under budget pressure, got A.parked=%v B.parked=%v",
			infoA.Parked, infoB.Parked)
	}
	var sessionsPool int64
	for _, p := range s.budget.Snapshot() {
		if p.Pool == budgetPoolSessions {
			sessionsPool = p.Bytes
		}
	}
	if want := sessionCost(marioh.SessionStats{
		Nodes: infoB.Nodes, Edges: infoB.Edges, Components: infoB.Components,
	}); sessionsPool > want {
		t.Fatalf("sessions pool charges %d bytes with one loaded engine (one engine costs %d)", sessionsPool, want)
	}

	// Applying to the parked session rehydrates it for the apply's
	// duration; once the apply releases, the enforcement parks every idle
	// engine again — nothing fits a 1-byte budget.
	resp, _, err := c.ApplySession(ctx, a.ID, SessionApplyRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Session.Applies != 1 || resp.Result.Hypergraph == "" {
		t.Fatalf("apply on rehydrated session = %+v", resp.Session)
	}
	infoA, err = c.Session(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err = c.Session(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !infoA.Parked || !infoB.Parked {
		t.Fatalf("want both sessions parked back under budget, got A.parked=%v B.parked=%v",
			infoA.Parked, infoB.Parked)
	}
	if infoA.Applies != 1 {
		t.Fatalf("parked session lost its applied state: %+v", infoA)
	}

	text := metricsText(t, c.Base)
	for _, want := range []string{
		"marioh_memory_budget_bytes 1",
		`marioh_session_evicted_total{persisted="true"}`,
		`marioh_memory_bytes{pool="sessions"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics miss %q:\n%s", want, text)
		}
	}
}

// throttleHandler answers 429 (unified envelope, small retry_after_s)
// for the first fail requests, then delegates.
type throttleHandler struct {
	fail  int32
	seen  int32
	inner http.Handler
}

func (h *throttleHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := atomic.AddInt32(&h.seen, 1)
	if n <= atomic.LoadInt32(&h.fail) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":{"code":"rate_limited","message":"slow down","retry_after_s":0.001}}`)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// TestClientRetries429Idempotent: a throttled GET is retried after the
// server-advised delay and succeeds.
func TestClientRetries429Idempotent(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := &throttleHandler{fail: 2, inner: s.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("GET after transient 429s: %v", err)
	}
	if got := atomic.LoadInt32(&h.seen); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 throttles + 1 success)", got)
	}
}

// TestClientNoRetry429POST: a throttled POST is never reissued — the
// quota another caller is waiting on must not be re-spent — and the
// caller gets the typed rejection to act on.
func TestClientNoRetry429POST(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := &throttleHandler{fail: 1, inner: s.Handler()}
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	_, err := c.Train(context.Background(), TrainRequest{Source: hypergraphText(t, testSource(t))})
	var aerr *APIError
	if !errors.As(err, &aerr) || aerr.Status != http.StatusTooManyRequests || aerr.Code != CodeRateLimited {
		t.Fatalf("throttled POST error = %v, want a typed 429 rate_limited", err)
	}
	if aerr.RetryAfter != time.Millisecond {
		t.Fatalf("RetryAfter = %s, want 1ms from retry_after_s", aerr.RetryAfter)
	}
	if got := atomic.LoadInt32(&h.seen); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (a 429 POST must not be retried)", got)
	}
}

// admissionErrorReasons pins the reason constants the metrics labels and
// operator dashboards key on.
func TestAdmissionErrorSurface(t *testing.T) {
	err := &admission.Error{Tenant: "alice", Reason: admission.ReasonJobs, Limit: 2, RetryAfter: time.Second}
	if errStatus(err) != http.StatusTooManyRequests {
		t.Fatalf("admission error status = %d", errStatus(err))
	}
	if code := errCode(http.StatusTooManyRequests, err); code != CodeQuotaExceeded {
		t.Fatalf("jobs quota code = %q, want %q", code, CodeQuotaExceeded)
	}
	rateErr := &admission.Error{Tenant: "alice", Reason: admission.ReasonRate, RetryAfter: time.Second}
	if code := errCode(http.StatusTooManyRequests, rateErr); code != CodeRateLimited {
		t.Fatalf("rate code = %q, want %q", code, CodeRateLimited)
	}
	if got := retryAfterHeader(200 * time.Millisecond); got != "1" {
		t.Fatalf("retryAfterHeader(200ms) = %q, want rounded up to 1", got)
	}
}
