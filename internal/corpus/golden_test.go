package corpus

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"marioh/internal/core"
	"marioh/internal/datasets"
)

// -update re-records the golden reconstruction outputs. Run it whenever a
// deliberate engine change moves the bytes:
//
//	go test ./internal/corpus -run TestFamilyGoldenOutput -update
var update = flag.Bool("update", false, "rewrite the golden corpus outputs")

var (
	modelOnce sync.Once
	model     *core.Model
)

// testModel trains the gate-standard classifier (hosts source, seed 1,
// 15 epochs — the exact configuration scripts/shard-check.sh and friends
// use) once per test process. Golden bytes depend on it, so it must stay
// in lockstep with the shell gates.
func testModel() *core.Model {
	modelOnce.Do(func() {
		src := datasets.MustByName("hosts", 1).Source.Reduced()
		model = core.Train(src.Project(), src, core.TrainOptions{Seed: 1, Epochs: 15})
	})
	return model
}

// TestFamilyGoldenOutput pins every family's serial reconstruction bytes
// under testdata/golden/. Any engine change that moves any family's
// output — intended or not — fails here first, before the shell-level
// gates run; -update re-records after a reviewed, deliberate change.
func TestFamilyGoldenOutput(t *testing.T) {
	m := testModel()
	for _, f := range Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := core.ReconstructContext(context.Background(), f.Gen(1), m, core.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.Hypergraph.Write(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", f.Name+".hg")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("recorded %s (%d unique hyperedges)", path, res.Hypergraph.NumUnique())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden output (run with -update to record): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("reconstruction bytes moved off the recorded golden %s\n"+
					"got %d bytes, want %d — if the change is deliberate, re-record with -update",
					path, buf.Len(), len(want))
			}
		})
	}

	// Every golden file must correspond to a live family, so renames don't
	// leave stale pins behind.
	if !*update {
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if _, ok := ByName(name[:len(name)-len(".hg")]); !ok {
				t.Errorf("stale golden file %s names no family", name)
			}
		}
	}
}

// TestFamilyGoldenShardEquivalence is the in-process mirror of
// shard-check over the corpus: for every family, sharded reconstruction
// at 1/4/16 shards (with a small TargetEdges so oversized components
// really bridge-split) must reproduce the serial bytes exactly.
func TestFamilyGoldenShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence matrix; skipped in -short")
	}
	m := testModel()
	for _, f := range Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			opts := core.Options{Seed: 1}
			serial, err := core.ReconstructContext(context.Background(), f.Gen(1), m, opts)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := serial.Hypergraph.Write(&want); err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 4, 16} {
				res, err := core.ReconstructSharded(context.Background(), f.Gen(1), m, opts,
					core.ShardOptions{Shards: shards, TargetEdges: 8})
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				if err := res.Hypergraph.Write(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("-shards %d diverges from serial bytes", shards)
				}
			}
		})
	}
}
