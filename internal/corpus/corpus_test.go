package corpus

import (
	"bytes"
	"fmt"
	"testing"

	"marioh/internal/graph"
)

// renderGraph serializes a graph in its canonical text form.
func renderGraph(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRegistry: names are unique, non-empty, sorted (registry order is
// part of the corpus contract — CI matrices and docs cite it), and
// ByName/MustByName resolve every entry.
func TestRegistry(t *testing.T) {
	if len(Families) < 6 {
		t.Fatalf("corpus has %d families, want at least 6", len(Families))
	}
	seen := map[string]bool{}
	prev := ""
	for _, f := range Families {
		if f.Name == "" || f.Desc == "" || f.Gen == nil || f.Deltas == nil || len(f.Tags) == 0 {
			t.Fatalf("family %+v has empty fields", f.Name)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate family name %q", f.Name)
		}
		seen[f.Name] = true
		if f.Name < prev {
			t.Fatalf("Families not sorted by name: %q after %q", f.Name, prev)
		}
		prev = f.Name
		got, ok := ByName(f.Name)
		if !ok || got.Name != f.Name {
			t.Fatalf("ByName(%q) failed", f.Name)
		}
		MustByName(f.Name)
	}
	if _, ok := ByName("no-such-family"); ok {
		t.Fatal("ByName resolved a bogus name")
	}
	if len(Names()) != len(Families) {
		t.Fatal("Names() length mismatch")
	}
}

// TestGenDeterminism: Gen is a pure function of the seed — byte-identical
// across calls, different across seeds (a family that ignores its seed
// would silently collapse the nightly seed-rotation matrix).
func TestGenDeterminism(t *testing.T) {
	for _, f := range Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			a := renderGraph(t, f.Gen(1))
			b := renderGraph(t, f.Gen(1))
			if !bytes.Equal(a, b) {
				t.Fatal("Gen(1) differs across calls")
			}
			if c := renderGraph(t, f.Gen(2)); bytes.Equal(a, c) {
				t.Fatal("Gen ignores its seed")
			}
			g := f.Gen(1)
			if g.NumEdges() == 0 {
				t.Fatal("family generates an empty graph")
			}
		})
	}
}

// TestDeltaStreamValidity: Deltas is deterministic, wire-format clean
// (round-trips through the delta text format), and valid op by op
// against the running graph: deletes name live edges, adds have positive
// weight, sets are non-negative, no self-loops.
func TestDeltaStreamValidity(t *testing.T) {
	const n = 120
	for _, f := range Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			ops := f.Deltas(1, n)
			if len(ops) != n {
				t.Fatalf("Deltas(1, %d) returned %d ops", n, len(ops))
			}
			again := f.Deltas(1, n)
			for i := range ops {
				if ops[i] != again[i] {
					t.Fatalf("op %d differs across calls: %v vs %v", i, ops[i], again[i])
				}
			}
			// A prefix of a longer stream must be the stream of the prefix
			// length — gates truncate freely.
			short := f.Deltas(1, n/2)
			for i := range short {
				if ops[i] != short[i] {
					t.Fatalf("op %d not prefix-stable: %v vs %v", i, ops[i], short[i])
				}
			}
			var buf bytes.Buffer
			if err := graph.WriteDeltas(&buf, ops); err != nil {
				t.Fatal(err)
			}
			rt, err := graph.ReadDeltas(&buf)
			if err != nil {
				t.Fatalf("stream does not survive the wire format: %v", err)
			}
			if len(rt) != len(ops) {
				t.Fatalf("round-trip dropped ops: %d vs %d", len(rt), len(ops))
			}
			g := f.Gen(1)
			for i, op := range ops {
				if op.U == op.V {
					t.Fatalf("op %d is a self-loop: %v", i, op)
				}
				top := op.U
				if op.V > top {
					top = op.V
				}
				g.EnsureNodes(top + 1)
				switch op.Kind {
				case graph.DeltaAdd:
					if op.W <= 0 {
						t.Fatalf("op %d: add with weight %d", i, op.W)
					}
					g.AddWeight(op.U, op.V, op.W)
				case graph.DeltaRemove:
					if !g.HasEdge(op.U, op.V) {
						t.Fatalf("op %d deletes absent edge {%d,%d}", i, op.U, op.V)
					}
					g.RemoveEdge(op.U, op.V)
				case graph.DeltaSet:
					if op.W < 0 {
						t.Fatalf("op %d: set with weight %d", i, op.W)
					}
					g.SetWeight(op.U, op.V, op.W)
				default:
					t.Fatalf("op %d: unknown kind %d", i, op.Kind)
				}
			}
		})
	}
}

// TestTrackerMatchesRescanOverCorpus is the graph-level engine-vs-map
// property run over every family's adversarial stream: the incremental
// component Tracker must agree with a from-scratch component scan and a
// plain weight-map shadow after every batch.
func TestTrackerMatchesRescanOverCorpus(t *testing.T) {
	const total, batch = 150, 10
	for _, f := range Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			tracker := graph.NewTracker(f.Gen(1))
			shadow := map[[2]int]int{}
			for _, e := range f.Gen(1).Edges() {
				shadow[[2]int{e.U, e.V}] = e.W
			}
			ops := f.Deltas(1, total)
			for start := 0; start < len(ops); start += batch {
				end := start + batch
				if end > len(ops) {
					end = len(ops)
				}
				for _, op := range ops[start:end] {
					tracker.Apply(op)
					u, v := op.U, op.V
					if u > v {
						u, v = v, u
					}
					key := [2]int{u, v}
					switch op.Kind {
					case graph.DeltaAdd:
						shadow[key] += op.W
					case graph.DeltaRemove:
						delete(shadow, key)
					case graph.DeltaSet:
						if op.W == 0 {
							delete(shadow, key)
						} else {
							shadow[key] = op.W
						}
					}
				}
				g := tracker.Graph()
				edges := g.Edges()
				if len(edges) != len(shadow) {
					t.Fatalf("after op %d: graph has %d edges, shadow %d", end, len(edges), len(shadow))
				}
				for _, e := range edges {
					if shadow[[2]int{e.U, e.V}] != e.W {
						t.Fatalf("after op %d: edge {%d,%d} weight %d, shadow %d",
							end, e.U, e.V, e.W, shadow[[2]int{e.U, e.V}])
					}
				}
				want := fmt.Sprint(nonSingleton(g.ConnectedComponents()))
				if got := fmt.Sprint(tracker.Components()); got != want {
					t.Fatalf("after op %d: tracker components %s, rescan %s", end, got, want)
				}
			}
		})
	}
}

func nonSingleton(comps [][]int) [][]int {
	out := [][]int{}
	for _, c := range comps {
		if len(c) > 1 {
			out = append(out, c)
		}
	}
	return out
}
