package corpus

import (
	"bytes"
	"context"
	"testing"

	"marioh/internal/core"
	"marioh/internal/graph"
	"marioh/internal/incremental"
)

// fuzzNodes bounds the delta universe so every fuzz iteration
// reconstructs in milliseconds while still exercising merges, splits,
// clique churn and reverts.
const fuzzNodes = 24

// fuzzBase is the fixed starting graph of every fuzz run: two triangles,
// a 4-path and spare isolated nodes — enough structure that deletes and
// splits mean something from the first op.
func fuzzBase() *graph.Graph {
	g := graph.New(fuzzNodes)
	g.AddWeight(0, 1, 2)
	g.AddWeight(0, 2, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(4, 5, 1)
	g.AddWeight(4, 6, 2)
	g.AddWeight(5, 6, 1)
	g.AddWeight(8, 9, 1)
	g.AddWeight(9, 10, 1)
	g.AddWeight(10, 11, 1)
	return g
}

// decodeOps interprets arbitrary fuzz bytes as a delta sequence: each op
// consumes 4 bytes (kind, u, v, w) reduced into the fuzz universe. Every
// byte string decodes to a valid stream — adds are positive, sets
// non-negative, self-loops dropped — so the fuzzer spends its budget on
// engine states, not wire-format rejections (FuzzWALReplay owns those).
func decodeOps(data []byte) []graph.DeltaOp {
	var ops []graph.DeltaOp
	for ; len(data) >= 4; data = data[4:] {
		u, v := int(data[1])%fuzzNodes, int(data[2])%fuzzNodes
		if u == v {
			continue
		}
		switch data[0] % 3 {
		case 0:
			ops = append(ops, graph.DeltaOp{Kind: graph.DeltaAdd, U: u, V: v, W: 1 + int(data[3])%3})
		case 1:
			ops = append(ops, graph.DeltaOp{Kind: graph.DeltaRemove, U: u, V: v})
		default:
			ops = append(ops, graph.DeltaOp{Kind: graph.DeltaSet, U: u, V: v, W: int(data[3]) % 4})
		}
	}
	return ops
}

// encodeOps is decodeOps's inverse for seeding: it folds a real delta
// stream (e.g. a corpus family's) into the fuzz byte format.
func encodeOps(ops []graph.DeltaOp) []byte {
	out := make([]byte, 0, 4*len(ops))
	for _, op := range ops {
		var kind, w byte
		switch op.Kind {
		case graph.DeltaAdd:
			kind, w = 0, byte((op.W-1)%3)
		case graph.DeltaRemove:
			kind, w = 1, 0
		case graph.DeltaSet:
			kind, w = 2, byte(op.W%4)
		}
		out = append(out, kind, byte(op.U%fuzzNodes), byte(op.V%fuzzNodes), w)
	}
	return out
}

// FuzzDeltaSequence replays arbitrary delta sequences through the
// incremental engine in batches, with a from-scratch reconstruction of an
// identically-mutated shadow graph as the oracle after every batch — the
// byte-identical output contract, driven by fuzzed inputs instead of the
// engineered corpus streams. The checked-in seeds under
// testdata/fuzz/FuzzDeltaSequence (plus the f.Add seeds derived from the
// corpus families) replay on every ordinary `go test`; the nightly
// corpus-fuzz job explores from them with a real fuzzing budget.
func FuzzDeltaSequence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	// Merge/split toggling on one pair, and an add/remove/set braid.
	f.Add(bytes.Repeat([]byte{0, 3, 7, 1, 1, 3, 7, 0}, 8))
	f.Add(bytes.Repeat([]byte{0, 0, 12, 2, 2, 0, 12, 0, 2, 0, 12, 2}, 6))
	// The corpus families' own streams, folded into the fuzz universe.
	for _, fam := range Families {
		f.Add(encodeOps(fam.Deltas(1, 40)))
	}

	m := testModel()
	opts := core.Options{Seed: 1}
	f.Fuzz(func(t *testing.T, data []byte) {
		const batch = 8
		ops := decodeOps(data)
		if len(ops) > 400 {
			ops = ops[:400] // bound a single iteration's work
		}
		shadow := fuzzBase()
		eng := incremental.New(fuzzBase(), m, opts, 2)
		for start := 0; start <= len(ops); start += batch {
			end := start + batch
			if end > len(ops) {
				end = len(ops)
			}
			var ba []graph.DeltaOp
			if start < end {
				ba = ops[start:end]
			}
			for _, op := range ba {
				applyToShadow(shadow, op)
			}
			got, err := eng.Apply(context.Background(), ba)
			if err != nil {
				t.Fatalf("ops [%d,%d): %v", start, end, err)
			}
			want, err := core.ReconstructContext(context.Background(), shadow, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(renderResult(t, got), renderResult(t, want)) {
				t.Fatalf("ops [%d,%d): engine bytes diverge from from-scratch rebuild "+
					"(%d vs %d unique hyperedges)", start, end,
					got.Hypergraph.NumUnique(), want.Hypergraph.NumUnique())
			}
			if start >= len(ops) {
				break
			}
		}
	})
}
