// Package corpus is the scenario corpus behind the repo's equivalence
// gates: a table-driven registry of graph families, each pairing a
// deterministic generator of a projected graph with a generator of an
// adversarial edge-delta stream valid against it.
//
// The byte-identical output contract (serial == sharded == incremental ==
// recovered-after-crash) is only as strong as the graph shapes it is
// proven on. Each Family in Families is engineered to stress one part of
// the stack: dense bitset promote/demote churn, bridge-tree splitting,
// overlapping-clique enumeration, component merge/split storms, exact
// structural reverts. The golden-output tests pin every family's
// reconstruction bytes, the engine-vs-rebuild property tests and
// FuzzDeltaSequence replay the delta streams through the incremental
// engine with a from-scratch rebuild as oracle, and `datagen -family`
// emits any family to disk so the shell-level gates (shard-check,
// incr-check, crash-check) run the same shapes end to end.
//
// Everything here is a pure function of (family, seed): both generators
// draw from seeded rand.Rand streams only, so a family row in a CI matrix
// reproduces bit for bit on any machine.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"

	"marioh/internal/graph"
)

// Family is one scenario: a named graph shape plus a delta stream that
// stresses it. Gen and Deltas must be deterministic in their seeds.
type Family struct {
	// Name identifies the family in test tables, CI matrices and
	// `datagen -family`.
	Name string
	// Desc is a one-line description of the pressure the family applies.
	Desc string
	// Tags classify that pressure ("hubs", "bridges", "cliques",
	// "multi-component", "churn", "revert").
	Tags []string
	// Gen builds the family's base projected graph for a seed. Every call
	// with the same seed yields an identical graph.
	Gen func(seed int64) *graph.Graph
	// Deltas derives an adversarial delta stream of n ops, valid op by op
	// against the running state of Gen(seed): deletes name live edges,
	// weights never go negative, and the stream replays cleanly from the
	// base graph. The stream's randomness is derived from the same seed,
	// so (family, seed, n) fully determines it.
	Deltas func(seed int64, n int) []graph.DeltaOp
}

// Families is the scenario corpus, ordered by name. Gates that iterate it
// inherit every future family for free.
var Families = []Family{
	archipelago,
	bridgeChain,
	cliqueCores,
	hubThrash,
	mergeSplitChurn,
	powerlawHubs,
	revertCycles,
	starClique,
}

// Names lists the family names in registry order.
func Names() []string {
	out := make([]string, len(Families))
	for i, f := range Families {
		out[i] = f.Name
	}
	return out
}

// ByName resolves a family.
func ByName(name string) (Family, bool) {
	for _, f := range Families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// MustByName resolves a family or panics with the valid names — the
// command-line entry points turn this into a usage error.
func MustByName(name string) Family {
	f, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("corpus: unknown family %q (have %v)", name, Names()))
	}
	return f
}

// walker mutates a working copy of a family's base graph while recording
// the ops, so every generated delta is valid against the running state —
// the same discipline datagen's dataset streams follow.
type walker struct {
	g   *graph.Graph
	rng *rand.Rand
	ops []graph.DeltaOp
}

func newWalker(base *graph.Graph, seed int64) *walker {
	return &walker{g: base.Clone(), rng: rand.New(rand.NewSource(seed))}
}

func (w *walker) record(op graph.DeltaOp) {
	top := op.U
	if op.V > top {
		top = op.V
	}
	w.g.EnsureNodes(top + 1)
	switch op.Kind {
	case graph.DeltaAdd:
		w.g.AddWeight(op.U, op.V, op.W)
	case graph.DeltaRemove:
		w.g.RemoveEdge(op.U, op.V)
	case graph.DeltaSet:
		w.g.SetWeight(op.U, op.V, op.W)
	}
	w.ops = append(w.ops, op)
}

func (w *walker) add(u, v, wt int) { w.record(graph.DeltaOp{Kind: graph.DeltaAdd, U: u, V: v, W: wt}) }
func (w *walker) remove(u, v int)  { w.record(graph.DeltaOp{Kind: graph.DeltaRemove, U: u, V: v}) }
func (w *walker) set(u, v, wt int) { w.record(graph.DeltaOp{Kind: graph.DeltaSet, U: u, V: v, W: wt}) }
func (w *walker) liveEdge() (graph.Edge, bool) {
	edges := w.g.Edges()
	if len(edges) == 0 {
		return graph.Edge{}, false
	}
	return edges[w.rng.Intn(len(edges))], true
}

// take returns the recorded stream truncated (or padded by weight bumps
// on live edges) to exactly n ops.
func (w *walker) take(n int) []graph.DeltaOp {
	for len(w.ops) < n {
		if e, ok := w.liveEdge(); ok {
			w.add(e.U, e.V, 1)
		} else {
			w.add(0, 1, 1)
		}
	}
	return w.ops[:n:n]
}

// deltaSeed derives the delta stream's rng seed from the family seed, so
// Gen(seed) and Deltas(seed, n) share one knob without sharing a stream.
func deltaSeed(seed int64) int64 {
	return int64(splitmix64(uint64(seed) ^ 0xc0_4c0_4c0_4c0_4))
}

// splitmix64 is the SplitMix64 finalizer (shared idiom with the engine's
// fingerprints and core's component sampling seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// componentOf returns the sorted component containing u, a convenience
// for delta generators that target whole components.
func componentOf(g *graph.Graph, u int) []int {
	for _, comp := range g.ConnectedComponents() {
		i := sort.SearchInts(comp, u)
		if i < len(comp) && comp[i] == u {
			return comp
		}
	}
	return []int{u}
}
