package corpus

import (
	"bytes"
	"context"
	"testing"

	"marioh/internal/core"
	"marioh/internal/graph"
	"marioh/internal/incremental"
)

// applyToShadow mirrors one delta op onto a plain graph the way the
// engine's Tracker does, giving the tests an independently-mutated graph
// to rebuild from scratch.
func applyToShadow(g *graph.Graph, op graph.DeltaOp) {
	top := op.U
	if op.V > top {
		top = op.V
	}
	g.EnsureNodes(top + 1)
	switch op.Kind {
	case graph.DeltaAdd:
		g.AddWeight(op.U, op.V, op.W)
	case graph.DeltaRemove:
		g.RemoveEdge(op.U, op.V)
	case graph.DeltaSet:
		g.SetWeight(op.U, op.V, op.W)
	}
}

func renderResult(t testing.TB, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Hypergraph.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineMatchesRebuildOverCorpus is the corpus-wide acceptance
// property: replaying every family's adversarial delta stream through
// the incremental engine, batch by batch, must reproduce a from-scratch
// reconstruction of the mutated graph byte for byte after every batch.
// This is the same oracle FuzzDeltaSequence drives with arbitrary
// streams; here it runs the engineered worst cases on every `go test`.
func TestEngineMatchesRebuildOverCorpus(t *testing.T) {
	const total, batch = 60, 15
	m := testModel()
	for _, f := range Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			opts := core.Options{Seed: 1}
			shadow := f.Gen(1)
			eng := incremental.New(f.Gen(1), m, opts, 2)
			ops := f.Deltas(1, total)
			for start := 0; start <= len(ops); start += batch {
				end := start + batch
				if end > len(ops) {
					end = len(ops)
				}
				var ba []graph.DeltaOp
				if start < end {
					ba = ops[start:end]
				}
				for _, op := range ba {
					applyToShadow(shadow, op)
				}
				got, err := eng.Apply(context.Background(), ba)
				if err != nil {
					t.Fatalf("ops [%d,%d): %v", start, end, err)
				}
				want, err := core.ReconstructContext(context.Background(), shadow, m, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(renderResult(t, got), renderResult(t, want)) {
					t.Fatalf("ops [%d,%d): engine output diverges from from-scratch rebuild "+
						"(%d vs %d unique hyperedges)", start, end,
						got.Hypergraph.NumUnique(), want.Hypergraph.NumUnique())
				}
				if start >= len(ops) {
					break
				}
			}
		})
	}
}

// TestRevertCyclesHitCache pins what makes the revert-cycles family
// adversarial: a structurally reverted graph must land back on its old
// fingerprints, so a full revert cycle recomputes nothing. (A cache bug
// here would not break byte-equality — the oracle above covers that —
// but it would silently void the incremental speedup the sessions sell.)
func TestRevertCyclesHitCache(t *testing.T) {
	f := MustByName("revert-cycles")
	m := testModel()
	eng := incremental.New(f.Gen(1), m, core.Options{Seed: 1}, 2)
	if _, err := eng.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	base := f.Gen(1)
	ops := f.Deltas(1, 200)
	// Find a prefix after which the graph equals the base again (the tail
	// of a revert cycle), replay it as one batch, and demand zero dirty
	// components.
	work := base.Clone()
	cycleEnd := -1
	for i, op := range ops {
		applyToShadow(work, op)
		if i > 0 && renderEqual(work, base) {
			cycleEnd = i + 1
			break
		}
	}
	if cycleEnd < 0 {
		t.Fatal("no complete revert cycle in the first 200 ops; the family lost its point")
	}
	res, err := eng.Apply(context.Background(), ops[:cycleEnd])
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyComponents != 0 {
		t.Fatalf("fully-reverted batch of %d ops recomputed %d components, want 0",
			cycleEnd, res.DirtyComponents)
	}
}

func renderEqual(a, b *graph.Graph) bool {
	var ba, bb bytes.Buffer
	if a.Write(&ba) != nil || b.Write(&bb) != nil {
		return false
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}
