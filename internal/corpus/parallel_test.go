package corpus

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"marioh/internal/core"
)

// TestParallelRoundMatchesSerialOverCorpus is the corpus-wide determinism
// property test for the parallel round engine: every family, reconstructed
// at Parallelism ∈ {1, 2, 8}, must be byte-identical to the serial golden.
// The Parallelism > 1 runs also force tiny pipeline knobs (threshold 1,
// chunk 3) so the fused enumerate→score pipeline and the per-component
// fan-out engage on every round of every family, however small — the
// documented defaults would leave the small families serial. Named to
// match the -race matrix ('Parallel'), which is where scheduling-dependent
// divergence would surface.
func TestParallelRoundMatchesSerialOverCorpus(t *testing.T) {
	// Force real goroutine interleaving even on single-core runners.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	m := testModel()
	for _, f := range Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			serial, err := core.ReconstructContext(context.Background(), f.Gen(1), m,
				core.Options{Seed: 1, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := renderResult(t, serial)

			// The serial run must itself sit on the recorded golden pin —
			// otherwise this test could pass vacuously on drifted bytes.
			golden, err := os.ReadFile(filepath.Join("testdata", "golden", f.Name+".hg"))
			if err != nil {
				t.Fatalf("missing golden output: %v", err)
			}
			if !bytes.Equal(want, golden) {
				t.Fatalf("serial Parallelism=1 output moved off the recorded golden")
			}

			for _, par := range []int{2, 8} {
				res, err := core.ReconstructContext(context.Background(), f.Gen(1), m, core.Options{
					Seed:                   1,
					Parallelism:            par,
					ScoreParallelThreshold: 1,
					PipelineChunk:          3,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := renderResult(t, res); !bytes.Equal(got, want) {
					t.Errorf("Parallelism=%d diverged from serial: got %d bytes, want %d",
						par, len(got), len(want))
				}
			}
		})
	}
}
