package corpus

import (
	"math/rand"

	"marioh/internal/graph"
)

// The family definitions. Sizes are tuned so every family reconstructs in
// well under a second serially — small enough for per-batch -verify
// rebuilds in the gates, large enough to exercise the pressure point
// (powerlaw-hubs and hub-thrash cross the dense-bitset promote threshold,
// bridge-chain outgrows any small shard target, archipelago has enough
// components for the incremental cache to matter).
//
// Generators are named functions (not closures over the Family vars) so
// the delta generators can rebuild their base graph without creating an
// initialization cycle.

// genPowerlawHubs: a power-law degree sequence over ~200 nodes. The top
// hubs sit above the adjacency engine's dense-bitset promote threshold
// (max(64, n/64) = 64 here), so hub rows are built, intersected via
// popcount, and — under the delta stream — repeatedly demoted and
// rebuilt. Preferential attachment plus triadic closure gives the
// triangle mass clique scoring needs.
func genPowerlawHubs(seed int64) *graph.Graph {
	const n = 200
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	// Three engineered hubs above the bitset threshold.
	hubs := []struct{ node, deg int }{{0, 96}, {1, 80}, {2, 68}}
	for _, h := range hubs {
		for _, v := range rng.Perm(n)[:h.deg] {
			if v != h.node {
				g.AddWeight(h.node, v, 1+rng.Intn(3))
			}
		}
	}
	// Preferential-attachment tail: each new node attaches to 2 nodes
	// biased toward earlier (already popular) ids, then closes the
	// triangle half the time so cliques exist beyond stars.
	for u := 3; u < n; u++ {
		a := rng.Intn(u)
		if p := rng.Intn(u); p < a {
			a = p // bias toward low ids, the popular end
		}
		b := rng.Intn(u)
		if a != b {
			g.AddWeight(u, a, 1+rng.Intn(2))
			g.AddWeight(u, b, 1)
			if rng.Intn(2) == 0 && !g.HasEdge(a, b) {
				g.AddWeight(a, b, 1)
			}
		}
	}
	return g
}

var powerlawHubs = Family{
	Name: "powerlaw-hubs",
	Desc: "power-law hub graph crossing the dense-bitset promote threshold",
	Tags: []string{"hubs", "bitset"},
	Gen:  genPowerlawHubs,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		w := newWalker(genPowerlawHubs(seed), deltaSeed(seed))
		for len(w.ops) < n {
			hub := w.rng.Intn(3)
			switch w.rng.Intn(5) {
			case 0, 1: // strip spokes off a hub (demote pressure)
				var spokes []int
				w.g.NeighborWeights(hub, func(v, _ int) { spokes = append(spokes, v) })
				for i := 0; i < 8 && len(spokes) > 4; i++ {
					j := w.rng.Intn(len(spokes))
					w.remove(hub, spokes[j])
					spokes = append(spokes[:j], spokes[j+1:]...)
				}
			case 2, 3: // regrow spokes (promote pressure)
				for i := 0; i < 8; i++ {
					v := 3 + w.rng.Intn(w.g.NumNodes()-3)
					w.add(hub, v, 1)
				}
			default: // tail noise
				if e, ok := w.liveEdge(); ok {
					w.set(e.U, e.V, 1+w.rng.Intn(3))
				}
			}
		}
		return w.take(n)
	},
}

// genHubThrash: one hub engineered to sit just above the promote
// threshold, plus a ballast community that keeps the component
// non-trivial even when the hub is stripped bare.
func genHubThrash(seed int64) *graph.Graph {
	const n = 160
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	// The hub: degree 72, just above the promote threshold of 64.
	for _, v := range rng.Perm(n - 1)[:72] {
		g.AddWeight(0, v+1, 1+rng.Intn(2))
	}
	for i := 1; i <= 12; i++ {
		for j := i + 1; j <= 12; j++ {
			if rng.Intn(3) > 0 {
				g.AddWeight(i, j, 1)
			}
		}
	}
	return g
}

var hubThrash = Family{
	Name: "hub-thrash",
	Desc: "one hub's degree oscillates across the bitset promote/demote band",
	Tags: []string{"hubs", "bitset", "churn"},
	Gen:  genHubThrash,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		w := newWalker(genHubThrash(seed), deltaSeed(seed))
		for len(w.ops) < n {
			// Strip the hub to ~24 spokes (below the demote bound of 32),
			// then regrow past 64: each cycle drops and rebuilds the row.
			var spokes []int
			w.g.NeighborWeights(0, func(v, _ int) { spokes = append(spokes, v) })
			for len(spokes) > 24 && len(w.ops) < n {
				j := w.rng.Intn(len(spokes))
				w.remove(0, spokes[j])
				spokes = append(spokes[:j], spokes[j+1:]...)
			}
			for len(spokes) < 70 && len(w.ops) < n {
				v := 1 + w.rng.Intn(w.g.NumNodes()-1)
				if !w.g.HasEdge(0, v) {
					w.add(0, v, 1)
					spokes = append(spokes, v)
				}
			}
		}
		return w.take(n)
	},
}

// genBridgeChain: a long chain of small 2-edge-connected blocks joined by
// ω=1 bridges — the shape the bridge-tree splitter was built for. Any
// small shard target forces real splits.
func genBridgeChain(seed int64) *graph.Graph {
	const blocks = 28
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(4 * blocks)
	prev := -1
	next := 0
	for b := 0; b < blocks; b++ {
		var members []int
		if rng.Intn(2) == 0 { // triangle block
			members = []int{next, next + 1, next + 2}
		} else { // K4 block
			members = []int{next, next + 1, next + 2, next + 3}
		}
		next = members[len(members)-1] + 1
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				g.AddWeight(members[i], members[j], 1+rng.Intn(2))
			}
		}
		if prev >= 0 {
			g.AddWeight(prev, members[0], 1) // the bridge
		}
		prev = members[len(members)-1]
	}
	return g
}

var bridgeChain = Family{
	Name: "bridge-chain",
	Desc: "long chain of triangle/K4 blocks joined by cut bridges",
	Tags: []string{"bridges", "chain"},
	Gen:  genBridgeChain,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		w := newWalker(genBridgeChain(seed), deltaSeed(seed))
		for len(w.ops) < n {
			if e, ok := w.liveEdge(); ok {
				switch {
				case e.W == 1 && w.rng.Intn(2) == 0:
					// Likely a bridge: cut it (chain splits), then half the
					// time restore it immediately.
					w.remove(e.U, e.V)
					if w.rng.Intn(2) == 0 {
						w.add(e.U, e.V, 1)
					}
				default:
					w.set(e.U, e.V, 1+w.rng.Intn(2))
				}
			}
			// Occasionally bridge two random chain positions, creating a
			// cycle through many blocks, then cut it again.
			if w.rng.Intn(4) == 0 {
				u, v := w.rng.Intn(w.g.NumNodes()), w.rng.Intn(w.g.NumNodes())
				if u != v && !w.g.HasEdge(u, v) {
					w.add(u, v, 1)
					if w.rng.Intn(2) == 0 {
						w.remove(u, v)
					}
				}
			}
		}
		return w.take(n)
	},
}

// genCliqueCores: dense overlapping cliques sharing boundary nodes — the
// Bron–Kerbosch and clique-pair-stats stress shape. Overlaps mean maximal
// cliques share nodes without sharing edges, the case the partitioner's
// never-split-a-clique property is about.
func genCliqueCores(seed int64) *graph.Graph {
	const cores, size, overlap = 7, 8, 3
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(cores*(size-overlap) + overlap)
	for c := 0; c < cores; c++ {
		base := c * (size - overlap)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddWeight(base+i, base+j, 1+rng.Intn(3))
			}
		}
	}
	return g
}

var cliqueCores = Family{
	Name: "clique-cores",
	Desc: "dense overlapping clique cores sharing boundary nodes",
	Tags: []string{"cliques", "dense"},
	Gen:  genCliqueCores,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		w := newWalker(genCliqueCores(seed), deltaSeed(seed))
		for len(w.ops) < n {
			e, ok := w.liveEdge()
			if !ok {
				break
			}
			switch w.rng.Intn(4) {
			case 0: // thin a core edge out entirely, breaking a clique
				w.remove(e.U, e.V)
			case 1: // restore or thicken
				w.add(e.U, e.V, 1+w.rng.Intn(2))
			default: // multiplicity churn without structural change
				w.set(e.U, e.V, 1+w.rng.Intn(3))
			}
		}
		return w.take(n)
	},
}

// genStarClique: hub-and-spoke stars whose centers form a clique — the
// hybrid where a dense core meets degree-1 fringe.
func genStarClique(seed int64) *graph.Graph {
	const centers, leaves = 6, 20
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(centers + centers*leaves)
	for i := 0; i < centers; i++ {
		for j := i + 1; j < centers; j++ {
			g.AddWeight(i, j, 2+rng.Intn(2))
		}
	}
	for i := 0; i < centers; i++ {
		for l := 0; l < leaves; l++ {
			g.AddWeight(i, centers+i*leaves+l, 1+rng.Intn(2))
		}
	}
	return g
}

var starClique = Family{
	Name: "star-clique",
	Desc: "star centers forming a clique, leaves migrating between stars",
	Tags: []string{"hubs", "cliques"},
	Gen:  genStarClique,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		const centers, leaves = 6, 20
		w := newWalker(genStarClique(seed), deltaSeed(seed))
		for len(w.ops) < n {
			leaf := centers + w.rng.Intn(centers*leaves)
			from := (leaf - centers) / leaves
			to := w.rng.Intn(centers)
			switch {
			case w.g.HasEdge(from, leaf) && from != to:
				// Migrate the leaf to another star: it briefly becomes a
				// singleton component between the two ops.
				w.remove(from, leaf)
				w.add(to, leaf, 1)
			case w.rng.Intn(3) == 0:
				w.set(to, leaf, 1+w.rng.Intn(2))
			default:
				if e, ok := w.liveEdge(); ok {
					w.add(e.U, e.V, 1)
				}
			}
		}
		return w.take(n)
	},
}

// genArchipelago: many disjoint island communities — the multi-component
// shape the incremental cache and LPT shard packing live on.
func genArchipelago(seed int64) *graph.Graph {
	const islands = 12
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, islands)
	total := 0
	for i := range sizes {
		sizes[i] = 5 + rng.Intn(5)
		total += sizes[i]
	}
	g := graph.New(total)
	base := 0
	for _, size := range sizes {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.65 {
					g.AddWeight(base+i, base+j, 1+rng.Intn(3))
				}
			}
		}
		// Guarantee connectivity within the island.
		for i := 1; i < size; i++ {
			if g.Weight(base+i-1, base+i) == 0 {
				g.AddWeight(base+i-1, base+i, 1)
			}
		}
		base += size
	}
	return g
}

var archipelago = Family{
	Name: "archipelago",
	Desc: "many disjoint island communities; deltas stay local to a few",
	Tags: []string{"multi-component"},
	Gen:  genArchipelago,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		w := newWalker(genArchipelago(seed), deltaSeed(seed))
		// Confine edits to the islands containing two anchor nodes, so the
		// other ~10 components stay untouched across the whole stream.
		anchors := []int{0, w.g.NumNodes() - 1}
		for len(w.ops) < n {
			comp := componentOf(w.g, anchors[w.rng.Intn(len(anchors))])
			u := comp[w.rng.Intn(len(comp))]
			v := comp[w.rng.Intn(len(comp))]
			if u == v {
				continue
			}
			switch w.rng.Intn(4) {
			case 0:
				if w.g.HasEdge(u, v) {
					w.remove(u, v)
				} else {
					w.add(u, v, 1)
				}
			default:
				w.set(u, v, 1+w.rng.Intn(3))
			}
		}
		return w.take(n)
	},
}

// genMergeSplitChurn: a set of islands the delta stream keeps bridging
// and re-severing, so the tracker's union/rescan paths and the engine's
// cache eviction run constantly — the adversarial case for incremental
// component maintenance.
func genMergeSplitChurn(seed int64) *graph.Graph {
	const islands, size = 9, 6
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(islands * size)
	for c := 0; c < islands; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.7 || j == i+1 {
					g.AddWeight(base+i, base+j, 1+rng.Intn(2))
				}
			}
		}
	}
	return g
}

var mergeSplitChurn = Family{
	Name: "merge-split-churn",
	Desc: "islands repeatedly bridged and re-severed: component merge/split storm",
	Tags: []string{"multi-component", "churn"},
	Gen:  genMergeSplitChurn,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		const islands, size = 9, 6
		w := newWalker(genMergeSplitChurn(seed), deltaSeed(seed))
		var bridges [][2]int
		for len(w.ops) < n {
			switch {
			case len(bridges) > 2 || (len(bridges) > 0 && w.rng.Intn(2) == 0):
				// Sever a live bridge: the merged component splits back.
				j := w.rng.Intn(len(bridges))
				b := bridges[j]
				w.remove(b[0], b[1])
				bridges = append(bridges[:j], bridges[j+1:]...)
			default:
				// Bridge two random islands (possibly chaining several into
				// one mega-component).
				a, b := w.rng.Intn(islands), w.rng.Intn(islands)
				if a == b {
					continue
				}
				u := a*size + w.rng.Intn(size)
				v := b*size + w.rng.Intn(size)
				if !w.g.HasEdge(u, v) {
					w.add(u, v, 1)
					bridges = append(bridges, [2]int{u, v})
				}
			}
		}
		return w.take(n)
	},
}

var revertCycles = Family{
	Name: "revert-cycles",
	Desc: "mutation bursts followed by exact structural reverts",
	Tags: []string{"revert", "churn"},
	// Reuse the clique-core shape: reverts are most punishing where
	// re-enumeration is most expensive.
	Gen: genCliqueCores,
	Deltas: func(seed int64, n int) []graph.DeltaOp {
		w := newWalker(genCliqueCores(seed), deltaSeed(seed))
		for len(w.ops) < n {
			// One cycle: 3-6 forward ops with their inverses pushed on a
			// stack, then the inverses replayed in reverse order. After the
			// cycle the edge set is exactly the pre-burst one, so a correct
			// incremental engine lands back on full cache hits — and a
			// wrong one resurfaces stale bytes, which the oracle catches.
			type undo struct{ u, v, prev int }
			var undos []undo
			burst := 3 + w.rng.Intn(4)
			for i := 0; i < burst; i++ {
				e, ok := w.liveEdge()
				if !ok {
					break
				}
				u, v := e.U, e.V
				if w.rng.Intn(3) == 0 { // sometimes target a non-edge
					a, b := w.rng.Intn(w.g.NumNodes()), w.rng.Intn(w.g.NumNodes())
					if a != b {
						u, v = a, b
					}
				}
				undos = append(undos, undo{u, v, w.g.Weight(u, v)})
				switch r := w.rng.Intn(3); {
				case r == 0 && w.g.HasEdge(u, v):
					w.remove(u, v)
				case r == 1:
					w.add(u, v, 1+w.rng.Intn(2))
				default:
					w.set(u, v, w.rng.Intn(4))
				}
			}
			for i := len(undos) - 1; i >= 0; i-- {
				w.set(undos[i].u, undos[i].v, undos[i].prev)
			}
		}
		return w.take(n)
	},
}
