// Package service is the name-resolution layer behind the public
// marioh.Reconstructor API: it maps the algorithm-variant and featurizer
// names used by CLIs, config files and tests to the concrete switches and
// implementations under internal/, so callers can select them without
// importing the implementation packages. It also accepts runtime
// registration of custom featurizers, the extension point later serving
// PRs (sharding, caching, remote models) will build on.
package service

import (
	"fmt"
	"sort"
	"sync"

	"marioh/internal/features"
)

// Variant names a MARIOH algorithm configuration: the full method or one
// of the paper's ablations (Tables II and III).
type Variant struct {
	// Name is the registry key ("marioh", "marioh-m", "marioh-f",
	// "marioh-b").
	Name string
	// Description is a one-line human-readable summary for CLI listings.
	Description string
	// Featurizer is the name of the clique featurizer the variant trains
	// with, resolved via FeaturizerByName.
	Featurizer string
	// DisableFiltering skips the guaranteed size-2 filtering step.
	DisableFiltering bool
	// DisableBidirectional skips sub-clique exploration.
	DisableBidirectional bool
}

// variants is the built-in registry, in presentation order.
var variants = []Variant{
	{
		Name:        "marioh",
		Description: "full MARIOH: multiplicity-aware features, size-2 filtering, bidirectional search",
		Featurizer:  "marioh",
	},
	{
		Name:        "marioh-m",
		Description: "MARIOH-M ablation: multiplicity-unaware (SHyRe count) features",
		Featurizer:  "shyre-count",
	},
	{
		Name:             "marioh-f",
		Description:      "MARIOH-F ablation: no guaranteed size-2 filtering",
		Featurizer:       "marioh",
		DisableFiltering: true,
	},
	{
		Name:                 "marioh-b",
		Description:          "MARIOH-B ablation: no sub-clique (bidirectional) exploration",
		Featurizer:           "marioh",
		DisableBidirectional: true,
	},
}

// VariantNames lists the registered variants in presentation order.
func VariantNames() []string {
	out := make([]string, len(variants))
	for i, v := range variants {
		out[i] = v.Name
	}
	return out
}

// Variants returns the full variant descriptors in presentation order.
func Variants() []Variant {
	out := make([]Variant, len(variants))
	copy(out, variants)
	return out
}

// VariantByName resolves a variant by its registry key.
func VariantByName(name string) (Variant, bool) {
	for _, v := range variants {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

// builtinFeaturizers are the names resolvable through features.ByName.
var builtinFeaturizers = []string{"marioh", "marioh-nomhh", "shyre-count", "shyre-motif"}

var (
	customMu          sync.RWMutex
	customFeaturizers = map[string]features.Featurizer{}
)

// RegisterFeaturizer adds a custom featurizer under f.Name(). It fails if
// the name is empty or already taken (built-in or previously registered).
func RegisterFeaturizer(f features.Featurizer) error {
	name := f.Name()
	if name == "" {
		return fmt.Errorf("service: featurizer has an empty name")
	}
	if _, ok := features.ByName(name); ok {
		return fmt.Errorf("service: featurizer %q is built in", name)
	}
	customMu.Lock()
	defer customMu.Unlock()
	if _, ok := customFeaturizers[name]; ok {
		return fmt.Errorf("service: featurizer %q already registered", name)
	}
	customFeaturizers[name] = f
	return nil
}

// FeaturizerByName resolves a featurizer: the built-ins first, then any
// runtime registrations.
func FeaturizerByName(name string) (features.Featurizer, bool) {
	if f, ok := features.ByName(name); ok {
		return f, true
	}
	customMu.RLock()
	defer customMu.RUnlock()
	f, ok := customFeaturizers[name]
	return f, ok
}

// Resolve maps the (variant, featurizer) name pair of a request payload —
// a CLI invocation, a config file, or an HTTP body — to concrete
// descriptors. Empty strings select the defaults: variant "marioh", and
// the variant's own featurizer. The returned errors name the valid
// alternatives, so callers (e.g. the mariohd handlers) can surface them to
// users verbatim.
func Resolve(variant, featurizer string) (Variant, features.Featurizer, error) {
	if variant == "" {
		variant = "marioh"
	}
	v, ok := VariantByName(variant)
	if !ok {
		return Variant{}, nil, fmt.Errorf("service: unknown variant %q (have %v)", variant, VariantNames())
	}
	if featurizer == "" {
		featurizer = v.Featurizer
	}
	f, ok := FeaturizerByName(featurizer)
	if !ok {
		return Variant{}, nil, fmt.Errorf("service: unknown featurizer %q (have %v)", featurizer, FeaturizerNames())
	}
	return v, f, nil
}

// FeaturizerNames lists every resolvable featurizer: built-ins in their
// canonical order, then custom registrations sorted by name.
func FeaturizerNames() []string {
	out := append([]string(nil), builtinFeaturizers...)
	customMu.RLock()
	custom := make([]string, 0, len(customFeaturizers))
	for name := range customFeaturizers {
		custom = append(custom, name)
	}
	customMu.RUnlock()
	sort.Strings(custom)
	return append(out, custom...)
}
