package service

import (
	"testing"

	"marioh/internal/features"
	"marioh/internal/graph"
)

func TestVariantRegistry(t *testing.T) {
	names := VariantNames()
	if len(names) != 4 || names[0] != "marioh" {
		t.Fatalf("VariantNames = %v", names)
	}
	for _, name := range names {
		v, ok := VariantByName(name)
		if !ok {
			t.Fatalf("VariantByName(%q) missing", name)
		}
		if v.Name != name || v.Description == "" {
			t.Fatalf("bad descriptor for %q: %+v", name, v)
		}
		if _, ok := FeaturizerByName(v.Featurizer); !ok {
			t.Fatalf("variant %q references unknown featurizer %q", name, v.Featurizer)
		}
	}
	if _, ok := VariantByName("nope"); ok {
		t.Fatal("unknown variant must not resolve")
	}
	full, _ := VariantByName("marioh")
	if full.DisableFiltering || full.DisableBidirectional {
		t.Fatal("full variant must enable every step")
	}
	fv, _ := VariantByName("marioh-f")
	if !fv.DisableFiltering {
		t.Fatal("marioh-f must disable filtering")
	}
	bv, _ := VariantByName("marioh-b")
	if !bv.DisableBidirectional {
		t.Fatal("marioh-b must disable bidirectional search")
	}
}

func TestFeaturizerResolution(t *testing.T) {
	for _, name := range FeaturizerNames() {
		f, ok := FeaturizerByName(name)
		if !ok {
			t.Fatalf("FeaturizerByName(%q) missing", name)
		}
		if f.Name() != name {
			t.Fatalf("featurizer %q reports name %q", name, f.Name())
		}
	}
	if _, ok := FeaturizerByName("nope"); ok {
		t.Fatal("unknown featurizer must not resolve")
	}
}

func TestResolve(t *testing.T) {
	v, f, err := Resolve("", "")
	if err != nil || v.Name != "marioh" || f.Name() != "marioh" {
		t.Fatalf("Resolve defaults = %v, %v, %v", v, f, err)
	}
	v, f, err = Resolve("marioh-m", "")
	if err != nil || v.Name != "marioh-m" || f.Name() != "shyre-count" {
		t.Fatalf("Resolve(marioh-m) = %v, %v, %v", v, f, err)
	}
	v, f, err = Resolve("marioh-b", "shyre-motif")
	if err != nil || !v.DisableBidirectional || f.Name() != "shyre-motif" {
		t.Fatalf("Resolve override = %v, %v, %v", v, f, err)
	}
	if _, _, err := Resolve("nope", ""); err == nil {
		t.Fatal("unknown variant must not resolve")
	}
	if _, _, err := Resolve("", "nope"); err == nil {
		t.Fatal("unknown featurizer must not resolve")
	}
}

// constFeat is a trivial custom featurizer for registration tests.
type constFeat struct{ name string }

func (c constFeat) Name() string { return c.name }
func (c constFeat) Dim() int     { return 1 }
func (c constFeat) Features(_ *graph.Graph, _ []int, _ bool) []float64 {
	return []float64{1}
}

var _ features.Featurizer = constFeat{}

func TestRegisterFeaturizer(t *testing.T) {
	if err := RegisterFeaturizer(constFeat{name: "custom-test"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := FeaturizerByName("custom-test"); !ok {
		t.Fatal("registered featurizer must resolve")
	}
	found := false
	for _, n := range FeaturizerNames() {
		if n == "custom-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("FeaturizerNames misses registration: %v", FeaturizerNames())
	}
	if err := RegisterFeaturizer(constFeat{name: "custom-test"}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := RegisterFeaturizer(constFeat{name: "marioh"}); err == nil {
		t.Fatal("shadowing a built-in must fail")
	}
	if err := RegisterFeaturizer(constFeat{name: ""}); err == nil {
		t.Fatal("empty name must fail")
	}
}
