package downstream

import (
	"marioh/internal/eval"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/linalg"
)

// ClusterGraph spectrally clusters a weighted graph into k clusters and
// returns the node assignments (Table VII's "projected graph" row).
func ClusterGraph(g *graph.Graph, k int, seed int64) []int {
	emb := RowNormalize(GraphEmbedding(g, k))
	return linalg.KMeans(emb, k, seed, 25)
}

// ClusterHypergraph spectrally clusters a hypergraph into k clusters using
// the hypergraph Laplacian embedding.
func ClusterHypergraph(h *hypergraph.Hypergraph, k int, seed int64) []int {
	emb := RowNormalize(HypergraphEmbedding(h, k))
	return linalg.KMeans(emb, k, seed, 25)
}

// ClusteringNMI runs spectral clustering and scores it against the given
// ground-truth labels with normalized mutual information. Pass a nil
// hypergraph to cluster the graph instead.
func ClusteringNMI(g *graph.Graph, h *hypergraph.Hypergraph, labels []int, seed int64) float64 {
	k := numClasses(labels)
	var pred []int
	if h != nil {
		pred = ClusterHypergraph(h, k, seed)
	} else {
		pred = ClusterGraph(g, k, seed)
	}
	return eval.NMI(pred, labels)
}

func numClasses(labels []int) int {
	seen := make(map[int]bool)
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}
