package downstream

import (
	"math"
	"math/rand"

	"marioh/internal/eval"
	"marioh/internal/gcn"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/linalg"
	"marioh/internal/mlp"
)

// lanczosNodeCap bounds the sparse-Lanczos embedding path: beyond this
// size link prediction falls back to hand-crafted features only.
const lanczosNodeCap = 5000

// LinkPredOptions configure a link-prediction run (Table IX's protocol).
type LinkPredOptions struct {
	// TestFraction of the balanced pair set is held out; default 0.1.
	TestFraction float64
	// MaxPairs caps the balanced pair set (positives + negatives) by
	// uniform subsampling, bounding MLP training cost on large graphs;
	// default 20000, ≤ 0 keeps everything.
	MaxPairs int
	// UseGCN trains a two-layer GCN on the feature graph for the link
	// embeddings — the paper's exact protocol — instead of the faster
	// spectral embedding. Honored up to EmbedNodeCap·4 nodes.
	UseGCN bool
	// EmbedDim adds pooled spectral-embedding features when the graph has
	// at most EmbedNodeCap nodes; default 8.
	EmbedDim int
	// EmbedNodeCap caps the graph size for the O(n³) spectral embedding;
	// default 600 (the paper uses GCN embeddings — see DESIGN.md for the
	// substitution).
	EmbedNodeCap int
	Seed         int64
}

func (o *LinkPredOptions) defaults() {
	if o.TestFraction <= 0 || o.TestFraction >= 1 {
		o.TestFraction = 0.1
	}
	if o.EmbedDim <= 0 {
		o.EmbedDim = 8
	}
	if o.EmbedNodeCap <= 0 {
		o.EmbedNodeCap = 600
	}
	if o.MaxPairs == 0 {
		o.MaxPairs = 20000
	}
}

// LinkPredictionAUC runs the paper's link-prediction protocol on the
// projected graph g, optionally enriched with hyperedge features from h
// (pass nil for the graph-only setting):
//
//  1. every edge of g is paired with a random non-edge (balanced set);
//  2. the set is split into train/test;
//  3. test edges are removed from the feature graph, and hyperedges of h
//     containing any test pair are excluded to prevent leakage;
//  4. an MLP is trained on the pair features and scored by AUC on test.
func LinkPredictionAUC(g *graph.Graph, h *hypergraph.Hypergraph, opts LinkPredOptions) float64 {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	edges := g.Edges()
	if len(edges) == 0 {
		return 0.5
	}

	type pair struct {
		u, v  int
		label int
	}
	pairs := make([]pair, 0, 2*len(edges))
	for _, e := range edges {
		pairs = append(pairs, pair{e.U, e.V, 1})
	}
	n := g.NumNodes()
	for negs := 0; negs < len(edges); {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		pairs = append(pairs, pair{u, v, 0})
		negs++
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	if opts.MaxPairs > 0 && len(pairs) > opts.MaxPairs {
		pairs = pairs[:opts.MaxPairs]
	}
	nTest := int(float64(len(pairs)) * opts.TestFraction)
	if nTest < 1 {
		nTest = 1
	}
	test, train := pairs[:nTest], pairs[nTest:]

	// Feature graph: g minus the positive test edges.
	fg := g.Clone()
	testPairKeys := make(map[string]bool, len(test))
	for _, p := range test {
		testPairKeys[hypergraph.Key([]int{p.u, p.v})] = true
		if p.label == 1 {
			fg.RemoveEdge(p.u, p.v)
		}
	}

	// Hypergraph features: drop hyperedges containing any test pair.
	var hIdx map[int][]int // node -> indices into kept hyperedge list
	var kept [][]int
	if h != nil {
		hIdx = make(map[int][]int)
		h.Each(func(nodes []int, _ int) {
			for i := 0; i < len(nodes); i++ {
				for j := i + 1; j < len(nodes); j++ {
					if testPairKeys[hypergraph.KeySorted([]int{nodes[i], nodes[j]})] {
						return
					}
				}
			}
			idx := len(kept)
			cp := append([]int(nil), nodes...)
			kept = append(kept, cp)
			for _, u := range cp {
				hIdx[u] = append(hIdx[u], idx)
			}
		})
	}

	// Link embedding of the feature graph. With UseGCN a two-layer GCN is
	// trained on the training edges (the paper's protocol); otherwise a
	// spectral embedding is used — dense Jacobi for small graphs, sparse
	// Lanczos up to lanczosNodeCap, nothing beyond.
	var emb [][]float64
	var m *linalg.Matrix
	switch {
	case opts.UseGCN && n <= 4*opts.EmbedNodeCap:
		m = gcn.Train(fg, gcn.Options{Out: opts.EmbedDim, Seed: opts.Seed}).Embeddings()
	case n <= opts.EmbedNodeCap:
		m = GraphEmbedding(fg, opts.EmbedDim)
	case n <= lanczosNodeCap:
		m = GraphEmbeddingLanczos(fg, opts.EmbedDim, opts.Seed)
	}
	if m != nil {
		emb = make([][]float64, n)
		for i := 0; i < n; i++ {
			emb[i] = append([]float64(nil), m.Row(i)...)
		}
	}

	feat := func(u, v int) []float64 {
		f := pairFeatures(fg, u, v)
		if h != nil {
			f = append(f, hyperedgeFeatures(hIdx, kept, u, v)...)
		}
		if emb != nil {
			f = append(f, poolMinMax(emb[u], emb[v])...)
		}
		return f
	}

	var X [][]float64
	var y []float64
	for _, p := range train {
		X = append(X, feat(p.u, p.v))
		y = append(y, float64(p.label))
	}
	std := mlp.FitStandardizer(X)
	std.TransformAll(X)
	net := mlp.New(len(X[0]), []int{16}, opts.Seed)
	net.Train(X, y, mlp.TrainOptions{Epochs: 40, Seed: opts.Seed})

	scores := make([]float64, len(test))
	labels := make([]int, len(test))
	for i, p := range test {
		f := feat(p.u, p.v)
		std.Transform(f)
		scores[i] = net.Forward(f)
		labels[i] = p.label
	}
	return eval.AUC(scores, labels)
}

// pairFeatures computes the paper's projected-graph edge features: Jaccard
// index, Adamic–Adar, preferential attachment, resource allocation, node
// degree mean/min/max, and the edge weight in the (test-edge-free) graph.
func pairFeatures(g *graph.Graph, u, v int) []float64 {
	cn := g.CommonNeighbors(u, v)
	du, dv := g.Degree(u), g.Degree(v)
	unionSize := du + dv - len(cn)
	jac := 0.0
	if unionSize > 0 {
		jac = float64(len(cn)) / float64(unionSize)
	}
	aa, ra := 0.0, 0.0
	for _, z := range cn {
		dz := float64(g.Degree(z))
		if dz > 1 {
			aa += 1 / math.Log(dz)
		}
		if dz > 0 {
			ra += 1 / dz
		}
	}
	mn, mx := float64(du), float64(dv)
	if mn > mx {
		mn, mx = mx, mn
	}
	return []float64{
		jac, aa, float64(du) * float64(dv), ra,
		(float64(du) + float64(dv)) / 2, mn, mx,
		float64(g.Weight(u, v)),
	}
}

// hyperedgeFeatures computes the two hypergraph-specific features of
// Table IX: the hyperedge Jaccard index of u and v, and the min/max of the
// average size of hyperedges containing each endpoint.
func hyperedgeFeatures(hIdx map[int][]int, kept [][]int, u, v int) []float64 {
	hu, hv := hIdx[u], hIdx[v]
	inter := countIntersect(hu, hv)
	union := len(hu) + len(hv) - inter
	hj := 0.0
	if union > 0 {
		hj = float64(inter) / float64(union)
	}
	su := avgSize(hu, kept)
	sv := avgSize(hv, kept)
	mn, mx := su, sv
	if mn > mx {
		mn, mx = mx, mn
	}
	return []float64{hj, mn, mx}
}

func countIntersect(a, b []int) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}

func avgSize(idx []int, kept [][]int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0
	for _, i := range idx {
		s += len(kept[i])
	}
	return float64(s) / float64(len(idx))
}

// poolMinMax concatenates the element-wise minimum and maximum of two
// equal-length embedding vectors — the paper's link-embedding pooling.
func poolMinMax(a, b []float64) []float64 {
	out := make([]float64, 0, 2*len(a))
	for i := range a {
		out = append(out, math.Min(a[i], b[i]))
	}
	for i := range a {
		out = append(out, math.Max(a[i], b[i]))
	}
	return out
}
