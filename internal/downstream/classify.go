package downstream

import (
	"math/rand"

	"marioh/internal/eval"
	"marioh/internal/linalg"
	"marioh/internal/mlp"
)

// Classifier is a one-vs-rest multi-class MLP over fixed feature vectors,
// used by the node-classification experiment (Table VIII). The paper's
// classifier is likewise "an MLP classifier" on spectral embeddings.
type Classifier struct {
	classes []int
	nets    []*mlp.Net
	std     *mlp.Standardizer
}

// TrainClassifier fits one binary MLP per class on rows X[i] with labels
// y[i].
func TrainClassifier(X [][]float64, y []int, seed int64) *Classifier {
	classSet := make(map[int]bool)
	for _, l := range y {
		classSet[l] = true
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	// Deterministic class order.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	c := &Classifier{classes: classes}
	c.std = mlp.FitStandardizer(X)
	Xs := make([][]float64, len(X))
	for i, row := range X {
		cp := append([]float64(nil), row...)
		c.std.Transform(cp)
		Xs[i] = cp
	}
	for ci, cls := range classes {
		yb := make([]float64, len(y))
		for i, l := range y {
			if l == cls {
				yb[i] = 1
			}
		}
		net := mlp.New(len(X[0]), []int{16}, seed+int64(ci))
		net.Train(Xs, yb, mlp.TrainOptions{Epochs: 80, Seed: seed + int64(ci)})
		c.nets = append(c.nets, net)
	}
	return c
}

// Predict returns the argmax class for a feature vector.
func (c *Classifier) Predict(x []float64) int {
	cp := append([]float64(nil), x...)
	c.std.Transform(cp)
	best, bestP := c.classes[0], -1.0
	for i, net := range c.nets {
		if p := net.Forward(cp); p > bestP {
			best, bestP = c.classes[i], p
		}
	}
	return best
}

// ClassificationF1 evaluates node classification on an embedding: nodes
// are split into train/test (80/20) across nSplits random splits, an MLP
// is trained per split, and the mean micro and macro F1 on the test nodes
// are returned.
func ClassificationF1(emb *linalg.Matrix, labels []int, nSplits int, seed int64) (micro, macro float64) {
	n := emb.Rows
	rng := rand.New(rand.NewSource(seed))
	var micros, macros []float64
	for s := 0; s < nSplits; s++ {
		perm := rng.Perm(n)
		cut := n * 8 / 10
		trainIdx, testIdx := perm[:cut], perm[cut:]
		var X [][]float64
		var y []int
		for _, i := range trainIdx {
			X = append(X, emb.Row(i))
			y = append(y, labels[i])
		}
		clf := TrainClassifier(X, y, seed+int64(s))
		pred := make([]int, len(testIdx))
		truth := make([]int, len(testIdx))
		for k, i := range testIdx {
			pred[k] = clf.Predict(emb.Row(i))
			truth[k] = labels[i]
		}
		micros = append(micros, eval.MicroF1(pred, truth))
		macros = append(macros, eval.MacroF1(pred, truth))
	}
	micro, _ = eval.MeanStd(micros)
	macro, _ = eval.MeanStd(macros)
	return micro, macro
}
