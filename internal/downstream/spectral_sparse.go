package downstream

import (
	"math"

	"marioh/internal/graph"
	"marioh/internal/linalg"
)

// GraphEmbeddingLanczos returns the same normalized-Laplacian spectral
// embedding as GraphEmbedding but computes it with the sparse Lanczos
// solver, so it scales to graphs with tens of thousands of nodes where the
// dense Jacobi path (O(n³)) is unusable. The Laplacian is never
// materialized: each Lanczos step costs O(|E|).
func GraphEmbeddingLanczos(g *graph.Graph, k int, seed int64) *linalg.Matrix {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	invSqrt := make([]float64, n)
	for u := 0; u < n; u++ {
		if d := g.WeightedDegree(u); d > 0 {
			invSqrt[u] = 1 / math.Sqrt(float64(d))
		}
	}
	// y = L·x with L = I − D^{−1/2} A D^{−1/2}, applied edge by edge.
	matvec := func(x, y []float64) {
		for i := range y {
			if invSqrt[i] > 0 {
				y[i] = x[i]
			} else {
				y[i] = 0
			}
		}
		for u := 0; u < n; u++ {
			g.NeighborWeights(u, func(v, w int) {
				y[u] -= float64(w) * invSqrt[u] * invSqrt[v] * x[v]
			})
		}
	}
	_, vecs := linalg.LanczosSmallest(n, k, 0, matvec, seed)
	return vecs
}
