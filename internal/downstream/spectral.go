// Package downstream implements the paper's Q3 applicability experiments:
// node clustering via spectral methods (Table VII), node classification on
// spectral embeddings (Table VIII), and link prediction with graph- and
// hypergraph-derived features (Table IX). Inputs can be a weighted
// projected graph, a reconstructed hypergraph, or the ground-truth
// hypergraph, so the experiments compare exactly the alternatives the
// paper compares.
package downstream

import (
	"math"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/linalg"
)

// GraphEmbedding returns the k-dimensional spectral embedding of a weighted
// graph: the eigenvectors of the symmetric normalized Laplacian
// L = I − D^{−1/2} A D^{−1/2} for the k smallest non-trivial eigenvalues,
// one row per node. Isolated nodes embed at the origin.
func GraphEmbedding(g *graph.Graph, k int) *linalg.Matrix {
	n := g.NumNodes()
	a := linalg.NewMatrix(n, n)
	deg := make([]float64, n)
	for _, e := range g.Edges() {
		w := float64(e.W)
		a.Set(e.U, e.V, w)
		a.Set(e.V, e.U, w)
		deg[e.U] += w
		deg[e.V] += w
	}
	return laplacianEmbedding(a, deg, k)
}

// HypergraphEmbedding returns the k-dimensional spectral embedding from
// Zhou's normalized hypergraph Laplacian
// Δ = I − D_v^{−1/2} H W D_e^{−1} Hᵀ D_v^{−1/2},
// where H is the node-by-hyperedge incidence matrix, W the hyperedge
// multiplicities, D_e the hyperedge sizes and D_v the weighted node
// degrees.
func HypergraphEmbedding(h *hypergraph.Hypergraph, k int) *linalg.Matrix {
	n := h.NumNodes()
	// A = H W De^{-1} Hᵀ accumulated edge by edge:
	// hyperedge e adds w(e)/|e| to every pair (u,v) ∈ e×e.
	a := linalg.NewMatrix(n, n)
	deg := make([]float64, n)
	h.Each(func(nodes []int, mult int) {
		w := float64(mult) / float64(len(nodes))
		for _, u := range nodes {
			deg[u] += float64(mult)
			for _, v := range nodes {
				a.Add(u, v, w)
			}
		}
	})
	return laplacianEmbedding(a, deg, k)
}

// laplacianEmbedding builds L = I − D^{−1/2} A D^{−1/2} and returns the
// eigenvectors of its k smallest eigenvalues (excluding numerically
// trivial all-zero directions caused by isolated nodes).
func laplacianEmbedding(a *linalg.Matrix, deg []float64, k int) *linalg.Matrix {
	n := a.Rows
	if k > n {
		k = n
	}
	l := linalg.NewMatrix(n, n)
	inv := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				if deg[i] > 0 {
					l.Set(i, i, 1-a.At(i, i)*inv[i]*inv[i])
				}
				continue
			}
			l.Set(i, j, -a.At(i, j)*inv[i]*inv[j])
		}
	}
	vals, vecs := linalg.SymEigen(l)
	_ = vals
	emb := linalg.NewMatrix(n, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			emb.Set(i, j, vecs.At(i, j))
		}
	}
	return emb
}

// RowNormalize scales every row of m to unit Euclidean norm in place (rows
// of all zeros are left untouched) and returns m. Standard practice before
// k-means in spectral clustering.
func RowNormalize(m *linalg.Matrix) *linalg.Matrix {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		s := 0.0
		for _, v := range r {
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1 / math.Sqrt(s)
		for j := range r {
			r[j] *= inv
		}
	}
	return m
}
