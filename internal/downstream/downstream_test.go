package downstream

import (
	"testing"

	"marioh/internal/eval"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/linalg"
)

// twoBlockGraph builds two dense blocks with a single bridge edge.
func twoBlockGraph() (*graph.Graph, []int) {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddWeight(i, j, 2)
			g.AddWeight(i+5, j+5, 2)
		}
	}
	g.AddWeight(4, 5, 1)
	labels := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	return g, labels
}

func TestGraphEmbeddingShape(t *testing.T) {
	g, _ := twoBlockGraph()
	emb := GraphEmbedding(g, 3)
	if emb.Rows != 10 || emb.Cols != 3 {
		t.Fatalf("embedding shape %dx%d", emb.Rows, emb.Cols)
	}
}

func TestClusterGraphSeparatesBlocks(t *testing.T) {
	g, labels := twoBlockGraph()
	pred := ClusterGraph(g, 2, 1)
	if nmi := eval.NMI(pred, labels); nmi < 0.99 {
		t.Fatalf("NMI = %v on trivially separable blocks", nmi)
	}
}

func TestClusterHypergraphSeparatesBlocks(t *testing.T) {
	h := hypergraph.New(10)
	h.Add([]int{0, 1, 2, 3, 4})
	h.Add([]int{5, 6, 7, 8, 9})
	h.Add([]int{0, 1, 2})
	h.Add([]int{5, 6, 7})
	h.Add([]int{4, 5}) // bridge
	labels := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	pred := ClusterHypergraph(h, 2, 1)
	if nmi := eval.NMI(pred, labels); nmi < 0.99 {
		t.Fatalf("NMI = %v", nmi)
	}
}

func TestClusteringNMIDispatch(t *testing.T) {
	g, labels := twoBlockGraph()
	h := hypergraph.New(10)
	h.Add([]int{0, 1, 2, 3, 4})
	h.Add([]int{5, 6, 7, 8, 9})
	if got := ClusteringNMI(g, nil, labels, 1); got < 0.99 {
		t.Fatalf("graph NMI = %v", got)
	}
	if got := ClusteringNMI(g, h, labels, 1); got < 0.99 {
		t.Fatalf("hypergraph NMI = %v", got)
	}
}

func TestRowNormalize(t *testing.T) {
	m := linalg.NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 4)
	RowNormalize(m)
	if d := m.At(0, 0) - 0.6; d > 1e-12 || d < -1e-12 {
		t.Fatalf("normalized = %v", m.Row(0))
	}
	// Zero row untouched.
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero row modified")
	}
}

func TestClassifierLearnsSeparableClasses(t *testing.T) {
	var X [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		f := float64(i % 3)
		X = append(X, []float64{f * 10, -f * 5})
		y = append(y, i%3)
	}
	clf := TrainClassifier(X, y, 1)
	correct := 0
	for i := range X {
		if clf.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if correct < 55 {
		t.Fatalf("classifier got %d/60", correct)
	}
}

func TestClassificationF1Perfect(t *testing.T) {
	// Embedding = one-hot of the label: trivially classifiable.
	emb := linalg.NewMatrix(60, 3)
	labels := make([]int, 60)
	for i := 0; i < 60; i++ {
		labels[i] = i % 3
		emb.Set(i, i%3, 1)
	}
	micro, macro := ClassificationF1(emb, labels, 2, 1)
	if micro < 0.95 || macro < 0.95 {
		t.Fatalf("micro=%v macro=%v on trivial embedding", micro, macro)
	}
}

func TestLinkPredictionBeatsChanceOnStructuredGraph(t *testing.T) {
	// Community structure: links inside blocks are predictable.
	h := hypergraph.New(30)
	for b := 0; b < 6; b++ {
		base := b * 5
		h.Add([]int{base, base + 1, base + 2, base + 3, base + 4})
		h.Add([]int{base, base + 1, base + 2})
	}
	g := h.Project()
	auc := LinkPredictionAUC(g, nil, LinkPredOptions{Seed: 1})
	if auc < 0.75 {
		t.Fatalf("graph AUC = %v, want > 0.75", auc)
	}
	aucH := LinkPredictionAUC(g, h, LinkPredOptions{Seed: 1})
	if aucH < 0.75 {
		t.Fatalf("hypergraph AUC = %v, want > 0.75", aucH)
	}
}

func TestLinkPredictionWithGCN(t *testing.T) {
	h := hypergraph.New(30)
	for b := 0; b < 6; b++ {
		base := b * 5
		h.Add([]int{base, base + 1, base + 2, base + 3, base + 4})
		h.Add([]int{base, base + 1, base + 2})
	}
	g := h.Project()
	auc := LinkPredictionAUC(g, nil, LinkPredOptions{Seed: 1, UseGCN: true})
	if auc < 0.7 {
		t.Fatalf("GCN-embedded AUC = %v, want > 0.7", auc)
	}
}

func TestLinkPredictionEmptyGraph(t *testing.T) {
	if auc := LinkPredictionAUC(graph.New(5), nil, LinkPredOptions{Seed: 1}); auc != 0.5 {
		t.Fatalf("empty graph AUC = %v, want 0.5", auc)
	}
}

func TestPairFeaturesValues(t *testing.T) {
	g := graph.New(4)
	g.AddWeight(0, 1, 2)
	g.AddWeight(0, 2, 1)
	g.AddWeight(1, 2, 1)
	f := pairFeatures(g, 0, 1)
	// Common neighbor: {2}; deg(0)=2 deg(1)=2 → Jaccard = 1/3.
	if d := f[0] - 1.0/3; d > 1e-12 || d < -1e-12 {
		t.Fatalf("Jaccard feature = %v", f[0])
	}
	if f[7] != 2 { // ω(0,1)
		t.Fatalf("weight feature = %v", f[7])
	}
}

func TestPoolMinMax(t *testing.T) {
	got := poolMinMax([]float64{1, 5}, []float64{3, 2})
	want := []float64{1, 2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pool = %v, want %v", got, want)
		}
	}
}
