// Package hypergraph implements the hypergraph substrate of the MARIOH
// reproduction: a multiset of hyperedges H = (V, E*_H) with per-hyperedge
// multiplicities, the clique-expansion projection into a weighted pairwise
// graph, and the structural properties used in the paper's Table IV.
//
// Hyperedges are node sets of size ≥ 2 identified by a canonical key (see
// Key); a hyperedge occurring m times in the multiset has multiplicity m.
package hypergraph

import (
	"fmt"
	"sort"

	"marioh/internal/graph"
)

type entry struct {
	nodes []int // sorted, deduplicated
	mult  int
}

// Hypergraph is a multiset of hyperedges over nodes 0..NumNodes()-1.
// The zero value is not usable; call New.
type Hypergraph struct {
	numNodes int
	entries  map[string]*entry
	keys     []string // unique keys in first-insertion order (determinism)
	total    int      // Σ multiplicities
	sumSizes int      // Σ |e| · M(e)
}

// New returns an empty hypergraph with capacity for n nodes. The node set
// grows automatically when hyperedges mention larger ids.
func New(n int) *Hypergraph {
	return &Hypergraph{numNodes: n, entries: make(map[string]*entry)}
}

// NumNodes returns the size of the node universe.
func (h *Hypergraph) NumNodes() int { return h.numNodes }

// EnsureNodes grows the node universe to at least n nodes.
func (h *Hypergraph) EnsureNodes(n int) {
	if n > h.numNodes {
		h.numNodes = n
	}
}

// NumUnique returns the number of distinct hyperedges |E_H|.
func (h *Hypergraph) NumUnique() int { return len(h.keys) }

// NumTotal returns the multiset size |E*_H| = Σ_e M(e).
func (h *Hypergraph) NumTotal() int { return h.total }

// SumSizes returns Σ_e |e| · M(e), the total incidence count.
func (h *Hypergraph) SumSizes() int { return h.sumSizes }

// Add inserts one occurrence of the hyperedge given by nodes.
func (h *Hypergraph) Add(nodes []int) { h.AddMult(nodes, 1) }

// AddMult inserts m occurrences of the hyperedge given by nodes. The input
// is canonicalized (sorted, deduplicated); hyperedges must contain at least
// two distinct nodes.
func (h *Hypergraph) AddMult(nodes []int, m int) {
	if m <= 0 {
		panic(fmt.Sprintf("hypergraph: non-positive multiplicity %d", m))
	}
	canon := canonical(nodes)
	if len(canon) < 2 {
		panic(fmt.Sprintf("hypergraph: hyperedge %v has fewer than 2 distinct nodes", nodes))
	}
	k := KeySorted(canon)
	if e, ok := h.entries[k]; ok {
		e.mult += m
	} else {
		h.entries[k] = &entry{nodes: canon, mult: m}
		h.keys = append(h.keys, k)
		if top := canon[len(canon)-1] + 1; top > h.numNodes {
			h.numNodes = top
		}
	}
	h.total += m
	h.sumSizes += len(canon) * m
}

func canonical(nodes []int) []int {
	s := make([]int, len(nodes))
	copy(s, nodes)
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if v < 0 {
			panic("hypergraph: negative node id")
		}
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Multiplicity returns M(e) for the hyperedge with the given node set, or 0
// if absent.
func (h *Hypergraph) Multiplicity(nodes []int) int {
	return h.MultiplicityKey(Key(nodes))
}

// MultiplicityKey returns the multiplicity of the hyperedge with canonical
// key k, or 0 if absent.
func (h *Hypergraph) MultiplicityKey(k string) int {
	if e, ok := h.entries[k]; ok {
		return e.mult
	}
	return 0
}

// ContainsKey reports whether a hyperedge with canonical key k is present.
func (h *Hypergraph) ContainsKey(k string) bool {
	_, ok := h.entries[k]
	return ok
}

// Contains reports whether the given node set is a hyperedge.
func (h *Hypergraph) Contains(nodes []int) bool {
	return h.ContainsKey(Key(nodes))
}

// Keys returns the canonical keys of the unique hyperedges in
// first-insertion order. The returned slice must not be modified.
func (h *Hypergraph) Keys() []string { return h.keys }

// EdgeByKey returns the sorted node set for key k. It panics if k is absent.
func (h *Hypergraph) EdgeByKey(k string) []int {
	e, ok := h.entries[k]
	if !ok {
		panic("hypergraph: unknown key")
	}
	out := make([]int, len(e.nodes))
	copy(out, e.nodes)
	return out
}

// UniqueEdges returns copies of all distinct hyperedges (sorted node sets)
// in first-insertion order.
func (h *Hypergraph) UniqueEdges() [][]int {
	out := make([][]int, 0, len(h.keys))
	for _, k := range h.keys {
		out = append(out, h.EdgeByKey(k))
	}
	return out
}

// EdgeMult pairs a hyperedge with its multiplicity.
type EdgeMult struct {
	Nodes []int
	Mult  int
}

// EdgesWithMult returns all distinct hyperedges with their multiplicities in
// first-insertion order.
func (h *Hypergraph) EdgesWithMult() []EdgeMult {
	out := make([]EdgeMult, 0, len(h.keys))
	for _, k := range h.keys {
		e := h.entries[k]
		nodes := make([]int, len(e.nodes))
		copy(nodes, e.nodes)
		out = append(out, EdgeMult{Nodes: nodes, Mult: e.mult})
	}
	return out
}

// Each calls fn once per unique hyperedge with its multiplicity, in
// first-insertion order. The node slice must not be modified.
func (h *Hypergraph) Each(fn func(nodes []int, mult int)) {
	for _, k := range h.keys {
		e := h.entries[k]
		fn(e.nodes, e.mult)
	}
}

// Clone returns a deep copy.
func (h *Hypergraph) Clone() *Hypergraph {
	c := New(h.numNodes)
	h.Each(func(nodes []int, mult int) { c.AddMult(nodes, mult) })
	return c
}

// Reduced returns the multiplicity-reduced hypergraph: the same unique
// hyperedges, each with multiplicity 1. This matches the paper's
// "multiplicity-reduced setting" (Sect. IV-A). Note that projecting the
// reduced hypergraph still yields edge multiplicities > 1 wherever distinct
// hyperedges overlap in two or more nodes.
func (h *Hypergraph) Reduced() *Hypergraph {
	c := New(h.numNodes)
	h.Each(func(nodes []int, _ int) { c.AddMult(nodes, 1) })
	return c
}

// Project performs clique expansion, producing the weighted projected graph
// G = (V, E_G, ω) with ω(u,v) = Σ_e M(e) · 1({u,v} ⊆ e).
func (h *Hypergraph) Project() *graph.Graph {
	g := graph.New(h.numNodes)
	h.Each(func(nodes []int, mult int) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				g.AddWeight(nodes[i], nodes[j], mult)
			}
		}
	})
	return g
}

// NodeDegrees returns, for every node, the number of hyperedge occurrences
// containing it (multiplicities counted).
func (h *Hypergraph) NodeDegrees() []int {
	deg := make([]int, h.numNodes)
	h.Each(func(nodes []int, mult int) {
		for _, u := range nodes {
			deg[u] += mult
		}
	})
	return deg
}

// CoveredNodes returns the number of nodes that appear in at least one
// hyperedge.
func (h *Hypergraph) CoveredNodes() int {
	seen := make([]bool, h.numNodes)
	n := 0
	h.Each(func(nodes []int, _ int) {
		for _, u := range nodes {
			if !seen[u] {
				seen[u] = true
				n++
			}
		}
	})
	return n
}

// EdgeSizes returns the sizes of all hyperedge occurrences (one entry per
// occurrence, so a hyperedge with multiplicity m contributes m entries).
func (h *Hypergraph) EdgeSizes() []int {
	out := make([]int, 0, h.total)
	h.Each(func(nodes []int, mult int) {
		for i := 0; i < mult; i++ {
			out = append(out, len(nodes))
		}
	})
	return out
}

// Equal reports whether two hypergraphs have identical hyperedge multisets.
func (h *Hypergraph) Equal(o *Hypergraph) bool {
	if h.NumUnique() != o.NumUnique() || h.total != o.total {
		return false
	}
	for k, e := range h.entries {
		if o.MultiplicityKey(k) != e.mult {
			return false
		}
	}
	return true
}

// AvgMultiplicity returns the average hyperedge multiplicity
// |E*_H| / |E_H|, the "Avg. M_H" column of the paper's Table I.
func (h *Hypergraph) AvgMultiplicity() float64 {
	if len(h.keys) == 0 {
		return 0
	}
	return float64(h.total) / float64(len(h.keys))
}
