package hypergraph

import (
	"math"
	"math/rand"
	"sort"
)

// ScalarProperties are the seven scalar structural properties compared in
// the paper's Table IV.
type ScalarProperties struct {
	NumNodes               float64 // nodes covered by at least one hyperedge
	NumHyperedges          float64 // |E_H| (unique hyperedges)
	AvgNodeDegree          float64 // mean hyperedge-occurrence count per covered node
	AvgEdgeSize            float64 // mean hyperedge size over occurrences
	SimplicialClosureRatio float64 // fraction of projected triangles inside some hyperedge
	Density                float64 // |E*_H| / covered nodes (Hu et al.)
	Overlapness            float64 // Σ|e|·M(e) / covered nodes (Lee et al.)
}

// Scalars computes all scalar structural properties of h.
func (h *Hypergraph) Scalars() ScalarProperties {
	covered := h.CoveredNodes()
	var p ScalarProperties
	p.NumNodes = float64(covered)
	p.NumHyperedges = float64(h.NumUnique())
	if covered > 0 {
		sumDeg := 0
		for _, d := range h.NodeDegrees() {
			sumDeg += d
		}
		p.AvgNodeDegree = float64(sumDeg) / float64(covered)
		p.Density = float64(h.NumTotal()) / float64(covered)
		p.Overlapness = float64(h.SumSizes()) / float64(covered)
	}
	if h.NumTotal() > 0 {
		p.AvgEdgeSize = float64(h.SumSizes()) / float64(h.NumTotal())
	}
	p.SimplicialClosureRatio = h.simplicialClosureRatio()
	return p
}

// maxTripleEdgeSize caps the hyperedge size for triple enumeration; a
// hyperedge of size s contributes C(s,3) triples, which becomes quadratic
// noise beyond this cap while contributing little to the distribution.
const maxTripleEdgeSize = 60

// simplicialClosureRatio is the fraction of triangles of the projected
// graph that are contained in at least one hyperedge. A triangle that is
// merely the union of pairwise overlaps stays "open"; one induced by a
// size-≥3 hyperedge is "closed". This follows the simplicial-closure notion
// of Benson et al. restricted to a single snapshot.
func (h *Hypergraph) simplicialClosureRatio() float64 {
	closed := make(map[string]bool)
	h.Each(func(nodes []int, _ int) {
		if len(nodes) < 3 || len(nodes) > maxTripleEdgeSize {
			return
		}
		forEachTriple(nodes, func(a, b, c int) {
			closed[KeySorted([]int{a, b, c})] = true
		})
	})
	g := h.Project()
	total, hit := 0, 0
	g.Triangles(func(a, b, c int) bool {
		total++
		if closed[KeySorted([]int{a, b, c})] {
			hit++
		}
		return true
	})
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

func forEachTriple(nodes []int, fn func(a, b, c int)) {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			for k := j + 1; k < len(nodes); k++ {
				fn(nodes[i], nodes[j], nodes[k])
			}
		}
	}
}

// NodeDegreeDist returns the hypergraph degrees of covered nodes as a
// sample for distribution comparison.
func (h *Hypergraph) NodeDegreeDist() []float64 {
	var out []float64
	for _, d := range h.NodeDegrees() {
		if d > 0 {
			out = append(out, float64(d))
		}
	}
	return out
}

// NodePairDegreeDist returns the co-degree (number of hyperedge occurrences
// containing both endpoints) of every co-appearing node pair — exactly the
// edge multiplicities ω of the projected graph.
func (h *Hypergraph) NodePairDegreeDist() []float64 {
	g := h.Project()
	edges := g.Edges()
	out := make([]float64, len(edges))
	for i, e := range edges {
		out[i] = float64(e.W)
	}
	return out
}

// NodeTripleDegreeDist returns, for every node triple contained in at least
// one hyperedge, the number of hyperedge occurrences containing it.
func (h *Hypergraph) NodeTripleDegreeDist() []float64 {
	counts := make(map[string]int)
	h.Each(func(nodes []int, mult int) {
		if len(nodes) < 3 || len(nodes) > maxTripleEdgeSize {
			return
		}
		forEachTriple(nodes, func(a, b, c int) {
			counts[KeySorted([]int{a, b, c})] += mult
		})
	})
	// The sample's order must not leak map iteration order: downstream
	// KS comparisons sort anyway, but the raw slice is part of the
	// deterministic-output contract.
	out := make([]float64, 0, len(counts))
	for _, c := range counts {
		out = append(out, float64(c))
	}
	sort.Float64s(out)
	return out
}

// HomogeneityDist returns the homogeneity of every unique hyperedge with
// ≥ 2 nodes: the mean pairwise co-degree of its node pairs (Lee et al.,
// WWW 2021). Higher values mean the hyperedge's members co-appear often
// elsewhere.
func (h *Hypergraph) HomogeneityDist() []float64 {
	g := h.Project()
	var out []float64
	h.Each(func(nodes []int, _ int) {
		if len(nodes) < 2 {
			return
		}
		sum, cnt := 0, 0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				sum += g.Weight(nodes[i], nodes[j])
				cnt++
			}
		}
		out = append(out, float64(sum)/float64(cnt))
	})
	return out
}

// SingularValues returns the k largest singular values of the hypergraph's
// node-by-occurrence incidence matrix B (a hyperedge with multiplicity m
// contributes m identical 0/1 columns). They are computed as the square
// roots of the top eigenvalues of S = B·Bᵀ = Σ_e M(e)·1_e·1_eᵀ via power
// iteration with deflation on the implicit operator, so no dense |V|×|V|
// matrix is ever formed.
func (h *Hypergraph) SingularValues(k int) []float64 {
	n := h.numNodes
	if n == 0 || h.NumUnique() == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// matvec computes y = S x in O(Σ|e|) time.
	matvec := func(x, y []float64) {
		for i := range y {
			y[i] = 0
		}
		h.Each(func(nodes []int, mult int) {
			s := 0.0
			for _, u := range nodes {
				s += x[u]
			}
			s *= float64(mult)
			for _, u := range nodes {
				y[u] += s
			}
		})
	}
	rng := rand.New(rand.NewSource(7))
	var found [][]float64
	var vals []float64
	x := make([]float64, n)
	y := make([]float64, n)
	const iters = 300
	for j := 0; j < k; j++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		orthonormalize(x, found)
		if norm(x) == 0 {
			break
		}
		scale(x, 1/norm(x))
		lambda := 0.0
		for it := 0; it < iters; it++ {
			matvec(x, y)
			orthonormalize(y, found)
			ny := norm(y)
			if ny == 0 {
				lambda = 0
				break
			}
			lambda = ny
			scale(y, 1/ny)
			copy(x, y)
		}
		if lambda <= 1e-12 {
			break
		}
		v := make([]float64, n)
		copy(v, x)
		found = append(found, v)
		vals = append(vals, math.Sqrt(lambda))
	}
	return vals
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func orthonormalize(x []float64, basis [][]float64) {
	for _, b := range basis {
		d := 0.0
		for i := range x {
			d += x[i] * b[i]
		}
		for i := range x {
			x[i] -= d * b[i]
		}
	}
}
