package hypergraph

import (
	"reflect"
	"testing"
)

func subsetFixture() *Hypergraph {
	h := New(10)
	h.AddMult([]int{0, 1}, 2)
	h.Add([]int{1, 2, 3})
	h.Add([]int{4, 5, 6, 7})
	return h
}

func TestFilterEdges(t *testing.T) {
	h := subsetFixture()
	big := h.FilterEdges(func(nodes []int, _ int) bool { return len(nodes) >= 3 })
	if big.NumUnique() != 2 {
		t.Fatalf("filtered unique = %d", big.NumUnique())
	}
	if big.Contains([]int{0, 1}) {
		t.Fatal("size-2 edge survived the filter")
	}
	// Multiplicities preserved.
	dup := h.FilterEdges(func(_ []int, mult int) bool { return mult > 1 })
	if dup.Multiplicity([]int{0, 1}) != 2 {
		t.Fatal("multiplicity lost")
	}
}

func TestEgo(t *testing.T) {
	h := subsetFixture()
	ego := h.Ego(1)
	if ego.NumUnique() != 2 {
		t.Fatalf("ego unique = %d, want 2", ego.NumUnique())
	}
	if !ego.Contains([]int{0, 1}) || !ego.Contains([]int{1, 2, 3}) {
		t.Fatalf("ego edges wrong: %v", ego.UniqueEdges())
	}
	if ego.Contains([]int{4, 5, 6, 7}) {
		t.Fatal("non-incident edge in ego")
	}
}

func TestInducedBySize(t *testing.T) {
	h := subsetFixture()
	mid := h.InducedBySize(3, 3)
	if mid.NumUnique() != 1 || !mid.Contains([]int{1, 2, 3}) {
		t.Fatalf("InducedBySize(3,3) = %v", mid.UniqueEdges())
	}
	all := h.InducedBySize(2, -1)
	if all.NumUnique() != 3 {
		t.Fatal("unbounded max should keep everything")
	}
}

func TestCompact(t *testing.T) {
	h := New(100)
	h.Add([]int{10, 50})
	h.AddMult([]int{50, 99}, 3)
	c, back := h.Compact()
	if c.NumNodes() != 3 {
		t.Fatalf("compact nodes = %d, want 3", c.NumNodes())
	}
	if !reflect.DeepEqual(back, []int{10, 50, 99}) {
		t.Fatalf("back map = %v", back)
	}
	if !c.Contains([]int{0, 1}) || c.Multiplicity([]int{1, 2}) != 3 {
		t.Fatalf("compact edges wrong: %v", c.EdgesWithMult())
	}
	// Projection weights must be preserved under relabeling.
	if c.Project().TotalWeight() != h.Project().TotalWeight() {
		t.Fatal("compact changed projection weight")
	}
}
