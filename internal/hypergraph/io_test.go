package hypergraph

import (
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	h := New(6)
	h.AddMult([]int{0, 1}, 3)
	h.Add([]int{2, 3, 4})
	h.Add([]int{0, 5})
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(got) {
		t.Fatalf("round trip mismatch:\n%s", sb.String())
	}
}

func TestReadFormatVariants(t *testing.T) {
	in := `
% a comment
1 2 3
4 5 # 7

2 1 3
`
	h, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.Multiplicity([]int{1, 2, 3}) != 2 {
		t.Fatalf("mult({1,2,3}) = %d, want 2 (order-insensitive)", h.Multiplicity([]int{1, 2, 3}))
	}
	if h.Multiplicity([]int{4, 5}) != 7 {
		t.Fatalf("mult({4,5}) = %d, want 7", h.Multiplicity([]int{4, 5}))
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"5", "a b", "1 2 # x"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}
