package hypergraph

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := [][]int{{0}, {1, 2}, {5, 3, 9}, {0, 100, 10000}, {7, 7, 7}}
	for _, c := range cases {
		k := Key(c)
		got := DecodeKey(k)
		want := dedupSorted(c)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Key round trip %v: got %v want %v", c, got, want)
		}
	}
}

func dedupSorted(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	out := c[:0]
	for i, v := range c {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return append([]int(nil), out...)
}

func TestKeySetSemantics(t *testing.T) {
	if Key([]int{3, 1, 2}) != Key([]int{2, 3, 1}) {
		t.Fatal("Key should be order independent")
	}
	if Key([]int{1, 1, 2}) != Key([]int{1, 2}) {
		t.Fatal("Key should ignore duplicates")
	}
	if Key([]int{1, 2}) == Key([]int{1, 3}) {
		t.Fatal("distinct sets must have distinct keys")
	}
}

func TestKeySortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted input")
		}
	}()
	KeySorted([]int{2, 1})
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(a, b []uint8) bool {
		ai := toInts(a)
		bi := toInts(b)
		if len(ai) == 0 || len(bi) == 0 {
			return true
		}
		ka, kb := Key(ai), Key(bi)
		sameSet := reflect.DeepEqual(dedupSorted(ai), dedupSorted(bi))
		return (ka == kb) == sameSet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func toInts(a []uint8) []int {
	out := make([]int, len(a))
	for i, v := range a {
		out[i] = int(v)
	}
	return out
}

func TestAddAndMultiplicity(t *testing.T) {
	h := New(5)
	h.Add([]int{0, 1})
	h.Add([]int{1, 0}) // same set
	h.AddMult([]int{1, 2, 3}, 4)
	if h.NumUnique() != 2 {
		t.Fatalf("NumUnique = %d, want 2", h.NumUnique())
	}
	if h.NumTotal() != 6 {
		t.Fatalf("NumTotal = %d, want 6", h.NumTotal())
	}
	if h.Multiplicity([]int{0, 1}) != 2 {
		t.Fatalf("mult({0,1}) = %d, want 2", h.Multiplicity([]int{0, 1}))
	}
	if h.Multiplicity([]int{3, 2, 1}) != 4 {
		t.Fatalf("mult({1,2,3}) = %d, want 4", h.Multiplicity([]int{1, 2, 3}))
	}
	if h.Multiplicity([]int{0, 2}) != 0 {
		t.Fatal("absent edge should have multiplicity 0")
	}
	if h.SumSizes() != 2*2+3*4 {
		t.Fatalf("SumSizes = %d, want 16", h.SumSizes())
	}
	if got := h.AvgMultiplicity(); got != 3 {
		t.Fatalf("AvgMultiplicity = %v, want 3", got)
	}
}

func TestAddPanics(t *testing.T) {
	h := New(3)
	mustPanic(t, func() { h.Add([]int{1}) })
	mustPanic(t, func() { h.Add([]int{2, 2}) })
	mustPanic(t, func() { h.AddMult([]int{0, 1}, 0) })
	mustPanic(t, func() { h.Add([]int{-1, 2}) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestNodeUniverseGrows(t *testing.T) {
	h := New(2)
	h.Add([]int{1, 9})
	if h.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", h.NumNodes())
	}
}

func TestReduced(t *testing.T) {
	h := New(4)
	h.AddMult([]int{0, 1}, 5)
	h.AddMult([]int{1, 2, 3}, 2)
	r := h.Reduced()
	if r.NumUnique() != 2 || r.NumTotal() != 2 {
		t.Fatalf("Reduced: unique=%d total=%d", r.NumUnique(), r.NumTotal())
	}
	if h.NumTotal() != 7 {
		t.Fatal("Reduced mutated the original")
	}
}

func TestProject(t *testing.T) {
	h := New(4)
	h.AddMult([]int{0, 1, 2}, 2) // each pair gets ω += 2
	h.Add([]int{1, 2})           // ω(1,2) += 1
	g := h.Project()
	if g.Weight(0, 1) != 2 || g.Weight(0, 2) != 2 {
		t.Fatalf("ω(0,1)=%d ω(0,2)=%d, want 2", g.Weight(0, 1), g.Weight(0, 2))
	}
	if g.Weight(1, 2) != 3 {
		t.Fatalf("ω(1,2) = %d, want 3", g.Weight(1, 2))
	}
	if g.NumEdges() != 3 {
		t.Fatalf("projection has %d edges, want 3", g.NumEdges())
	}
}

func TestCloneAndEqual(t *testing.T) {
	h := New(4)
	h.AddMult([]int{0, 1}, 2)
	h.Add([]int{0, 2, 3})
	c := h.Clone()
	if !h.Equal(c) || !c.Equal(h) {
		t.Fatal("clone not equal")
	}
	c.Add([]int{0, 1})
	if h.Equal(c) {
		t.Fatal("multiplicity change not detected")
	}
	d := h.Clone()
	d.Add([]int{1, 3})
	if h.Equal(d) {
		t.Fatal("extra edge not detected")
	}
}

func TestNodeDegreesAndCoveredNodes(t *testing.T) {
	h := New(5)
	h.AddMult([]int{0, 1}, 3)
	h.Add([]int{1, 2, 3})
	deg := h.NodeDegrees()
	want := []int{3, 4, 1, 1, 0}
	if !reflect.DeepEqual(deg, want) {
		t.Fatalf("NodeDegrees = %v, want %v", deg, want)
	}
	if h.CoveredNodes() != 4 {
		t.Fatalf("CoveredNodes = %d, want 4", h.CoveredNodes())
	}
}

func TestEdgeSizes(t *testing.T) {
	h := New(4)
	h.AddMult([]int{0, 1}, 2)
	h.Add([]int{1, 2, 3})
	sizes := h.EdgeSizes()
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{2, 2, 3}) {
		t.Fatalf("EdgeSizes = %v", sizes)
	}
}

func TestUniqueEdgesInsertionOrder(t *testing.T) {
	h := New(6)
	h.Add([]int{4, 5})
	h.Add([]int{0, 1})
	h.Add([]int{4, 5})
	edges := h.UniqueEdges()
	if !reflect.DeepEqual(edges, [][]int{{4, 5}, {0, 1}}) {
		t.Fatalf("UniqueEdges = %v", edges)
	}
}

// TestQuickProjectionWeights: for any random hypergraph, ω(u,v) equals the
// total multiplicity of hyperedges containing both u and v.
func TestQuickProjectionWeights(t *testing.T) {
	f := func(edges [][]uint8) bool {
		h := New(12)
		type em struct {
			nodes []int
		}
		var kept [][]int
		for _, e := range edges {
			nodes := dedupSorted(toInts(e))
			for i := range nodes {
				nodes[i] %= 12
			}
			nodes = dedupSorted(nodes)
			if len(nodes) < 2 {
				continue
			}
			h.Add(nodes)
			kept = append(kept, nodes)
		}
		if len(kept) == 0 {
			return true
		}
		g := h.Project()
		for u := 0; u < 12; u++ {
			for v := u + 1; v < 12; v++ {
				want := 0
				for _, e := range kept {
					if containsInt(e, u) && containsInt(e, v) {
						want++
					}
				}
				if g.Weight(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestScalarProperties(t *testing.T) {
	h := New(4)
	h.Add([]int{0, 1, 2}) // a closed triangle
	h.Add([]int{2, 3})
	p := h.Scalars()
	if p.NumNodes != 4 || p.NumHyperedges != 2 {
		t.Fatalf("nodes=%v hyperedges=%v", p.NumNodes, p.NumHyperedges)
	}
	if p.AvgEdgeSize != 2.5 {
		t.Fatalf("AvgEdgeSize = %v, want 2.5", p.AvgEdgeSize)
	}
	// degrees: 1,1,2,1 → avg 5/4
	if p.AvgNodeDegree != 1.25 {
		t.Fatalf("AvgNodeDegree = %v, want 1.25", p.AvgNodeDegree)
	}
	// The single projected triangle {0,1,2} is covered by the hyperedge.
	if p.SimplicialClosureRatio != 1 {
		t.Fatalf("SimplicialClosureRatio = %v, want 1", p.SimplicialClosureRatio)
	}
	if p.Density != 0.5 {
		t.Fatalf("Density = %v, want 0.5", p.Density)
	}
	if p.Overlapness != 1.25 {
		t.Fatalf("Overlapness = %v, want 1.25", p.Overlapness)
	}
}

func TestSimplicialClosureOpenTriangle(t *testing.T) {
	// Three pairwise hyperedges forming an open triangle.
	h := New(3)
	h.Add([]int{0, 1})
	h.Add([]int{1, 2})
	h.Add([]int{0, 2})
	if r := h.simplicialClosureRatio(); r != 0 {
		t.Fatalf("open triangle closure = %v, want 0", r)
	}
}

func TestDistributions(t *testing.T) {
	h := New(4)
	h.AddMult([]int{0, 1, 2}, 2)
	h.Add([]int{0, 3})
	if got := h.NodeDegreeDist(); len(got) != 4 {
		t.Fatalf("NodeDegreeDist size %d, want 4", len(got))
	}
	pd := h.NodePairDegreeDist()
	if len(pd) != 4 { // pairs: 01,02,12 (ω=2 each) and 03 (ω=1)
		t.Fatalf("NodePairDegreeDist size %d, want 4", len(pd))
	}
	td := h.NodeTripleDegreeDist()
	if len(td) != 1 || td[0] != 2 {
		t.Fatalf("NodeTripleDegreeDist = %v, want [2]", td)
	}
	hd := h.HomogeneityDist()
	if len(hd) != 2 {
		t.Fatalf("HomogeneityDist size %d, want 2", len(hd))
	}
}

func TestSingularValues(t *testing.T) {
	// A single hyperedge {0,1}: S = 1_e 1_eᵀ has eigenvalues {2, 0}, so the
	// top singular value is √2.
	h := New(2)
	h.Add([]int{0, 1})
	sv := h.SingularValues(2)
	if len(sv) < 1 {
		t.Fatal("no singular values returned")
	}
	if d := sv[0] - 1.4142135; d > 1e-3 || d < -1e-3 {
		t.Fatalf("top singular value = %v, want √2", sv[0])
	}
	// Values must be non-increasing.
	for i := 1; i < len(sv); i++ {
		if sv[i] > sv[i-1]+1e-9 {
			t.Fatalf("singular values not sorted: %v", sv)
		}
	}
}
