package hypergraph

import (
	"encoding/binary"
	"sort"
)

// Key returns a canonical, compact string key for a node set: the nodes are
// sorted ascending and delta-encoded as unsigned varints. Two node sets map
// to the same key iff they are equal as sets. The input slice is not
// modified.
//
// Keys are the workhorse of hypergraph equality testing (Jaccard and
// multi-Jaccard similarity compare key sets), so the encoding is kept as
// small as possible: on typical hyperedges (< 128 node-id deltas) a key is
// one byte per node.
func Key(nodes []int) string {
	s := make([]int, len(nodes))
	copy(s, nodes)
	sort.Ints(s)
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, len(s)*2)
	prev, first := 0, true
	for _, v := range s {
		if !first && v == prev {
			continue // set semantics: ignore duplicates
		}
		d := v - prev
		if first {
			d = v
		}
		if d < 0 {
			panic("hypergraph: negative node in edge")
		}
		n := binary.PutUvarint(buf[:], uint64(d))
		out = append(out, buf[:n]...)
		prev, first = v, false
	}
	return string(out)
}

// KeySorted is like Key but assumes nodes is already sorted ascending with
// no duplicates, avoiding the copy and sort.
func KeySorted(nodes []int) string {
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, len(nodes)*2)
	prev := 0
	for i, v := range nodes {
		d := v - prev
		if i == 0 {
			d = v
		}
		if d < 0 || (i > 0 && d == 0) {
			panic("hypergraph: KeySorted input not strictly sorted")
		}
		n := binary.PutUvarint(buf[:], uint64(d))
		out = append(out, buf[:n]...)
		prev = v
	}
	return string(out)
}

// DecodeKey inverts Key, returning the sorted node set.
func DecodeKey(key string) []int {
	b := []byte(key)
	var out []int
	prev := 0
	for len(b) > 0 {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			panic("hypergraph: malformed key")
		}
		b = b[n:]
		if len(out) == 0 {
			prev = int(d)
		} else {
			prev += int(d)
		}
		out = append(out, prev)
	}
	return out
}
