package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Write serializes the hypergraph in a line-oriented text format: one
// unique hyperedge per line as space-separated node ids, followed by
// "# <multiplicity>" when the multiplicity exceeds 1. Lines are sorted by
// node set for reproducible output.
func (h *Hypergraph) Write(w io.Writer) error {
	type line struct {
		nodes []int
		mult  int
	}
	lines := make([]line, 0, h.NumUnique())
	h.Each(func(nodes []int, mult int) {
		lines = append(lines, line{nodes: nodes, mult: mult})
	})
	sort.Slice(lines, func(i, j int) bool {
		a, b := lines[i].nodes, lines[j].nodes
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		for i, u := range l.nodes {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(u)); err != nil {
				return err
			}
		}
		if l.mult > 1 {
			if _, err := fmt.Fprintf(bw, " # %d", l.mult); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write. Blank lines and lines starting
// with "%" are skipped.
func Read(r io.Reader) (*Hypergraph, error) {
	h := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		mult := 1
		if i := strings.Index(text, "#"); i >= 0 {
			m, err := strconv.Atoi(strings.TrimSpace(text[i+1:]))
			if err != nil {
				return nil, fmt.Errorf("hypergraph: line %d: bad multiplicity: %v", lineNo, err)
			}
			mult = m
			text = strings.TrimSpace(text[:i])
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("hypergraph: line %d: hyperedge needs at least 2 nodes", lineNo)
		}
		nodes := make([]int, len(fields))
		for i, f := range fields {
			u, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("hypergraph: line %d: bad node id %q", lineNo, f)
			}
			nodes[i] = u
		}
		h.AddMult(nodes, mult)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}
