package hypergraph

// FilterEdges returns a new hypergraph containing the hyperedges for which
// keep returns true, with multiplicities preserved. The node universe is
// unchanged.
func (h *Hypergraph) FilterEdges(keep func(nodes []int, mult int) bool) *Hypergraph {
	out := New(h.numNodes)
	h.Each(func(nodes []int, mult int) {
		if keep(nodes, mult) {
			out.AddMult(nodes, mult)
		}
	})
	return out
}

// Ego returns the sub-hypergraph of hyperedges containing the given node —
// the view used by the paper's Fig. 2 case study (an author and the papers
// they co-wrote).
func (h *Hypergraph) Ego(node int) *Hypergraph {
	return h.FilterEdges(func(nodes []int, _ int) bool {
		for _, u := range nodes {
			if u == node {
				return true
			}
		}
		return false
	})
}

// InducedBySize returns the sub-hypergraph of hyperedges whose size lies
// in [minSize, maxSize] (maxSize < 0 means unbounded).
func (h *Hypergraph) InducedBySize(minSize, maxSize int) *Hypergraph {
	return h.FilterEdges(func(nodes []int, _ int) bool {
		if len(nodes) < minSize {
			return false
		}
		return maxSize < 0 || len(nodes) <= maxSize
	})
}

// Compact relabels the covered nodes to the dense range 0..k−1 (preserving
// order) and returns the relabeled hypergraph together with the mapping
// from new ids back to original ids. Useful before dense linear-algebra
// passes on sub-hypergraphs.
func (h *Hypergraph) Compact() (*Hypergraph, []int) {
	used := make([]bool, h.numNodes)
	h.Each(func(nodes []int, _ int) {
		for _, u := range nodes {
			used[u] = true
		}
	})
	newID := make([]int, h.numNodes)
	var back []int
	for u, ok := range used {
		if ok {
			newID[u] = len(back)
			back = append(back, u)
		}
	}
	out := New(len(back))
	h.Each(func(nodes []int, mult int) {
		mapped := make([]int, len(nodes))
		for i, u := range nodes {
			mapped[i] = newID[u]
		}
		out.AddMult(mapped, mult)
	})
	return out, back
}
