// Package admission implements mariohd's multi-tenant serving controls:
// per-tenant token-bucket rate limits and quotas (concurrent jobs, open
// sessions, queued request bytes), a global byte-metered memory budget,
// and a content-addressed single-flight result cache.
//
// The daemon historically trusted its callers — any client could flood
// the job queue, open unbounded sessions, and recompute identical
// deterministic reconstructions from scratch. This package is the
// enforcement point: over-quota work is refused up front with an
// advisory retry delay (the server maps rejections to 429 +
// Retry-After), memory consumers are metered in bytes so eviction can be
// cost-based instead of count-based, and — because reconstruction is
// deterministic — identical (graph fingerprint, model hash, options)
// requests collapse into one computation whose bytes every waiter
// shares.
package admission

import (
	"fmt"
	"math"
	"regexp"
	"sync"
	"time"
)

// DefaultTenant is the identity attributed to requests that carry no
// tenant header.
const DefaultTenant = "default"

// tenantNameRe bounds tenant identifiers to metric-label-safe tokens.
var tenantNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidTenant reports whether name is an acceptable tenant identifier
// (empty means DefaultTenant and is validated by the caller's
// substitution, not here).
func ValidTenant(name string) bool { return tenantNameRe.MatchString(name) }

// Rejection reasons carried by Error.Reason.
const (
	ReasonRate        = "rate"
	ReasonJobs        = "jobs"
	ReasonSessions    = "sessions"
	ReasonQueuedBytes = "queued_bytes"
)

// Error is an admission rejection: the request was refused before any
// work was queued or any state mutated, so a retry after RetryAfter is
// always safe. The server maps it to 429 Too Many Requests.
type Error struct {
	Tenant     string
	Reason     string // one of the Reason* constants
	Limit      int64
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("admission: tenant %q over %s limit %d (retry after %s)",
		e.Tenant, e.Reason, e.Limit, e.RetryAfter.Round(time.Millisecond))
}

// Limits are the per-tenant admission knobs. Zero values disable the
// corresponding control, so the zero Limits admits everything — existing
// single-tenant deployments keep working unconfigured.
type Limits struct {
	// Rate is the steady-state request admission rate (requests/second)
	// per tenant; 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity; 0 derives max(1, ceil(Rate)).
	Burst int
	// MaxJobs bounds a tenant's concurrently queued+running jobs
	// (including synchronous inline reconstructions); 0 = unlimited.
	MaxJobs int
	// MaxSessions bounds a tenant's open sessions (parked durable
	// sessions still count — they belong to the tenant until deleted);
	// 0 = unlimited.
	MaxSessions int
	// MaxQueuedBytes bounds the total request-body bytes a tenant may
	// have queued or running at once; 0 = unlimited.
	MaxQueuedBytes int64
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	tokens      float64   // guarded by Controller.mu
	last        time.Time // guarded by Controller.mu; last refill stamp
	jobs        int       // guarded by Controller.mu
	sessions    int       // guarded by Controller.mu
	queuedBytes int64     // guarded by Controller.mu
}

// idleLocked reports whether the state carries no live accounting (safe
// to forget once its bucket is full again); callers hold Controller.mu.
func (t *tenantState) idleLocked(burst float64) bool {
	return t.jobs == 0 && t.sessions == 0 && t.queuedBytes == 0 && t.tokens >= burst
}

// Controller enforces per-tenant Limits. The zero-value Limits admit
// everything. A Controller is safe for concurrent use.
type Controller struct {
	limits Limits
	burst  float64
	now    func() time.Time // test hook; time.Now by default

	mu      sync.Mutex
	tenants map[string]*tenantState // guarded by mu
}

// NewController builds a Controller enforcing limits.
func NewController(limits Limits) *Controller {
	burst := float64(limits.Burst)
	if burst <= 0 {
		burst = math.Max(1, math.Ceil(limits.Rate))
	}
	return &Controller{
		limits:  limits,
		burst:   burst,
		now:     time.Now,
		tenants: map[string]*tenantState{},
	}
}

// state returns (creating if needed) the accounting for tenant; callers
// hold c.mu.
func (c *Controller) state(tenant string) *tenantState {
	t, ok := c.tenants[tenant]
	if !ok {
		t = &tenantState{tokens: c.burst, last: c.now()}
		c.tenants[tenant] = t
	}
	return t
}

// refill advances t's token bucket to now; callers hold c.mu.
func (c *Controller) refill(t *tenantState, now time.Time) {
	if c.limits.Rate <= 0 {
		return
	}
	if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens = math.Min(c.burst, t.tokens+dt*c.limits.Rate)
	}
	t.last = now
}

// forget drops idle accounting so the tenant map stays bounded by the
// set of tenants with live work or drained buckets; callers hold c.mu.
func (c *Controller) forget(tenant string, t *tenantState) {
	if t.idleLocked(c.burst) {
		delete(c.tenants, tenant)
	}
}

// AllowRequest spends one rate token for tenant, rejecting with an
// *Error (reason "rate") carrying the time until the next token when the
// bucket is empty.
func (c *Controller) AllowRequest(tenant string) error {
	if c.limits.Rate <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.state(tenant)
	c.refill(t, c.now())
	if t.tokens >= 1 {
		t.tokens--
		return nil
	}
	wait := time.Duration((1 - t.tokens) / c.limits.Rate * float64(time.Second))
	return &Error{Tenant: tenant, Reason: ReasonRate, Limit: int64(c.limits.Rate), RetryAfter: wait}
}

// retryQuota is the advisory delay attached to quota (not rate)
// rejections: the bound frees when outstanding work finishes, whose
// duration the controller cannot know.
const retryQuota = time.Second

// AcquireJob claims one of tenant's concurrent-job slots and charges
// bytes against its queued-bytes bound. On success the returned release
// must be called exactly once when the job reaches a terminal state; on
// rejection release is nil.
func (c *Controller) AcquireJob(tenant string, bytes int64) (release func(), err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.state(tenant)
	if c.limits.MaxJobs > 0 && t.jobs >= c.limits.MaxJobs {
		err := &Error{Tenant: tenant, Reason: ReasonJobs, Limit: int64(c.limits.MaxJobs), RetryAfter: retryQuota}
		c.forget(tenant, t)
		return nil, err
	}
	if c.limits.MaxQueuedBytes > 0 && t.queuedBytes+bytes > c.limits.MaxQueuedBytes {
		err := &Error{Tenant: tenant, Reason: ReasonQueuedBytes, Limit: c.limits.MaxQueuedBytes, RetryAfter: retryQuota}
		c.forget(tenant, t)
		return nil, err
	}
	t.jobs++
	t.queuedBytes += bytes
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			t.jobs--
			t.queuedBytes -= bytes
			c.forget(tenant, t)
		})
	}, nil
}

// AcquireSession claims one of tenant's session slots; ReleaseSession
// frees it when the session is deleted (not when it is parked — a parked
// durable session still belongs to its tenant).
func (c *Controller) AcquireSession(tenant string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.state(tenant)
	if c.limits.MaxSessions > 0 && t.sessions >= c.limits.MaxSessions {
		err := &Error{Tenant: tenant, Reason: ReasonSessions, Limit: int64(c.limits.MaxSessions), RetryAfter: retryQuota}
		c.forget(tenant, t)
		return err
	}
	t.sessions++
	return nil
}

// AdoptSession counts a session recovered from disk against its tenant
// without enforcing the bound (recovered state must never be refused at
// startup — the quota re-applies to new opens).
func (c *Controller) AdoptSession(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state(tenant).sessions++
}

// ReleaseSession frees one of tenant's session slots.
func (c *Controller) ReleaseSession(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.state(tenant)
	if t.sessions > 0 {
		t.sessions--
	}
	c.forget(tenant, t)
}

// ActiveTenants counts tenants with live accounting (for the
// marioh_tenants_active gauge).
func (c *Controller) ActiveTenants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tenants)
}
