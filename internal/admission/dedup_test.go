package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheSingleflightCollapse(t *testing.T) {
	c := NewCache(context.Background(), 1<<20, nil)
	var computes atomic.Int64
	gate := make(chan struct{})

	const callers = 16
	results := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
				computes.Add(1)
				<-gate
				return "payload", 7, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = v.(string)
		}(i)
	}
	// Let callers pile onto the flight before releasing the computation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		var refs int
		if f := c.flights["k"]; f != nil {
			refs = f.refs
		}
		c.mu.Unlock()
		if refs == callers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight refs never reached %d", callers)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computations = %d, want 1 for %d concurrent callers", n, callers)
	}
	for i, r := range results {
		if r != "payload" {
			t.Fatalf("caller %d result = %q", i, r)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 || st.Waiters != callers-1 {
		t.Fatalf("stats = %+v, want misses=1 hits=%d waiters=%d", st, callers-1, callers-1)
	}
	// Repeat request is a pure cache hit, no computation.
	if v, shared, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		t.Error("cache hit recomputed")
		return nil, 0, nil
	}); err != nil || !shared || v.(string) != "payload" {
		t.Fatalf("cached Do = (%v, %v, %v)", v, shared, err)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(context.Background(), 1<<20, nil)
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	var computes int
	if v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		computes++
		return "ok", 2, nil
	}); err != nil || v.(string) != "ok" {
		t.Fatalf("retry after error = (%v, %v)", v, err)
	}
	if computes != 1 {
		t.Fatal("failed result was cached")
	}
}

func TestCacheWaiterOutlivesLeaderCancel(t *testing.T) {
	c := NewCache(context.Background(), 1<<20, nil)
	gate := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", func(fctx context.Context) (any, int64, error) {
			<-gate
			if fctx.Err() != nil {
				return nil, 0, fctx.Err()
			}
			return "survived", 8, nil
		})
		leaderErr <- err
	}()

	// Wait for the flight to exist, then join as a waiter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		_, ok := c.flights["k"]
		c.mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	waiterVal := make(chan any, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
			return nil, 0, errors.New("waiter must not compute")
		})
		if err != nil {
			waiterVal <- err
			return
		}
		waiterVal <- v
	}()
	// Give the waiter time to register its reference, then cancel the
	// leader: the flight must keep running for the waiter.
	for {
		c.mu.Lock()
		refs := 0
		if f := c.flights["k"]; f != nil {
			refs = f.refs
		}
		c.mu.Unlock()
		if refs == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	close(gate)
	switch v := (<-waiterVal).(type) {
	case string:
		if v != "survived" {
			t.Fatalf("waiter got %q", v)
		}
	default:
		t.Fatalf("waiter got %v, want result despite leader cancel", v)
	}
}

func TestCacheAllCallersAbandonCancelsFlight(t *testing.T) {
	c := NewCache(context.Background(), 1<<20, nil)
	ctx, cancel := context.WithCancel(context.Background())
	flightCancelled := make(chan struct{})
	started := make(chan struct{})

	errs := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func(fctx context.Context) (any, int64, error) {
			close(started)
			<-fctx.Done()
			close(flightCancelled)
			return nil, 0, fctx.Err()
		})
		errs <- err
	}()
	<-started
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v", err)
	}
	select {
	case <-flightCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context not cancelled after every caller abandoned")
	}
}

func TestCacheLRUEvictionAndBudget(t *testing.T) {
	b := NewBudget(0)
	c := NewCache(context.Background(), 100, b)
	put := func(key string, size int64) {
		t.Helper()
		if _, _, err := c.Do(context.Background(), key, func(context.Context) (any, int64, error) {
			return key, size, nil
		}); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	put("a", 40)
	put("b", 40)
	if got := b.Charge(BudgetPoolDedup, 0); got != 80 {
		t.Fatalf("budget dedup pool = %d, want 80", got)
	}
	// Touch a so b becomes the LRU victim.
	put("a", 40)
	put("c", 40) // 120 > 100: evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("after eviction stats = %+v", st)
	}
	var recomputed bool
	put("a", 40) // still cached
	if _, _, err := c.Do(context.Background(), "b", func(context.Context) (any, int64, error) {
		recomputed = true
		return "b", 40, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("evicted key b still served from cache")
	}

	c.ShrinkTo(0)
	if got := c.Bytes(); got != 0 {
		t.Fatalf("after ShrinkTo(0) Bytes = %d", got)
	}
	if got := b.Charge(BudgetPoolDedup, 0); got != 0 {
		t.Fatalf("budget not released on shrink: %d", got)
	}
}

func TestCacheOversizedAndZeroSizeNotRetained(t *testing.T) {
	c := NewCache(context.Background(), 10, nil)
	for i, tc := range []struct {
		key  string
		size int64
	}{{"big", 11}, {"zero", 0}} {
		var computes int
		do := func() {
			if _, _, err := c.Do(context.Background(), tc.key, func(context.Context) (any, int64, error) {
				computes++
				return "v", tc.size, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		do()
		do()
		if computes != 2 {
			t.Fatalf("case %d (%s): computes = %d, want 2 (not retained)", i, tc.key, computes)
		}
	}
}

func TestCacheDistinctKeysComputeIndependently(t *testing.T) {
	c := NewCache(context.Background(), 1<<20, nil)
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, _, err := c.Do(context.Background(), key, func(context.Context) (any, int64, error) {
				computes.Add(1)
				return key, 4, nil
			})
			if err != nil || v.(string) != key {
				t.Errorf("key %s: (%v, %v)", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 8 {
		t.Fatalf("computes = %d, want 8", n)
	}
}
