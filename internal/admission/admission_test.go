package admission

import (
	"errors"
	"testing"
	"time"
)

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"default", "a", "team-1", "A.B_c-9"} {
		if !ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false, want true", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "-lead", ".lead", "has space", "semi;colon", "a/b", string(long)} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true, want false", bad)
		}
	}
}

func TestRateLimitRefill(t *testing.T) {
	c := NewController(Limits{Rate: 2, Burst: 2})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if err := c.AllowRequest("t"); err != nil {
			t.Fatalf("request %d within burst rejected: %v", i, err)
		}
	}
	err := c.AllowRequest("t")
	var aerr *Error
	if !errors.As(err, &aerr) {
		t.Fatalf("over-rate request: got %v, want *admission.Error", err)
	}
	if aerr.Reason != ReasonRate || aerr.Tenant != "t" {
		t.Fatalf("rejection = %+v, want reason=rate tenant=t", aerr)
	}
	// Empty bucket at 2 rps: next token in 500ms.
	if aerr.RetryAfter <= 0 || aerr.RetryAfter > 500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want in (0, 500ms]", aerr.RetryAfter)
	}

	// Advance past one token's worth of refill; admission resumes.
	now = now.Add(600 * time.Millisecond)
	if err := c.AllowRequest("t"); err != nil {
		t.Fatalf("post-refill request rejected: %v", err)
	}
}

func TestRateLimitPerTenantIsolation(t *testing.T) {
	c := NewController(Limits{Rate: 1, Burst: 1})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	if err := c.AllowRequest("a"); err != nil {
		t.Fatalf("tenant a first request: %v", err)
	}
	if err := c.AllowRequest("a"); err == nil {
		t.Fatal("tenant a second request admitted, want rate rejection")
	}
	if err := c.AllowRequest("b"); err != nil {
		t.Fatalf("tenant b must have its own bucket: %v", err)
	}
}

func TestJobQuota(t *testing.T) {
	c := NewController(Limits{MaxJobs: 2})
	rel1, err := c.AcquireJob("t", 10)
	if err != nil {
		t.Fatalf("job 1: %v", err)
	}
	rel2, err := c.AcquireJob("t", 10)
	if err != nil {
		t.Fatalf("job 2: %v", err)
	}
	if _, err := c.AcquireJob("t", 10); err == nil {
		t.Fatal("job 3 admitted over MaxJobs=2")
	} else {
		var aerr *Error
		if !errors.As(err, &aerr) || aerr.Reason != ReasonJobs {
			t.Fatalf("rejection = %v, want reason=jobs", err)
		}
		if aerr.RetryAfter <= 0 {
			t.Fatalf("quota rejection must carry a retry delay, got %v", aerr.RetryAfter)
		}
	}
	rel1()
	rel1() // release is idempotent
	if rel3, err := c.AcquireJob("t", 10); err != nil {
		t.Fatalf("slot freed by release still rejected: %v", err)
	} else {
		rel3()
	}
	rel2()
	if n := c.ActiveTenants(); n != 0 {
		t.Fatalf("idle tenant not forgotten: ActiveTenants = %d", n)
	}
}

func TestQueuedBytesQuota(t *testing.T) {
	c := NewController(Limits{MaxQueuedBytes: 100})
	rel, err := c.AcquireJob("t", 80)
	if err != nil {
		t.Fatalf("first 80 bytes: %v", err)
	}
	if _, err := c.AcquireJob("t", 30); err == nil {
		t.Fatal("80+30 admitted over MaxQueuedBytes=100")
	} else {
		var aerr *Error
		if !errors.As(err, &aerr) || aerr.Reason != ReasonQueuedBytes {
			t.Fatalf("rejection = %v, want reason=queued_bytes", err)
		}
	}
	if rel2, err := c.AcquireJob("t", 20); err != nil {
		t.Fatalf("exactly-at-limit acquire rejected: %v", err)
	} else {
		rel2()
	}
	rel()
	if rel3, err := c.AcquireJob("t", 100); err != nil {
		t.Fatalf("bytes freed by release still rejected: %v", err)
	} else {
		rel3()
	}
}

func TestSessionQuota(t *testing.T) {
	c := NewController(Limits{MaxSessions: 1})
	if err := c.AcquireSession("t"); err != nil {
		t.Fatalf("session 1: %v", err)
	}
	err := c.AcquireSession("t")
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Reason != ReasonSessions {
		t.Fatalf("session 2 = %v, want reason=sessions", err)
	}
	// Recovered sessions are adopted past the bound, never refused.
	c.AdoptSession("t")
	c.ReleaseSession("t")
	c.ReleaseSession("t")
	if err := c.AcquireSession("t"); err != nil {
		t.Fatalf("slot freed by release still rejected: %v", err)
	}
	c.ReleaseSession("t")
}

func TestZeroLimitsAdmitEverything(t *testing.T) {
	c := NewController(Limits{})
	for i := 0; i < 100; i++ {
		if err := c.AllowRequest("t"); err != nil {
			t.Fatalf("zero limits rejected request: %v", err)
		}
		if _, err := c.AcquireJob("t", 1<<30); err != nil {
			t.Fatalf("zero limits rejected job: %v", err)
		}
		if err := c.AcquireSession("t"); err != nil {
			t.Fatalf("zero limits rejected session: %v", err)
		}
	}
}

func TestBudgetPools(t *testing.T) {
	b := NewBudget(100)
	if got := b.Charge("sessions", 60); got != 60 {
		t.Fatalf("Charge = %d, want 60", got)
	}
	b.Charge("models", 30)
	if b.Over() != 0 {
		t.Fatalf("under budget but Over = %d", b.Over())
	}
	b.Charge("results", 50)
	if over := b.Over(); over != 40 {
		t.Fatalf("Over = %d, want 40", over)
	}
	b.Charge("sessions", -60)
	if b.Over() != 0 {
		t.Fatalf("after release Over = %d, want 0", b.Over())
	}
	// Releases floor at zero rather than going negative.
	b.Charge("models", -1000)
	if used := b.Used(); used != 50 {
		t.Fatalf("Used = %d, want 50 (results pool only)", used)
	}
	snap := b.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Pool >= snap[i].Pool {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	if unlimited := NewBudget(0); unlimited.Over() != 0 {
		t.Fatal("unlimited budget reported Over > 0")
	}
}
