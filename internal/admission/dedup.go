package admission

import (
	"container/list"
	"context"
	"sync"
)

// Cache is the content-addressed result cache with single-flight
// collapse. Reconstruction is deterministic — byte-identical output for
// identical (graph fingerprint, model hash, canonical options) — so a
// result computed once can be served to every concurrent and subsequent
// request for the same key.
//
// Concurrency model: the first Do for a key becomes the leader and runs
// compute in a goroutine under a context derived from the cache's base
// (the server's lifetime), NOT the leader's request context — if the
// leader disconnects, waiters still get the result. Each joined request
// holds a reference on the flight; a request abandoning (its own ctx
// cancelled) drops its reference, and when the last reference is dropped
// the flight's context is cancelled so orphaned computations stop.
type Cache struct {
	base     context.Context
	maxBytes int64 // <= 0 disables retention (single-flight still collapses)
	budget   *Budget

	mu      sync.Mutex
	entries map[string]*list.Element // guarded by mu; value is *cacheEntry
	lru     *list.List               // guarded by mu; front = most recent
	flights map[string]*flight       // guarded by mu
	bytes   int64                    // guarded by mu
	stats   CacheStats               // guarded by mu
}

// CacheStats are the cumulative dedup counters (marioh_dedup_*).
type CacheStats struct {
	Hits      int64 // served without a new computation (cache hit or collapsed into a flight)
	Misses    int64 // led a new computation
	Waiters   int64 // subset of Hits that waited on an in-flight computation
	Evictions int64 // entries dropped for capacity or budget pressure
	Entries   int   // current retained results
	Bytes     int64 // current retained bytes
}

type cacheEntry struct {
	key  string
	val  any
	size int64
}

type flight struct {
	cancel context.CancelFunc
	done   chan struct{}
	refs   int // guarded by Cache.mu
	val    any
	err    error
}

// BudgetPoolDedup is the Budget pool the cache charges.
const BudgetPoolDedup = "dedup"

// NewCache builds a Cache retaining up to maxBytes of results. base
// bounds computation lifetime (pass the server's root context); budget,
// when non-nil, is charged for retained bytes under BudgetPoolDedup.
func NewCache(base context.Context, maxBytes int64, budget *Budget) *Cache {
	if base == nil {
		base = context.Background() //lint:ctxflow cache lifetime default when caller passes none
	}
	return &Cache{
		base:     base,
		maxBytes: maxBytes,
		budget:   budget,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		flights:  map[string]*flight{},
	}
}

// Do returns the result for key, computing it at most once across all
// concurrent callers. compute receives a context tied to the cache base
// and the set of interested callers (cancelled only when every caller
// abandons); its size return meters retention. shared reports whether
// the result came from cache or another caller's computation.
func (c *Cache) Do(ctx context.Context, key string, compute func(context.Context) (any, int64, error)) (val any, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		f.refs++
		c.stats.Hits++
		c.stats.Waiters++
		c.mu.Unlock()
		return c.wait(ctx, key, f, true)
	}
	c.stats.Misses++
	fctx, cancel := context.WithCancel(c.base)
	f := &flight{cancel: cancel, done: make(chan struct{}), refs: 1}
	c.flights[key] = f
	c.mu.Unlock()

	go func() {
		v, size, cerr := compute(fctx)
		c.mu.Lock()
		f.val, f.err = v, cerr
		delete(c.flights, key)
		if cerr == nil {
			c.storeLocked(key, v, size)
		}
		c.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return c.wait(ctx, key, f, false)
}

// wait blocks until f completes or ctx is cancelled; on cancellation the
// caller's reference is dropped (possibly cancelling the flight).
func (c *Cache) wait(ctx context.Context, key string, f *flight, shared bool) (any, bool, error) {
	select {
	case <-f.done:
		if f.err != nil {
			return nil, shared, f.err
		}
		return f.val, shared, nil
	case <-ctx.Done():
		c.mu.Lock()
		f.refs--
		if f.refs <= 0 {
			f.cancel()
		}
		c.mu.Unlock()
		return nil, shared, ctx.Err()
	}
}

// storeLocked retains a computed result, evicting LRU entries past
// capacity; callers hold c.mu.
func (c *Cache) storeLocked(key string, val any, size int64) {
	if c.maxBytes <= 0 || size <= 0 || size > c.maxBytes {
		return
	}
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val, size: size})
	c.bytes += size
	if c.budget != nil {
		c.budget.Charge(BudgetPoolDedup, size)
	}
	c.shrinkLocked(c.maxBytes)
}

// shrinkLocked evicts LRU entries until retained bytes <= target;
// callers hold c.mu.
func (c *Cache) shrinkLocked(target int64) {
	for c.bytes > target {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.stats.Evictions++
		if c.budget != nil {
			c.budget.Charge(BudgetPoolDedup, -e.size)
		}
	}
}

// ShrinkTo evicts LRU entries until retained bytes <= target (0 empties
// the cache). The server calls it first when shedding memory pressure —
// cached results are the cheapest state to lose.
func (c *Cache) ShrinkTo(target int64) {
	if target < 0 {
		target = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shrinkLocked(target)
}

// Bytes returns the currently retained result bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	return s
}
