package admission

import (
	"sort"
	"sync"
)

// Budget is a global byte budget shared by the daemon's memory
// consumers. Consumers charge named pools ("sessions", "models",
// "results", "dedup") as state is retained and release on eviction; the
// server watches Over() after every charge and sheds cheapest-first
// (dedup entries, then retained job results, then parked sessions).
//
// The budget is advisory accounting, not an allocator: charges are the
// consumers' own size estimates, and Charge never fails — refusing to
// account for memory already allocated would only hide it.
type Budget struct {
	total int64 // 0 = unlimited

	mu    sync.Mutex
	pools map[string]int64 // guarded by mu
}

// NewBudget builds a Budget with the given capacity in bytes; total <= 0
// means metering only (never over budget).
func NewBudget(total int64) *Budget {
	if total < 0 {
		total = 0
	}
	return &Budget{total: total, pools: map[string]int64{}}
}

// Charge adds n bytes (negative to release) to the named pool and
// returns the new global total.
func (b *Budget) Charge(pool string, n int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := b.pools[pool] + n
	if v < 0 {
		v = 0
	}
	b.pools[pool] = v
	return b.usedLocked()
}

// usedLocked sums all pools; callers hold b.mu.
func (b *Budget) usedLocked() int64 {
	var sum int64
	for _, v := range b.pools {
		sum += v
	}
	return sum
}

// Used returns the current global total in bytes.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.usedLocked()
}

// Total returns the configured capacity (0 = unlimited).
func (b *Budget) Total() int64 { return b.total }

// Over returns how many bytes the budget is past capacity (0 when under
// budget or unlimited).
func (b *Budget) Over() int64 {
	if b.total <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if over := b.usedLocked() - b.total; over > 0 {
		return over
	}
	return 0
}

// PoolBytes is one pool's share of the budget.
type PoolBytes struct {
	Pool  string
	Bytes int64
}

// Snapshot returns every pool's usage sorted by pool name, for
// deterministic metrics rendering.
func (b *Budget) Snapshot() []PoolBytes {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]PoolBytes, 0, len(b.pools))
	for p, v := range b.pools {
		out = append(out, PoolBytes{Pool: p, Bytes: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pool < out[j].Pool })
	return out
}
