package shard

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"marioh/internal/corpus"
	"marioh/internal/graph"
)

// randomGraph builds a graph of several random near-clique communities
// joined by a few bridges, the structure the partitioner targets.
func randomGraph(rng *rand.Rand, communities, size int) *graph.Graph {
	n := communities * size
	g := graph.New(n)
	for c := 0; c < communities; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.7 {
					g.AddWeight(base+i, base+j, 1+rng.Intn(3))
				}
			}
		}
	}
	// Chain some communities together with bridges of varying ω.
	for c := 0; c+1 < communities; c++ {
		if rng.Float64() < 0.5 {
			g.AddWeight(c*size, (c+1)*size, 1+rng.Intn(2))
		}
	}
	return g
}

// planEdges flattens a plan back into original-id edges.
func planEdges(p *Plan) []graph.Edge {
	var out []graph.Edge
	for _, piece := range p.Pieces {
		for _, e := range piece.Graph.Edges() {
			out = append(out, graph.Edge{U: piece.Nodes[e.U], V: piece.Nodes[e.V], W: e.W})
		}
	}
	return out
}

// TestPartitionCoversEveryEdgeExactlyOnce is the core invariant: the union
// of the shard subgraphs is the input graph, edge for edge, weight for
// weight, with no duplicates.
func TestPartitionCoversEveryEdgeExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(6), 3+rng.Intn(6))
		for _, opts := range []Options{
			{Shards: 1},
			{Shards: 4},
			{Shards: 16},
			{Shards: 4, TargetEdges: 5},
			{Shards: 8, TargetEdges: 1},
		} {
			plan := Partition(g, opts)
			seen := map[[2]int]int{}
			for _, e := range planEdges(plan) {
				seen[[2]int{e.U, e.V}] += 1
				if got := e.W; got != g.Weight(e.U, e.V) {
					t.Fatalf("trial %d %+v: ω(%d,%d) = %d, want %d", trial, opts, e.U, e.V, got, g.Weight(e.U, e.V))
				}
			}
			for pair, count := range seen {
				if count != 1 {
					t.Fatalf("trial %d %+v: edge %v assigned %d times", trial, opts, pair, count)
				}
			}
			if len(seen) != g.NumEdges() {
				t.Fatalf("trial %d %+v: plan covers %d edges, graph has %d", trial, opts, len(seen), g.NumEdges())
			}
		}
	}
}

// TestPartitionOwnsEveryVertexExactlyOnce: the Owner map is a total
// function into the piece list, and every owned node appears in its owning
// piece's node list.
func TestPartitionOwnsEveryVertexExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(5), 3+rng.Intn(5))
		plan := Partition(g, Options{Shards: 4, TargetEdges: 6})
		if len(plan.Owner) != g.NumNodes() {
			t.Fatalf("Owner covers %d nodes, graph has %d", len(plan.Owner), g.NumNodes())
		}
		for u, p := range plan.Owner {
			if p < 0 || (len(plan.Pieces) > 0 && p >= len(plan.Pieces)) {
				t.Fatalf("node %d owned by out-of-range piece %d", u, p)
			}
			if g.Degree(u) == 0 {
				continue // isolated nodes are owned by convention only
			}
			found := false
			for _, v := range plan.Pieces[p].Nodes {
				if v == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d owned by piece %d but absent from its node list", u, p)
			}
		}
	}
}

// TestPartitionNeverSplitsMaximalClique: every maximal clique of the input
// graph must be fully contained in exactly one piece — the property that
// lets each shard score its cliques with no knowledge of the others.
func TestPartitionNeverSplitsMaximalClique(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 2+rng.Intn(5), 3+rng.Intn(5))
		plan := Partition(g, Options{Shards: 8, TargetEdges: 4})
		cliques := g.MaximalCliques(2)
		for _, q := range cliques {
			hosts := 0
			for _, piece := range plan.Pieces {
				local := map[int]int{}
				for i, u := range piece.Nodes {
					local[u] = i
				}
				ok := true
				for i := 0; ok && i < len(q); i++ {
					if _, in := local[q[i]]; !in {
						ok = false
					}
				}
				if !ok {
					continue
				}
				lq := make([]int, len(q))
				for i, u := range q {
					lq[i] = local[u]
				}
				if piece.Graph.IsClique(lq) {
					hosts++
				}
			}
			if hosts != 1 {
				t.Fatalf("trial %d: maximal clique %v lives in %d pieces, want exactly 1", trial, q, hosts)
			}
		}
	}
}

// TestPartitionSplitsOnlyBridges: when a component is split, every edge
// missing from the piece that owns a node must be a bridge of the original
// graph — the partitioner must never cut inside a 2-edge-connected block.
func TestPartitionSplitsOnlyBridges(t *testing.T) {
	// Two triangles joined by a ω=1 bridge, forced apart by a tiny target.
	g := graph.New(6)
	g.AddWeight(0, 1, 2)
	g.AddWeight(0, 2, 2)
	g.AddWeight(1, 2, 2)
	g.AddWeight(3, 4, 2)
	g.AddWeight(3, 5, 2)
	g.AddWeight(4, 5, 2)
	g.AddWeight(2, 3, 1) // the bridge
	plan := Partition(g, Options{Shards: 2, TargetEdges: 4})
	if len(plan.Pieces) != 2 {
		t.Fatalf("want 2 pieces, got %d", len(plan.Pieces))
	}
	// The bridge must be assigned to exactly one piece (its smaller
	// endpoint's side), and the other side must not carry it.
	holders := 0
	for _, piece := range plan.Pieces {
		local := map[int]int{}
		for i, u := range piece.Nodes {
			local[u] = i
		}
		l2, ok2 := local[2]
		l3, ok3 := local[3]
		if ok2 && ok3 && piece.Graph.HasEdge(l2, l3) {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("bridge held by %d pieces, want 1", holders)
	}
	if plan.Owner[2] == plan.Owner[3] {
		t.Fatal("bridge endpoints should be owned by different pieces after the split")
	}
}

// TestPartitionRespectsTarget: with enough bridges, no piece exceeds the
// target by more than its largest unsplittable block.
func TestPartitionRespectsTarget(t *testing.T) {
	// A path of K triangles connected by bridges: every block has 3 edges.
	const k = 12
	g := graph.New(3 * k)
	for i := 0; i < k; i++ {
		b := 3 * i
		g.AddWeight(b, b+1, 1)
		g.AddWeight(b, b+2, 1)
		g.AddWeight(b+1, b+2, 1)
		if i > 0 {
			g.AddWeight(b-1, b, 1)
		}
	}
	plan := Partition(g, Options{Shards: 4, TargetEdges: 12})
	for i, piece := range plan.Pieces {
		if piece.EdgeCount > 12+3 {
			t.Fatalf("piece %d carries %d edges, exceeding target 12 beyond block slack", i, piece.EdgeCount)
		}
	}
	if len(plan.Pieces) < 2 {
		t.Fatalf("expected the triangle chain to split, got %d pieces", len(plan.Pieces))
	}
}

// TestPartitionDeterministicUnderGOMAXPROCS pins byte-level plan
// determinism across GOMAXPROCS settings (the partitioner is
// single-threaded; this guards against anyone parallelizing it with
// nondeterministic reductions later).
func TestPartitionDeterministicUnderGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 6, 6)
	render := func(p *Plan) string {
		s := fmt.Sprintf("owner=%v\n", p.Owner)
		for i, piece := range p.Pieces {
			s += fmt.Sprintf("piece %d nodes=%v edges=%v\n", i, piece.Nodes, piece.Graph.Edges())
		}
		return s
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	a := render(Partition(g, Options{Shards: 4, TargetEdges: 8}))
	runtime.GOMAXPROCS(8)
	b := render(Partition(g, Options{Shards: 4, TargetEdges: 8}))
	if a != b {
		t.Fatalf("plan differs across GOMAXPROCS:\n%s\nvs\n%s", a, b)
	}
	// And across repeated calls in the same setting.
	if c := render(Partition(g, Options{Shards: 4, TargetEdges: 8})); b != c {
		t.Fatal("plan not reproducible across calls")
	}
}

// TestPackEqualWeightTieBreakByMinNode is the LPT tie-break regression
// test: equal-weight components must pack in ascending min-original-node
// order into the lightest bin (ties: lowest bin index), so the assignment
// is a pure function of the graph — the invariant session re-partitioning
// after deltas relies on for determinism across runs.
func TestPackEqualWeightTieBreakByMinNode(t *testing.T) {
	// Six disjoint triangles: all atoms weigh 3 edges, so ordering is
	// decided entirely by the tie-break.
	const k = 6
	g := graph.New(3 * k)
	for i := 0; i < k; i++ {
		b := 3 * i
		g.AddWeight(b, b+1, 1)
		g.AddWeight(b, b+2, 1)
		g.AddWeight(b+1, b+2, 1)
	}
	plan := Partition(g, Options{Shards: 3})
	if len(plan.Pieces) != 3 {
		t.Fatalf("want 3 pieces, got %d", len(plan.Pieces))
	}
	// LPT over equal weights: triangle i (min node 3i) lands in bin i%3.
	for i := 0; i < k; i++ {
		if got, want := plan.Owner[3*i], i%3; got != want {
			t.Fatalf("triangle %d (min node %d) packed into piece %d, want %d", i, 3*i, got, want)
		}
	}
	// The assignment must be stable across repeated partitions and across
	// an insertion-order-permuted rebuild of the same graph.
	render := func(p *Plan) string {
		s := fmt.Sprintf("owner=%v\n", p.Owner)
		for i, piece := range p.Pieces {
			s += fmt.Sprintf("piece %d nodes=%v edges=%v\n", i, piece.Nodes, piece.Graph.Edges())
		}
		return s
	}
	want := render(plan)
	if got := render(Partition(g, Options{Shards: 3})); got != want {
		t.Fatal("repeated partition differs")
	}
	g2 := graph.New(3 * k)
	for i := k - 1; i >= 0; i-- {
		b := 3 * i
		g2.AddWeight(b+1, b+2, 1)
		g2.AddWeight(b, b+2, 1)
		g2.AddWeight(b, b+1, 1)
	}
	if got := render(Partition(g2, Options{Shards: 3})); got != want {
		t.Fatal("partition depends on edge insertion order")
	}
}

// TestPartitionDisableSplitKeepsComponentsWhole: with splitting disabled an
// oversized component stays in one piece.
func TestPartitionDisableSplitKeepsComponentsWhole(t *testing.T) {
	g := graph.New(6)
	g.AddWeight(0, 1, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(2, 3, 1)
	g.AddWeight(3, 4, 1)
	g.AddWeight(4, 5, 1)
	plan := Partition(g, Options{Shards: 4, TargetEdges: 1, DisableSplit: true})
	if len(plan.Pieces) != 1 {
		t.Fatalf("DisableSplit must keep the path whole, got %d pieces", len(plan.Pieces))
	}
}

// corpusMutated replays a family's adversarial delta stream onto its base
// graph, giving the property tests the post-churn shapes the equivalence
// gates actually reconstruct.
func corpusMutated(f corpus.Family, seed int64, n int) *graph.Graph {
	g := f.Gen(seed)
	for _, op := range f.Deltas(seed, n) {
		top := op.U
		if op.V > top {
			top = op.V
		}
		g.EnsureNodes(top + 1)
		switch op.Kind {
		case graph.DeltaAdd:
			g.AddWeight(op.U, op.V, op.W)
		case graph.DeltaRemove:
			g.RemoveEdge(op.U, op.V)
		case graph.DeltaSet:
			g.SetWeight(op.U, op.V, op.W)
		}
	}
	return g
}

// TestPartitionPropertiesOverCorpus promotes the partitioner's two core
// invariants — every edge assigned exactly once with its original weight,
// and no maximal clique ever split across pieces — from the random-graph
// trials above to every scenario-corpus family, on both the base graph
// and the graph after the family's adversarial delta stream. The hub,
// bridge-chain and overlapping-clique shapes are engineered to sit on the
// partitioner's decision boundaries (bridge cuts, clique containment),
// which uniform random communities rarely reach.
func TestPartitionPropertiesOverCorpus(t *testing.T) {
	for _, f := range corpus.Families {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for _, state := range []struct {
				name string
				g    *graph.Graph
			}{
				{"base", f.Gen(1)},
				{"mutated", corpusMutated(f, 1, 60)},
			} {
				g := state.g
				for _, opts := range []Options{
					{Shards: 1},
					{Shards: 4, TargetEdges: 8},
					{Shards: 16, TargetEdges: 8},
				} {
					plan := Partition(g, opts)

					// Edge cover: exactly once, exact weight.
					seen := map[[2]int]int{}
					for _, e := range planEdges(plan) {
						seen[[2]int{e.U, e.V}]++
						if e.W != g.Weight(e.U, e.V) {
							t.Fatalf("%s %+v: ω(%d,%d) = %d, want %d",
								state.name, opts, e.U, e.V, e.W, g.Weight(e.U, e.V))
						}
					}
					for pair, count := range seen {
						if count != 1 {
							t.Fatalf("%s %+v: edge %v assigned %d times", state.name, opts, pair, count)
						}
					}
					if len(seen) != g.NumEdges() {
						t.Fatalf("%s %+v: plan covers %d edges, graph has %d",
							state.name, opts, len(seen), g.NumEdges())
					}

					// Clique containment: every maximal clique hosted whole by
					// exactly one piece.
					for _, q := range g.MaximalCliques(2) {
						hosts := 0
						for _, piece := range plan.Pieces {
							local := map[int]int{}
							for i, u := range piece.Nodes {
								local[u] = i
							}
							ok := true
							for i := 0; ok && i < len(q); i++ {
								if _, in := local[q[i]]; !in {
									ok = false
								}
							}
							if !ok {
								continue
							}
							lq := make([]int, len(q))
							for i, u := range q {
								lq[i] = local[u]
							}
							if piece.Graph.IsClique(lq) {
								hosts++
							}
						}
						if hosts != 1 {
							t.Fatalf("%s %+v: maximal clique %v lives in %d pieces, want exactly 1",
								state.name, opts, q, hosts)
						}
					}
				}
			}
		})
	}
}
