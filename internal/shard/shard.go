// Package shard implements the deterministic graph partitioner behind
// MARIOH's shard-parallel reconstruction engine.
//
// A partition assigns every edge of the projected graph to exactly one
// shard. Because hyperedges never span connected components, components are
// the natural atoms; components larger than the target shard size are split
// further along their bridges (preferring low-multiplicity ones), which is
// the one kind of intra-component cut the reconstruction provably tolerates:
// a bridge has no common neighbors, so MARIOH's size-2 filtering consumes it
// entirely before any clique is ever scored, after which the two sides are
// genuinely independent components. Every maximal clique of the input graph
// therefore lives — and is scored — in exactly one shard.
//
// Partitioning is single-threaded and fully deterministic: the same graph
// and options produce the same Plan regardless of GOMAXPROCS or prior
// allocations.
package shard

import (
	"sort"

	"marioh/internal/graph"
)

// Options configure Partition.
type Options struct {
	// Shards is the number of shards to produce (bins of the final
	// packing). Values < 1 are treated as 1. The plan may contain fewer
	// pieces when the graph has fewer atoms than shards.
	Shards int
	// TargetEdges is the shard size target: connected components owning
	// more edges are split along their bridges. 0 derives
	// ceil(edges/Shards) from the graph. A 2-edge-connected block larger
	// than the target cannot be split exactly and is kept whole.
	TargetEdges int
	// DisableSplit keeps connected components atomic. The reconstruction
	// engine forces this when filtering is disabled (MARIOH-F), because
	// bridge cuts are only output-exact when filtering consumes the
	// bridges first.
	DisableSplit bool
}

// Piece is one shard: the subgraph carrying the edges assigned to it.
type Piece struct {
	// Nodes are the sorted original node ids appearing in the piece —
	// the nodes it owns plus halo endpoints of assigned bridge edges.
	Nodes []int
	// Graph is the piece's subgraph, relabeled 0..len(Nodes)-1 in Nodes
	// order (so the relabeling is order-preserving); Nodes doubles as the
	// local→original id map.
	Graph *graph.Graph
	// EdgeCount is the number of edges assigned to the piece.
	EdgeCount int
}

// Plan is a deterministic edge partition of a graph.
type Plan struct {
	Pieces []Piece
	// Owner maps every original node id to the index of the piece that
	// owns it. Nodes without edges are owned by piece 0 by convention
	// (they appear in no piece's subgraph). Halo nodes appear in a
	// piece's Nodes without being owned by it.
	Owner []int
}

// atom is an indivisible unit of the packing: a connected component, or a
// bridge-tree part of an oversized component.
type atom struct {
	owned []int // sorted original node ids owned by the atom
	edges []graph.Edge
}

// minNode returns the smallest original node id appearing in the atom,
// the LPT packing tie-break key for equal-weight atoms. owned[0] is that
// minimum: owned is sorted ascending, and every assigned edge's smaller
// endpoint is an owned node (a cut bridge goes to the part owning its
// smaller endpoint; only the larger endpoint is a halo), so no halo can
// undercut it. Keying the tie-break on the atom's minimum node makes the
// packing a pure function of the graph — the property session
// re-partitioning after deltas relies on for determinism across runs,
// pinned by TestPackEqualWeightTieBreakByMinNode.
func (a *atom) minNode() int {
	return a.owned[0]
}

// Partition builds a deterministic shard plan for g.
func Partition(g *graph.Graph, opts Options) *Plan {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	target := opts.TargetEdges
	if target <= 0 {
		target = (g.NumEdges() + opts.Shards - 1) / opts.Shards
	}
	if target < 1 {
		target = 1
	}

	var atoms []atom
	var isolated []int
	for _, comp := range g.ConnectedComponents() {
		edges := componentEdges(g, comp)
		if len(edges) == 0 {
			isolated = append(isolated, comp...)
			continue
		}
		if opts.DisableSplit || len(edges) <= target {
			atoms = append(atoms, atom{owned: comp, edges: edges})
			continue
		}
		atoms = append(atoms, splitComponent(g, comp, edges, target)...)
	}

	return pack(g, atoms, isolated, opts.Shards)
}

// componentEdges collects the edges of a component (all edges incident to
// its nodes, each reported once with U < V, lexicographically sorted).
func componentEdges(g *graph.Graph, comp []int) []graph.Edge {
	var out []graph.Edge
	for _, u := range comp {
		g.NeighborWeights(u, func(v, w int) {
			if u < v {
				out = append(out, graph.Edge{U: u, V: v, W: w})
			}
		})
	}
	return out
}

// splitComponent cuts one oversized component along its bridges into atoms
// of at most target owned edges where possible. It builds the bridge tree
// (2-edge-connected blocks connected by bridges), greedily merges child
// subtrees bottom-up — keeping high-multiplicity bridges internal and
// cutting low-multiplicity ones first when a part overflows — and assigns
// every cut bridge to the side holding its smaller endpoint, with the other
// endpoint joining that side as a halo node.
func splitComponent(g *graph.Graph, comp []int, edges []graph.Edge, target int) []atom {
	local := make(map[int]int, len(comp)) // original id → local index
	for i, u := range comp {
		local[u] = i
	}
	adj := make([][]int, len(comp))
	for _, e := range edges {
		lu, lv := local[e.U], local[e.V]
		adj[lu] = append(adj[lu], lv)
		adj[lv] = append(adj[lv], lu)
	}
	bridgeList := findBridges(adj)
	if len(bridgeList) == 0 {
		// 2-edge-connected through and through: nothing exact to cut.
		return []atom{{owned: comp, edges: edges}}
	}
	isBridge := make(map[[2]int]bool, len(bridgeList))
	for _, b := range bridgeList {
		isBridge[normPair(b[0], b[1])] = true
	}

	// Label 2-edge-connected blocks: components of the graph minus bridges.
	block := make([]int, len(comp))
	for i := range block {
		block[i] = -1
	}
	nBlocks := 0
	stack := make([]int, 0, 64)
	for s := range adj {
		if block[s] >= 0 {
			continue
		}
		block[s] = nBlocks
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if block[v] < 0 && !isBridge[normPair(u, v)] {
					block[v] = nBlocks
					stack = append(stack, v)
				}
			}
		}
		nBlocks++
	}

	// Per-block owned-edge weight (non-bridge edges).
	blockW := make([]int, nBlocks)
	for _, e := range edges {
		lu, lv := local[e.U], local[e.V]
		if !isBridge[normPair(lu, lv)] {
			blockW[block[lu]]++
		}
	}

	// Bridge-tree adjacency: treeNbr[b] lists (other block, bridge index).
	type treeEdge struct {
		other  int
		bridge int // index into bridgeList
	}
	treeNbr := make([][]treeEdge, nBlocks)
	for i, b := range bridgeList {
		bu, bv := block[b[0]], block[b[1]]
		treeNbr[bu] = append(treeNbr[bu], treeEdge{other: bv, bridge: i})
		treeNbr[bv] = append(treeNbr[bv], treeEdge{other: bu, bridge: i})
	}

	// Greedy bottom-up tree partition, rooted at the block of the smallest
	// node. Children are merged in descending bridge multiplicity (ties:
	// bridge index, which is deterministic), so overflow cuts fall on the
	// cheapest bridges.
	root := block[0] // comp is sorted, so local 0 is the smallest node
	parentBridge := make([]int, nBlocks)
	for i := range parentBridge {
		parentBridge[i] = -1
	}
	order := make([]int, 0, nBlocks) // DFS pre-order
	seen := make([]bool, nBlocks)
	seen[root] = true
	stack = append(stack[:0], root)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, b)
		for _, te := range treeNbr[b] {
			if !seen[te.other] {
				seen[te.other] = true
				parentBridge[te.other] = te.bridge
				stack = append(stack, te.other)
			}
		}
	}

	bridgeOmega := func(i int) int {
		b := bridgeList[i]
		return g.Weight(comp[b[0]], comp[b[1]])
	}
	cut := make([]bool, len(bridgeList))
	weight := make([]int, nBlocks) // retained part weight, filled bottom-up
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		children := make([]treeEdge, 0, len(treeNbr[b]))
		for _, te := range treeNbr[b] {
			if parentBridge[te.other] == te.bridge {
				children = append(children, te)
			}
		}
		sort.Slice(children, func(x, y int) bool {
			ox, oy := bridgeOmega(children[x].bridge), bridgeOmega(children[y].bridge)
			if ox != oy {
				return ox > oy
			}
			return children[x].bridge < children[y].bridge
		})
		acc := blockW[b]
		for _, te := range children {
			if w := weight[te.other] + 1; acc+w <= target {
				acc += w
			} else {
				cut[te.bridge] = true
			}
		}
		weight[b] = acc
	}

	// Parts = components of the block tree minus cut bridges.
	part := make([]int, nBlocks)
	for i := range part {
		part[i] = -1
	}
	nParts := 0
	for s := 0; s < nBlocks; s++ {
		if part[s] >= 0 {
			continue
		}
		part[s] = nParts
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, te := range treeNbr[b] {
				if part[te.other] < 0 && !cut[te.bridge] {
					part[te.other] = nParts
					stack = append(stack, te.other)
				}
			}
		}
		nParts++
	}

	// Assign edges and nodes to parts. Edges are emitted with U < V, so
	// taking U's part assigns internal edges to their own part and every
	// cut bridge to the part of its smaller endpoint — whose other
	// endpoint joins that part as a halo node.
	out := make([]atom, nParts)
	for _, u := range comp {
		p := part[block[local[u]]]
		out[p].owned = append(out[p].owned, u)
	}
	for _, e := range edges {
		p := part[block[local[e.U]]]
		out[p].edges = append(out[p].edges, e)
	}
	return out
}

// normPair returns the unordered pair (a, b) in canonical order.
func normPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// findBridges runs an iterative Tarjan low-link pass over a local
// adjacency list and returns the bridge edges as local id pairs.
func findBridges(adj [][]int) [][2]int {
	n := len(adj)
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var out [][2]int
	type frame struct{ u, parent, idx int }
	var stack []frame
	for s := 0; s < n; s++ {
		if disc[s] >= 0 {
			continue
		}
		disc[s], low[s] = timer, timer
		timer++
		stack = append(stack[:0], frame{u: s, parent: -1})
		for len(stack) > 0 {
			top := len(stack) - 1
			u, parent := stack[top].u, stack[top].parent
			if stack[top].idx < len(adj[u]) {
				v := adj[u][stack[top].idx]
				stack[top].idx++
				if v == parent {
					continue // simple graph: the tree edge appears once
				}
				if disc[v] == -1 {
					disc[v], low[v] = timer, timer
					timer++
					stack = append(stack, frame{u: v, parent: u})
				} else if disc[v] < low[u] {
					low[u] = disc[v]
				}
				continue
			}
			stack = stack[:top]
			if top > 0 {
				p := stack[top-1].u
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if low[u] > disc[p] {
					out = append(out, [2]int{p, u})
				}
			}
		}
	}
	return out
}

// pack bins atoms into at most shards pieces with a deterministic
// longest-processing-time greedy: atoms sorted by descending edge count,
// breaking equal weights by minimum original node id (see atom.minNode),
// land in the currently lightest bin (ties: lowest bin index).
func pack(g *graph.Graph, atoms []atom, isolated []int, shards int) *Plan {
	order := make([]int, len(atoms))
	minNode := make([]int, len(atoms))
	for i := range order {
		order[i] = i
		minNode[i] = atoms[i].minNode()
	}
	sort.Slice(order, func(x, y int) bool {
		ax, ay := &atoms[order[x]], &atoms[order[y]]
		if len(ax.edges) != len(ay.edges) {
			return len(ax.edges) > len(ay.edges)
		}
		return minNode[order[x]] < minNode[order[y]]
	})
	if shards > len(atoms) && len(atoms) > 0 {
		shards = len(atoms)
	}
	load := make([]int, shards)
	binOf := make([]int, len(atoms))
	for _, ai := range order {
		best := 0
		for b := 1; b < shards; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		binOf[ai] = best
		load[best] += len(atoms[ai].edges)
	}

	plan := &Plan{Owner: make([]int, g.NumNodes())}
	if len(atoms) == 0 {
		plan.Pieces = []Piece{}
		return plan
	}
	bins := make([][]int, shards) // atom indices per bin, ascending
	for ai := range atoms {
		bins[binOf[ai]] = append(bins[binOf[ai]], ai)
	}
	for _, atomIdx := range bins {
		if len(atomIdx) == 0 {
			continue
		}
		idx := len(plan.Pieces)
		var edges []graph.Edge
		nodeSet := map[int]bool{}
		for _, ai := range atomIdx {
			for _, u := range atoms[ai].owned {
				plan.Owner[u] = idx
				nodeSet[u] = true
			}
			edges = append(edges, atoms[ai].edges...)
		}
		for _, e := range edges {
			nodeSet[e.U] = true // halo endpoints of assigned bridges
			nodeSet[e.V] = true
		}
		nodes := make([]int, 0, len(nodeSet))
		for u := range nodeSet {
			nodes = append(nodes, u)
		}
		sort.Ints(nodes)
		local := make(map[int]int, len(nodes))
		for i, u := range nodes {
			local[u] = i
		}
		sub := graph.New(len(nodes))
		for _, e := range edges {
			sub.AddWeight(local[e.U], local[e.V], e.W)
		}
		plan.Pieces = append(plan.Pieces, Piece{Nodes: nodes, Graph: sub, EdgeCount: len(edges)})
	}
	return plan
}
