// Package features implements the clique feature representations used by
// the classifiers in this repository: MARIOH's multiplicity-aware features
// (Sect. III-D of the paper) and the structural feature sets of the
// SHyRe-Count and SHyRe-Motif baselines (Wang & Kleinberg, ICLR 2024),
// which deliberately ignore edge multiplicity.
//
// All featurizers consume a clique of the (possibly residual) projected
// graph plus a flag telling whether the clique is maximal, and emit a
// fixed-width float vector. Node- and edge-level feature families are
// summarized into five aggregates each — sum, mean, min, max, and standard
// deviation — exactly as the paper prescribes.
package features

import (
	"math"

	"marioh/internal/graph"
)

// Featurizer turns a clique into a fixed-width feature vector.
type Featurizer interface {
	// Name identifies the featurizer in logs and serialized models.
	Name() string
	// Dim is the feature vector width.
	Dim() int
	// Features computes the vector for clique Q of g. maximal tells whether
	// Q is a maximal clique of the graph it was enumerated from.
	Features(g *graph.Graph, clique []int, maximal bool) []float64
}

// aggStats appends the five-dimensional aggregate (sum, mean, min, max,
// std) of vals to dst and returns dst. Empty input yields five zeros.
func aggStats(dst []float64, vals []float64) []float64 {
	if len(vals) == 0 {
		return append(dst, 0, 0, 0, 0, 0)
	}
	sum, mn, mx := 0.0, vals[0], vals[0]
	for _, v := range vals {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(len(vals))
	varr := 0.0
	for _, v := range vals {
		d := v - mean
		varr += d * d
	}
	std := math.Sqrt(varr / float64(len(vals)))
	return append(dst, sum, mean, mn, mx, std)
}

// Marioh is the multiplicity-aware featurizer of the MARIOH paper:
//
//   - node level: weighted degree of each clique node              → 5 dims
//   - edge level: ω(u,v), MHH(u,v), MHH(u,v)/ω(u,v) per clique edge → 15 dims
//   - clique level: |Q|, clique cut ratio, maximality indicator    → 3 dims
//
// for a total of 23 dimensions.
type Marioh struct{}

// Name implements Featurizer.
func (Marioh) Name() string { return "marioh" }

// Dim implements Featurizer.
func (Marioh) Dim() int { return 23 }

// Features implements Featurizer.
func (Marioh) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	out := make([]float64, 0, 23)

	nodeVals := make([]float64, len(q))
	sumWDeg := 0.0
	for i, u := range q {
		wd := float64(g.WeightedDegree(u))
		nodeVals[i] = wd
		sumWDeg += wd
	}
	out = aggStats(out, nodeVals)

	nEdges := len(q) * (len(q) - 1) / 2
	omega := make([]float64, 0, nEdges)
	mhh := make([]float64, 0, nEdges)
	ratio := make([]float64, 0, nEdges)
	internal := 0.0
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			w := float64(g.Weight(q[i], q[j]))
			m := float64(g.SumMinCommonWeight(q[i], q[j]))
			omega = append(omega, w)
			mhh = append(mhh, m)
			if w > 0 {
				ratio = append(ratio, m/w)
			} else {
				ratio = append(ratio, 0)
			}
			internal += w
		}
	}
	out = aggStats(out, omega)
	out = aggStats(out, mhh)
	out = aggStats(out, ratio)

	out = append(out, float64(len(q)))
	out = append(out, cutRatio(internal, sumWDeg))
	if maximal {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// cutRatio is the clique cut ratio: the proportion of edge multiplicity
// inside the clique relative to the total edge multiplicity touching the
// clique's nodes. Internal edges are counted twice in the weighted-degree
// sum, so the denominator subtracts one copy to count each incident edge
// exactly once.
func cutRatio(internal, sumWDeg float64) float64 {
	den := sumWDeg - internal
	if den <= 0 {
		return 1
	}
	return internal / den
}

// ShyreCount reproduces the multiplicity-blind structural ("count")
// features of SHyRe-Count:
//
//   - clique size and maximality indicator                → 2 dims
//   - unweighted node degrees                             → 5 dims
//   - per-edge common-neighbor counts                     → 5 dims
//   - unweighted cut ratio                                → 1 dim
//
// for a total of 13 dimensions. MARIOH-M plugs this featurizer into the
// MARIOH search to ablate the multiplicity-aware features.
type ShyreCount struct{}

// Name implements Featurizer.
func (ShyreCount) Name() string { return "shyre-count" }

// Dim implements Featurizer.
func (ShyreCount) Dim() int { return 13 }

// Features implements Featurizer.
func (ShyreCount) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	out := make([]float64, 0, 13)
	out = append(out, float64(len(q)))
	if maximal {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	deg := make([]float64, len(q))
	sumDeg := 0.0
	for i, u := range q {
		deg[i] = float64(g.Degree(u))
		sumDeg += deg[i]
	}
	out = aggStats(out, deg)
	cn := commonNeighborCounts(g, q)
	out = aggStats(out, cn)
	internal := float64(len(q) * (len(q) - 1) / 2)
	out = append(out, cutRatio(internal, sumDeg))
	return out
}

func commonNeighborCounts(g *graph.Graph, q []int) []float64 {
	var cn []float64
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			cn = append(cn, float64(len(g.CommonNeighbors(q[i], q[j]))))
		}
	}
	return cn
}

// ShyreMotif extends ShyreCount with local motif statistics, following
// SHyRe-Motif's use of triangle and square (4-cycle) patterns around the
// candidate clique:
//
//   - per-edge triangle counts (= common neighbors)        → shared with count
//   - per-edge 4-cycle counts C(cn, 2) through each edge   → 5 extra dims
//
// for a total of 18 dimensions.
type ShyreMotif struct{}

// Name implements Featurizer.
func (ShyreMotif) Name() string { return "shyre-motif" }

// Dim implements Featurizer.
func (ShyreMotif) Dim() int { return 18 }

// Features implements Featurizer.
func (ShyreMotif) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	base := ShyreCount{}.Features(g, q, maximal)
	var squares []float64
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			cn := float64(len(g.CommonNeighbors(q[i], q[j])))
			squares = append(squares, cn*(cn-1)/2)
		}
	}
	return aggStats(base, squares)
}

// ByName returns the featurizer registered under the given name.
func ByName(name string) (Featurizer, bool) {
	switch name {
	case "marioh":
		return Marioh{}, true
	case "marioh-nomhh":
		return MariohNoMHH{}, true
	case "shyre-count":
		return ShyreCount{}, true
	case "shyre-motif":
		return ShyreMotif{}, true
	}
	return nil, false
}
