// Package features implements the clique feature representations used by
// the classifiers in this repository: MARIOH's multiplicity-aware features
// (Sect. III-D of the paper) and the structural feature sets of the
// SHyRe-Count and SHyRe-Motif baselines (Wang & Kleinberg, ICLR 2024),
// which deliberately ignore edge multiplicity.
//
// All featurizers consume a clique of the (possibly residual) projected
// graph plus a flag telling whether the clique is maximal, and emit a
// fixed-width float vector. Node- and edge-level feature families are
// summarized into five aggregates each — sum, mean, min, max, and standard
// deviation — exactly as the paper prescribes.
//
// Every built-in featurizer also implements AppendFeaturizer, the
// allocation-free path: Compute with a per-worker Scratch reuses staging
// and output buffers, so scoring a clique in the steady state performs no
// heap allocations. Custom featurizers that only implement Featurizer keep
// working through the same entry point at the cost of an allocation.
package features

import (
	"math"

	"marioh/internal/graph"
)

// Featurizer turns a clique into a fixed-width feature vector.
type Featurizer interface {
	// Name identifies the featurizer in logs and serialized models.
	Name() string
	// Dim is the feature vector width.
	Dim() int
	// Features computes the vector for clique Q of g. maximal tells whether
	// Q is a maximal clique of the graph it was enumerated from.
	Features(g *graph.Graph, clique []int, maximal bool) []float64
}

// AppendFeaturizer is the allocation-free extension of Featurizer: the
// vector is appended to dst and temporaries come from the caller's Scratch.
type AppendFeaturizer interface {
	Featurizer
	// AppendFeatures appends exactly Dim() values — the same values
	// Features would return — to dst and returns the extended slice.
	AppendFeatures(dst []float64, s *Scratch, g *graph.Graph, clique []int, maximal bool) []float64
}

// Scratch holds the reusable buffers of one feature-extraction worker. It
// must not be shared between goroutines. The zero value is ready to use.
type Scratch struct {
	node, edge1, edge2, edge3 []float64 // value-family staging
	out                       []float64 // Compute's result buffer
	pair                      graph.PairScratch
}

// Compute evaluates f on the clique. When f supports the allocation-free
// path the result lives in s's reusable output buffer and is only valid
// until the next Compute call with the same Scratch; otherwise it falls
// back to f.Features.
func Compute(f Featurizer, s *Scratch, g *graph.Graph, clique []int, maximal bool) []float64 {
	if af, ok := f.(AppendFeaturizer); ok {
		s.out = af.AppendFeatures(s.out[:0], s, g, clique, maximal)
		return s.out
	}
	return f.Features(g, clique, maximal)
}

// stage returns a zero-length slice with capacity ≥ n backed by *p, growing
// the backing array only when needed.
func stage(p *[]float64, n int) []float64 {
	if cap(*p) < n {
		*p = make([]float64, 0, n)
	}
	return (*p)[:0]
}

// aggStats appends the five-dimensional aggregate (sum, mean, min, max,
// std) of vals to dst and returns dst. Empty input yields five zeros.
func aggStats(dst []float64, vals []float64) []float64 {
	if len(vals) == 0 {
		return append(dst, 0, 0, 0, 0, 0)
	}
	sum, mn, mx := 0.0, vals[0], vals[0]
	for _, v := range vals {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mean := sum / float64(len(vals))
	varr := 0.0
	for _, v := range vals {
		d := v - mean
		varr += d * d
	}
	std := math.Sqrt(varr / float64(len(vals)))
	return append(dst, sum, mean, mn, mx, std)
}

// Marioh is the multiplicity-aware featurizer of the MARIOH paper:
//
//   - node level: weighted degree of each clique node              → 5 dims
//   - edge level: ω(u,v), MHH(u,v), MHH(u,v)/ω(u,v) per clique edge → 15 dims
//   - clique level: |Q|, clique cut ratio, maximality indicator    → 3 dims
//
// for a total of 23 dimensions.
type Marioh struct{}

// Name implements Featurizer.
func (Marioh) Name() string { return "marioh" }

// Dim implements Featurizer.
func (Marioh) Dim() int { return 23 }

// Features implements Featurizer.
func (m Marioh) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	var s Scratch
	return m.AppendFeatures(make([]float64, 0, 23), &s, g, q, maximal)
}

// AppendFeatures implements AppendFeaturizer.
func (Marioh) AppendFeatures(dst []float64, s *Scratch, g *graph.Graph, q []int, maximal bool) []float64 {
	nodeVals := stage(&s.node, len(q))
	sumWDeg := 0.0
	for _, u := range q {
		wd := float64(g.WeightedDegree(u))
		nodeVals = append(nodeVals, wd)
		sumWDeg += wd
	}
	dst = aggStats(dst, nodeVals)

	nEdges := len(q) * (len(q) - 1) / 2
	omega := stage(&s.edge1, nEdges)
	mhh := stage(&s.edge2, nEdges)
	ratio := stage(&s.edge3, nEdges)
	internal := 0.0
	pairW, pairMHH := g.CliquePairStats(q, &s.pair)
	for p := range pairW {
		w := float64(pairW[p])
		m := float64(pairMHH[p])
		omega = append(omega, w)
		mhh = append(mhh, m)
		if w > 0 {
			ratio = append(ratio, m/w)
		} else {
			ratio = append(ratio, 0)
		}
		internal += w
	}
	dst = aggStats(dst, omega)
	dst = aggStats(dst, mhh)
	dst = aggStats(dst, ratio)

	dst = append(dst, float64(len(q)))
	dst = append(dst, cutRatio(internal, sumWDeg))
	if maximal {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// cutRatio is the clique cut ratio: the proportion of edge multiplicity
// inside the clique relative to the total edge multiplicity touching the
// clique's nodes. Internal edges are counted twice in the weighted-degree
// sum, so the denominator subtracts one copy to count each incident edge
// exactly once.
func cutRatio(internal, sumWDeg float64) float64 {
	den := sumWDeg - internal
	if den <= 0 {
		return 1
	}
	return internal / den
}

// ShyreCount reproduces the multiplicity-blind structural ("count")
// features of SHyRe-Count:
//
//   - clique size and maximality indicator                → 2 dims
//   - unweighted node degrees                             → 5 dims
//   - per-edge common-neighbor counts                     → 5 dims
//   - unweighted cut ratio                                → 1 dim
//
// for a total of 13 dimensions. MARIOH-M plugs this featurizer into the
// MARIOH search to ablate the multiplicity-aware features.
type ShyreCount struct{}

// Name implements Featurizer.
func (ShyreCount) Name() string { return "shyre-count" }

// Dim implements Featurizer.
func (ShyreCount) Dim() int { return 13 }

// Features implements Featurizer.
func (f ShyreCount) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	var s Scratch
	return f.AppendFeatures(make([]float64, 0, 13), &s, g, q, maximal)
}

// AppendFeatures implements AppendFeaturizer.
func (ShyreCount) AppendFeatures(dst []float64, s *Scratch, g *graph.Graph, q []int, maximal bool) []float64 {
	cn := commonNeighborCounts(stage(&s.edge1, len(q)*(len(q)-1)/2), g, q)
	return appendShyreCount(dst, s, g, q, maximal, cn)
}

// appendShyreCount appends the 13 ShyreCount dimensions, taking the
// per-edge common-neighbor counts from the caller so ShyreMotif can share
// one computation between its triangle and square families.
func appendShyreCount(dst []float64, s *Scratch, g *graph.Graph, q []int, maximal bool, cn []float64) []float64 {
	dst = append(dst, float64(len(q)))
	if maximal {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	deg := stage(&s.node, len(q))
	sumDeg := 0.0
	for _, u := range q {
		d := float64(g.Degree(u))
		deg = append(deg, d)
		sumDeg += d
	}
	dst = aggStats(dst, deg)
	dst = aggStats(dst, cn)
	internal := float64(len(q) * (len(q) - 1) / 2)
	dst = append(dst, cutRatio(internal, sumDeg))
	return dst
}

// commonNeighborCounts appends |N(q_i) ∩ N(q_j)| for every clique pair to
// dst. CountCommonNeighbors avoids materializing (and sorting) the
// intersection just to take its length.
func commonNeighborCounts(dst []float64, g *graph.Graph, q []int) []float64 {
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			dst = append(dst, float64(g.CountCommonNeighbors(q[i], q[j])))
		}
	}
	return dst
}

// ShyreMotif extends ShyreCount with local motif statistics, following
// SHyRe-Motif's use of triangle and square (4-cycle) patterns around the
// candidate clique:
//
//   - per-edge triangle counts (= common neighbors)        → shared with count
//   - per-edge 4-cycle counts C(cn, 2) through each edge   → 5 extra dims
//
// for a total of 18 dimensions. The common-neighbor counts are computed
// once and shared between the two motif families.
type ShyreMotif struct{}

// Name implements Featurizer.
func (ShyreMotif) Name() string { return "shyre-motif" }

// Dim implements Featurizer.
func (ShyreMotif) Dim() int { return 18 }

// Features implements Featurizer.
func (f ShyreMotif) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	var s Scratch
	return f.AppendFeatures(make([]float64, 0, 18), &s, g, q, maximal)
}

// AppendFeatures implements AppendFeaturizer.
func (ShyreMotif) AppendFeatures(dst []float64, s *Scratch, g *graph.Graph, q []int, maximal bool) []float64 {
	nEdges := len(q) * (len(q) - 1) / 2
	cn := commonNeighborCounts(stage(&s.edge1, nEdges), g, q)
	dst = appendShyreCount(dst, s, g, q, maximal, cn)
	squares := stage(&s.edge2, nEdges)
	for _, c := range cn {
		squares = append(squares, c*(c-1)/2)
	}
	return aggStats(dst, squares)
}

// ByName returns the featurizer registered under the given name.
func ByName(name string) (Featurizer, bool) {
	switch name {
	case "marioh":
		return Marioh{}, true
	case "marioh-nomhh":
		return MariohNoMHH{}, true
	case "shyre-count":
		return ShyreCount{}, true
	case "shyre-motif":
		return ShyreMotif{}, true
	}
	return nil, false
}
