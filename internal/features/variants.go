package features

import "marioh/internal/graph"

// MariohNoMHH is an ablation featurizer for the paper's Sect. IV-E study
// of alternative clique representations: MARIOH's features with the two
// MHH-derived families (MHH and MHH/ω) removed, leaving node weighted
// degrees, raw edge multiplicities, and the clique-level scalars
// (13 dimensions). Comparing it against the full set isolates how much of
// MARIOH's accuracy comes from the higher-order bound rather than from
// raw multiplicities.
type MariohNoMHH struct{}

// Name implements Featurizer.
func (MariohNoMHH) Name() string { return "marioh-nomhh" }

// Dim implements Featurizer.
func (MariohNoMHH) Dim() int { return 13 }

// Features implements Featurizer.
func (m MariohNoMHH) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	var s Scratch
	return m.AppendFeatures(make([]float64, 0, 13), &s, g, q, maximal)
}

// AppendFeatures implements AppendFeaturizer.
func (MariohNoMHH) AppendFeatures(dst []float64, s *Scratch, g *graph.Graph, q []int, maximal bool) []float64 {
	nodeVals := stage(&s.node, len(q))
	sumWDeg := 0.0
	for _, u := range q {
		wd := float64(g.WeightedDegree(u))
		nodeVals = append(nodeVals, wd)
		sumWDeg += wd
	}
	dst = aggStats(dst, nodeVals)
	omega := stage(&s.edge1, len(q)*(len(q)-1)/2)
	internal := 0.0
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			w := float64(g.Weight(q[i], q[j]))
			omega = append(omega, w)
			internal += w
		}
	}
	dst = aggStats(dst, omega)
	dst = append(dst, float64(len(q)), cutRatio(internal, sumWDeg))
	if maximal {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}
