package features

import "marioh/internal/graph"

// MariohNoMHH is an ablation featurizer for the paper's Sect. IV-E study
// of alternative clique representations: MARIOH's features with the two
// MHH-derived families (MHH and MHH/ω) removed, leaving node weighted
// degrees, raw edge multiplicities, and the clique-level scalars
// (13 dimensions). Comparing it against the full set isolates how much of
// MARIOH's accuracy comes from the higher-order bound rather than from
// raw multiplicities.
type MariohNoMHH struct{}

// Name implements Featurizer.
func (MariohNoMHH) Name() string { return "marioh-nomhh" }

// Dim implements Featurizer.
func (MariohNoMHH) Dim() int { return 13 }

// Features implements Featurizer.
func (MariohNoMHH) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	out := make([]float64, 0, 13)
	nodeVals := make([]float64, len(q))
	sumWDeg := 0.0
	for i, u := range q {
		wd := float64(g.WeightedDegree(u))
		nodeVals[i] = wd
		sumWDeg += wd
	}
	out = aggStats(out, nodeVals)
	omega := make([]float64, 0, len(q)*(len(q)-1)/2)
	internal := 0.0
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			w := float64(g.Weight(q[i], q[j]))
			omega = append(omega, w)
			internal += w
		}
	}
	out = aggStats(out, omega)
	out = append(out, float64(len(q)), cutRatio(internal, sumWDeg))
	if maximal {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}
