package features

import (
	"math/rand"
	"reflect"
	"testing"

	"marioh/internal/graph"
)

// TestAppendFeaturesMatchesFeatures: for every built-in featurizer the
// allocation-free Compute path must return exactly the vector Features
// returns, including when the scratch is reused across cliques of
// different sizes.
func TestAppendFeaturesMatchesFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.New(25)
	for i := 0; i < 25; i++ {
		for j := i + 1; j < 25; j++ {
			if rng.Float64() < 0.35 {
				g.AddWeight(i, j, 1+rng.Intn(4))
			}
		}
	}
	cliques := g.MaximalCliques(2)
	if len(cliques) < 5 {
		t.Fatalf("degenerate test graph: %d cliques", len(cliques))
	}
	names := []string{"marioh", "marioh-nomhh", "shyre-count", "shyre-motif"}
	for _, name := range names {
		f, ok := ByName(name)
		if !ok {
			t.Fatalf("featurizer %q missing", name)
		}
		if _, ok := f.(AppendFeaturizer); !ok {
			t.Fatalf("%s does not implement AppendFeaturizer", name)
		}
		var s Scratch
		for _, q := range cliques {
			for _, maximal := range []bool{true, false} {
				want := f.Features(g, q, maximal)
				got := Compute(f, &s, g, q, maximal)
				if len(want) != f.Dim() {
					t.Fatalf("%s: Features returned %d dims, want %d", name, len(want), f.Dim())
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s on %v (maximal=%v):\n scratch %v\n  direct %v",
						name, q, maximal, got, want)
				}
			}
		}
	}
}

// TestComputeAllocationFree: after warm-up, the Compute path must not
// allocate for the built-in featurizers.
func TestComputeAllocationFree(t *testing.T) {
	g := graph.New(12)
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			g.AddWeight(i, j, 1+((i+j)%3))
		}
	}
	q := []int{0, 2, 4, 6, 8, 10}
	for _, name := range []string{"marioh", "marioh-nomhh", "shyre-count", "shyre-motif"} {
		f, _ := ByName(name)
		var s Scratch
		Compute(f, &s, g, q, true) // warm the buffers
		allocs := testing.AllocsPerRun(20, func() {
			Compute(f, &s, g, q, true)
		})
		if allocs > 0 {
			t.Fatalf("%s: Compute allocates %.1f per call, want 0", name, allocs)
		}
	}
}

// TestComputeFallsBackForPlainFeaturizers: a Featurizer without the append
// extension still works through Compute.
type plainFeat struct{}

func (plainFeat) Name() string { return "plain" }
func (plainFeat) Dim() int     { return 2 }
func (plainFeat) Features(g *graph.Graph, q []int, maximal bool) []float64 {
	return []float64{float64(len(q)), 1}
}

func TestComputeFallsBackForPlainFeaturizers(t *testing.T) {
	g := graph.New(3)
	g.AddWeight(0, 1, 1)
	var s Scratch
	got := Compute(plainFeat{}, &s, g, []int{0, 1}, true)
	if !reflect.DeepEqual(got, []float64{2, 1}) {
		t.Fatalf("fallback Compute = %v", got)
	}
}
