package features

import (
	"math"
	"testing"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

func testGraph() *graph.Graph {
	// Triangle {0,1,2} with ω=2 on every edge plus pendant 3 on node 0.
	h := hypergraph.New(4)
	h.AddMult([]int{0, 1, 2}, 2)
	h.Add([]int{0, 3})
	return h.Project()
}

func TestDims(t *testing.T) {
	g := testGraph()
	for _, f := range []Featurizer{Marioh{}, ShyreCount{}, ShyreMotif{}} {
		got := f.Features(g, []int{0, 1, 2}, true)
		if len(got) != f.Dim() {
			t.Fatalf("%s: len(features) = %d, Dim() = %d", f.Name(), len(got), f.Dim())
		}
	}
}

func TestMariohFeatureValues(t *testing.T) {
	g := testGraph()
	f := Marioh{}.Features(g, []int{0, 1, 2}, true)
	// Node weighted degrees: 0 → 2+2+1=5, 1 → 4, 2 → 4.
	// agg(sum, mean, min, max, std) of [5 4 4]:
	if f[0] != 13 {
		t.Fatalf("node sum = %v, want 13", f[0])
	}
	if math.Abs(f[1]-13.0/3) > 1e-12 {
		t.Fatalf("node mean = %v", f[1])
	}
	if f[2] != 4 || f[3] != 5 {
		t.Fatalf("node min/max = %v/%v", f[2], f[3])
	}
	// Edge ω: all three edges have ω=2 → sum 6, std 0.
	if f[5] != 6 || f[9] != 0 {
		t.Fatalf("edge ω agg = %v (sum), %v (std)", f[5], f[9])
	}
	// MHH(0,1) = min(ω02, ω12) = 2, same for all edges of the triangle.
	if f[10] != 6 {
		t.Fatalf("MHH sum = %v, want 6", f[10])
	}
	// MHH/ω = 1 for every edge.
	if f[15] != 3 || f[16] != 1 {
		t.Fatalf("ratio sum/mean = %v/%v", f[15], f[16])
	}
	// Clique-level: size 3, cut ratio internal/external = 6/(13−6),
	// maximal flag 1.
	if f[20] != 3 {
		t.Fatalf("size = %v", f[20])
	}
	if math.Abs(f[21]-6.0/7) > 1e-12 {
		t.Fatalf("cut ratio = %v, want 6/7", f[21])
	}
	if f[22] != 1 {
		t.Fatalf("maximal flag = %v", f[22])
	}
}

func TestMaximalFlagPropagates(t *testing.T) {
	g := testGraph()
	a := Marioh{}.Features(g, []int{0, 1, 2}, true)
	b := Marioh{}.Features(g, []int{0, 1, 2}, false)
	if a[22] != 1 || b[22] != 0 {
		t.Fatal("maximal indicator not set from the argument")
	}
}

func TestShyreCountIgnoresMultiplicity(t *testing.T) {
	// Two graphs with identical topology but different weights must give
	// identical SHyRe-Count features (it is multiplicity-blind).
	h1 := hypergraph.New(3)
	h1.Add([]int{0, 1, 2})
	g1 := h1.Project()
	h2 := hypergraph.New(3)
	h2.AddMult([]int{0, 1, 2}, 7)
	g2 := h2.Project()
	a := ShyreCount{}.Features(g1, []int{0, 1, 2}, true)
	b := ShyreCount{}.Features(g2, []int{0, 1, 2}, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// While MARIOH features must differ.
	am := Marioh{}.Features(g1, []int{0, 1, 2}, true)
	bm := Marioh{}.Features(g2, []int{0, 1, 2}, true)
	same := true
	for i := range am {
		if am[i] != bm[i] {
			same = false
		}
	}
	if same {
		t.Fatal("MARIOH features must be multiplicity sensitive")
	}
}

func TestShyreMotifExtendsCount(t *testing.T) {
	g := testGraph()
	c := ShyreCount{}.Features(g, []int{0, 1}, false)
	m := ShyreMotif{}.Features(g, []int{0, 1}, false)
	if len(m) != len(c)+5 {
		t.Fatalf("motif dims = %d, want count+5 = %d", len(m), len(c)+5)
	}
	for i := range c {
		if m[i] != c[i] {
			t.Fatalf("motif prefix differs at %d", i)
		}
	}
}

func TestSize2CliqueFeatures(t *testing.T) {
	g := testGraph()
	f := Marioh{}.Features(g, []int{0, 3}, true)
	if len(f) != 23 {
		t.Fatalf("dim = %d", len(f))
	}
	// ω(0,3) = 1, MHH = 0 (no common neighbors).
	if f[5] != 1 || f[10] != 0 {
		t.Fatalf("size-2 edge features: ω sum = %v, MHH sum = %v", f[5], f[10])
	}
}

func TestMariohNoMHHDropsMHHFamilies(t *testing.T) {
	g := testGraph()
	f := MariohNoMHH{}.Features(g, []int{0, 1, 2}, true)
	if len(f) != (MariohNoMHH{}).Dim() {
		t.Fatalf("dim mismatch: %d", len(f))
	}
	full := Marioh{}.Features(g, []int{0, 1, 2}, true)
	// Node aggregates and ω aggregates must agree with the full set.
	for i := 0; i < 10; i++ {
		if f[i] != full[i] {
			t.Fatalf("shared prefix differs at %d: %v vs %v", i, f[i], full[i])
		}
	}
	// Clique-level scalars must agree with the full set's tail.
	for i := 0; i < 3; i++ {
		if f[10+i] != full[20+i] {
			t.Fatalf("clique-level feature %d differs", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"marioh", "marioh-nomhh", "shyre-count", "shyre-motif"} {
		f, ok := ByName(name)
		if !ok || f.Name() != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name must fail")
	}
}

func TestAggStatsEmpty(t *testing.T) {
	out := aggStats(nil, nil)
	if len(out) != 5 {
		t.Fatalf("empty agg len = %d", len(out))
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty agg must be zeros")
		}
	}
}
