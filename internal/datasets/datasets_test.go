package datasets

import (
	"math"
	"testing"
)

func TestRegistryCompleteness(t *testing.T) {
	if len(Names()) != 12 {
		t.Fatalf("want 12 registered datasets, got %d: %v", len(Names()), Names())
	}
	if len(TableINames()) != 10 {
		t.Fatalf("Table I must have 10 datasets")
	}
	for _, n := range TableINames() {
		if _, err := ConfigByName(n); err != nil {
			t.Fatalf("Table I dataset %q not registered", n)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestGenerateMatchesConfig(t *testing.T) {
	for _, name := range []string{"crime", "hosts", "pschool"} {
		cfg, _ := ConfigByName(name)
		ds := Generate(cfg, 1)
		if ds.Full.NumUnique() != cfg.UniqueEdges {
			t.Fatalf("%s: unique = %d, want %d", name, ds.Full.NumUnique(), cfg.UniqueEdges)
		}
		if ds.Full.NumNodes() != cfg.NumNodes {
			t.Fatalf("%s: nodes = %d, want %d", name, ds.Full.NumNodes(), cfg.NumNodes)
		}
		// Average multiplicity within 25% of the target.
		if cfg.AvgMult > 1.05 {
			got := ds.Full.AvgMultiplicity()
			if math.Abs(got-cfg.AvgMult)/cfg.AvgMult > 0.25 {
				t.Fatalf("%s: avg mult = %v, want ≈ %v", name, got, cfg.AvgMult)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustByName("hosts", 7)
	b := MustByName("hosts", 7)
	if !a.Full.Equal(b.Full) || !a.Source.Equal(b.Source) || !a.Target.Equal(b.Target) {
		t.Fatal("same seed must generate identical datasets")
	}
	c := MustByName("hosts", 8)
	if a.Full.Equal(c.Full) {
		t.Fatal("different seeds should differ")
	}
}

func TestSplitCoversFull(t *testing.T) {
	ds := MustByName("enron", 3)
	if got := ds.Source.NumTotal() + ds.Target.NumTotal(); got != ds.Full.NumTotal() {
		t.Fatalf("halves sum to %d, full has %d", got, ds.Full.NumTotal())
	}
	// Halves must be nearly equal in occurrence count.
	diff := ds.Source.NumTotal() - ds.Target.NumTotal()
	if diff < -1 || diff > 1 {
		t.Fatalf("unbalanced split: %d vs %d", ds.Source.NumTotal(), ds.Target.NumTotal())
	}
}

func TestCommunityLabels(t *testing.T) {
	ds := MustByName("pschool", 1)
	cfg, _ := ConfigByName("pschool")
	if len(ds.Labels) != cfg.NumNodes {
		t.Fatalf("labels len = %d", len(ds.Labels))
	}
	classes := map[int]bool{}
	for _, l := range ds.Labels {
		classes[l] = true
	}
	if len(classes) != cfg.Communities {
		t.Fatalf("classes = %d, want %d", len(classes), cfg.Communities)
	}
	// Unlabeled datasets have nil labels.
	if MustByName("crime", 1).Labels != nil {
		t.Fatal("crime should have no labels")
	}
}

func TestHyperedgeSizesWithinConfiguredRange(t *testing.T) {
	cfg, _ := ConfigByName("dblp")
	ds := Generate(cfg, 2)
	maxSize := len(cfg.SizeWeights) + 1
	ds.Full.Each(func(nodes []int, _ int) {
		if len(nodes) < 2 || len(nodes) > maxSize {
			t.Fatalf("hyperedge size %d outside [2,%d]", len(nodes), maxSize)
		}
	})
}

func TestHyperCL(t *testing.T) {
	h := HyperCL(100, 200, []float64{0.5, 0.3, 0.2}, 1.0, 1)
	if h.NumNodes() > 100 {
		t.Fatalf("nodes = %d", h.NumNodes())
	}
	if h.NumTotal() < 150 { // a few draws may fail, most succeed
		t.Fatalf("only %d hyperedges generated", h.NumTotal())
	}
	h2 := HyperCL(100, 200, []float64{0.5, 0.3, 0.2}, 1.0, 1)
	if !h.Equal(h2) {
		t.Fatal("HyperCL not deterministic")
	}
}

func TestDBLPLikeHyperCLScaling(t *testing.T) {
	small := DBLPLikeHyperCL(0.05, 1)
	big := DBLPLikeHyperCL(0.1, 1)
	if small.NumTotal() >= big.NumTotal() {
		t.Fatalf("scaling broken: %d vs %d", small.NumTotal(), big.NumTotal())
	}
}

func TestDatasetString(t *testing.T) {
	s := MustByName("crime", 1).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
