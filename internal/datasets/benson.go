package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"marioh/internal/hypergraph"
)

// ReadBenson parses the simplex file format of Austin Benson's hypergraph
// dataset collection (https://www.cs.cornell.edu/~arb/data/), which is
// where the paper's Enron, P.School, H.School, DBLP and Eu datasets come
// from. The format is two parallel files:
//
//   - nverts: one integer per simplex — its node count;
//   - simplices: the concatenated node ids, one per line.
//
// An optional times reader (one timestamp per simplex) orders the
// occurrences; pass nil to keep file order. Node ids are 1-based in the
// originals and are shifted to 0-based here. Simplices with fewer than two
// distinct nodes are skipped (the originals contain singleton simplices).
//
// With this loader the real datasets can be dropped into the harness in
// place of the synthetic analogs once they are available locally.
func ReadBenson(nverts, simplices, times io.Reader) (*TemporalHypergraph, error) {
	sizes, err := readInts(nverts)
	if err != nil {
		return nil, fmt.Errorf("datasets: nverts: %w", err)
	}
	nodes, err := readInts(simplices)
	if err != nil {
		return nil, fmt.Errorf("datasets: simplices: %w", err)
	}
	var stamps []int
	if times != nil {
		stamps, err = readInts(times)
		if err != nil {
			return nil, fmt.Errorf("datasets: times: %w", err)
		}
		if len(stamps) != len(sizes) {
			return nil, fmt.Errorf("datasets: %d timestamps for %d simplices", len(stamps), len(sizes))
		}
	}
	th := &TemporalHypergraph{}
	pos := 0
	for i, s := range sizes {
		if s < 0 || pos+s > len(nodes) {
			return nil, fmt.Errorf("datasets: simplex %d overruns the node list", i)
		}
		raw := nodes[pos : pos+s]
		pos += s
		edge := make([]int, 0, s)
		seen := map[int]bool{}
		for _, u := range raw {
			u-- // 1-based -> 0-based
			if u < 0 {
				return nil, fmt.Errorf("datasets: simplex %d has node id < 1", i)
			}
			if !seen[u] {
				seen[u] = true
				edge = append(edge, u)
			}
		}
		if len(edge) < 2 {
			continue
		}
		t := i
		if stamps != nil {
			t = stamps[i]
		}
		th.Occurrences = append(th.Occurrences, TimedEdge{Nodes: edge, Time: t})
	}
	if pos != len(nodes) {
		return nil, fmt.Errorf("datasets: %d trailing node ids", len(nodes)-pos)
	}
	return th, nil
}

// TimedEdge is one hyperedge occurrence with a timestamp.
type TimedEdge struct {
	Nodes []int
	Time  int
}

// TemporalHypergraph is an ordered stream of hyperedge occurrences, the
// form real timestamped datasets arrive in before the source/target split.
type TemporalHypergraph struct {
	Occurrences []TimedEdge
}

// Split orders the occurrences by time (stable) and splits them into the
// source/target halves of the paper's protocol, returning a Dataset.
func (th *TemporalHypergraph) Split(name string) *Dataset {
	occ := append([]TimedEdge(nil), th.Occurrences...)
	// Stable insertion-free sort by time.
	sortStableByTime(occ)
	ds := &Dataset{Name: name}
	ds.Full = hypergraph.New(0)
	ds.Source = hypergraph.New(0)
	ds.Target = hypergraph.New(0)
	half := len(occ) / 2
	for i, o := range occ {
		ds.Full.Add(o.Nodes)
		if i < half {
			ds.Source.Add(o.Nodes)
		} else {
			ds.Target.Add(o.Nodes)
		}
	}
	// Align the halves' node universes with the full hypergraph.
	ds.Source.EnsureNodes(ds.Full.NumNodes())
	ds.Target.EnsureNodes(ds.Full.NumNodes())
	return ds
}

func sortStableByTime(occ []TimedEdge) {
	// Insertion sort is fine for the modest streams handled here and is
	// stable by construction.
	for i := 1; i < len(occ); i++ {
		for j := i; j > 0 && occ[j].Time < occ[j-1].Time; j-- {
			occ[j], occ[j-1] = occ[j-1], occ[j]
		}
	}
}

func readInts(r io.Reader) ([]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("bad integer %q", f)
			}
			out = append(out, v)
		}
	}
	return out, sc.Err()
}
