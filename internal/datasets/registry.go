package datasets

import (
	"fmt"
	"sort"
)

// Registry holds one generator config per dataset of the paper's Table I,
// plus the two extra MAG domains used in the transfer experiment
// (Table V). Where the original is too large for laptop-scale runs the
// node/hyperedge counts are scaled down (noted per entry); statistics that
// drive reconstruction difficulty — average hyperedge multiplicity, size
// profile, community structure, temporal recurrence — follow Table I.
var registry = map[string]Config{
	// Enron: 141 nodes, 889 hyperedges, avg M_H 5.85 (emails resent to the
	// same recipient sets). Faithful scale.
	"enron": {
		Name: "enron", NumNodes: 141, UniqueEdges: 600, AvgMult: 5.85,
		SizeWeights: []float64{0.30, 0.25, 0.18, 0.12, 0.08, 0.04, 0.02, 0.01},
		DegExponent: 0.2, Temporal: true,
	},
	// Primary school contacts: 238 nodes in ~10 classes, avg M_H 6.90.
	// Hyperedge count scaled 7975 → 1300 to keep the near-complete class
	// blocks tractable for every baseline.
	"pschool": {
		Name: "pschool", NumNodes: 238, UniqueEdges: 1100, AvgMult: 6.90,
		SizeWeights: []float64{0.55, 0.30, 0.12, 0.03},
		Communities: 10, CrossProb: 0.40, Temporal: true,
	},
	// High school contacts: 318 nodes in 9 classes, avg M_H 17.01.
	// Hyperedge count scaled 4254 → 900.
	"hschool": {
		Name: "hschool", NumNodes: 318, UniqueEdges: 900, AvgMult: 17.01,
		SizeWeights: []float64{0.60, 0.30, 0.08, 0.02},
		Communities: 9, CrossProb: 0.35, Temporal: true,
	},
	// Crime: 308 nodes, 105 hyperedges, avg M_H 1.01 — very sparse, almost
	// no overlap: trivial to reconstruct (paper: ≈ 93–100 Jaccard).
	"crime": {
		Name: "crime", NumNodes: 308, UniqueEdges: 105, AvgMult: 1.01,
		SizeWeights: []float64{0.50, 0.30, 0.15, 0.05},
	},
	// Host-virus interactions: 449 nodes, 159 hyperedges, avg M_H 1.06.
	"hosts": {
		Name: "hosts", NumNodes: 449, UniqueEdges: 159, AvgMult: 1.06,
		SizeWeights: []float64{0.45, 0.30, 0.15, 0.10},
		DegExponent: 1.1,
	},
	// Board directors: 513 nodes, 101 hyperedges, avg M_H 1.01 — almost
	// disjoint boards, perfectly reconstructible (paper: 100.00).
	"directors": {
		Name: "directors", NumNodes: 513, UniqueEdges: 101, AvgMult: 1.01,
		SizeWeights: []float64{0.40, 0.35, 0.20, 0.05},
		Communities: 120, CrossProb: 0.02,
	},
	// Foursquare check-ins: 2254 nodes, 873 hyperedges, avg M_H 1.00.
	"foursquare": {
		Name: "foursquare", NumNodes: 2254, UniqueEdges: 873, AvgMult: 1.00,
		SizeWeights: []float64{0.50, 0.30, 0.15, 0.05},
		DegExponent: 0.5,
	},
	// DBLP co-authorship, scaled 389330 → 20000 nodes and 213328 → 11000
	// hyperedges; avg M_H 1.10, power-law author productivity, temporal.
	"dblp": {
		Name: "dblp", NumNodes: 20000, UniqueEdges: 11000, AvgMult: 1.10,
		SizeWeights: []float64{0.70, 0.22, 0.06, 0.02},
		DegExponent: 0.8, Temporal: true,
	},
	// Email-Eu: 891 nodes, avg M_H 1.26 but heavy pairwise overlap
	// (avg ω 4.62) — the hardest dataset in the paper (Jaccard ≈ 14).
	// Hyperedge count scaled 6805 → 3000.
	"eu": {
		Name: "eu", NumNodes: 891, UniqueEdges: 3000, AvgMult: 1.26,
		SizeWeights: []float64{0.30, 0.25, 0.18, 0.12, 0.08, 0.04, 0.03},
		DegExponent: 1.35, Temporal: true,
	},
	// MAG-TopCS co-authorship, scaled 48742 → 8000 nodes, 25945 → 4500
	// hyperedges.
	"mag-topcs": {
		Name: "mag-topcs", NumNodes: 8000, UniqueEdges: 4500, AvgMult: 1.00,
		SizeWeights: []float64{0.60, 0.28, 0.09, 0.03},
		DegExponent: 0.7,
	},
	// MAG-History (transfer target): history papers have fewer coauthors.
	"mag-history": {
		Name: "mag-history", NumNodes: 4000, UniqueEdges: 2200, AvgMult: 1.00,
		SizeWeights: []float64{0.70, 0.20, 0.07, 0.03},
		DegExponent: 0.7,
	},
	// MAG-Geology (transfer target): larger author teams.
	"mag-geology": {
		Name: "mag-geology", NumNodes: 6000, UniqueEdges: 3500, AvgMult: 1.00,
		SizeWeights: []float64{0.50, 0.30, 0.14, 0.06},
		DegExponent: 0.7,
	},
}

// Names returns the registered dataset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableINames returns the ten datasets of the paper's Table I in the
// paper's column order.
func TableINames() []string {
	return []string{"enron", "pschool", "hschool", "crime", "hosts",
		"directors", "foursquare", "dblp", "eu", "mag-topcs"}
}

// ConfigByName returns the registered config.
func ConfigByName(name string) (Config, error) {
	cfg, ok := registry[name]
	if !ok {
		return Config{}, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
	}
	return cfg, nil
}

// ByName generates the named dataset with the given seed.
func ByName(name string, seed int64) (*Dataset, error) {
	cfg, err := ConfigByName(name)
	if err != nil {
		return nil, err
	}
	return Generate(cfg, seed), nil
}

// MustByName is ByName but panics on unknown names (for tests/benches).
func MustByName(name string, seed int64) *Dataset {
	d, err := ByName(name, seed)
	if err != nil {
		panic(err)
	}
	return d
}
