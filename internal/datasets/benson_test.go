package datasets

import (
	"strings"
	"testing"
)

func TestReadBenson(t *testing.T) {
	nverts := "2\n3\n1\n2\n"
	simplices := "1\n2\n2\n3\n4\n5\n1\n3\n"
	times := "10\n5\n7\n1\n"
	th, err := ReadBenson(strings.NewReader(nverts), strings.NewReader(simplices), strings.NewReader(times))
	if err != nil {
		t.Fatal(err)
	}
	// Singleton simplex {5} is dropped; three occurrences remain.
	if len(th.Occurrences) != 3 {
		t.Fatalf("occurrences = %d, want 3", len(th.Occurrences))
	}
	// Node ids shift to 0-based: first simplex {0,1}.
	if th.Occurrences[0].Nodes[0] != 0 || th.Occurrences[0].Nodes[1] != 1 {
		t.Fatalf("first simplex = %v", th.Occurrences[0].Nodes)
	}
	if th.Occurrences[0].Time != 10 {
		t.Fatalf("time = %d", th.Occurrences[0].Time)
	}
}

func TestReadBensonNoTimes(t *testing.T) {
	th, err := ReadBenson(strings.NewReader("2\n2\n"), strings.NewReader("1 2 3 4\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Occurrences) != 2 {
		t.Fatalf("occurrences = %d", len(th.Occurrences))
	}
	// File order becomes the timestamp.
	if th.Occurrences[1].Time != 1 {
		t.Fatalf("implicit time = %d", th.Occurrences[1].Time)
	}
}

func TestReadBensonErrors(t *testing.T) {
	// nverts overruns node list.
	if _, err := ReadBenson(strings.NewReader("3\n"), strings.NewReader("1 2\n"), nil); err == nil {
		t.Fatal("overrun should fail")
	}
	// Trailing ids.
	if _, err := ReadBenson(strings.NewReader("2\n"), strings.NewReader("1 2 3\n"), nil); err == nil {
		t.Fatal("trailing ids should fail")
	}
	// Timestamp count mismatch.
	if _, err := ReadBenson(strings.NewReader("2\n"), strings.NewReader("1 2\n"), strings.NewReader("1\n2\n")); err == nil {
		t.Fatal("timestamp mismatch should fail")
	}
	// Node id below 1.
	if _, err := ReadBenson(strings.NewReader("2\n"), strings.NewReader("0 2\n"), nil); err == nil {
		t.Fatal("0-based input should fail")
	}
	// Garbage integer.
	if _, err := ReadBenson(strings.NewReader("x\n"), strings.NewReader("1 2\n"), nil); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestTemporalSplit(t *testing.T) {
	th := &TemporalHypergraph{Occurrences: []TimedEdge{
		{Nodes: []int{0, 1}, Time: 30},
		{Nodes: []int{2, 3}, Time: 10},
		{Nodes: []int{4, 5}, Time: 20},
		{Nodes: []int{0, 2}, Time: 40},
	}}
	ds := th.Split("test")
	if ds.Full.NumTotal() != 4 {
		t.Fatalf("full total = %d", ds.Full.NumTotal())
	}
	// Earliest half (times 10, 20) goes to the source.
	if !ds.Source.Contains([]int{2, 3}) || !ds.Source.Contains([]int{4, 5}) {
		t.Fatalf("source = %v", ds.Source.UniqueEdges())
	}
	if !ds.Target.Contains([]int{0, 1}) || !ds.Target.Contains([]int{0, 2}) {
		t.Fatalf("target = %v", ds.Target.UniqueEdges())
	}
	// Universes aligned.
	if ds.Source.NumNodes() != ds.Full.NumNodes() || ds.Target.NumNodes() != ds.Full.NumNodes() {
		t.Fatal("node universes not aligned")
	}
}
