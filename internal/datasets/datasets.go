// Package datasets provides synthetic analogs of the ten real-world
// hypergraph datasets used in the MARIOH paper (Table I), plus the two
// extra MAG domains of the transfer-learning experiment (Table V) and the
// HyperCL generator used for the scalability study (Fig. 7).
//
// The original datasets are not redistributable inside this offline
// module, so each is replaced by a generator that reproduces its published
// statistics — node count, unique-hyperedge count, average hyperedge
// multiplicity, hyperedge-size profile, community structure, and temporal
// recurrence — which are exactly the properties MARIOH's accuracy
// advantage depends on (see the substitution table in DESIGN.md). Very
// large datasets are scaled down to laptop scale; the scaling is recorded
// in the per-config comments and in EXPERIMENTS.md.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"marioh/internal/hypergraph"
)

// Config parameterizes the hypergraph generator.
type Config struct {
	Name string
	// NumNodes is the node universe size |V|.
	NumNodes int
	// UniqueEdges is the number of distinct hyperedges |E_H|.
	UniqueEdges int
	// AvgMult is the target average hyperedge multiplicity (Table I's
	// "Avg. M_H"); multiplicities are geometric with this mean.
	AvgMult float64
	// SizeWeights[i] is the relative frequency of hyperedges of size i+2.
	SizeWeights []float64
	// Communities > 0 plants that many node communities; hyperedges are
	// drawn within a community except with probability CrossProb.
	Communities int
	CrossProb   float64
	// DegExponent skews node popularity as a power law; 0 = uniform.
	DegExponent float64
	// Temporal orders hyperedge occurrences by time before the source/
	// target split (timestamped datasets); otherwise the split is random.
	Temporal bool
}

// Dataset is a generated hypergraph with its source/target halves.
type Dataset struct {
	Name   string
	Full   *hypergraph.Hypergraph
	Source *hypergraph.Hypergraph // first half of occurrences (training)
	Target *hypergraph.Hypergraph // second half (reconstruction target)
	Labels []int                  // community label per node; nil if none
}

// occurrence is one hyperedge instance with a timestamp.
type occurrence struct {
	nodes []int
	t     float64
}

// Generate builds a dataset from cfg with the given seed. Generation is
// deterministic for a fixed (cfg, seed).
func Generate(cfg Config, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Name: cfg.Name}

	weights := nodeWeights(cfg.NumNodes, cfg.DegExponent, rng)
	globalCum := cumulative(weights)
	var labels []int
	var members [][]int
	if cfg.Communities > 0 {
		labels, members = plantCommunities(cfg.NumNodes, cfg.Communities, rng)
		ds.Labels = labels
	}

	sizeCum := cumulative(cfg.SizeWeights)
	seen := make(map[string]bool, cfg.UniqueEdges)
	var uniques [][]int
	for len(uniques) < cfg.UniqueEdges {
		s := 2 + sampleCategorical(sizeCum, rng)
		var pool []int
		if cfg.Communities > 0 && rng.Float64() >= cfg.CrossProb {
			pool = members[rng.Intn(len(members))]
		}
		e := sampleEdge(s, pool, weights, globalCum, rng)
		if e == nil {
			continue
		}
		k := hypergraph.KeySorted(e)
		if seen[k] {
			continue
		}
		seen[k] = true
		uniques = append(uniques, e)
	}

	// Expand unique hyperedges into timestamped occurrences: geometric
	// multiplicities with mean AvgMult, occurrences of a recurring group
	// spread over the whole time range so both halves observe the domain's
	// overlap structure.
	var occs []occurrence
	p := 1.0
	if cfg.AvgMult > 1 {
		p = 1 / cfg.AvgMult
	}
	for _, e := range uniques {
		m := 1
		for cfg.AvgMult > 1 && rng.Float64() > p && m < 200 {
			m++
		}
		for i := 0; i < m; i++ {
			occs = append(occs, occurrence{nodes: e, t: rng.Float64()})
		}
	}
	if cfg.Temporal {
		sort.Slice(occs, func(i, j int) bool { return occs[i].t < occs[j].t })
	} else {
		rng.Shuffle(len(occs), func(i, j int) { occs[i], occs[j] = occs[j], occs[i] })
	}

	ds.Full = hypergraph.New(cfg.NumNodes)
	ds.Source = hypergraph.New(cfg.NumNodes)
	ds.Target = hypergraph.New(cfg.NumNodes)
	half := len(occs) / 2
	for i, o := range occs {
		ds.Full.Add(o.nodes)
		if i < half {
			ds.Source.Add(o.nodes)
		} else {
			ds.Target.Add(o.nodes)
		}
	}
	return ds
}

// nodeWeights returns sampling weights; exponent 0 is uniform, otherwise
// weight_i ∝ rank^(−exponent) with ranks shuffled across node ids.
func nodeWeights(n int, exponent float64, rng *rand.Rand) []float64 {
	w := make([]float64, n)
	if exponent <= 0 {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	perm := rng.Perm(n)
	for i, p := range perm {
		w[p] = math.Pow(float64(i+1), -exponent)
	}
	return w
}

// plantCommunities assigns every node to one of k communities of roughly
// equal size and returns (labels, member lists).
func plantCommunities(n, k int, rng *rand.Rand) ([]int, [][]int) {
	labels := make([]int, n)
	perm := rng.Perm(n)
	members := make([][]int, k)
	for i, p := range perm {
		c := i % k
		labels[p] = c
		members[c] = append(members[c], p)
	}
	for _, m := range members {
		sort.Ints(m)
	}
	return labels, members
}

func cumulative(w []float64) []float64 {
	cum := make([]float64, len(w))
	s := 0.0
	for i, v := range w {
		s += v
		cum[i] = s
	}
	return cum
}

func sampleCategorical(cum []float64, rng *rand.Rand) int {
	if len(cum) == 0 {
		return 0
	}
	r := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if r < c {
			return i
		}
	}
	return len(cum) - 1
}

// sampleEdge draws s distinct nodes, weighted by weights, from pool (or,
// when pool is nil, from the whole universe via the precomputed prefix-sum
// globalCum). Returns nil when the pool is too small or sampling stalls.
func sampleEdge(s int, pool []int, weights, globalCum []float64, rng *rand.Rand) []int {
	if pool != nil && len(pool) < s {
		return nil
	}
	picked := make(map[int]bool, s)
	out := make([]int, 0, s)
	for tries := 0; len(out) < s && tries < 50*s+100; tries++ {
		var u int
		if pool != nil {
			u = pool[weightedIndex(pool, weights, rng)]
		} else {
			u = searchCum(globalCum, rng)
		}
		if !picked[u] {
			picked[u] = true
			out = append(out, u)
		}
	}
	if len(out) < s {
		return nil
	}
	sort.Ints(out)
	return out
}

func weightedIndex(cand []int, weights []float64, rng *rand.Rand) int {
	total := 0.0
	for _, u := range cand {
		total += weights[u]
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, u := range cand {
		acc += weights[u]
		if r < acc {
			return i
		}
	}
	return len(cand) - 1
}

// searchCum samples an index proportional to the weights underlying the
// prefix-sum array cum, in O(log n).
func searchCum(cum []float64, rng *rand.Rand) int {
	r := rng.Float64() * cum[len(cum)-1]
	i := sort.SearchFloat64s(cum, r)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

// String summarizes the dataset like a Table I row.
func (d *Dataset) String() string {
	g := d.Full.Project()
	return fmt.Sprintf("%s: |V|=%d |E_H|=%d avgM=%.2f |E_G|=%d avgW=%.2f",
		d.Name, d.Full.NumNodes(), d.Full.NumUnique(), d.Full.AvgMultiplicity(),
		g.NumEdges(), float64(g.TotalWeight())/float64(max(1, g.NumEdges())))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
