package datasets

import (
	"math/rand"
	"sort"

	"marioh/internal/hypergraph"
)

// HyperCL implements the hypergraph Chung–Lu generator of Lee, Choe & Shin
// (WWW 2021), which the paper uses (seeded with DBLP statistics) for the
// scalability study in Fig. 7: every hyperedge independently draws its
// members proportionally to a prescribed node degree sequence.
//
// numEdges hyperedges are generated; sizes are drawn from sizeWeights
// (index i ↦ size i+2) and node degrees follow a power law with the given
// exponent over numNodes nodes.
func HyperCL(numNodes, numEdges int, sizeWeights []float64, degExponent float64, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	weights := nodeWeights(numNodes, degExponent, rng)
	cum := cumulative(weights)
	sizeCum := cumulative(sizeWeights)
	h := hypergraph.New(numNodes)
	for i := 0; i < numEdges; i++ {
		s := 2 + sampleCategorical(sizeCum, rng)
		picked := make(map[int]bool, s)
		nodes := make([]int, 0, s)
		for tries := 0; len(nodes) < s && tries < 50*s+100; tries++ {
			u := searchCum(cum, rng)
			if !picked[u] {
				picked[u] = true
				nodes = append(nodes, u)
			}
		}
		if len(nodes) < 2 {
			continue
		}
		sort.Ints(nodes)
		h.Add(nodes)
	}
	return h
}

// DBLPLikeHyperCL returns a HyperCL hypergraph with DBLP-shaped statistics
// scaled by the given factor (factor 1 ≈ the scaled-down DBLP analog).
// Used to produce the growing inputs of the Fig. 7 scalability sweep.
func DBLPLikeHyperCL(factor float64, seed int64) *hypergraph.Hypergraph {
	base, _ := ConfigByName("dblp")
	n := int(float64(base.NumNodes) * factor)
	e := int(float64(base.UniqueEdges) * factor)
	if n < 10 {
		n = 10
	}
	if e < 5 {
		e = 5
	}
	return HyperCL(n, e, base.SizeWeights, base.DegExponent, seed)
}
