// The fused enumerate→score pipeline: once a round proves itself large
// enough (and workers > 1), clique enumeration stops materializing the
// full [][]int list and streams chunks straight into concurrent scorers.
// Small or serial rounds keep the classic batch phases — enumerate, sort,
// score — with per-clique allocations replaced by an arena; fusing the two
// phases on a single core only thrashes cache. Determinism argument, in
// three pieces:
//
//   - A clique's score depends only on the graph and the clique (scorer
//     structs are pure scratch), so where and when it is scored cannot
//     change the value.
//   - When MaxCliqueLimit is off, the set of cliques a round sees is
//     order-independent, and every consumer of the scored slice
//     (searchComponent's phase sorts) orders by (score, nodes) — a strict
//     total order over distinct cliques — so the stream order never
//     reaches the output. The pipeline is therefore free to emit scored
//     cliques in whatever order scheduling produces.
//   - When MaxCliqueLimit is on, the truncation point does depend on the
//     serial enumeration order, so that path materializes the cliques via
//     graph.MaximalCliquesParallel — which reproduces the exact serial
//     prefix from index-addressed per-seed buckets — and batch-scores them.
package core

import (
	"slices"
	"sync"
	"sync/atomic"

	"marioh/internal/graph"
)

// arenaBlockInts sizes the blocks nodeArena carves clique node slices
// from. One block serves a few hundred small cliques, replacing per-clique
// allocations — the dominant share of the old per-round alloc count — while
// keeping the waste of a round's half-filled final block small.
const arenaBlockInts = 1024

// nodeArena hands out int slices carved from large shared blocks. Slices
// remain valid when the arena moves on to a new block (the old block stays
// referenced by the slices cut from it); a block is freed when every
// clique cut from it is dropped. Rounds drop their cliques together, so
// blocks die with the round — except entries kept by the round cache,
// which can pin the blocks their component's cliques share with others;
// that retention is bounded by one round's clique volume.
type nodeArena struct {
	buf []int
}

// alloc returns a zeroed slice of n ints with full-slice-expression
// capacity, so appends by the caller can never bleed into a neighbor.
func (a *nodeArena) alloc(n int) []int {
	if len(a.buf)+n > cap(a.buf) {
		size := arenaBlockInts
		if n > size {
			size = n
		}
		a.buf = make([]int, 0, size)
	}
	lo := len(a.buf)
	a.buf = a.buf[: lo+n : cap(a.buf)]
	return a.buf[lo : lo+n : lo+n]
}

// cliqueChunk is the hand-off unit between enumeration and scoring
// workers. The clique headers are reused through a sync.Pool; the node
// storage comes from the chunk's arena and escapes into scoredCliques, so
// the arena keeps filling its current block across reuses instead of
// being reset.
type cliqueChunk struct {
	cliques [][]int
	arena   nodeArena
}

// enumerateScored enumerates the maximal cliques of g (min size 2, capped
// at limit when > 0) and scores each as maximal, using at most workers
// goroutines, chunkSize cliques per pipeline hand-off, and staying serial
// below threshold cliques. mapBack, when non-nil, relabels clique nodes
// from g's ids to mapBack[id] after scoring (the induced-subgraph dirty
// path); it must be ascending so relabeled cliques stay sorted.
//
// The scored slice is in no particular order when limit ≤ 0 — callers
// sort by (score, nodes) before anything order-sensitive — and reports
// whether enumeration was truncated by limit.
func enumerateScored(g *graph.Graph, m *Model, limit, workers, chunkSize, threshold int, mapBack []int) ([]scoredClique, bool) {
	if limit > 0 {
		// Truncation depends on the serial enumeration prefix, so the
		// capped path materializes the cliques in exact serial order and
		// batch-scores them.
		cliques := g.MaximalCliquesParallel(2, limit, workers)
		truncated := len(cliques) >= limit
		scored := scoreCliques(g, m, cliques, workers, threshold)
		remapNodes(scored, mapBack)
		return scored, truncated
	}

	s := g.CliqueSeeds(2)
	n := s.NumSeeds()
	if workers > n {
		workers = n
	}

	// Serial prefix: enumerate (without scoring) until the round has proven
	// itself big enough to pay for fan-out. Rounds below the threshold
	// never spawn a goroutine; at workers == 1 this covers the whole graph.
	// Scoring is deliberately NOT fused into this loop: interleaving the
	// scorers' feature extraction with Bron–Kerbosch's bitset walk per
	// clique thrashes cache on a single core — batch phases keep each
	// working set hot, and the arena keeps the alloc win either way.
	var (
		cliques [][]int
		arena   nodeArena
		enum    graph.CliqueEnum
	)
	// emit is hoisted out of the seed loop: one closure per round, not one
	// per seed (which showed up as the top allocator in round profiles).
	emit := func(c []int) bool {
		nodes := arena.alloc(len(c))
		copy(nodes, c)
		cliques = append(cliques, nodes)
		return true
	}
	seed := 0
	for ; seed < n && (workers <= 1 || len(cliques) < threshold); seed++ {
		s.EnumSeed(seed, &enum, emit)
	}
	if seed >= n {
		// The whole graph fit in the serial prefix: reproduce the classic
		// batch shape — lex-sorted cliques, then one scoring pass (which
		// itself fans out past the threshold when workers allow).
		// Lex-sorting first keeps this path's scoring order — and
		// therefore its memory-access pattern — identical to the
		// materialize-then-score reference.
		slices.SortFunc(cliques, cmpNodes)
		scored := scoreCliques(g, m, cliques, workers, threshold)
		remapNodes(scored, mapBack)
		return scored, false
	}
	scored := scoreCliques(g, m, cliques, workers, threshold)
	remapNodes(scored, mapBack)
	return pipelineScore(g, m, s, seed, workers, chunkSize, mapBack, scored), false
}

// pipelineScore drains seeds [start, NumSeeds) through the chunked
// pipeline: enumeration workers pull seed indices from a shared counter
// and emit pooled chunks into a bounded channel; scoring workers consume
// chunks into private result slices, which are concatenated at the end
// (in no particular order — see the package comment). Appending to the
// already-scored serial prefix keeps the whole round in one slice.
func pipelineScore(g *graph.Graph, m *Model, s *graph.CliqueSeeder, start, workers, chunkSize int, mapBack []int, scored []scoredClique) []scoredClique {
	n := s.NumSeeds()
	enumWorkers := workers
	if enumWorkers > n-start {
		enumWorkers = n - start
	}
	ch := make(chan *cliqueChunk, 2*workers)
	pool := &sync.Pool{New: func() any { return &cliqueChunk{} }}
	var next atomic.Int64
	next.Store(int64(start))

	var producers sync.WaitGroup
	for w := 0; w < enumWorkers; w++ {
		producers.Add(1)
		go func() {
			defer producers.Done()
			var enum graph.CliqueEnum
			chunk := pool.Get().(*cliqueChunk)
			emit := func(c []int) bool {
				nodes := chunk.arena.alloc(len(c))
				copy(nodes, c)
				chunk.cliques = append(chunk.cliques, nodes)
				if len(chunk.cliques) >= chunkSize {
					ch <- chunk
					chunk = pool.Get().(*cliqueChunk)
				}
				return true
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				s.EnumSeed(i, &enum, emit)
			}
			if len(chunk.cliques) > 0 {
				ch <- chunk
			} else {
				pool.Put(chunk)
			}
		}()
	}

	results := make([][]scoredClique, workers)
	var consumers sync.WaitGroup
	for w := 0; w < workers; w++ {
		consumers.Add(1)
		go func(out *[]scoredClique) {
			defer consumers.Done()
			var sc scorer
			var local []scoredClique
			for chunk := range ch {
				for _, nodes := range chunk.cliques {
					score := m.scoreScratch(g, nodes, true, &sc)
					remapInPlace(nodes, mapBack)
					local = append(local, scoredClique{nodes: nodes, score: score})
				}
				chunk.cliques = chunk.cliques[:0]
				pool.Put(chunk)
			}
			*out = local
		}(&results[w])
	}
	producers.Wait()
	close(ch)
	consumers.Wait()
	for _, r := range results {
		scored = append(scored, r...)
	}
	return scored
}

// remapInPlace relabels nodes through back (nil = identity). back is
// ascending, so a sorted clique stays sorted.
func remapInPlace(nodes []int, back []int) {
	if back == nil {
		return
	}
	for j, u := range nodes {
		nodes[j] = back[u]
	}
}

// remapNodes relabels every scored clique through back (nil = identity).
func remapNodes(scored []scoredClique, back []int) {
	if back == nil {
		return
	}
	for i := range scored {
		remapInPlace(scored[i].nodes, back)
	}
}
