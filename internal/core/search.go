package core

import (
	"context"
	"math/rand"
	"sort"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// scoredClique pairs a clique with its classifier score.
type scoredClique struct {
	nodes []int
	score float64
}

// SearchOptions configure one round of BidirectionalSearch.
type SearchOptions struct {
	// Ctx, when non-nil, is polled between the phases of the round and
	// while walking accepted cliques; cancellation makes the search return
	// early with whatever it has accepted so far.
	Ctx context.Context
	// Theta is the current acceptance threshold θ.
	Theta float64
	// R is the negative prediction processing ratio r (%): the share of
	// below-threshold maximal cliques whose sub-cliques are explored.
	R float64
	// DisableSubcliques skips Phase 2 entirely (the MARIOH-B ablation).
	DisableSubcliques bool
	// MaxCliqueLimit caps maximal-clique enumeration per round (safety
	// valve for pathologically dense residual graphs); ≤ 0 means no cap.
	MaxCliqueLimit int
}

// BidirectionalSearch performs one round of MARIOH's Algorithm 3 on the
// residual graph g, appending accepted hyperedges to rec and subtracting
// their constituent edges from g. It returns the number of hyperedge
// occurrences accepted this round.
//
// Phase 1 walks the above-threshold maximal cliques in descending score
// order, re-checking before each acceptance that all clique edges still
// exist (earlier acceptances may have consumed them). Phase 2 samples, for
// every clique among the lowest-r% below-threshold ones, one random
// k-sub-clique per size k ∈ [2, |Q|−1], keeps those scoring above θ, and
// accepts them the same way.
func BidirectionalSearch(g *graph.Graph, m *Model, opts SearchOptions, rec *hypergraph.Hypergraph, rng *rand.Rand) int {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	limit := opts.MaxCliqueLimit
	if limit <= 0 {
		limit = -1
	}
	cliques := g.MaximalCliquesLimit(2, limit)
	if len(cliques) == 0 || ctx.Err() != nil {
		return 0
	}
	scored := scoreCliques(g, m, cliques)
	var pos, rest []scoredClique
	for _, sc := range scored {
		if sc.score > opts.Theta {
			pos = append(pos, sc)
		} else {
			rest = append(rest, sc)
		}
	}

	accepted := 0
	// Phase 1: most promising cliques, highest score first.
	sortByScoreDesc(pos)
	for i, sc := range pos {
		if i&0x3ff == 0 && ctx.Err() != nil {
			return accepted
		}
		if allEdgesPresent(g, sc.nodes) {
			rec.Add(sc.nodes)
			consumeClique(g, sc.nodes)
			accepted++
		}
	}

	if opts.DisableSubcliques || ctx.Err() != nil {
		return accepted
	}

	// Phase 2: least promising cliques — the lowest r% by score.
	sortByScoreAsc(rest)
	nNeg := int(float64(len(rest)) * opts.R / 100)
	if nNeg > len(rest) {
		nNeg = len(rest)
	}
	var subs []scoredClique
	var ps PermSampler
	var scorerBuf scorer
	for i, sc := range rest[:nNeg] {
		if i&0x3ff == 0 && ctx.Err() != nil {
			return accepted
		}
		q := sc.nodes
		for k := 2; k <= len(q)-1; k++ {
			sub := ps.Sample(q, k, rng)
			if s := m.scoreScratch(g, sub, false, &scorerBuf); s > opts.Theta {
				subs = append(subs, scoredClique{nodes: sub, score: s})
			}
		}
	}
	sortByScoreDesc(subs)
	for _, sc := range subs {
		if allEdgesPresent(g, sc.nodes) {
			rec.Add(sc.nodes)
			consumeClique(g, sc.nodes)
			accepted++
		}
	}
	return accepted
}

// allEdgesPresent reports whether every pair of nodes in q is still an edge
// of g (the E_Q ⊆ E_G' check of Algorithm 3).
func allEdgesPresent(g *graph.Graph, q []int) bool {
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			if !g.HasEdge(q[i], q[j]) {
				return false
			}
		}
	}
	return true
}

// consumeClique decrements ω by one on every edge of the clique, deleting
// edges whose multiplicity reaches zero.
func consumeClique(g *graph.Graph, q []int) {
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			g.AddWeight(q[i], q[j], -1)
		}
	}
}

// sortByScoreDesc orders by descending score, breaking ties by clique
// lexicographic order for determinism.
func sortByScoreDesc(s []scoredClique) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return lessNodes(s[i].nodes, s[j].nodes)
	})
}

func sortByScoreAsc(s []scoredClique) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score < s[j].score
		}
		return lessNodes(s[i].nodes, s[j].nodes)
	})
}

func lessNodes(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
