package core

import (
	"context"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// scoredClique pairs a clique with its classifier score.
type scoredClique struct {
	nodes []int
	score float64
}

// roundCache carries per-component clique enumeration and scoring results
// across search rounds of one reconstruction run. A component that accepts
// nothing in a round is unchanged, so its maximal cliques and scores next
// round are bit-for-bit identical; the shard executor reuses them and
// re-enumerates (through an induced subgraph) only the components that
// consumed edges — where the serial pipeline re-enumerates and re-scores
// the whole residual every round. The reuse is exact for the same reason
// sharding is: every feature is component-local, so scoring a component's
// cliques in an induced subgraph reproduces the full-graph scores bit for
// bit. (Phase 1 and Phase 2 still run every round for every live
// component; only enumeration and maximal-clique scoring are skipped.)
// The serial pipeline deliberately runs cache-free — it is the reference
// implementation the equivalence tests compare against.
type roundCache struct {
	comps map[int][]scoredClique // component key → its scored cliques
}

// SearchOptions configure one round of BidirectionalSearch.
type SearchOptions struct {
	// Ctx, when non-nil, is polled between the phases of the round and
	// while walking accepted cliques; cancellation makes the search return
	// early with whatever it has accepted so far.
	Ctx context.Context
	// Theta is the current acceptance threshold θ.
	Theta float64
	// R is the negative prediction processing ratio r (%): the share of
	// below-threshold maximal cliques, per connected component, whose
	// sub-cliques are explored.
	R float64
	// DisableSubcliques skips Phase 2 entirely (the MARIOH-B ablation).
	DisableSubcliques bool
	// MaxCliqueLimit caps maximal-clique enumeration per round (safety
	// valve for pathologically dense residual graphs); ≤ 0 means no cap.
	// The cap is a global per-round budget, so it is the one option that
	// does not decompose over shards (see ReconstructSharded).
	MaxCliqueLimit int
	// Round is the 0-based global round index. Together with Seed it keys
	// the per-component sub-clique sampling streams, which is what makes a
	// round decompose exactly over connected components (and therefore
	// over shards): the samples drawn for one component never depend on
	// what other components — possibly living in other shards — are doing.
	Round int
	// Seed is the run seed (Options.Seed).
	Seed int64
	// OrigID maps node ids of g to the ids of the original unsharded
	// graph; nil means g is the original graph. The mapping must be
	// order-preserving. Component sampling streams are keyed by original
	// ids, so a shard draws exactly the samples the serial run draws for
	// the same component.
	OrigID []int
	// Parallelism bounds the worker fan-out of the round (enumeration,
	// scoring, per-component search); ≤ 0 = GOMAXPROCS, 1 = serial.
	// Output bytes are identical at every setting.
	Parallelism int
	// ScoreParallelThreshold is the clique count at which scoring and the
	// fused pipeline fan out; ≤ 0 = the documented default (256).
	ScoreParallelThreshold int
	// PipelineChunk is the fused pipeline's hand-off chunk size; ≤ 0 =
	// the documented default (64).
	PipelineChunk int
	// StallDump, when true, dumps the remaining edges of every component
	// that accepted nothing this round as size-2 hyperedges — the
	// termination guarantee for bottomed-out (or α-frozen) thresholds,
	// applied per component so it decomposes over shards. Dumped
	// occurrences count as accepted.
	StallDump bool
	// cache, when non-nil, reuses the previous round's enumeration and
	// scores if the residual graph has not changed, and records this
	// round's for the next.
	cache *roundCache
}

// BidirectionalSearch performs one round of MARIOH's Algorithm 3 on the
// residual graph g, appending accepted hyperedges to rec and subtracting
// their constituent edges from g. It returns the number of hyperedge
// occurrences accepted this round.
//
// The round is processed per connected component of g, in ascending order
// of component key (the smallest original node id in the component).
// Within a component, Phase 1 walks the above-threshold maximal cliques in
// descending score order, re-checking before each acceptance that all
// clique edges still exist. Phase 2 samples, for every clique among the
// component's lowest-r% below-threshold ones, one random k-sub-clique per
// size k ∈ [2, |Q|−1] from a component-keyed stream, keeps those scoring
// above θ, and accepts them the same way. Components never share edges, so
// this per-component order produces exactly the same acceptances as any
// interleaving — which is what makes the round equal to the union of the
// same round run on each component (or shard) separately.
func BidirectionalSearch(g *graph.Graph, m *Model, opts SearchOptions, rec *hypergraph.Hypergraph) int {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	limit := opts.MaxCliqueLimit
	if limit <= 0 {
		limit = -1
	}
	workers := resolveWorkers(opts.Parallelism)
	threshold := opts.ScoreParallelThreshold
	if threshold <= 0 {
		threshold = defaultScoreParallelThreshold
	}
	chunkSize := opts.PipelineChunk
	if chunkSize <= 0 {
		chunkSize = defaultPipelineChunk
	}
	key := componentKeys(g, opts.OrigID)

	// Partition the live components into cached ones (unchanged since
	// their last enumeration) and dirty ones that need a fresh pass.
	live := map[int]bool{}
	var dirtyNodes []int
	for v, k := range key {
		if k < 0 {
			continue
		}
		live[k] = true
		if opts.cache != nil {
			if _, ok := opts.cache.comps[k]; ok {
				continue
			}
		}
		dirtyNodes = append(dirtyNodes, v)
	}

	// Group this round's cliques by the component they live in. Cliques
	// never span components, so the first node's key labels the clique.
	groups := map[int][]scoredClique{}
	if opts.cache != nil {
		for k, sc := range opts.cache.comps {
			if live[k] {
				groups[k] = sc
			}
		}
	}
	truncated := false
	if len(dirtyNodes) > 0 {
		var scored []scoredClique
		if opts.cache == nil || len(opts.cache.comps) == 0 {
			// Cache-free (the serial pipeline) or fully cold: enumerate
			// the graph directly, fused with scoring.
			scored, truncated = enumerateScored(g, m, limit, workers, chunkSize, threshold, nil)
		} else {
			// Re-enumerate and re-score only the changed components,
			// through the induced subgraph — exact because dirtyNodes is
			// a union of whole components, the relabeling is
			// order-preserving, and every feature is component-local.
			sub, back := g.Subgraph(dirtyNodes)
			scored, truncated = enumerateScored(sub, m, limit, workers, chunkSize, threshold, back)
		}
		if ctx.Err() != nil {
			return 0
		}
		for _, sc := range scored {
			k := key[sc.nodes[0]]
			groups[k] = append(groups[k], sc)
		}
	}
	if len(groups) == 0 && !opts.StallDump {
		return 0
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	accepted := 0
	acceptedBy := make(map[int]int, len(groups))
	if workers > 1 && len(keys) > 1 {
		accepted = searchComponentsParallel(g, m, opts, rec, keys, groups, acceptedBy, workers)
	} else {
		for _, k := range keys {
			if ctx.Err() != nil {
				break
			}
			edges := searchComponent(g, m, opts, k, groups[k])
			for _, e := range edges {
				rec.Add(e)
			}
			acceptedBy[k] = len(edges)
			accepted += len(edges)
		}
	}

	if opts.StallDump && ctx.Err() == nil {
		accepted += dumpStalledComponents(g, rec, key, acceptedBy)
	}

	if opts.cache != nil {
		if opts.cache.comps == nil {
			opts.cache.comps = map[int][]scoredClique{}
		}
		for k := range opts.cache.comps {
			if !live[k] {
				delete(opts.cache.comps, k)
			}
		}
		for k, sc := range groups {
			// A component that accepted (or dumped) nothing is unchanged:
			// its enumeration and scores stay valid verbatim. Truncated
			// enumerations are never cached — the clique budget must be
			// re-applied from scratch each round.
			if acceptedBy[k] == 0 && !truncated {
				opts.cache.comps[k] = sc
			} else {
				delete(opts.cache.comps, k)
			}
		}
	}
	return accepted
}

// searchComponentsParallel fans searchComponent over the components of
// the round. Safe because components never share edges: each worker
// mutates only its component's adjacency rows (the graph's global edge/
// weight counters are atomic), and every graph read a component's search
// performs — scoring features, edge-presence checks — is local to that
// component, so it observes exactly the state the serial walk would.
// Acceptances land in index-addressed per-component buffers, never in
// shared state, and are merged into rec in ascending key order after the
// join — the order the serial walk inserts them — so rec's in-memory
// insertion order, the acceptance counts, and the cache bookkeeping all
// match the serial path exactly.
func searchComponentsParallel(g *graph.Graph, m *Model, opts SearchOptions, rec *hypergraph.Hypergraph, keys []int, groups map[int][]scoredClique, acceptedBy map[int]int, workers int) int {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([][][]int, len(keys))
	processed := make([]bool, len(keys))
	var next atomic.Int64
	var wg sync.WaitGroup
	if workers > len(keys) {
		workers = len(keys)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(keys) || ctx.Err() != nil {
					return
				}
				results[idx] = searchComponent(g, m, opts, keys[idx], groups[keys[idx]])
				processed[idx] = true
			}
		}()
	}
	wg.Wait()
	accepted := 0
	for i, k := range keys {
		if !processed[i] {
			// Skipped by cancellation; like the serial loop's break, the
			// component stays out of acceptedBy.
			continue
		}
		for _, e := range results[i] {
			rec.Add(e)
		}
		acceptedBy[k] = len(results[i])
		accepted += len(results[i])
	}
	return accepted
}

// searchComponent runs both phases of a round on one component's cliques,
// consuming accepted cliques from g and returning them in acceptance
// order; the caller records them into the reconstruction. Mutations and
// reads stay inside the component, which is what makes the parallel
// fan-out above exact.
func searchComponent(g *graph.Graph, m *Model, opts SearchOptions, compKey int, cliques []scoredClique) [][]int {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var pos, rest []scoredClique
	for _, sc := range cliques {
		if sc.score > opts.Theta {
			pos = append(pos, sc)
		} else {
			rest = append(rest, sc)
		}
	}

	var accepted [][]int
	// Phase 1: most promising cliques, highest score first.
	sortByScoreDesc(pos)
	for i, sc := range pos {
		if i&0x3ff == 0 && ctx.Err() != nil {
			return accepted
		}
		if allEdgesPresent(g, sc.nodes) {
			accepted = append(accepted, sc.nodes)
			consumeClique(g, sc.nodes)
		}
	}

	if opts.DisableSubcliques || ctx.Err() != nil {
		return accepted
	}

	// Phase 2: least promising cliques — the component's lowest r% by
	// score — with a sampling stream owned by (seed, round, component).
	sortByScoreAsc(rest)
	nNeg := int(float64(len(rest)) * opts.R / 100)
	if nNeg > len(rest) {
		nNeg = len(rest)
	}
	if nNeg == 0 {
		return accepted
	}
	rng := newSampleRNG(sampleSeed(opts.Seed, opts.Round, compKey))
	var subs []scoredClique
	var ps PermSampler
	var scorerBuf scorer
	for i, sc := range rest[:nNeg] {
		if i&0x3ff == 0 && ctx.Err() != nil {
			return accepted
		}
		q := sc.nodes
		for k := 2; k <= len(q)-1; k++ {
			sub := ps.Sample(q, k, rng)
			if s := m.scoreScratch(g, sub, false, &scorerBuf); s > opts.Theta {
				subs = append(subs, scoredClique{nodes: sub, score: s})
			}
		}
	}
	sortByScoreDesc(subs)
	for _, sc := range subs {
		if allEdgesPresent(g, sc.nodes) {
			accepted = append(accepted, sc.nodes)
			consumeClique(g, sc.nodes)
		}
	}
	return accepted
}

// dumpStalledComponents consumes the remaining edges of every component
// that was processed this round yet accepted nothing, emitting them as
// size-2 hyperedges so the outer loop always terminates once θ has
// bottomed out (or is frozen by α = 0) even when the classifier never
// scores a clique above the threshold. The rule is evaluated per
// component — never globally — so a stalled component is dumped at the
// same round whether it is reconstructed in the full graph or inside a
// shard. Components absent from acceptedBy were never enumerated (their
// cliques fell beyond a MaxCliqueLimit budget); they have not stalled —
// they are still waiting their turn — and are left intact.
func dumpStalledComponents(g *graph.Graph, rec *hypergraph.Hypergraph, key []int, acceptedBy map[int]int) int {
	var doomed []graph.Edge
	for _, e := range g.Edges() {
		if a, processed := acceptedBy[key[e.U]]; processed && a == 0 {
			doomed = append(doomed, e)
		}
	}
	dumped := 0
	for _, e := range doomed {
		rec.AddMult([]int{e.U, e.V}, e.W)
		g.RemoveEdge(e.U, e.V)
		// Count the dump as that component's acceptances so the caller
		// both reports it and invalidates the component's cache entry.
		acceptedBy[key[e.U]] += e.W
		dumped += e.W
	}
	return dumped
}

// componentKeys labels every node of g with its component key — the
// smallest original node id in its connected component — or -1 for
// isolated nodes. Nodes are visited in ascending local id and origID is
// order-preserving, so the first node seen of each component carries its
// key.
func componentKeys(g *graph.Graph, origID []int) []int {
	n := g.NumNodes()
	key := make([]int, n)
	for i := range key {
		key[i] = -1
	}
	stack := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if key[s] >= 0 || g.Degree(s) == 0 {
			continue
		}
		k := s
		if origID != nil {
			k = origID[s]
		}
		key[s] = k
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.NeighborWeights(u, func(v, _ int) {
				if key[v] < 0 {
					key[v] = k
					stack = append(stack, v)
				}
			})
		}
	}
	return key
}

// sampleSeed derives the Phase-2 sampling stream of one component in one
// round. Keying by (run seed, round, component) — instead of consuming one
// global stream in clique order — makes sub-clique sampling independent of
// how components are interleaved or partitioned across shards.
func sampleSeed(seed int64, round, compKey int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(round))
	h = splitmix64(h ^ uint64(compKey))
	return int64(h)
}

// splitmix64 is the SplitMix64 finalizer, a cheap high-quality mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampleRNG is the SplitMix64 generator behind Phase-2 sampling. One
// component consumes one stream per round, so seeding must be cheap: this
// is a single word write, where math/rand's lagged-Fibonacci source warms
// up 607 words per seed — which dominated round costs on graphs with many
// small components.
type sampleRNG struct{ s uint64 }

func newSampleRNG(seed int64) *sampleRNG { return &sampleRNG{s: uint64(seed)} }

// Intn returns a uniform int in [0, n), rejection-sampled for exact
// uniformity. It panics if n is not positive, matching math/rand.
func (r *sampleRNG) Intn(n int) int {
	if n <= 0 {
		panic("sampleRNG: Intn with non-positive n")
	}
	un := uint64(n)
	// Values ≥ limit would bias the modulus; redraw on them. For the
	// small n used here (clique sizes) the loop essentially never spins.
	limit := ^uint64(0) - ^uint64(0)%un
	for {
		r.s += 0x9e3779b97f4a7c15
		v := r.s
		v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		v ^= v >> 31
		if v < limit {
			return int(v % un)
		}
	}
}

// allEdgesPresent reports whether every pair of nodes in q is still an edge
// of g (the E_Q ⊆ E_G' check of Algorithm 3).
func allEdgesPresent(g *graph.Graph, q []int) bool {
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			if !g.HasEdge(q[i], q[j]) {
				return false
			}
		}
	}
	return true
}

// consumeClique decrements ω by one on every edge of the clique, deleting
// edges whose multiplicity reaches zero.
func consumeClique(g *graph.Graph, q []int) {
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			g.AddWeight(q[i], q[j], -1)
		}
	}
}

// sortByScoreDesc orders by descending score, breaking ties by clique
// lexicographic order for determinism.
// The score sorts use concrete slices.SortFunc rather than the reflective
// sort.SliceStable: (score, nodes) is a strict total order over the distinct
// cliques of a round, so every correct sort — stable or not — produces the
// same permutation, and the reflection-free swap is measurably cheaper on
// large rounds.
func sortByScoreDesc(s []scoredClique) {
	slices.SortFunc(s, func(a, b scoredClique) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return cmpNodes(a.nodes, b.nodes)
	})
}

func sortByScoreAsc(s []scoredClique) {
	slices.SortFunc(s, func(a, b scoredClique) int {
		if a.score != b.score {
			if a.score < b.score {
				return -1
			}
			return 1
		}
		return cmpNodes(a.nodes, b.nodes)
	})
}

func cmpNodes(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}
