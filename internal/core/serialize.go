package core

import (
	"encoding/json"
	"fmt"
	"io"

	"marioh/internal/features"
	"marioh/internal/mlp"
)

// modelJSON is the serialized form of a trained Model. The featurizer is
// stored by name and resolved through the features registry on load.
type modelJSON struct {
	Featurizer string            `json:"featurizer"`
	Std        *mlp.Standardizer `json:"standardizer"`
	Net        *mlp.Net          `json:"net"`
}

// Save writes the trained model as JSON. Training statistics are not
// persisted — they describe a particular training run, not the model.
func (m *Model) Save(w io.Writer) error {
	if m.Net == nil || m.Std == nil || m.Feat == nil {
		return fmt.Errorf("core: cannot save an untrained model")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{
		Featurizer: m.Feat.Name(),
		Std:        m.Std,
		Net:        m.Net,
	})
}

// LoadModel restores a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	feat, ok := features.ByName(mj.Featurizer)
	if !ok {
		return nil, fmt.Errorf("core: unknown featurizer %q", mj.Featurizer)
	}
	if mj.Net == nil || mj.Std == nil {
		return nil, fmt.Errorf("core: incomplete model file")
	}
	if len(mj.Net.Sizes) == 0 || mj.Net.Sizes[0] != feat.Dim() {
		return nil, fmt.Errorf("core: model input width %v does not match featurizer %q (dim %d)",
			mj.Net.Sizes, mj.Featurizer, feat.Dim())
	}
	return &Model{Feat: feat, Std: mj.Std, Net: mj.Net}, nil
}
