package core

import (
	"math/rand"
	"testing"

	"marioh/internal/datasets"
	"marioh/internal/eval"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

func TestFilterEmitsGuaranteedSize2(t *testing.T) {
	// H = {0,1}×3 ∪ {0,1,2}×1. In G: ω(0,1)=4, ω(0,2)=ω(1,2)=1.
	// MHH(0,1) = min(1,1) = 1, so r(0,1) = 3 size-2 hyperedges are provable.
	h := hypergraph.New(3)
	h.AddMult([]int{0, 1}, 3)
	h.Add([]int{0, 1, 2})
	g := h.Project()

	rec := hypergraph.New(3)
	emitted := Filter(g, rec)
	if emitted != 3 {
		t.Fatalf("emitted %d size-2 hyperedges, want 3", emitted)
	}
	if rec.Multiplicity([]int{0, 1}) != 3 {
		t.Fatalf("mult({0,1}) = %d, want 3", rec.Multiplicity([]int{0, 1}))
	}
	if g.Weight(0, 1) != 1 {
		t.Fatalf("residual ω(0,1) = %d, want 1", g.Weight(0, 1))
	}
}

func TestFilterRemovesEdgeWhenWeightHitsZero(t *testing.T) {
	// A single size-2 hyperedge: ω(0,1)=1, MHH=0, r=1 → edge removed.
	h := hypergraph.New(2)
	h.Add([]int{0, 1})
	g := h.Project()
	rec := hypergraph.New(2)
	Filter(g, rec)
	if g.NumEdges() != 0 {
		t.Fatal("edge should be fully consumed by filtering")
	}
	if rec.Multiplicity([]int{0, 1}) != 1 {
		t.Fatal("size-2 hyperedge not recovered")
	}
}

func TestFilterSoundness(t *testing.T) {
	// On random hypergraphs, filtering must never claim more size-2
	// hyperedges {u,v} than the ground truth contains (Lemma 2 soundness).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		h := hypergraph.New(10)
		nEdges := 3 + rng.Intn(12)
		for i := 0; i < nEdges; i++ {
			s := 2 + rng.Intn(3)
			seen := map[int]bool{}
			var nodes []int
			for len(nodes) < s {
				u := rng.Intn(10)
				if !seen[u] {
					seen[u] = true
					nodes = append(nodes, u)
				}
			}
			h.AddMult(nodes, 1+rng.Intn(3))
		}
		g := h.Project()
		rec := hypergraph.New(10)
		Filter(g, rec)
		rec.Each(func(nodes []int, mult int) {
			if len(nodes) != 2 {
				t.Fatalf("filter emitted non-size-2 hyperedge %v", nodes)
			}
			if truth := h.Multiplicity(nodes); mult > truth {
				t.Fatalf("trial %d: filter claimed %v×%d but truth has %d",
					trial, nodes, mult, truth)
			}
		})
	}
}

func TestIsMaximalClique(t *testing.T) {
	g := graph.New(4)
	g.AddWeight(0, 1, 1)
	g.AddWeight(0, 2, 1)
	g.AddWeight(1, 2, 1)
	g.AddWeight(2, 3, 1)
	if !isMaximalClique(g, []int{0, 1, 2}) {
		t.Fatal("{0,1,2} is maximal")
	}
	if isMaximalClique(g, []int{0, 1}) {
		t.Fatal("{0,1} extends to {0,1,2}")
	}
	if !isMaximalClique(g, []int{2, 3}) {
		t.Fatal("{2,3} is maximal")
	}
}

func TestTrainProducesCalibratedModel(t *testing.T) {
	ds := datasets.MustByName("crime", 1)
	src := ds.Source.Reduced()
	m := Train(src.Project(), src, TrainOptions{Seed: 1})
	if m.Stats.Positives == 0 || m.Stats.Negatives == 0 {
		t.Fatalf("degenerate training set: %d pos, %d neg", m.Stats.Positives, m.Stats.Negatives)
	}
	// The model should, on average, score true source hyperedges higher
	// than random non-hyperedge subcliques.
	g := src.Project()
	posAvg, n := 0.0, 0
	src.Each(func(nodes []int, _ int) {
		posAvg += m.Score(g, nodes, isMaximalClique(g, nodes))
		n++
	})
	posAvg /= float64(n)
	if posAvg < 0.5 {
		t.Fatalf("positive score average %.3f < 0.5", posAvg)
	}
}

func TestReconstructPerfectOnDisjointHyperedges(t *testing.T) {
	// Disjoint hyperedges are unambiguous: reconstruction must be exact.
	h := hypergraph.New(12)
	h.Add([]int{0, 1, 2})
	h.Add([]int{3, 4})
	h.Add([]int{5, 6, 7, 8})
	h.Add([]int{9, 10})
	m := Train(h.Project(), h, TrainOptions{Seed: 2})
	res := Reconstruct(h.Project(), m, Options{Seed: 2})
	if got := eval.Jaccard(h, res.Hypergraph); got < 0.99 {
		t.Fatalf("Jaccard = %.3f, want 1.0; got %v", got, res.Hypergraph.UniqueEdges())
	}
}

func TestReconstructTerminatesAndConsumesAllEdges(t *testing.T) {
	ds := datasets.MustByName("hosts", 7)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	m := Train(src.Project(), src, TrainOptions{Seed: 7})
	res := Reconstruct(tgt.Project(), m, Options{Seed: 7})
	if res.Hypergraph.NumUnique() == 0 {
		t.Fatal("empty reconstruction")
	}
	// The reconstruction's projection must exactly reproduce the input
	// weighted graph: MARIOH consumes every unit of edge multiplicity.
	want := tgt.Project()
	got := res.Hypergraph.Project()
	if got.TotalWeight() != want.TotalWeight() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("projection mismatch: got %d edges/%d weight, want %d/%d",
			got.NumEdges(), got.TotalWeight(), want.NumEdges(), want.TotalWeight())
	}
	for _, e := range want.Edges() {
		if got.Weight(e.U, e.V) != e.W {
			t.Fatalf("ω(%d,%d) = %d, want %d", e.U, e.V, got.Weight(e.U, e.V), e.W)
		}
	}
}

func TestReconstructAccuracyOnSparseDatasets(t *testing.T) {
	// Sparse, low-multiplicity datasets are where the paper reports near-
	// perfect recovery; our analogs must behave the same.
	for _, name := range []string{"crime", "directors"} {
		ds := datasets.MustByName(name, 11)
		src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
		m := Train(src.Project(), src, TrainOptions{Seed: 11})
		res := Reconstruct(tgt.Project(), m, Options{Seed: 11})
		if j := eval.Jaccard(tgt, res.Hypergraph); j < 0.8 {
			t.Errorf("%s: Jaccard = %.3f, want ≥ 0.8", name, j)
		}
	}
}

func TestReconstructDeterministic(t *testing.T) {
	ds := datasets.MustByName("crime", 5)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	m := Train(src.Project(), src, TrainOptions{Seed: 5})
	a := Reconstruct(tgt.Project(), m, Options{Seed: 9})
	b := Reconstruct(tgt.Project(), m, Options{Seed: 9})
	if !a.Hypergraph.Equal(b.Hypergraph) {
		t.Fatal("same seed produced different reconstructions")
	}
}

func TestVariantsRun(t *testing.T) {
	ds := datasets.MustByName("crime", 13)
	src, tgt := ds.Source.Reduced(), ds.Target.Reduced()
	m := Train(src.Project(), src, TrainOptions{Seed: 13})
	for _, opt := range []Options{
		{DisableFiltering: true, Seed: 1},
		{DisableBidirectional: true, Seed: 1},
		{DisableFiltering: true, DisableBidirectional: true, Seed: 1},
	} {
		res := Reconstruct(tgt.Project(), m, opt)
		if res.Hypergraph.NumUnique() == 0 {
			t.Fatalf("variant %+v produced empty reconstruction", opt)
		}
	}
}

func TestScoreCliquesParallelMatchesSequential(t *testing.T) {
	// Force the parallel path with > defaultScoreParallelThreshold cliques and
	// compare against direct sequential scoring.
	ds := datasets.MustByName("eu", 1)
	src := ds.Source.Reduced()
	g := src.Project()
	m := Train(g, src, TrainOptions{Seed: 1, Epochs: 10})
	cliques := g.MaximalCliquesLimit(2, 1000)
	if len(cliques) <= defaultScoreParallelThreshold {
		t.Skipf("only %d cliques; cannot exercise parallel path", len(cliques))
	}
	got := ScoreCliques(g, m, cliques)
	for i, q := range cliques {
		if want := m.Score(g, q, true); got[i] != want {
			t.Fatalf("clique %d: parallel %v != sequential %v", i, got[i], want)
		}
	}
}

func TestSemiSupervisedTrainUsesFraction(t *testing.T) {
	ds := datasets.MustByName("hosts", 3)
	src := ds.Source.Reduced()
	m := Train(src.Project(), src, TrainOptions{Seed: 3, SupervisionRatio: 0.2})
	want := int(float64(src.NumUnique()) * 0.2)
	if m.Stats.Positives != want {
		t.Fatalf("positives = %d, want %d", m.Stats.Positives, want)
	}
}

func TestBidirectionalSearchRespectsConsumedEdges(t *testing.T) {
	// Two overlapping triangles sharing an edge with ω=1: after the first
	// is accepted, the second no longer exists (Fig. 3's (A)/(B) case).
	h := hypergraph.New(4)
	h.Add([]int{0, 1, 2})
	g := h.Project()
	g.AddWeight(1, 3, 1)
	g.AddWeight(2, 3, 1) // {1,2,3} is also a clique, sharing edge {1,2}
	m := Train(h.Project(), h, TrainOptions{Seed: 1})
	rec := hypergraph.New(4)
	BidirectionalSearch(g, m, SearchOptions{Theta: 0, R: 100, Seed: 1}, rec)
	// Whichever triangle is taken first, the shared edge {1,2} can only be
	// consumed once in total across size-3 acceptances.
	if rec.Contains([]int{0, 1, 2}) && rec.Contains([]int{1, 2, 3}) {
		t.Fatal("both overlapping triangles accepted despite shared ω=1 edge")
	}
}

func TestMultiplicityPreservedReconstruction(t *testing.T) {
	// A duplicated triangle: ω=2 on every edge. MARIOH should be able to
	// emit the triangle twice across rounds.
	h := hypergraph.New(3)
	h.AddMult([]int{0, 1, 2}, 2)
	m := Train(h.Project(), h, TrainOptions{Seed: 4})
	res := Reconstruct(h.Project(), m, Options{Seed: 4})
	if got := res.Hypergraph.Multiplicity([]int{0, 1, 2}); got != 2 {
		t.Fatalf("multiplicity = %d, want 2 (rec=%v)", got, res.Hypergraph.EdgesWithMult())
	}
}
