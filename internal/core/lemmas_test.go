package core

import (
	"math/rand"
	"testing"

	"marioh/internal/hypergraph"
)

// randomHypergraph draws a small random multiset hypergraph.
func randomHypergraph(rng *rand.Rand, n, edges int) *hypergraph.Hypergraph {
	h := hypergraph.New(n)
	for i := 0; i < edges; i++ {
		s := 2 + rng.Intn(4)
		seen := map[int]bool{}
		var nodes []int
		for len(nodes) < s {
			u := rng.Intn(n)
			if !seen[u] {
				seen[u] = true
				nodes = append(nodes, u)
			}
		}
		h.AddMult(nodes, 1+rng.Intn(3))
	}
	return h
}

// TestLemma1MHHUpperBound verifies Lemma 1 on random hypergraphs: for
// every projected edge (u, v), MHH(u, v) computed from the projection is
// an upper bound on the number of size-≥3 hyperedge occurrences containing
// both u and v.
func TestLemma1MHHUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		h := randomHypergraph(rng, 12, 3+rng.Intn(15))
		g := h.Project()
		for _, e := range g.Edges() {
			mhh := g.SumMinCommonWeight(e.U, e.V)
			actual := 0
			h.Each(func(nodes []int, mult int) {
				if len(nodes) < 3 {
					return
				}
				hasU, hasV := false, false
				for _, x := range nodes {
					if x == e.U {
						hasU = true
					}
					if x == e.V {
						hasV = true
					}
				}
				if hasU && hasV {
					actual += mult
				}
			})
			if actual > mhh {
				t.Fatalf("trial %d: Lemma 1 violated at (%d,%d): %d higher-order hyperedges > MHH %d",
					trial, e.U, e.V, actual, mhh)
			}
		}
	}
}

// TestLemma2ResidualLowerBound verifies Lemma 2 on random hypergraphs: the
// residual r(u,v) = ω(u,v) − MHH(u,v), when positive, never exceeds the
// true multiplicity of the size-2 hyperedge {u, v}.
func TestLemma2ResidualLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		h := randomHypergraph(rng, 12, 3+rng.Intn(15))
		g := h.Project()
		for _, e := range g.Edges() {
			r := e.W - g.SumMinCommonWeight(e.U, e.V)
			if r <= 0 {
				continue
			}
			if truth := h.Multiplicity([]int{e.U, e.V}); r > truth {
				t.Fatalf("trial %d: Lemma 2 violated at (%d,%d): residual %d > true multiplicity %d",
					trial, e.U, e.V, r, truth)
			}
		}
	}
}

// TestSearchNeverIncreasesWeight: every BidirectionalSearch round strictly
// consumes graph weight (or leaves it unchanged when nothing is accepted).
func TestSearchNeverIncreasesWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		h := randomHypergraph(rng, 10, 6)
		m := Train(h.Project(), h, TrainOptions{Seed: int64(trial), Epochs: 10})
		g := h.Project()
		rec := hypergraph.New(10)
		for round := 0; round < 50 && g.NumEdges() > 0; round++ {
			before := g.TotalWeight()
			accepted := BidirectionalSearch(g, m, SearchOptions{Theta: 0.5, R: 50,
				Round: round, Seed: int64(trial)}, rec)
			after := g.TotalWeight()
			if after > before {
				t.Fatalf("weight grew: %d -> %d", before, after)
			}
			if accepted > 0 && after >= before {
				t.Fatalf("accepted %d but weight did not drop", accepted)
			}
		}
	}
}

// TestReconstructionProjectionInvariant: MARIOH's output always projects
// back to exactly the input graph (every unit of ω is consumed exactly
// once across filtering and search).
func TestReconstructionProjectionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		h := randomHypergraph(rng, 10, 8)
		m := Train(h.Project(), h, TrainOptions{Seed: int64(trial), Epochs: 10})
		g := h.Project()
		res := Reconstruct(g, m, Options{Seed: int64(trial)})
		back := res.Hypergraph.Project()
		if back.TotalWeight() != g.TotalWeight() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("trial %d: projection invariant broken (%d/%d vs %d/%d)",
				trial, back.NumEdges(), back.TotalWeight(), g.NumEdges(), g.TotalWeight())
		}
		for _, e := range g.Edges() {
			if back.Weight(e.U, e.V) != e.W {
				t.Fatalf("trial %d: ω(%d,%d) mismatch", trial, e.U, e.V)
			}
		}
	}
}
