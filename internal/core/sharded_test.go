package core

import (
	"bytes"
	"context"
	"testing"

	"marioh/internal/datasets"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// disjointUnion builds one graph holding every input graph as its own
// block of node ids.
func disjointUnion(gs ...*graph.Graph) *graph.Graph {
	n := 0
	for _, g := range gs {
		n += g.NumNodes()
	}
	u := graph.New(n)
	off := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			u.AddWeight(off+e.U, off+e.V, e.W)
		}
		off += g.NumNodes()
	}
	return u
}

// renderHG serializes a hypergraph in its canonical text form.
func renderHG(t *testing.T, h *hypergraph.Hypergraph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// multiComponentTarget builds a target graph with many components from
// several dataset analogs, plus a model trained the usual way.
func multiComponentTarget(t *testing.T) (*graph.Graph, *Model) {
	t.Helper()
	src := datasets.MustByName("crime", 1).Source.Reduced()
	m := Train(src.Project(), src, TrainOptions{Seed: 1, Epochs: 15})
	var parts []*graph.Graph
	for _, name := range []string{"crime", "hosts", "pschool"} {
		parts = append(parts, datasets.MustByName(name, 1).Target.Reduced().Project())
	}
	return disjointUnion(parts...), m
}

// TestShardedMatchesSerialMultiComponent is the acceptance criterion:
// sharded reconstruction must be byte-identical to the serial pipeline for
// every shard count.
func TestShardedMatchesSerialMultiComponent(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := Options{Seed: 3}
	serial, err := ReconstructContext(context.Background(), g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderHG(t, serial.Hypergraph)
	if serial.Hypergraph.NumUnique() == 0 {
		t.Fatal("empty serial reconstruction")
	}
	for _, shards := range []int{1, 2, 4, 16} {
		res, err := ReconstructSharded(context.Background(), g, m, opts, ShardOptions{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := renderHG(t, res.Hypergraph); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: output diverges from serial pipeline (%d vs %d unique)",
				shards, res.Hypergraph.NumUnique(), serial.Hypergraph.NumUnique())
		}
		if res.FilteredSize2 != serial.FilteredSize2 {
			t.Fatalf("shards=%d: FilteredSize2 %d != serial %d", shards, res.FilteredSize2, serial.FilteredSize2)
		}
		if shards > 1 && res.Shards < 2 {
			t.Fatalf("shards=%d: run used %d shards, expected a real partition", shards, res.Shards)
		}
	}
}

// bridgeChain builds a connected hypergraph of k triangle communities
// chained by size-2 bridges, whose projection the partitioner must split
// along the bridges.
func bridgeChain(k int) *hypergraph.Hypergraph {
	h := hypergraph.New(3 * k)
	for i := 0; i < k; i++ {
		b := 3 * i
		h.Add([]int{b, b + 1, b + 2})
		h.Add([]int{b, b + 2})
		if i > 0 {
			h.Add([]int{b - 1, b})
		}
	}
	return h
}

// TestShardedBridgeSplitMatchesSerial forces intra-component bridge
// splitting with a tiny shard target and checks the output still matches
// the serial pipeline byte for byte.
func TestShardedBridgeSplitMatchesSerial(t *testing.T) {
	h := bridgeChain(10)
	g := h.Project()
	m := Train(g, h, TrainOptions{Seed: 2, Epochs: 15})
	opts := Options{Seed: 2}
	serial, err := ReconstructContext(context.Background(), g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderHG(t, serial.Hypergraph)
	for _, so := range []ShardOptions{
		{Shards: 4, TargetEdges: 5},
		{Shards: 16, TargetEdges: 4},
		{Shards: 2, TargetEdges: 20},
	} {
		res, err := ReconstructSharded(context.Background(), g, m, opts, so)
		if err != nil {
			t.Fatalf("%+v: %v", so, err)
		}
		if so.TargetEdges <= 5 && res.Shards < 2 {
			t.Fatalf("%+v: expected the chain to split, got %d shards", so, res.Shards)
		}
		if got := renderHG(t, res.Hypergraph); !bytes.Equal(got, want) {
			t.Fatalf("%+v: bridge-split output diverges from serial pipeline", so)
		}
	}
}

// TestShardedVariantsMatchSerial covers the ablations: without filtering
// the partitioner must fall back to component granularity and still match;
// without sub-clique search Phase 2 is skipped identically everywhere.
func TestShardedVariantsMatchSerial(t *testing.T) {
	g, m := multiComponentTarget(t)
	for _, opts := range []Options{
		{Seed: 5, DisableFiltering: true},
		{Seed: 5, DisableBidirectional: true},
		{Seed: 5, Alpha: -1, MaxRounds: 6}, // frozen θ exercises the stall dump
	} {
		serial, err := ReconstructContext(context.Background(), g, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := renderHG(t, serial.Hypergraph)
		for _, shards := range []int{1, 4, 16} {
			res, err := ReconstructSharded(context.Background(), g, m, opts, ShardOptions{Shards: shards})
			if err != nil {
				t.Fatalf("%+v shards=%d: %v", opts, shards, err)
			}
			if got := renderHG(t, res.Hypergraph); !bytes.Equal(got, want) {
				t.Fatalf("%+v shards=%d: output diverges from serial pipeline", opts, shards)
			}
		}
	}
}

// TestShardedProgressAndCancellation: per-shard progress events carry the
// shard index, and cancellation aborts the fan-out with ctx.Err().
func TestShardedProgressAndCancellation(t *testing.T) {
	g, m := multiComponentTarget(t)
	seen := map[int]bool{}
	opts := Options{Seed: 1, Progress: func(p Progress) { seen[p.Shard] = true }}
	res, err := ReconstructSharded(context.Background(), g, m, opts, ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards < 2 {
		t.Fatalf("expected a multi-shard run, got %d", res.Shards)
	}
	if len(seen) < 2 {
		t.Fatalf("progress events stamped %d distinct shards, want ≥ 2 (%v)", len(seen), seen)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReconstructSharded(dead, g, m, Options{Seed: 1}, ShardOptions{Shards: 4}); err == nil {
		t.Fatal("cancelled sharded run must return an error")
	}
}

// TestShardedExecutorHook: a custom executor receives every task exactly
// once and the run still matches the built-in pool's output.
func TestShardedExecutorHook(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := Options{Seed: 7}
	want, err := ReconstructSharded(context.Background(), g, m, opts, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	res, err := ReconstructSharded(context.Background(), g, m, opts, ShardOptions{
		Shards: 4,
		Executor: func(tasks []func()) {
			for _, fn := range tasks {
				ran++
				fn()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != res.Shards {
		t.Fatalf("executor ran %d tasks for %d shards", ran, res.Shards)
	}
	if !want.Hypergraph.Equal(res.Hypergraph) {
		t.Fatal("executor-driven run diverges from built-in pool")
	}
}
