package core

import (
	"context"
	"runtime"
	"sync"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/shard"
)

// ShardOptions configure ReconstructSharded.
type ShardOptions struct {
	// Shards is the shard count handed to the partitioner; 0 resolves to
	// GOMAXPROCS. The output is byte-identical for every shard count (see
	// ReconstructSharded), so this is purely a throughput knob.
	Shards int
	// TargetEdges is the partitioner's shard size target; 0 derives it
	// from the edge count and shard count.
	TargetEdges int
	// Workers bounds how many shards reconstruct concurrently on the
	// built-in pool; 0 means GOMAXPROCS. Ignored when Executor is set.
	// It composes with Options.Parallelism, which each piece's round
	// engine honors internally (enumeration/scoring/per-component
	// fan-out), so total goroutines approach Workers × Parallelism;
	// callers running many shards typically keep Parallelism at 1.
	Workers int
	// Executor, when non-nil, runs the per-shard tasks instead of the
	// built-in pool — the hook external schedulers (e.g. the mariohd job
	// queue) use to fan shards onto their own workers. It must execute
	// every task exactly once, on any goroutines it likes, and return
	// only when all of them finished.
	Executor func(tasks []func())
}

// ReconstructPiece runs the cached round engine on one piece of a larger
// graph: g is the piece's subgraph and origID maps its node ids back to
// the original graph (nil when g is the original). The piece carries the
// shard executor's exact per-component round cache, so rounds in which a
// component accepted nothing skip re-enumeration and re-scoring. This is
// the entry point the incremental session engine shares with the shard
// executor: both reconstruct pieces whose components are keyed by original
// node ids, so their outputs merge bit-for-bit into the serial pipeline's.
func ReconstructPiece(ctx context.Context, g *graph.Graph, m *Model, opts Options, origID []int) (*Result, error) {
	return reconstructGraph(ctx, g, m, opts, origID, &roundCache{})
}

// ReconstructSharded runs MARIOH on g by partitioning it into shards,
// reconstructing every shard concurrently, and merging the per-shard
// hypergraphs. The output is byte-identical to ReconstructContext on the
// same inputs, for any shard count: hyperedges never span connected
// components, the partitioner splits oversized components only along
// bridges (which filtering consumes before anything is scored), and the
// round engine keys all per-round randomness and fallbacks by component —
// so each shard reproduces exactly the slice of the serial run its
// components would have produced. The one exception is Options.
// MaxCliqueLimit, a global per-round budget that is applied per shard
// instead; runs relying on it may diverge from the serial pipeline.
//
// Sharded runs are also faster than the serial pipeline on one core:
// each shard caches its clique enumeration and scores across rounds in
// which nothing was accepted (θ still decaying), where the serial
// reference re-enumerates and re-scores every round.
//
// Progress events carry the shard index and shard-local rounds and edge
// counts. Result.Times aggregates the per-shard breakdowns (durations
// summed, Rounds the maximum); Result.Shards records the shard count.
// On error or cancellation the merged partial reconstruction is returned
// with the first error, matching ReconstructContext's contract.
func ReconstructSharded(ctx context.Context, g *graph.Graph, m *Model, opts Options, so ShardOptions) (*Result, error) {
	if so.Shards < 1 {
		so.Shards = runtime.GOMAXPROCS(0)
	}
	plan := shard.Partition(g, shard.Options{
		Shards:      so.Shards,
		TargetEdges: so.TargetEdges,
		// Bridge cuts are only output-exact because filtering consumes
		// every bridge before scoring; without filtering (MARIOH-F) the
		// partitioner must stay at component granularity.
		DisableSplit: opts.DisableFiltering,
	})

	if len(plan.Pieces) <= 1 {
		res, err := reconstructGraph(ctx, g, m, opts, nil, &roundCache{})
		res.Shards = 1
		return res, err
	}

	// Serialize progress delivery across shards and stamp the shard index,
	// so one Progress callback observes the whole run without locks.
	var progressMu sync.Mutex
	progressFor := func(idx int) ProgressFunc {
		fn := opts.Progress
		if fn == nil {
			return nil
		}
		return func(p Progress) {
			p.Shard = idx
			progressMu.Lock()
			defer progressMu.Unlock()
			fn(p)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*Result, len(plan.Pieces))
	errs := make([]error, len(plan.Pieces))
	tasks := make([]func(), len(plan.Pieces))
	for i := range plan.Pieces {
		i := i
		piece := plan.Pieces[i]
		tasks[i] = func() {
			popts := opts
			popts.Progress = progressFor(i)
			results[i], errs[i] = ReconstructPiece(runCtx, piece.Graph, m, popts, piece.Nodes)
			if errs[i] != nil {
				cancel()
			}
		}
	}

	if so.Executor != nil {
		so.Executor(tasks)
	} else {
		workers := so.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(tasks) {
			workers = len(tasks)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					tasks[i]()
				}
			}()
		}
		for i := range tasks {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	merged := &Result{Hypergraph: hypergraph.New(g.NumNodes()), Shards: len(plan.Pieces)}
	var firstErr error
	buf := make([]int, 0, 16)
	for i, res := range results {
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
		if res == nil {
			continue
		}
		nodes := plan.Pieces[i].Nodes
		res.Hypergraph.Each(func(local []int, mult int) {
			buf = buf[:0]
			for _, u := range local {
				buf = append(buf, nodes[u])
			}
			merged.Hypergraph.AddMult(buf, mult)
		})
		merged.FilteredSize2 += res.FilteredSize2
		merged.Times.Filtering += res.Times.Filtering
		merged.Times.Bidirectional += res.Times.Bidirectional
		if res.Times.Rounds > merged.Times.Rounds {
			merged.Times.Rounds = res.Times.Rounds
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return merged, firstErr
}
