package core

import (
	"bytes"
	"strings"
	"testing"

	"marioh/internal/hypergraph"
)

func trainedTestModel(t *testing.T) (*Model, *hypergraph.Hypergraph) {
	t.Helper()
	h := hypergraph.New(10)
	h.Add([]int{0, 1, 2})
	h.Add([]int{3, 4})
	h.Add([]int{5, 6, 7, 8})
	return Train(h.Project(), h, TrainOptions{Seed: 1}), h
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, h := trainedTestModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := h.Project()
	for _, e := range h.UniqueEdges() {
		a := m.Score(g, e, true)
		b := got.Score(g, e, true)
		if a != b {
			t.Fatalf("score drift after round trip: %v vs %v", a, b)
		}
	}
}

func TestSaveUntrainedModelFails(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Model{}).Save(&buf); err == nil {
		t.Fatal("saving an untrained model must fail")
	}
}

func TestLoadModelErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"featurizer":"nope","standardizer":{},"net":{"Sizes":[2,1]}}`,
		`{"featurizer":"marioh"}`,
		`{"featurizer":"marioh","standardizer":{},"net":{"Sizes":[2,1],"W":[[0,0]],"B":[[0]]}}`,
	}
	for _, c := range cases {
		if _, err := LoadModel(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should fail to load", c)
		}
	}
}

func TestLoadedModelReconstructs(t *testing.T) {
	m, h := trainedTestModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Reconstruct(h.Project(), m, Options{Seed: 3})
	b := Reconstruct(h.Project(), loaded, Options{Seed: 3})
	if !a.Hypergraph.Equal(b.Hypergraph) {
		t.Fatal("loaded model reconstructs differently")
	}
}
