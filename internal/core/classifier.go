// Package core implements MARIOH — Multiplicity-Aware Hypergraph
// Reconstruction (Lee, Lee & Shin, ICDE 2025) — the primary contribution of
// the reproduced paper. It contains the multiplicity-aware classifier
// (Sect. III-D), the theoretically-guaranteed size-2 filtering step
// (Sect. III-B, Algorithm 2), the bidirectional clique search
// (Sect. III-C, Algorithm 3), and the outer reconstruction loop
// (Algorithm 1), plus the three ablation variants MARIOH-M, MARIOH-F and
// MARIOH-B evaluated in the paper's Tables II and III.
package core

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"marioh/internal/features"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
	"marioh/internal/mlp"
)

// Model is the trained multiplicity-aware classifier M: it scores the
// likelihood that a clique of a projected graph is a true hyperedge.
type Model struct {
	Feat features.Featurizer
	Std  *mlp.Standardizer
	Net  *mlp.Net

	// Stats records where training time went (Fig. 6's "Load & Sample" and
	// "Train" segments).
	Stats TrainStats
}

// TrainStats is the wall-clock breakdown of Train.
type TrainStats struct {
	SampleTime time.Duration // feature extraction + negative sampling
	TrainTime  time.Duration // MLP optimization
	Positives  int
	Negatives  int
}

// TrainOptions configure classifier training.
type TrainOptions struct {
	// Featurizer defaults to the multiplicity-aware features.Marioh.
	Featurizer features.Featurizer
	// Hidden layer widths; default [32, 16].
	Hidden []int
	// Epochs for the MLP; default 60.
	Epochs int
	// SupervisionRatio uses only this fraction of the source hyperedges as
	// supervision (Table VI's semi-supervised setting). Default 1.0.
	SupervisionRatio float64
	// NegativeRatio is the number of negatives sampled per positive;
	// default 1.
	NegativeRatio float64
	// MaxCliqueLimit caps the number of maximal cliques enumerated for
	// negative sampling; default 200000.
	MaxCliqueLimit int
	Seed           int64
}

func (o *TrainOptions) defaults() {
	if o.Featurizer == nil {
		o.Featurizer = features.Marioh{}
	}
	if len(o.Hidden) == 0 {
		o.Hidden = []int{32, 16}
	}
	if o.Epochs <= 0 {
		o.Epochs = 60
	}
	if o.SupervisionRatio <= 0 || o.SupervisionRatio > 1 {
		o.SupervisionRatio = 1
	}
	if o.NegativeRatio <= 0 {
		o.NegativeRatio = 1
	}
	if o.MaxCliqueLimit <= 0 {
		o.MaxCliqueLimit = 200000
	}
}

// Train fits a classifier on the source pair (G^S, H^S): each unique
// hyperedge of H^S is a positive clique example; negatives are maximal
// cliques of G^S that are not hyperedges plus random sub-cliques of maximal
// cliques that are not hyperedges, sampled to NegativeRatio× the positive
// count (the negative-sampling strategy the paper defers to its appendix).
func Train(gSrc *graph.Graph, hSrc *hypergraph.Hypergraph, opts TrainOptions) *Model {
	m, _ := TrainContext(context.Background(), gSrc, hSrc, opts)
	return m
}

// TrainContext is Train with cancellation: ctx is checked between the
// sampling and optimization stages and once per training epoch. On
// cancellation it returns (nil, ctx.Err()) — a partially trained model is
// never handed out.
func TrainContext(ctx context.Context, gSrc *graph.Graph, hSrc *hypergraph.Hypergraph, opts TrainOptions) (*Model, error) {
	opts.defaults()
	m := &Model{Feat: opts.Featurizer}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now() //lint:randsource stage timing recorded in Model.Stats, never in reconstruction output
	X, y, nPos := BuildExamples(gSrc, hSrc, opts)
	m.Stats.Positives = nPos
	m.Stats.Negatives = len(X) - nPos
	m.Stats.SampleTime = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t1 := time.Now() //lint:randsource stage timing recorded in Model.Stats, never in reconstruction output
	m.Std = mlp.FitStandardizer(X)
	m.Std.TransformAll(X)
	m.Net = mlp.New(m.Feat.Dim(), opts.Hidden, opts.Seed+1)
	m.Net.Train(X, y, mlp.TrainOptions{
		Epochs: opts.Epochs, Seed: opts.Seed + 2,
		Stop: func() bool { return ctx.Err() != nil },
	})
	m.Stats.TrainTime = time.Since(t1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildExamples assembles a labeled clique training (or evaluation) set
// from a projected graph and its ground-truth hypergraph: positives are (a
// SupervisionRatio fraction of) the unique hyperedges; negatives are
// non-hyperedge maximal cliques topped up with random non-hyperedge
// sub-cliques, NegativeRatio× the positive count. Returns the raw
// (unstandardized) feature matrix, the 0/1 labels, and the positive count
// (positives come first).
func BuildExamples(gSrc *graph.Graph, hSrc *hypergraph.Hypergraph, opts TrainOptions) (X [][]float64, y []float64, nPos int) {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	feat := opts.Featurizer
	// One shared Scratch across all examples: Compute's reusable buffers
	// make extraction allocation-free per call, so only the retained copy
	// of each vector is allocated (the Features fallback would rebuild
	// O(NumNodes) pair-stat scratch for every single example).
	var sc features.Scratch
	extract := func(q []int, maximal bool) []float64 {
		return append([]float64(nil), features.Compute(feat, &sc, gSrc, q, maximal)...)
	}

	posEdges := hSrc.UniqueEdges()
	if opts.SupervisionRatio < 1 {
		rng.Shuffle(len(posEdges), func(i, j int) { posEdges[i], posEdges[j] = posEdges[j], posEdges[i] })
		keep := int(float64(len(posEdges)) * opts.SupervisionRatio)
		if keep < 1 {
			keep = 1
		}
		posEdges = posEdges[:keep]
	}
	for _, e := range posEdges {
		X = append(X, extract(e, isMaximalClique(gSrc, e)))
		y = append(y, 1)
	}

	want := int(float64(len(posEdges)) * opts.NegativeRatio)
	maximal := gSrc.MaximalCliquesLimit(2, opts.MaxCliqueLimit)
	var negs [][]float64
	for _, q := range maximal {
		if len(negs) >= want {
			break
		}
		if !hSrc.Contains(q) {
			negs = append(negs, extract(q, true))
		}
	}
	// Top up with random sub-cliques of random maximal cliques.
	var ps PermSampler
	for attempts := 0; len(negs) < want && attempts < 50*want+100 && len(maximal) > 0; attempts++ {
		q := maximal[rng.Intn(len(maximal))]
		if len(q) < 3 {
			continue
		}
		k := 2 + rng.Intn(len(q)-2) // k in [2, |q|-1]
		sub := ps.Sample(q, k, rng)
		if !hSrc.Contains(sub) {
			negs = append(negs, extract(sub, false))
		}
	}
	for _, f := range negs {
		X = append(X, f)
		y = append(y, 0)
	}
	return X, y, len(posEdges)
}

// Score returns the classifier's probability that clique q of g is a true
// hyperedge.
func (m *Model) Score(g *graph.Graph, q []int, maximal bool) float64 {
	var sc scorer
	return m.scoreScratch(g, q, maximal, &sc)
}

// scorer bundles the per-worker reusable buffers of the scoring hot path:
// feature staging, the standardized vector, and the MLP activations. With
// one scorer per worker, steady-state clique scoring performs zero heap
// allocations. A scorer must not be shared between goroutines.
type scorer struct {
	feat features.Scratch
	fwd  mlp.Scratch
}

// scoreScratch is Score with caller-owned buffers; bit-identical results.
func (m *Model) scoreScratch(g *graph.Graph, q []int, maximal bool, sc *scorer) float64 {
	f := features.Compute(m.Feat, &sc.feat, g, q, maximal)
	m.Std.Transform(f)
	return m.Net.ForwardScratch(f, &sc.fwd)
}

// isMaximalClique reports whether q (assumed to be a clique of g) has no
// common neighbor, i.e. cannot be extended to a larger clique.
func isMaximalClique(g *graph.Graph, q []int) bool {
	if len(q) == 0 {
		return false
	}
	// Intersect neighborhoods starting from the lowest-degree member.
	best := q[0]
	for _, u := range q[1:] {
		if g.Degree(u) < g.Degree(best) {
			best = u
		}
	}
	inQ := make(map[int]bool, len(q))
	for _, u := range q {
		inQ[u] = true
	}
	found := false
	g.NeighborWeights(best, func(v, _ int) {
		if found || inQ[v] {
			return
		}
		for _, u := range q {
			if u != best && !g.HasEdge(u, v) {
				return
			}
		}
		found = true
	})
	return !found
}

// Intner is the minimal randomness source PermSampler consumes; both
// *rand.Rand and the search engine's sampleRNG satisfy it.
type Intner interface {
	Intn(n int) int
}

// PermSampler draws sorted random k-subsets of a slice while reusing one
// permutation buffer between draws. The buffer replays exactly the Intn
// draw sequence of rand.Perm — including the throwaway Intn(1) of its
// first iteration — so seeded outputs are bit-for-bit identical to an
// rng.Perm-based sampler over the same Intn stream, just without the
// per-call permutation allocation. Shared by the MARIOH search and the
// SHyRe baselines; not safe for concurrent use. The zero value is ready
// to use.
type PermSampler struct {
	perm []int
}

// Sample returns a sorted random k-subset of q.
func (ps *PermSampler) Sample(q []int, k int, rng Intner) []int {
	n := len(q)
	if cap(ps.perm) < n {
		ps.perm = make([]int, n)
	}
	p := ps.perm[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	out := make([]int, k)
	for i, j := range p[:k] {
		out[i] = q[j]
	}
	sort.Ints(out)
	return out
}
