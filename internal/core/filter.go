package core

import (
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// Filter is MARIOH's theoretically-guaranteed filtering step (Algorithm 2).
//
// For every edge (u, v) of g it computes MHH(u, v) — the maximum possible
// number of size-≥3 hyperedges containing both endpoints (Lemma 1) — and
// the residual multiplicity r(u,v) = ω(u,v) − MHH(u,v). Whenever r > 0,
// Lemma 2 guarantees the original hypergraph contains the size-2 hyperedge
// {u, v} at least r times, so {u, v} is added to rec with multiplicity r
// and ω(u,v) is decreased by r, removing the edge entirely when it reaches
// zero.
//
// All MHH values are computed against the input graph before any weight is
// modified, matching Algorithm 2, which derives every bound from the
// original ω. Filter mutates g in place (callers clone first) and returns
// the number of size-2 hyperedge occurrences emitted.
func Filter(g *graph.Graph, rec *hypergraph.Hypergraph) int {
	type resid struct {
		u, v, r int
	}
	var found []resid
	for _, e := range g.Edges() {
		mhh := g.SumMinCommonWeight(e.U, e.V)
		if r := e.W - mhh; r > 0 {
			found = append(found, resid{e.U, e.V, r})
		}
	}
	emitted := 0
	for _, f := range found {
		rec.AddMult([]int{f.u, f.v}, f.r)
		g.AddWeight(f.u, f.v, -f.r)
		emitted += f.r
	}
	return emitted
}
