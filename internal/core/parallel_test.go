package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"marioh/internal/datasets"
	"marioh/internal/graph"
)

// TestParallelTuningDefaults pins the documented defaults of the round
// engine's tuning knobs: ScoreParallelThreshold 256 and PipelineChunk 64,
// both as constants and through Options.defaults() resolution.
func TestParallelTuningDefaults(t *testing.T) {
	if defaultScoreParallelThreshold != 256 {
		t.Errorf("defaultScoreParallelThreshold = %d, want the documented 256", defaultScoreParallelThreshold)
	}
	if defaultPipelineChunk != 64 {
		t.Errorf("defaultPipelineChunk = %d, want the documented 64", defaultPipelineChunk)
	}
	var o Options
	o.defaults()
	if o.ScoreParallelThreshold != 256 || o.PipelineChunk != 64 {
		t.Errorf("Options.defaults() resolved threshold=%d chunk=%d, want 256/64",
			o.ScoreParallelThreshold, o.PipelineChunk)
	}
	o = Options{ScoreParallelThreshold: 7, PipelineChunk: 9}
	o.defaults()
	if o.ScoreParallelThreshold != 7 || o.PipelineChunk != 9 {
		t.Errorf("Options.defaults() clobbered explicit threshold=%d chunk=%d",
			o.ScoreParallelThreshold, o.PipelineChunk)
	}
}

// TestScoreFanoutHonorsParallelism is the regression test for the bug
// where scoreCliques always fanned out to GOMAXPROCS past the threshold,
// ignoring the configured parallelism: WithParallelism(1) must mean one
// worker no matter how many cliques a round scores.
func TestScoreFanoutHonorsParallelism(t *testing.T) {
	cases := []struct {
		n, workers, threshold, want int
	}{
		{n: 10000, workers: 1, threshold: 256, want: 1}, // the old bug: this fanned out
		{n: 10000, workers: 4, threshold: 256, want: 4},
		{n: 100, workers: 4, threshold: 256, want: 1}, // below threshold stays serial
		{n: 256, workers: 4, threshold: 256, want: 4}, // at threshold fans out
		{n: 3, workers: 8, threshold: 1, want: 3},     // never more workers than cliques
		{n: 10, workers: 0, threshold: 1, want: 1},    // degenerate input clamps to 1
	}
	for _, c := range cases {
		if got := scoreFanout(c.n, c.workers, c.threshold); got != c.want {
			t.Errorf("scoreFanout(%d, %d, %d) = %d, want %d", c.n, c.workers, c.threshold, got, c.want)
		}
	}
	if got := resolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("resolveWorkers(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := resolveWorkers(3); got != 3 {
		t.Errorf("resolveWorkers(3) = %d, want 3", got)
	}
}

// pipelineTestSetup trains a small model over the eu dataset's projected
// graph, the same substrate the other core tests score against.
func pipelineTestSetup(t testing.TB) (*Model, *graph.Graph) {
	t.Helper()
	ds := datasets.MustByName("eu", 1)
	src := ds.Source.Reduced()
	g := src.Project()
	m := Train(g, src, TrainOptions{Seed: 1, Epochs: 10})
	return m, g
}

// TestPipelineEnumerateScoredMatchesSerial checks that the fused pipeline
// produces the same scored-clique multiset as the materialize-then-score
// path, across worker counts, with pipeline knobs forced low so the
// chunked hand-off engages. (The induced-subgraph mapBack path is covered
// end-to-end by TestParallelRoundEngineMatchesSerial's cached-piece runs,
// whose dirty components re-enumerate through Subgraph.)
func TestPipelineEnumerateScoredMatchesSerial(t *testing.T) {
	m, g := pipelineTestSetup(t)

	wantCliques := g.MaximalCliquesLimit(2, -1)
	want := scoreCliques(g, m, wantCliques, 1, defaultScoreParallelThreshold)
	sortByScoreDesc(want)

	for _, workers := range []int{1, 2, 4, 8} {
		got, truncated := enumerateScored(g, m, -1, workers, 3, 1, nil)
		if truncated {
			t.Fatalf("workers=%d: unexpected truncation without a limit", workers)
		}
		sortByScoreDesc(got)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d scored cliques, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].score != want[i].score || !equalNodes(got[i].nodes, want[i].nodes) {
				t.Fatalf("workers=%d: scored clique %d diverged", workers, i)
			}
		}
	}

	// The limit path must reproduce the serial truncation prefix exactly.
	for _, limit := range []int{1, 5, len(wantCliques), len(wantCliques) + 10} {
		ref := scoreCliques(g, m, g.MaximalCliquesLimit(2, limit), 1, defaultScoreParallelThreshold)
		for _, workers := range []int{1, 4} {
			got, _ := enumerateScored(g, m, limit, workers, 3, 1, nil)
			if len(got) != len(ref) {
				t.Fatalf("limit=%d workers=%d: %d cliques, want %d", limit, workers, len(got), len(ref))
			}
			for i := range got {
				if got[i].score != ref[i].score || !equalNodes(got[i].nodes, ref[i].nodes) {
					t.Fatalf("limit=%d workers=%d: clique %d diverged", limit, workers, i)
				}
			}
		}
	}
}

func equalNodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelRoundEngineMatchesSerial drives full reconstructions — the
// serial pipeline, the cached piece engine, and the sharded orchestrator —
// at several parallelism settings with the pipeline knobs forced low, and
// requires byte-identical hypergraphs throughout.
func TestParallelRoundEngineMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	m, g := pipelineTestSetup(t)

	render := func(res *Result) []byte {
		var buf bytes.Buffer
		if err := res.Hypergraph.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial, err := ReconstructContext(context.Background(), g, m, Options{Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := render(serial)

	for _, par := range []int{0, 2, 8} {
		opts := Options{Seed: 1, Parallelism: par, ScoreParallelThreshold: 1, PipelineChunk: 2}
		res, err := ReconstructContext(context.Background(), g, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(res), want) {
			t.Errorf("Parallelism=%d serial pipeline diverged", par)
		}
		piece, err := ReconstructPiece(context.Background(), g.Clone(), m, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(piece), want) {
			t.Errorf("Parallelism=%d cached piece engine diverged", par)
		}
		sharded, err := ReconstructSharded(context.Background(), g, m, opts, ShardOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(sharded), want) {
			t.Errorf("Parallelism=%d sharded orchestrator diverged", par)
		}
	}
}
