package core

import (
	"context"
	"time"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// Options configure a reconstruction run (Algorithm 1's inputs θ_init, r,
// α plus the ablation switches).
//
// Sentinel semantics: for the float parameters ThetaInit, R and Alpha the
// zero value means "use the paper's default", so a zero-valued Options is
// always the paper's configuration. A caller that genuinely wants a zero
// parameter (e.g. α = 0 to freeze the threshold) passes any negative
// value, which is resolved to exactly 0. The public marioh.Reconstructor
// options perform this encoding automatically.
type Options struct {
	// ThetaInit is the initial classification threshold θ_init.
	// 0 = default 0.9; negative = exactly 0.
	ThetaInit float64
	// R is the negative prediction processing ratio r in percent.
	// 0 = default 40; negative = exactly 0 (no sub-clique exploration
	// budget).
	R float64
	// Alpha is the threshold adjust ratio α: after each round,
	// θ ← max(θ − α·θ_init, 0). 0 = default 1/20 (the paper's setting);
	// negative = exactly 0, freezing θ at ThetaInit.
	Alpha float64
	// DisableFiltering skips the size-2 filtering step (MARIOH-F).
	DisableFiltering bool
	// DisableBidirectional skips sub-clique exploration (MARIOH-B).
	DisableBidirectional bool
	// MaxRounds bounds the outer loop as a safety valve. Default 10000.
	MaxRounds int
	// MaxCliqueLimit caps per-round maximal-clique enumeration; ≤ 0 means
	// unlimited.
	MaxCliqueLimit int
	Seed           int64
	// Parallelism bounds the worker fan-out inside each round: maximal-
	// clique enumeration, the fused enumerate→score pipeline, and the
	// per-component search all use at most this many workers. 0 = one
	// worker per GOMAXPROCS; 1 = fully serial (the reference pipeline).
	// Output bytes are identical at every setting — see README "Parallel
	// round engine".
	Parallelism int
	// ScoreParallelThreshold is the per-round clique count at which
	// scoring and the fused pipeline start fanning out; below it the
	// round stays single-threaded, since goroutine hand-off only pays for
	// itself on large rounds. ≤ 0 = default 256 (set it to 1 to always
	// fan out).
	ScoreParallelThreshold int
	// PipelineChunk is the number of cliques per chunk handed from the
	// enumeration workers to the scoring workers in the fused pipeline.
	// ≤ 0 = default 64.
	PipelineChunk int
	// Progress, when non-nil, is invoked after every round of the outer
	// loop with a snapshot of the run. Callbacks must be fast; they run on
	// the reconstruction goroutine.
	Progress ProgressFunc
}

// resolveNonNeg implements the Options sentinel for non-negative float
// parameters: 0 means "default", negative means "exactly 0".
func resolveNonNeg(v, def float64) float64 {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	default:
		return v
	}
}

func (o *Options) defaults() {
	o.ThetaInit = resolveNonNeg(o.ThetaInit, 0.9)
	o.R = resolveNonNeg(o.R, 40)
	o.Alpha = resolveNonNeg(o.Alpha, 1.0/20)
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10000
	}
	if o.ScoreParallelThreshold <= 0 {
		o.ScoreParallelThreshold = defaultScoreParallelThreshold
	}
	if o.PipelineChunk <= 0 {
		o.PipelineChunk = defaultPipelineChunk
	}
}

// Progress is a per-round snapshot of a reconstruction run, emitted to
// Options.Progress after each outer-loop round (and once after the
// filtering step, with Round 0).
type Progress struct {
	// Target is the batch index of the graph being reconstructed; 0 for
	// single-target runs. Set by marioh.(*Reconstructor).ReconstructBatch.
	Target int
	// Shard is the shard index the event belongs to; 0 for unsharded
	// runs. Set by ReconstructSharded, whose per-shard events carry
	// shard-local rounds and edge counts.
	Shard int
	// Round is the 1-based outer-loop round just completed; 0 reports the
	// filtering step.
	Round int
	// Dirty is the number of components an incremental Session.Apply is
	// recomputing; 0 for non-incremental runs. Every event of one Apply
	// carries the same count, so observers can report "N of D dirty
	// components" style progress.
	Dirty int
	// Theta is the acceptance threshold θ used this round.
	Theta float64
	// EdgesRemaining is the residual graph's edge count after the round.
	EdgesRemaining int
	// AcceptedRound is the number of hyperedge occurrences accepted this
	// round (for Round 0, the size-2 occurrences emitted by filtering).
	AcceptedRound int
	// AcceptedTotal is the cumulative number of accepted occurrences.
	AcceptedTotal int
}

// ProgressFunc observes reconstruction progress.
type ProgressFunc func(Progress)

// StepTimes is the wall-clock breakdown of a reconstruction run, matching
// the segments of the paper's Fig. 6 (filtering vs. bidirectional search).
type StepTimes struct {
	Filtering     time.Duration
	Bidirectional time.Duration
	Rounds        int
}

// Result bundles a reconstructed hypergraph with run metadata.
type Result struct {
	Hypergraph *hypergraph.Hypergraph
	Times      StepTimes
	// FilteredSize2 is the number of size-2 hyperedge occurrences the
	// theoretically-guaranteed filtering emitted.
	FilteredSize2 int
	// Shards is the number of shards the run was partitioned into; 0 for
	// the serial pipeline. For sharded runs, Times aggregates the
	// per-shard breakdowns (durations are summed, Rounds is the maximum).
	Shards int
	// DirtyComponents is the number of components an incremental
	// Session.Apply actually recomputed (the rest were merged from the
	// session cache); 0 for non-incremental runs.
	DirtyComponents int
}

// Reconstruct runs MARIOH (Algorithm 1) on the projected graph g with the
// trained classifier m, returning the reconstructed hypergraph. The input
// graph is not modified.
func Reconstruct(g *graph.Graph, m *Model, opts Options) *Result {
	res, _ := ReconstructContext(context.Background(), g, m, opts)
	return res
}

// ReconstructContext is Reconstruct with cancellation: ctx is checked
// between rounds and inside the bidirectional search, so long runs stop
// promptly when the context is cancelled. On cancellation it returns the
// partial reconstruction built so far together with ctx.Err().
func ReconstructContext(ctx context.Context, g *graph.Graph, m *Model, opts Options) (*Result, error) {
	return reconstructGraph(ctx, g, m, opts, nil, nil)
}

// reconstructGraph is the round engine shared by the serial pipeline and
// the per-shard executor. origID maps g's node ids back to the original
// graph when g is a shard (nil = g is the original graph); cache, when
// non-nil, lets rounds that accepted nothing skip re-enumeration and
// re-scoring of the unchanged residual (the shard executor's fast path —
// the serial pipeline runs cache-free as the reference implementation).
//
// Every round decomposes exactly over the connected components of the
// residual graph: Phase 2's sampling streams and the stall fallback are
// keyed per component (see SearchOptions), so reconstructing a union of
// components equals the union of their reconstructions, round for round.
// That property is what lets ReconstructSharded split a graph across
// shards and merge per-shard results into the serial pipeline's exact
// output.
func reconstructGraph(ctx context.Context, g *graph.Graph, m *Model, opts Options, origID []int, cache *roundCache) (*Result, error) {
	opts.defaults()
	work := g.Clone()
	rec := hypergraph.New(g.NumNodes())
	res := &Result{Hypergraph: rec}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	total := 0
	if !opts.DisableFiltering {
		t0 := time.Now() //lint:randsource stage timing recorded in Result.Times, never in reconstruction output
		res.FilteredSize2 = Filter(work, rec)
		res.Times.Filtering = time.Since(t0)
		total += res.FilteredSize2
		if opts.Progress != nil {
			opts.Progress(Progress{
				Round: 0, Theta: opts.ThetaInit, EdgesRemaining: work.NumEdges(),
				AcceptedRound: res.FilteredSize2, AcceptedTotal: total,
			})
		}
	}

	theta := opts.ThetaInit
	t1 := time.Now() //lint:randsource stage timing recorded in Result.Times, never in reconstruction output
	defer func() { res.Times.Bidirectional = time.Since(t1) }()
	for round := 0; round < opts.MaxRounds && work.NumEdges() > 0; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Times.Rounds++
		accepted := BidirectionalSearch(work, m, SearchOptions{
			Ctx:                    ctx,
			Theta:                  theta,
			R:                      opts.R,
			DisableSubcliques:      opts.DisableBidirectional,
			MaxCliqueLimit:         opts.MaxCliqueLimit,
			Round:                  round,
			Seed:                   opts.Seed,
			OrigID:                 origID,
			Parallelism:            opts.Parallelism,
			ScoreParallelThreshold: opts.ScoreParallelThreshold,
			PipelineChunk:          opts.PipelineChunk,
			// Once θ has bottomed out at 0 (or is frozen by α = 0), a
			// component where nothing scored above the threshold can no
			// longer make Phase-1 progress; its edges are consumed as
			// size-2 hyperedges so the loop always terminates. At θ = 0
			// this only happens when scores underflow to exactly 0 — any
			// positive score is accepted — so real models never hit it.
			StallDump: theta == 0 || opts.Alpha == 0,
			cache:     cache,
		}, rec)
		total += accepted
		if opts.Progress != nil {
			opts.Progress(Progress{
				Round: res.Times.Rounds, Theta: theta, EdgesRemaining: work.NumEdges(),
				AcceptedRound: accepted, AcceptedTotal: total,
			})
		}
		theta = max(theta-opts.Alpha*opts.ThetaInit, 0)
	}
	return res, ctx.Err()
}
