package core

import (
	"math/rand"
	"time"

	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// Options configure a reconstruction run (Algorithm 1's inputs θ_init, r,
// α plus the ablation switches).
type Options struct {
	// ThetaInit is the initial classification threshold θ_init. Default 0.9.
	ThetaInit float64
	// R is the negative prediction processing ratio r in percent.
	// Default 40.
	R float64
	// Alpha is the threshold adjust ratio α: after each round,
	// θ ← max(θ − α·θ_init, 0). Default 1/20 (the paper's setting).
	Alpha float64
	// DisableFiltering skips the size-2 filtering step (MARIOH-F).
	DisableFiltering bool
	// DisableBidirectional skips sub-clique exploration (MARIOH-B).
	DisableBidirectional bool
	// MaxRounds bounds the outer loop as a safety valve. Default 10000.
	MaxRounds int
	// MaxCliqueLimit caps per-round maximal-clique enumeration; ≤ 0 means
	// unlimited.
	MaxCliqueLimit int
	Seed           int64
}

func (o *Options) defaults() {
	if o.ThetaInit <= 0 {
		o.ThetaInit = 0.9
	}
	if o.R <= 0 {
		o.R = 40
	}
	if o.Alpha <= 0 {
		o.Alpha = 1.0 / 20
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10000
	}
}

// StepTimes is the wall-clock breakdown of a reconstruction run, matching
// the segments of the paper's Fig. 6 (filtering vs. bidirectional search).
type StepTimes struct {
	Filtering     time.Duration
	Bidirectional time.Duration
	Rounds        int
}

// Result bundles a reconstructed hypergraph with run metadata.
type Result struct {
	Hypergraph *hypergraph.Hypergraph
	Times      StepTimes
	// FilteredSize2 is the number of size-2 hyperedge occurrences the
	// theoretically-guaranteed filtering emitted.
	FilteredSize2 int
}

// Reconstruct runs MARIOH (Algorithm 1) on the projected graph g with the
// trained classifier m, returning the reconstructed hypergraph. The input
// graph is not modified.
func Reconstruct(g *graph.Graph, m *Model, opts Options) *Result {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	work := g.Clone()
	rec := hypergraph.New(g.NumNodes())
	res := &Result{Hypergraph: rec}

	if !opts.DisableFiltering {
		t0 := time.Now()
		res.FilteredSize2 = Filter(work, rec)
		res.Times.Filtering = time.Since(t0)
	}

	theta := opts.ThetaInit
	t1 := time.Now()
	for round := 0; round < opts.MaxRounds && work.NumEdges() > 0; round++ {
		res.Times.Rounds++
		accepted := BidirectionalSearch(work, m, SearchOptions{
			Theta:             theta,
			R:                 opts.R,
			DisableSubcliques: opts.DisableBidirectional,
			MaxCliqueLimit:    opts.MaxCliqueLimit,
		}, rec, rng)
		theta = maxf(theta-opts.Alpha*opts.ThetaInit, 0)
		if accepted == 0 && theta == 0 {
			// θ has bottomed out and nothing scored above zero — only
			// possible in degenerate cases (e.g. an empty classifier);
			// fall back to consuming the remaining edges as size-2
			// hyperedges so the loop always terminates.
			for _, e := range work.Edges() {
				rec.AddMult([]int{e.U, e.V}, e.W)
				work.RemoveEdge(e.U, e.V)
			}
		}
	}
	res.Times.Bidirectional = time.Since(t1)
	return res
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
