package core

import (
	"runtime"
	"sync"

	"marioh/internal/graph"
)

// Defaults of the round-engine parallelism knobs (Options.
// ScoreParallelThreshold and Options.PipelineChunk); pinned by
// TestParallelTuningDefaults.
const (
	// defaultScoreParallelThreshold is the clique count below which a
	// round's scoring (and the fused enumerate→score pipeline) stays
	// single-threaded; goroutine fan-out only pays for itself on large
	// rounds.
	defaultScoreParallelThreshold = 256
	// defaultPipelineChunk is the number of cliques per chunk streamed
	// from enumeration workers to scoring workers in the fused pipeline —
	// large enough to amortize the channel hand-off, small enough to keep
	// the scoring workers fed.
	defaultPipelineChunk = 64
)

// resolveWorkers maps an Options.Parallelism value to a worker count:
// ≤ 0 means one worker per GOMAXPROCS, otherwise the value itself.
func resolveWorkers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// scoreFanout is the worker count actually used to score n cliques under
// the configured parallelism and threshold: one below the threshold,
// never more than one worker per clique, never more than configured.
func scoreFanout(n, workers, threshold int) int {
	if n < threshold {
		return 1
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ScoreCliques evaluates the classifier on each clique (treated as
// maximal) and returns the scores in input order. It is the exported form
// of the per-round scoring pass, used by benchmarks and analyses; it runs
// at the default parallelism (GOMAXPROCS) and threshold.
func ScoreCliques(g *graph.Graph, m *Model, cliques [][]int) []float64 {
	scored := scoreCliques(g, m, cliques, resolveWorkers(0), defaultScoreParallelThreshold)
	out := make([]float64, len(scored))
	for i, s := range scored {
		out[i] = s.score
	}
	return out
}

// scoreCliques evaluates the classifier on every maximal clique. Scoring
// is read-only on the graph and the model, so rounds with at least
// threshold cliques fan out across up to workers goroutines; results are
// written by index, keeping the output identical to the sequential path.
// Each worker owns one scorer, so the whole pass reuses feature and
// activation buffers instead of allocating per clique.
func scoreCliques(g *graph.Graph, m *Model, cliques [][]int, workers, threshold int) []scoredClique {
	scored := make([]scoredClique, len(cliques))
	w := scoreFanout(len(cliques), workers, threshold)
	if w == 1 {
		var sc scorer
		for i, q := range cliques {
			scored[i] = scoredClique{nodes: q, score: m.scoreScratch(g, q, true, &sc)}
		}
		return scored
	}
	var wg sync.WaitGroup
	chunk := (len(cliques) + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(cliques) {
			hi = len(cliques)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var sc scorer
			for i := lo; i < hi; i++ {
				scored[i] = scoredClique{nodes: cliques[i], score: m.scoreScratch(g, cliques[i], true, &sc)}
			}
		}(lo, hi)
	}
	wg.Wait()
	return scored
}
