package core

import (
	"runtime"
	"sync"

	"marioh/internal/graph"
)

// scoreParallelThreshold is the clique count below which scoring stays
// single-threaded; goroutine fan-out only pays for itself on large rounds.
const scoreParallelThreshold = 256

// ScoreCliques evaluates the classifier on each clique (treated as
// maximal) and returns the scores in input order. It is the exported form
// of the per-round scoring pass, used by benchmarks and analyses.
func ScoreCliques(g *graph.Graph, m *Model, cliques [][]int) []float64 {
	scored := scoreCliques(g, m, cliques)
	out := make([]float64, len(scored))
	for i, s := range scored {
		out[i] = s.score
	}
	return out
}

// scoreCliques evaluates the classifier on every maximal clique. Scoring is
// read-only on the graph and the model, so rounds with many cliques fan
// out across GOMAXPROCS workers; results are written by index, keeping the
// output identical to the sequential path. Each worker owns one scorer, so
// the whole pass reuses feature and activation buffers instead of
// allocating per clique.
func scoreCliques(g *graph.Graph, m *Model, cliques [][]int) []scoredClique {
	scored := make([]scoredClique, len(cliques))
	if len(cliques) < scoreParallelThreshold {
		var sc scorer
		for i, q := range cliques {
			scored[i] = scoredClique{nodes: q, score: m.scoreScratch(g, q, true, &sc)}
		}
		return scored
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cliques) {
		workers = len(cliques)
	}
	var wg sync.WaitGroup
	chunk := (len(cliques) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cliques) {
			hi = len(cliques)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var sc scorer
			for i := lo; i < hi; i++ {
				scored[i] = scoredClique{nodes: cliques[i], score: m.scoreScratch(g, cliques[i], true, &sc)}
			}
		}(lo, hi)
	}
	wg.Wait()
	return scored
}
