package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"marioh/internal/features"
)

// TestPermSamplerMatchesRandPerm pins the determinism contract of the
// allocation-reduced subset sampler: for the same seeded rng it must return
// exactly what the old rng.Perm-based sampler returned AND leave the rng
// stream in the same position, so seeded reconstruction output is
// bit-for-bit unchanged.
func TestPermSamplerMatchesRandPerm(t *testing.T) {
	q := []int{3, 14, 15, 92, 65, 35, 89, 79}
	for seed := int64(0); seed < 20; seed++ {
		for k := 1; k <= len(q); k++ {
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed))

			var ps PermSampler
			got := ps.Sample(q, k, rngA)

			idx := rngB.Perm(len(q))[:k]
			want := make([]int, k)
			for i, j := range idx {
				want[i] = q[j]
			}
			sort.Ints(want)

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d k %d: sample %v, want %v", seed, k, got, want)
			}
			if a, b := rngA.Int63(), rngB.Int63(); a != b {
				t.Fatalf("seed %d k %d: rng stream diverged (%d vs %d)", seed, k, a, b)
			}
		}
	}
}

// TestScoreScratchMatchesScore: the per-worker scratch path must reproduce
// Model.Score bit for bit on every built-in featurizer.
func TestScoreScratchMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := randomHypergraph(rng, 14, 12)
	g := h.Project()
	for _, name := range []string{"marioh", "marioh-nomhh", "shyre-count", "shyre-motif"} {
		feat, ok := features.ByName(name)
		if !ok {
			t.Fatalf("featurizer %q missing", name)
		}
		m := Train(g, h, TrainOptions{Seed: 7, Epochs: 5, Featurizer: feat})
		var sc scorer
		for _, q := range g.MaximalCliques(2) {
			want := m.Score(g, q, true)
			if got := m.scoreScratch(g, q, true, &sc); got != want {
				t.Fatalf("%s: scratch score %v != %v for %v", name, got, want, q)
			}
			// Reuse across calls must not leak state between cliques.
			if got := m.scoreScratch(g, q, false, &sc); got != m.Score(g, q, false) {
				t.Fatalf("%s: scratch score diverges on reuse for %v", name, q)
			}
		}
	}
}

// TestScoreCliquesAllocationFree: the steady-state scoring pass must not
// allocate per clique (a handful of setup allocations are allowed).
func TestScoreCliquesAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	h := randomHypergraph(rng, 40, 120)
	g := h.Project()
	m := Train(g, h, TrainOptions{Seed: 3, Epochs: 3})
	cliques := g.MaximalCliques(2)
	if len(cliques) < 20 {
		t.Fatalf("want a meaty round, got %d cliques", len(cliques))
	}
	var sc scorer
	// Warm the scratch, then measure.
	for _, q := range cliques {
		m.scoreScratch(g, q, true, &sc)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, q := range cliques {
			m.scoreScratch(g, q, true, &sc)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state scoring allocates %.1f times per round over %d cliques, want 0",
			allocs, len(cliques))
	}
}

// TestScoreCliquesScratchParallelMatchesSequential: the chunked fan-out
// with per-worker scratch must reproduce the sequential scores exactly.
func TestScoreCliquesScratchParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	h := randomHypergraph(rng, 30, 80)
	g := h.Project()
	m := Train(g, h, TrainOptions{Seed: 5, Epochs: 3})
	base := g.MaximalCliques(2)
	// Replicate cliques past the parallel threshold.
	var cliques [][]int
	for len(cliques) < defaultScoreParallelThreshold+37 {
		cliques = append(cliques, base...)
	}
	par := ScoreCliques(g, m, cliques)
	var sc scorer
	for i, q := range cliques {
		if want := m.scoreScratch(g, q, true, &sc); par[i] != want {
			t.Fatalf("clique %d: parallel %v != sequential %v", i, par[i], want)
		}
	}
}
