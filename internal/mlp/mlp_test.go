package mlp

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestForwardShape(t *testing.T) {
	n := New(3, []int{4, 2}, 1)
	p := n.Forward([]float64{0.1, -0.2, 0.3})
	if p <= 0 || p >= 1 {
		t.Fatalf("Forward out of (0,1): %v", p)
	}
	if len(n.Sizes) != 4 || n.Sizes[3] != 1 {
		t.Fatalf("layer sizes = %v", n.Sizes)
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New(5, []int{8}, 42)
	b := New(5, []int{8}, 42)
	for l := range a.W {
		for i := range a.W[l] {
			if a.W[l][i] != b.W[l][i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func TestTrainLinearlySeparable(t *testing.T) {
	// y = 1 iff x0 + x1 > 1.
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		if a+b > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	n := New(2, []int{8}, 1)
	loss := n.Train(X, y, TrainOptions{Epochs: 150, LR: 5e-3, Seed: 1})
	if loss > 0.25 {
		t.Fatalf("final loss %v too high", loss)
	}
	correct := 0
	for i := range X {
		p := n.Forward(X[i])
		if (p > 0.5) == (y[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("train accuracy %v < 0.95", acc)
	}
}

func TestTrainXOR(t *testing.T) {
	// XOR needs the hidden layer: a pure linear model can't fit it.
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0, 1, 1, 0}
	// Replicate so minibatches see everything repeatedly.
	var Xr [][]float64
	var yr []float64
	for i := 0; i < 64; i++ {
		Xr = append(Xr, X...)
		yr = append(yr, y...)
	}
	n := New(2, []int{8, 4}, 3)
	n.Train(Xr, yr, TrainOptions{Epochs: 200, LR: 5e-3, Seed: 3})
	for i := range X {
		p := n.Forward(X[i])
		if (p > 0.5) != (y[i] == 1) {
			t.Fatalf("XOR case %v misclassified: p=%v", X[i], p)
		}
	}
}

func TestTrainEmptyAndMismatch(t *testing.T) {
	n := New(2, []int{4}, 1)
	if loss := n.Train(nil, nil, TrainOptions{}); loss != 0 {
		t.Fatal("empty training should be a no-op")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	n.Train([][]float64{{1, 2}}, []float64{1, 0}, TrainOptions{})
}

func TestJSONRoundTrip(t *testing.T) {
	n := New(3, []int{4}, 9)
	b, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var m Net
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -1, 2}
	if math.Abs(n.Forward(x)-m.Forward(x)) > 1e-15 {
		t.Fatal("round-tripped network disagrees")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}}
	s := FitStandardizer(X)
	if s.Mean[0] != 2 || s.Mean[1] != 10 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Std[0] != 1 {
		t.Fatalf("std[0] = %v, want 1", s.Std[0])
	}
	if s.Std[1] != 1 { // constant feature gets unit scale
		t.Fatalf("std[1] = %v, want fallback 1", s.Std[1])
	}
	got := s.Transform([]float64{3, 10})
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Transform = %v", got)
	}
}

func TestStandardizerEmpty(t *testing.T) {
	s := FitStandardizer(nil)
	x := []float64{1, 2}
	if got := s.Transform(x); got[0] != 1 || got[1] != 2 {
		t.Fatal("empty standardizer should be identity")
	}
}

func TestTrainIsDeterministic(t *testing.T) {
	X := [][]float64{{0, 1}, {1, 0}, {1, 1}, {0, 0}, {0.5, 0.5}}
	y := []float64{1, 1, 0, 0, 1}
	a := New(2, []int{4}, 11)
	b := New(2, []int{4}, 11)
	a.Train(X, y, TrainOptions{Epochs: 20, Seed: 5})
	b.Train(X, y, TrainOptions{Epochs: 20, Seed: 5})
	x := []float64{0.3, 0.7}
	if a.Forward(x) != b.Forward(x) {
		t.Fatal("training not deterministic for fixed seeds")
	}
}
