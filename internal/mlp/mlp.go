// Package mlp implements the "simple MLP" classifier of the MARIOH paper
// from scratch: fully-connected layers with ReLU hidden activations, a
// sigmoid output for binary classification, binary cross-entropy loss, and
// the Adam optimizer. Training is deterministic for a fixed seed.
package mlp

import (
	"encoding/json"
	"math"
	"math/rand"
)

// Net is a feed-forward binary classifier. Fields are exported so a trained
// network can be serialized with encoding/json and reloaded.
type Net struct {
	Sizes []int       // layer widths: input, hidden..., 1
	W     [][]float64 // W[l] is Sizes[l+1]×Sizes[l], row-major
	B     [][]float64 // B[l] has Sizes[l+1] entries
}

// New creates a network with the given input width and hidden layer widths;
// the output layer always has a single sigmoid unit. Weights use He
// initialization from the provided seed.
func New(inputDim int, hidden []int, seed int64) *Net {
	sizes := append([]int{inputDim}, hidden...)
	sizes = append(sizes, 1)
	n := &Net{Sizes: sizes}
	rng := rand.New(rand.NewSource(seed))
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		std := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * std
		}
		n.W = append(n.W, w)
		n.B = append(n.B, make([]float64, out))
	}
	return n
}

// Forward returns the sigmoid output probability for a single input vector.
// Hot paths should prefer ForwardScratch, which reuses activation buffers.
func (n *Net) Forward(x []float64) float64 {
	a := x
	for l := 0; l < len(n.W); l++ {
		a = n.layer(l, a, l < len(n.W)-1)
	}
	return sigmoid(a[0])
}

// Scratch holds the reusable activation buffers of ForwardScratch. It must
// not be shared between goroutines. The zero value is ready to use.
type Scratch struct {
	a, b []float64
}

// ForwardScratch is Forward with caller-owned activation buffers: in the
// steady state it performs zero heap allocations. The result is
// bit-identical to Forward.
func (n *Net) ForwardScratch(x []float64, s *Scratch) float64 {
	a := x
	cur, next := &s.a, &s.b
	for l := 0; l < len(n.W); l++ {
		out := n.Sizes[l+1]
		if cap(*cur) < out {
			*cur = make([]float64, out)
		}
		z := (*cur)[:out]
		n.layerInto(z, l, a, l < len(n.W)-1)
		a = z
		cur, next = next, cur
	}
	return sigmoid(a[0])
}

// layer computes W[l]·a + B[l], applying ReLU when relu is true.
func (n *Net) layer(l int, a []float64, relu bool) []float64 {
	z := make([]float64, n.Sizes[l+1])
	n.layerInto(z, l, a, relu)
	return z
}

// layerInto computes W[l]·a + B[l] into z (len n.Sizes[l+1]), applying ReLU
// when relu is true. z must not alias a.
func (n *Net) layerInto(z []float64, l int, a []float64, relu bool) {
	in, out := n.Sizes[l], n.Sizes[l+1]
	w := n.W[l]
	for o := 0; o < out; o++ {
		s := n.B[l][o]
		row := w[o*in : (o+1)*in]
		for i, v := range row {
			s += v * a[i]
		}
		z[o] = s
	}
	if relu {
		for i, v := range z {
			if v < 0 {
				z[i] = 0
			}
		}
	}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// TrainOptions configure Train.
type TrainOptions struct {
	Epochs    int     // full passes over the data (default 60)
	BatchSize int     // minibatch size (default 32)
	LR        float64 // Adam step size (default 1e-3)
	L2        float64 // weight decay (default 1e-5)
	Seed      int64   // shuffling seed
	// Stop is polled before every epoch; returning true aborts training,
	// keeping the weights of the epochs completed so far. Used to thread
	// context cancellation down without importing context here.
	Stop func() bool
}

func (o *TrainOptions) defaults() {
	if o.Epochs <= 0 {
		o.Epochs = 60
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.LR <= 0 {
		o.LR = 1e-3
	}
	if o.L2 < 0 {
		o.L2 = 0
	}
}

// Train fits the network on (X, y) with y ∈ {0,1}, minimizing binary
// cross-entropy with Adam. It returns the final mean training loss.
func (n *Net) Train(X [][]float64, y []float64, opts TrainOptions) float64 {
	opts.defaults()
	if len(X) == 0 {
		return 0
	}
	if len(X) != len(y) {
		panic("mlp: X and y length mismatch")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ad := newAdam(n, opts.LR)
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	lastLoss := 0.0
	for ep := 0; ep < opts.Epochs; ep++ {
		if opts.Stop != nil && opts.Stop() {
			break
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for start := 0; start < len(order); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(order) {
				end = len(order)
			}
			gw, gb := n.zeroGrads()
			for _, idx := range order[start:end] {
				total += n.backprop(X[idx], y[idx], gw, gb)
			}
			inv := 1 / float64(end-start)
			for l := range gw {
				for i := range gw[l] {
					gw[l][i] = gw[l][i]*inv + opts.L2*n.W[l][i]
				}
				for i := range gb[l] {
					gb[l][i] *= inv
				}
			}
			ad.step(n, gw, gb)
		}
		lastLoss = total / float64(len(order))
	}
	return lastLoss
}

func (n *Net) zeroGrads() (gw, gb [][]float64) {
	for l := range n.W {
		gw = append(gw, make([]float64, len(n.W[l])))
		gb = append(gb, make([]float64, len(n.B[l])))
	}
	return gw, gb
}

// backprop accumulates the gradient of BCE(Forward(x), y) into gw/gb and
// returns the sample loss.
func (n *Net) backprop(x []float64, y float64, gw, gb [][]float64) float64 {
	L := len(n.W)
	acts := make([][]float64, L+1) // acts[0] = x, acts[l] = post-activation
	acts[0] = x
	for l := 0; l < L; l++ {
		acts[l+1] = n.layer(l, acts[l], l < L-1)
	}
	p := sigmoid(acts[L][0])
	const eps = 1e-12
	loss := -(y*math.Log(p+eps) + (1-y)*math.Log(1-p+eps))
	// δ for the output pre-activation of the sigmoid+BCE pair is (p − y).
	delta := []float64{p - y}
	for l := L - 1; l >= 0; l-- {
		in := n.Sizes[l]
		a := acts[l]
		w := n.W[l]
		for o, d := range delta {
			gb[l][o] += d
			row := gw[l][o*in : (o+1)*in]
			for i := range row {
				row[i] += d * a[i]
			}
		}
		if l == 0 {
			break
		}
		prev := make([]float64, in)
		for o, d := range delta {
			row := w[o*in : (o+1)*in]
			for i := range row {
				prev[i] += d * row[i]
			}
		}
		// ReLU gate of the previous hidden layer.
		for i := range prev {
			if acts[l][i] <= 0 {
				prev[i] = 0
			}
		}
		delta = prev
	}
	return loss
}

// adam holds Adam optimizer state.
type adam struct {
	lr, b1, b2, eps float64
	t               int
	mw, vw, mb, vb  [][]float64
}

func newAdam(n *Net, lr float64) *adam {
	a := &adam{lr: lr, b1: 0.9, b2: 0.999, eps: 1e-8}
	for l := range n.W {
		a.mw = append(a.mw, make([]float64, len(n.W[l])))
		a.vw = append(a.vw, make([]float64, len(n.W[l])))
		a.mb = append(a.mb, make([]float64, len(n.B[l])))
		a.vb = append(a.vb, make([]float64, len(n.B[l])))
	}
	return a
}

func (a *adam) step(n *Net, gw, gb [][]float64) {
	a.t++
	c1 := 1 - math.Pow(a.b1, float64(a.t))
	c2 := 1 - math.Pow(a.b2, float64(a.t))
	upd := func(p, g, m, v []float64) {
		for i := range p {
			m[i] = a.b1*m[i] + (1-a.b1)*g[i]
			v[i] = a.b2*v[i] + (1-a.b2)*g[i]*g[i]
			p[i] -= a.lr * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.eps)
		}
	}
	for l := range n.W {
		upd(n.W[l], gw[l], a.mw[l], a.vw[l])
		upd(n.B[l], gb[l], a.mb[l], a.vb[l])
	}
}

// MarshalJSON / UnmarshalJSON round-trip the trained network.
func (n *Net) MarshalJSON() ([]byte, error) {
	type alias Net
	return json.Marshal((*alias)(n))
}

// UnmarshalJSON restores a serialized network.
func (n *Net) UnmarshalJSON(b []byte) error {
	type alias Net
	return json.Unmarshal(b, (*alias)(n))
}
