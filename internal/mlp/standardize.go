package mlp

import "math"

// Standardizer rescales feature vectors to zero mean and unit variance
// using statistics estimated from the training set. Constant features get a
// unit scale so they pass through centered at zero.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer estimates per-dimension mean and standard deviation.
func FitStandardizer(X [][]float64) *Standardizer {
	if len(X) == 0 {
		return &Standardizer{}
	}
	d := len(X[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	inv := 1 / float64(len(X))
	for j := range s.Mean {
		s.Mean[j] *= inv
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] * inv)
		if s.Std[j] < 1e-9 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform standardizes x in place and returns it.
func (s *Standardizer) Transform(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return x
	}
	for j := range x {
		x[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
	return x
}

// TransformAll standardizes every row in place and returns X.
func (s *Standardizer) TransformAll(X [][]float64) [][]float64 {
	for _, row := range X {
		s.Transform(row)
	}
	return X
}
