package mlp

import (
	"math/rand"
	"testing"
)

// TestForwardScratchMatchesForward: the reusable-buffer forward pass must be
// bit-identical to Forward across layer shapes and reused scratches.
func TestForwardScratchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := [][]int{{}, {8}, {32, 16}, {7, 5, 3}}
	for si, hidden := range shapes {
		n := New(6, hidden, int64(si))
		var s Scratch
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, 6)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := n.Forward(x)
			if got := n.ForwardScratch(x, &s); got != want {
				t.Fatalf("shape %v trial %d: scratch %v != %v", hidden, trial, got, want)
			}
		}
	}
}

// TestForwardScratchAllocationFree: after warm-up the scratch path must not
// touch the heap.
func TestForwardScratchAllocationFree(t *testing.T) {
	n := New(23, []int{32, 16}, 1)
	x := make([]float64, 23)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	var s Scratch
	n.ForwardScratch(x, &s)
	allocs := testing.AllocsPerRun(50, func() { n.ForwardScratch(x, &s) })
	if allocs > 0 {
		t.Fatalf("ForwardScratch allocates %.1f per call, want 0", allocs)
	}
}
