// Package lintutil holds the plumbing shared by the mariohlint
// analyzers: the package-scope filter that keeps each analyzer on its
// determinism-critical beat, the //lint:<analyzer> suppression
// directive, and small AST/type helpers.
//
// Suppression contract (enforced, not advisory): a finding is silenced
// only by a comment of the form
//
//	//lint:<analyzer> <reason>
//
// on the offending line, or on the line directly above it. The reason
// is mandatory — a bare directive still reports, so every vetted
// exception in the tree documents why it is safe.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// InScope reports whether the package under analysis is one the
// analyzer polices. suffixes is the comma-separated list from the
// analyzer's -<name>.packages flag; a package matches when its import
// path equals an entry or ends with "/"+entry. Packages under a
// testdata directory are always in scope so the analysistest fixtures
// (and `go run ./cmd/mariohlint <fixture dir>`) exercise the analyzer
// without widening the production flag default.
func InScope(pkgPath string, suffixes string) bool {
	if strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, s := range strings.Split(suffixes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos sits in a _test.go file. The
// determinism and context contracts bind production code; tests are
// free to use time.Now, ad-hoc contexts and unordered iteration.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.File(pos).Name(), "_test.go")
}

// Suppressed reports whether the line holding pos carries a
// "//lint:<name> <reason>" directive — trailing on the same line, or a
// comment line (or the tail of a doc-comment group) directly above it.
// Directives without a reason do not count.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	file := fileFor(pass, pos)
	if file == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	prefix := "//lint:" + name
	for _, group := range file.Comments {
		endLine := pass.Fset.Position(group.End()).Line
		if endLine != line && endLine != line-1 {
			continue
		}
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, prefix)
			if !ok {
				continue
			}
			// Require a whitespace-separated, non-empty justification so
			// "//lint:maporder" alone (or "//lint:maporderx") never
			// silences a finding.
			if len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t') &&
				strings.TrimSpace(rest) != "" {
				return true
			}
		}
	}
	return false
}

// fileFor returns the *ast.File whose extent contains pos.
func fileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// TakesContext reports whether the call's callee signature declares a
// context.Context first parameter.
func TakesContext(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return IsContextType(sig.Params().At(0).Type())
}

// ReceiverIdent returns the declared receiver identifier of fn, or nil
// for functions, anonymous receivers and blank receivers.
func ReceiverIdent(fn *ast.FuncDecl) *ast.Ident {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fn.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack (a WithStack traversal stack, outermost first).
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
