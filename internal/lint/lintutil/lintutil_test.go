package lintutil

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func TestInScope(t *testing.T) {
	const suffixes = "internal/core, internal/shard"
	cases := []struct {
		pkg  string
		want bool
	}{
		{"marioh/internal/core", true},
		{"internal/core", true},
		{"marioh/internal/shard", true},
		{"marioh/internal/server", false},
		{"marioh/internal/corex", false},
		{"marioh/notinternal/core", false}, // suffix must start at a path segment
		{"elsewhere/internal/core", true},
		{"anything/testdata/a", true},
		{"", false},
	}
	for _, c := range cases {
		if got := InScope(c.pkg, suffixes); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
	if InScope("marioh/internal/core", " , ") {
		t.Error("blank suffix entries must not match everything")
	}
}

// parsePass wraps one synthetic file in just enough analysis.Pass for
// the position-based helpers.
func parsePass(t *testing.T, filename, src string) (*analysis.Pass, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &analysis.Pass{Fset: fset, Files: []*ast.File{f}}, f
}

func TestSuppressed(t *testing.T) {
	pass, f := parsePass(t, "p.go", `package p

func a() {
	x := 1 //lint:demo timing is cosmetic here

	y := 2
	//lint:demo reason on the line above
	z := 3
	//lint:demo
	w := 4
	_, _, _, _ = x, y, z, w
}
`)
	pos := map[string]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				pos[id.Name] = as.Pos()
			}
		}
		return true
	})
	cases := []struct {
		name string
		want bool
	}{
		{"x", true},  // trailing directive with reason
		{"y", false}, // no directive
		{"z", true},  // directive on the line above
		{"w", false}, // bare directive: reason is mandatory
	}
	for _, c := range cases {
		if got := Suppressed(pass, pos[c.name], "demo"); got != c.want {
			t.Errorf("Suppressed(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if Suppressed(pass, pos["x"], "other") {
		t.Error("directive for one analyzer must not silence another")
	}
	if Suppressed(pass, token.NoPos, "demo") {
		t.Error("positions outside every file must not be suppressed")
	}
}

func TestIsTestFile(t *testing.T) {
	pass, f := parsePass(t, "p_test.go", "package p\n")
	if !IsTestFile(pass, f.Pos()) {
		t.Error("p_test.go should be a test file")
	}
	pass, f = parsePass(t, "p.go", "package p\n")
	if IsTestFile(pass, f.Pos()) {
		t.Error("p.go should not be a test file")
	}
}

func TestContextHelpers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "q.go", `package q

import "context"

func f(ctx context.Context, n int) {}
func g(n int)                      {}

func use() {
	f(context.Background(), 1)
	g(2)
}
`, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("q", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}

	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && (id.Name == "f" || id.Name == "g") {
				calls = append(calls, c)
			}
		}
		return true
	})
	if len(calls) != 2 {
		t.Fatalf("found %d calls, want 2", len(calls))
	}
	if !TakesContext(info, calls[0]) {
		t.Error("f takes a context.Context first parameter")
	}
	if TakesContext(info, calls[1]) {
		t.Error("g does not take a context")
	}

	sig := info.TypeOf(calls[0].Fun).(*types.Signature)
	if !IsContextType(sig.Params().At(0).Type()) {
		t.Error("first param of f is context.Context")
	}
	if IsContextType(types.Typ[types.Int]) {
		t.Error("int is not context.Context")
	}
}

func TestReceiverIdent(t *testing.T) {
	_, f := parsePass(t, "r.go", `package r

type T struct{}

func (t *T) named()  {}
func (_ T) blank()   {}
func (T) anonymous() {}
func plain()         {}
`)
	got := map[string]bool{} // method name → has receiver ident
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			got[fn.Name.Name] = ReceiverIdent(fn) != nil
		}
	}
	want := map[string]bool{"named": true, "blank": false, "anonymous": false, "plain": false}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("ReceiverIdent(%s) != nil = %v, want %v", name, got[name], w)
		}
	}
}

func TestEnclosingFunc(t *testing.T) {
	_, f := parsePass(t, "e.go", `package e

func outer() {
	_ = func() { _ = 1 }
}
`)
	decl := f.Decls[0].(*ast.FuncDecl)
	var lit *ast.FuncLit
	ast.Inspect(f, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})

	if got := EnclosingFunc([]ast.Node{f, decl, decl.Body}); got != decl {
		t.Errorf("EnclosingFunc in decl body = %T, want the FuncDecl", got)
	}
	if got := EnclosingFunc([]ast.Node{f, decl, decl.Body, lit, lit.Body}); got != lit {
		t.Errorf("EnclosingFunc in literal body = %T, want the FuncLit", got)
	}
	if got := EnclosingFunc([]ast.Node{f}); got != nil {
		t.Errorf("EnclosingFunc outside any function = %T, want nil", got)
	}
}
