package lint_test

import (
	"testing"

	"marioh/internal/lint"
)

func TestAnalyzers(t *testing.T) {
	as := lint.Analyzers()
	want := []string{"maporder", "randsource", "ctxflow", "lockcheck"}
	if len(as) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s has no Run", a.Name)
		}
	}
}
