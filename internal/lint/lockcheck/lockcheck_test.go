package lockcheck_test

import (
	"path/filepath"
	"testing"

	"marioh/internal/lint/linttest"
	"marioh/internal/lint/lockcheck"
)

func TestLockCheck(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, filepath.Join("testdata", "src", "a"))
}
