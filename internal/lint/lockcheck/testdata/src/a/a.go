// Package a exercises the lockcheck analyzer: "// guarded by mu"
// fields must be accessed with the mutex held, with the Locked-suffix
// and callers-hold-doc conventions and justified suppressions exempt.
package a

import "sync"

// Store is the canonical guarded struct.
type Store struct {
	mu    sync.Mutex
	count int            // guarded by mu
	byID  map[string]int // guarded by mu
	name  string         // immutable after construction
}

// Get reads under the lock; fine.
func (s *Store) Get(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// Peek reads bare.
func (s *Store) Peek() int {
	return s.count // want "Store.count is guarded by mu but read without mu.Lock or mu.RLock held"
}

// Bump writes bare, through the lock-free fast path it wishes it had.
func (s *Store) Bump() {
	s.count++ // want "Store.count is guarded by mu but written without mu.Lock held"
}

// Drop deletes from a guarded map bare.
func (s *Store) Drop(id string) {
	delete(s.byID, id) // want "Store.byID is guarded by mu but written without mu.Lock held"
}

// Name reads an unguarded field; no finding.
func (s *Store) Name() string { return s.name }

// resetLocked relies on the Locked-suffix convention.
func (s *Store) resetLocked() {
	s.count = 0
	s.byID = map[string]int{}
}

// prune evicts stale entries; callers hold s.mu.
func (s *Store) prune() {
	for id, n := range s.byID {
		if n == 0 {
			delete(s.byID, id)
		}
	}
}

// Justified carries a reasoned suppression.
func (s *Store) Justified() int {
	return s.count //lint:lockcheck read-only stats probe; torn reads acceptable
}

// Bare directives carry no justification, so the finding stays.
func (s *Store) Bare() int {
	//lint:lockcheck
	return s.count // want "Store.count is guarded by mu but read"
}

// RWStore exercises the RWMutex read/write split.
type RWStore struct {
	mu   sync.RWMutex
	data []int // guarded by mu
}

// Read under RLock; fine.
func (r *RWStore) Read(i int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[i]
}

// WriteUnderRLock mutates data under only the read half of the RWMutex.
func (r *RWStore) WriteUnderRLock(i, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.data[i] = v // want "RWStore.data is guarded by mu but written without mu.Lock held"
}

// WriteUnderLock is correct.
func (r *RWStore) WriteUnderLock(i, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data[i] = v
}
