// Package lockcheck defines the mariohlint analyzer that turns the
// repo's "// guarded by mu" field comments into a checked contract.
//
// A struct field annotated
//
//	foo int // guarded by mu
//
// (where mu is a sync.Mutex or sync.RWMutex field of the same struct)
// may only be touched from the struct's methods after the receiver's
// mu.Lock — or mu.RLock for reads — earlier in the same method body.
// Two conventions from the server code are recognized as "the caller
// locked for us": a method name ending in Locked, and a doc comment
// stating that callers hold the mutex (any phrasing matching
// "hold ... <mu>"). Residual exceptions carry //lint:lockcheck <reason>.
//
// The check is deliberately syntactic — a linear "was Lock called
// before this point" scan, not a happens-before proof. It formalizes
// the queue/registry/sessionStore discipline and catches the common
// regression (a new method reading a guarded map bare); the -race
// matrix remains the dynamic backstop.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"marioh/internal/lint/lintutil"
)

const doc = `check that "// guarded by <mu>" fields are accessed with the mutex held

Fields annotated "// guarded by <mu>" must only be read after
<mu>.Lock/RLock and written after <mu>.Lock earlier in the enclosing
method, unless the method's name ends in Locked or its doc says callers
hold the mutex. Annotate vetted exceptions with //lint:lockcheck <reason>.`

const name = "lockcheck"

// Analyzer is the lockcheck pass. It runs everywhere: annotations are
// opt-in, so un-annotated packages produce no findings.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)\b`)

// guardedField records one annotated field and the mutex field name
// protecting it.
type guardedField struct {
	structType *types.Named
	mutex      string
}

func run(pass *analysis.Pass) (any, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	guarded := map[*types.Var]guardedField{}
	insp.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		spec := n.(*ast.TypeSpec)
		st, ok := spec.Type.(*ast.StructType)
		if !ok {
			return
		}
		named, ok := pass.TypesInfo.Defs[spec.Name].Type().(*types.Named)
		if !ok {
			return
		}
		for _, field := range st.Fields.List {
			mu := guardAnnotation(field)
			if mu == "" {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					guarded[v] = guardedField{structType: named, mutex: mu}
				}
			}
		}
	})
	if len(guarded) == 0 {
		return nil, nil
	}

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || lintutil.IsTestFile(pass, fn.Pos()) {
			return
		}
		recv := lintutil.ReceiverIdent(fn)
		if recv == nil {
			return
		}
		recvObj := pass.TypesInfo.Defs[recv]
		if recvObj == nil {
			return
		}
		checkMethod(pass, fn, recvObj, guarded)
	})
	return nil, nil
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "" when the field is unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockCall is one receiver.<mu>.Lock/RLock site in a method body.
type lockCall struct {
	pos   token.Pos
	mutex string
	read  bool // RLock
}

func checkMethod(pass *analysis.Pass, fn *ast.FuncDecl, recvObj types.Object, guarded map[*types.Var]guardedField) {
	heldByConvention := strings.HasSuffix(fn.Name.Name, "Locked") ||
		callersHold(fn.Doc)

	// Collect every recv.<mu>.Lock()/RLock() in document order; the
	// position test below is a linear approximation of "held here".
	var locks []lockCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		if method != "Lock" && method != "RLock" {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := inner.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != recvObj {
			return true
		}
		locks = append(locks, lockCall{pos: call.Pos(), mutex: inner.Sel.Name, read: method == "RLock"})
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != recvObj {
			return true
		}
		fieldVar, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		gf, ok := guarded[fieldVar]
		if !ok || heldByConvention {
			return true
		}
		write := isWrite(pass, fn.Body, sel)
		if lockHeldAt(locks, gf.mutex, sel.Pos(), write) {
			return true
		}
		if lintutil.Suppressed(pass, sel.Pos(), name) {
			return true
		}
		verb := "read"
		need := gf.mutex + ".Lock or " + gf.mutex + ".RLock"
		if write {
			verb = "written"
			need = gf.mutex + ".Lock"
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s but %s without %s held (//lint:lockcheck <reason> if safe)",
			gf.structType.Obj().Name(), fieldVar.Name(), gf.mutex, verb, need)
		return true
	})
}

// callersHold reports whether a method doc declares the caller-locks
// convention ("callers hold q.mu", "caller must hold mu", ...).
func callersHold(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	text := doc.Text()
	return strings.Contains(text, "hold") &&
		(strings.Contains(text, "mu") || strings.Contains(text, "lock"))
}

// lockHeldAt reports whether some Lock (or, for reads, RLock) of mutex
// appears before pos in the method body.
func lockHeldAt(locks []lockCall, mutex string, pos token.Pos, write bool) bool {
	for _, l := range locks {
		if l.mutex != mutex || l.pos >= pos {
			continue
		}
		if write && l.read {
			continue
		}
		return true
	}
	return false
}

// isWrite reports whether sel is a store target: assigned (directly or
// through an index), inc/decremented, address-taken, deleted from, or
// passed to a mutating builtin.
func isWrite(pass *analysis.Pass, body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	write := false
	ast.Inspect(body, func(n ast.Node) bool {
		if write {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if storeRoot(lhs) == sel {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if storeRoot(n.X) == sel {
				write = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && storeRoot(n.X) == sel {
				write = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin &&
					(id.Name == "delete" || id.Name == "clear") &&
					len(n.Args) > 0 && storeRoot(n.Args[0]) == sel {
					write = true
				}
			}
		}
		return !write
	})
	return write
}

// storeRoot unwraps index/paren/star chains around a store target to
// the selector (if any) being written through.
func storeRoot(expr ast.Expr) ast.Expr {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return expr
		}
	}
}
