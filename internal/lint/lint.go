// Package lint assembles the mariohlint analyzer suite: the custom
// go/analysis passes that prove the repo's determinism and concurrency
// invariants at compile time. cmd/mariohlint drives them through the
// `go vet -vettool` protocol; `make lint` and the CI lint job gate on
// a clean run.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"marioh/internal/lint/ctxflow"
	"marioh/internal/lint/lockcheck"
	"marioh/internal/lint/maporder"
	"marioh/internal/lint/randsource"
)

// Analyzers returns the full mariohlint suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		randsource.Analyzer,
		ctxflow.Analyzer,
		lockcheck.Analyzer,
	}
}
