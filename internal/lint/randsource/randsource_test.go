package randsource_test

import (
	"path/filepath"
	"testing"

	"marioh/internal/lint/linttest"
	"marioh/internal/lint/randsource"
)

func TestRandSource(t *testing.T) {
	linttest.Run(t, randsource.Analyzer, filepath.Join("testdata", "src", "a"))
}
