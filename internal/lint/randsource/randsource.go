// Package randsource defines the mariohlint analyzer that keeps
// process-global nondeterminism out of the reconstruction paths.
//
// The engine's reproducibility rests on every random draw coming from a
// seed the caller controls — the component-keyed splitmix64 sampleRNG
// in internal/core, or an explicit rand.New(rand.NewSource(seed)).
// Global math/rand draws share mutable process state, time.Now smuggles
// wall-clock into supposedly pure computations, and os.Getenv makes
// output depend on the host environment. All three are reported inside
// the determinism-critical packages unless the site carries a
// //lint:randsource <reason> justification (timing that only feeds
// Progress events is the canonical vetted exception).
package randsource

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"marioh/internal/lint/lintutil"
)

const doc = `forbid global math/rand, time.Now and os.Getenv in reconstruction paths

Reconstruction must be a pure function of (graph, model, seed). Draws
from the global math/rand source, wall-clock reads and environment
lookups break that. Use the component-seeded sampleRNG/splitmix64 idiom
(or rand.New(rand.NewSource(seed))) instead, or annotate the vetted
exception with //lint:randsource <reason>.`

// DefaultPackages mirrors maporder's determinism-critical scope.
const DefaultPackages = "internal/core,internal/graph,internal/shard,internal/incremental,internal/hypergraph,internal/durability,internal/corpus"

const name = "randsource"

// Analyzer is the randsource pass.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packagesFlag = DefaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages", DefaultPackages,
		"comma-separated package path suffixes to analyze")
}

// seededConstructors are the math/rand entry points that take or build
// an explicit source and therefore stay reproducible.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.InScope(pass.Pkg.Path(), packagesFlag) {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
			return
		}
		var msg string
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if seededConstructors[fn.Name()] {
				return
			}
			msg = "global " + fn.Pkg().Path() + "." + fn.Name() +
				" draws from process-wide state; use the seeded sampleRNG/splitmix64 idiom"
		case "time":
			if fn.Name() != "Now" {
				return
			}
			msg = "time.Now in a reconstruction path makes output depend on the wall clock"
		case "os":
			switch fn.Name() {
			case "Getenv", "LookupEnv", "Environ":
			default:
				return
			}
			msg = "os." + fn.Name() + " makes reconstruction depend on the host environment"
		default:
			return
		}
		if lintutil.IsTestFile(pass, call.Pos()) {
			return
		}
		if lintutil.Suppressed(pass, call.Pos(), name) {
			return
		}
		pass.Reportf(call.Pos(), "%s (//lint:randsource <reason> if deliberate)", msg)
	})
	return nil, nil
}
