// Package a exercises the randsource analyzer: global math/rand draws,
// wall-clock reads and environment lookups are flagged; seeded
// constructors and justified suppressions are not.
package a

import (
	"math/rand"
	"os"
	"time"
)

// globalDraw uses the process-wide source.
func globalDraw(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn draws from process-wide state"
}

// globalShuffle permutes via the process-wide source.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle draws from process-wide state"
}

// seeded is the sanctioned reproducible idiom.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// wallClock reads the wall clock.
func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a reconstruction path"
}

// envRead depends on the host environment.
func envRead() string {
	return os.Getenv("MARIOH_SEED") // want `os.Getenv makes reconstruction depend on the host environment`
}

// envLookup depends on the host environment too.
func envLookup() (string, bool) {
	return os.LookupEnv("MARIOH_SEED") // want `os.LookupEnv makes reconstruction depend on the host environment`
}

// otherOS is fine: only the environment accessors are forbidden.
func otherOS() string {
	host, _ := os.Hostname()
	return host
}

// justified carries a reasoned suppression.
func justified() time.Time {
	//lint:randsource timing for progress logs only, never in output
	return time.Now()
}

// bareDirective has no justification, so it still reports.
func bareDirective() time.Time {
	//lint:randsource
	return time.Now() // want "time.Now in a reconstruction path"
}
