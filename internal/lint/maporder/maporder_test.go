package maporder_test

import (
	"path/filepath"
	"testing"

	"marioh/internal/lint/linttest"
	"marioh/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, filepath.Join("testdata", "src", "a"))
}
