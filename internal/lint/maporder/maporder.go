// Package maporder defines the mariohlint analyzer that guards the
// byte-identical-output contract against Go's randomized map iteration
// order.
//
// Within the determinism-critical packages (-maporder.packages), a
// `range` over a map whose body feeds an order-sensitive sink — an
// append, an emitted line, a hash/encoder update, a channel send, a
// non-commutative accumulation — produces output that differs from run
// to run. The analyzer reports every such loop unless the collected
// values are demonstrably sorted afterwards in the same function, or
// the site carries a //lint:maporder <reason> justification.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"marioh/internal/lint/lintutil"
)

const doc = `flag map iterations whose order leaks into output

Reconstruction output must be byte-identical regardless of shard count,
delta history, or transport; a range over a map that appends, writes,
hashes, encodes, sends, or accumulates non-commutatively makes it depend
on Go's randomized iteration order. Sort the keys first (a later
sort.X/slices.Sort of the collected slice in the same function also
counts) or annotate the loop with //lint:maporder <reason>.`

// DefaultPackages are the determinism-critical package suffixes the
// analyzer polices by default; testdata packages are always in scope.
const DefaultPackages = "internal/core,internal/graph,internal/shard,internal/incremental,internal/hypergraph,internal/durability,internal/corpus"

const name = "maporder"

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packagesFlag = DefaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages", DefaultPackages,
		"comma-separated package path suffixes to analyze")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.InScope(pass.Pkg.Path(), packagesFlag) {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		if !isMapType(pass.TypesInfo.TypeOf(rng.X)) {
			return true
		}
		if lintutil.IsTestFile(pass, rng.Pos()) {
			return false
		}
		if lintutil.Suppressed(pass, rng.Pos(), name) {
			return true
		}
		enclosing := lintutil.EnclosingFunc(stack)
		if sink := findSink(pass, rng, enclosing); sink != "" {
			pass.Reportf(rng.Pos(),
				"map iteration order feeds %s; sort the keys first or annotate the loop with //lint:maporder <reason>",
				sink)
		}
		return true
	})
	return nil, nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// findSink walks the loop body for the first order-sensitive sink and
// describes it; "" means the body is order-safe.
func findSink(pass *analysis.Pass, rng *ast.RangeStmt, enclosing ast.Node) string {
	keyObj := rangeVarObj(pass, rng.Key)
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
			return false
		case *ast.CallExpr:
			if s := callSink(pass, n, rng, enclosing); s != "" {
				sink = s
				return false
			}
		case *ast.AssignStmt:
			if s := assignSink(pass, n, keyObj); s != "" {
				sink = s
				return false
			}
		}
		return true
	})
	return sink
}

// rangeVarObj resolves a range clause variable (key or value) to its
// object, for both := definitions and = assignments to existing vars.
func rangeVarObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// callSink classifies a call inside the loop body as an order-sensitive
// sink: append (unless the destination is sorted later in the same
// function), fmt emission, or a Write/Encode/Sum-style method that
// folds values into a stream, builder, hash or encoder.
func callSink(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt, enclosing ast.Node) string {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
			dst := baseObj(pass, call.Args[0])
			// Appending to a value born inside the loop body (a fresh
			// per-iteration slice, `append([]int(nil), m...)` and
			// friends) accumulates nothing across iterations.
			if dst == nil || dst.Pos() > rng.Pos() && dst.Pos() < rng.End() {
				return ""
			}
			if sortedAfter(pass, dst, rng, enclosing) {
				return ""
			}
			return "an append"
		}
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && fn.Type().(*types.Signature).Recv() == nil {
		switch fn.Name() {
		case "Sprint", "Sprintf", "Sprintln", "Errorf":
			return "" // value construction, not emission
		}
		return "output via fmt." + fn.Name()
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo",
		"Encode", "EncodeElement", "Sum", "Sum32", "Sum64":
		return "a " + sel.Sel.Name + " call"
	}
	return ""
}

// assignSink flags non-commutative accumulations: self-referential
// updates like h = mix(h, x), string or float op-assign, and writes to
// a slice element at a non-key index (the append-by-cursor idiom).
func assignSink(pass *analysis.Pass, assign *ast.AssignStmt, keyObj types.Object) string {
	for i, lhs := range assign.Lhs {
		switch assign.Tok {
		case token.ASSIGN, token.DEFINE:
			if i < len(assign.Rhs) && selfReferential(pass, lhs, assign.Rhs[i]) {
				return "a self-referential accumulation"
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Integer += and friends commute (bitwise ops always do, and
			// are excluded here entirely: XOR-folding per-key hashes is
			// the sanctioned order-independent fingerprint idiom);
			// string concatenation and floating-point arithmetic do not.
			if t := pass.TypesInfo.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok {
					if b.Info()&types.IsString != 0 && assign.Tok == token.ADD_ASSIGN {
						return "a string concatenation"
					}
					if b.Info()&(types.IsFloat|types.IsComplex) != 0 {
						return "a floating-point accumulation"
					}
				}
			}
		}
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			t := pass.TypesInfo.TypeOf(idx.X)
			if t == nil {
				continue
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array:
				if keyObj == nil || exprObj(pass, idx.Index) != keyObj {
					return "a slice write at a loop-carried index"
				}
			}
		}
	}
	return ""
}

// selfReferential reports whether rhs reads the object written by lhs
// through a call — the hash-chaining shape h = mix(h, k).
func selfReferential(pass *analysis.Pass, lhs, rhs ast.Expr) bool {
	obj := baseObj(pass, lhs)
	if obj == nil {
		return false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	// x = append(x, ...) is callSink's case, where the collect-then-sort
	// idiom is recognized; don't double-report it here.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return false
		}
	}
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

// baseObj resolves the variable at the root of expr (unwrapping index
// and selector chains) so `out`, `out[i]` and `s.buf` all map to an
// object to track.
func baseObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[e]
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[e.Sel]
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func exprObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// ordering call after the loop ends, inside the same enclosing
// function — the collect-then-sort idiom that makes map iteration safe.
func sortedAfter(pass *analysis.Pass, obj types.Object, rng *ast.RangeStmt, enclosing ast.Node) bool {
	if enclosing == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}
