// Package a exercises the maporder analyzer: ranges over maps feeding
// order-sensitive sinks are flagged; the collect-then-sort idiom,
// order-independent folds and justified suppressions are not.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func mix(h uint64, k int) uint64 { return h*1099511628211 ^ uint64(k) }

// appendNoSort leaks map order into the returned slice.
func appendNoSort(m map[int]int) []int {
	var out []int
	for k := range m { // want "map iteration order feeds an append"
		out = append(out, k)
	}
	return out
}

// appendThenSort is the sanctioned collect-then-sort idiom.
func appendThenSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// emit prints in map order.
func emit(m map[string]int) {
	for k, v := range m { // want "map iteration order feeds output via fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// build writes a builder in map order.
func build(m map[string]int) string {
	var sb strings.Builder
	for k := range m { // want "map iteration order feeds a WriteString call"
		sb.WriteString(k)
	}
	return sb.String()
}

// hashChain folds keys non-commutatively.
func hashChain(m map[int]int) uint64 {
	var h uint64
	for k := range m { // want "map iteration order feeds a self-referential accumulation"
		h = mix(h, k)
	}
	return h
}

// xorFold is the sanctioned order-independent fingerprint idiom.
func xorFold(m map[int]int) uint64 {
	var h uint64
	for k := range m {
		h ^= mix(0, k)
	}
	return h
}

// intSum commutes; map order cannot surface.
func intSum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatSum does not associate; map order changes the rounding.
func floatSum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want "map iteration order feeds a floating-point accumulation"
		total += v
	}
	return total
}

// keyedStore writes a slice indexed by the map key: every interleaving
// lands each value in the same slot.
func keyedStore(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
}

// cursorStore appends by cursor, a map-ordered write.
func cursorStore(m map[int]int, out []int) {
	i := 0
	for _, v := range m { // want "map iteration order feeds a slice write at a loop-carried index"
		out[i] = v
		i++
	}
}

// mapCopy writes a map from a map; no order surfaces.
func mapCopy(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// freshPerIteration clones a value inside the body; nothing accumulates
// across iterations.
func freshPerIteration(m map[int][]int) map[int][]int {
	out := make(map[int][]int, len(m))
	for k, vs := range m {
		out[k] = append([]int(nil), vs...)
	}
	return out
}

// sendAll forwards values in map order.
func sendAll(m map[int]int, ch chan<- int) {
	for _, v := range m { // want "map iteration order feeds a channel send"
		ch <- v
	}
}

// justified carries a reasoned suppression.
func justified(m map[int]int) []int {
	var out []int
	//lint:maporder the caller sorts; kept unsorted to exercise the directive
	for k := range m {
		out = append(out, k)
	}
	return out
}

// bareDirective has no justification, so it still reports.
func bareDirective(m map[int]int) []int {
	var out []int
	//lint:maporder
	for k := range m { // want "map iteration order feeds an append"
		out = append(out, k)
	}
	return out
}
