package linttest

import (
	"path/filepath"
	"reflect"
	"testing"

	"marioh/internal/lint/maporder"
)

// TestRunFixture drives the full loader/checker path against a real
// fixture; the per-analyzer tests in the sibling packages are the
// behavioral suite, this pins the harness itself.
func TestRunFixture(t *testing.T) {
	Run(t, maporder.Analyzer, filepath.Join("..", "maporder", "testdata", "src", "a"))
}

func TestSplitPatterns(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`"one"`, []string{"one"}},
		{`"one" "two"`, []string{"one", "two"}},
		{"`raw pattern`", []string{"raw pattern"}},
		{`"a" ` + "`b`", []string{"a", "b"}},
		// Go escapes in double quotes are interpreted, as in analysistest.
		{`"calls \\(f\\)"`, []string{`calls \(f\)`}},
		// Trailing junk after the last literal is ignored.
		{`"one" and commentary`, []string{"one"}},
		{``, nil},
	}
	for _, c := range cases {
		if got := splitPatterns(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitPatterns(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
