// Package linttest runs mariohlint analyzers over testdata fixtures
// and checks their diagnostics against analysistest-style
// `// want "regexp"` expectations.
//
// It is a self-contained reimplementation of the relevant slice of
// golang.org/x/tools/go/analysis/analysistest: that package needs
// go/packages (not part of the toolchain-vendored x/tools subset this
// repo builds against), while fixtures here are single packages with
// stdlib-only imports, which go/types can load directly through the
// source importer. Facts and suggested fixes are not supported — no
// mariohlint analyzer uses either.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package rooted at dir (all .go files, one
// package), runs a and its Requires closure, and fails t unless the
// diagnostics match the fixture's `// want "regexp"` comments exactly.
// The package is typechecked under an import path containing
// "/testdata/" so the analyzers' package-scope filters admit it.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	pkgPath := "marioh/internal/lint/testdata/" + filepath.Base(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: typecheck %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	if err := runAnalyzer(a, fset, files, pkg, info, map[*analysis.Analyzer]any{}, &diags); err != nil {
		t.Fatalf("linttest: %v", err)
	}
	checkExpectations(t, fset, files, diags)
}

// runAnalyzer executes a after its Requires closure, memoizing results
// so shared dependencies (inspect) run once.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, results map[*analysis.Analyzer]any, diags *[]analysis.Diagnostic) error {
	if _, done := results[a]; done {
		return nil
	}
	for _, req := range a.Requires {
		if err := runAnalyzer(req, fset, files, pkg, info, results, diags); err != nil {
			return err
		}
	}
	resultOf := map[*analysis.Analyzer]any{}
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			*diags = append(*diags, d)
		},
		ReadFile: os.ReadFile,
	}
	result, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %v", a.Name, err)
	}
	results[a] = result
	return nil
}

// expectation is one `// want "re"` clause, keyed by file:line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// checkExpectations matches diagnostics against want comments
// one-to-one: every want must be hit by a diagnostic on its line, and
// every diagnostic must land on a line with a matching want.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()

	wants := map[string][]*expectation{} // "file:line" → clauses
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: bad want regexp at %s: %v", key, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("no diagnostic at %s matching %q", k, w.re)
			}
		}
	}
}

// splitPatterns parses the clause list after `// want`: one or more
// double-quoted or backquoted Go-ish string literals.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := strings.Index(s[1:], `"`)
			if end < 0 {
				return append(out, s[1:])
			}
			// Interpret Go escapes (\\( → \() like analysistest does.
			pat := s[1 : 1+end]
			if unq, err := strconv.Unquote(`"` + pat + `"`); err == nil {
				pat = unq
			}
			out = append(out, pat)
			s = strings.TrimSpace(s[end+2:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return append(out, s[1:])
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
