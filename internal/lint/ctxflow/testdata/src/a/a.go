// Package a exercises the ctxflow analyzer: fresh contexts below the
// API boundary and exported context-blind entry points are flagged;
// forwarding functions, constructor-captured contexts and justified
// suppressions are not.
package a

import "context"

func blockingWork(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// Forwarder threads its caller's context; fine.
func Forwarder(ctx context.Context) error {
	return blockingWork(ctx, 1)
}

// Minter severs cancellation twice over: it mints a context and hides
// the need for one from its callers.
func Minter() error { // want "exported Minter calls context-aware code \\(blockingWork\\) but does not accept a context.Context"
	return blockingWork(context.Background(), 1) // want "context.Background below the API boundary"
}

// todoUser is unexported, so only the fresh context is flagged.
func todoUser() error {
	return blockingWork(context.TODO(), 1) // want "context.TODO below the API boundary"
}

// Worker captured its lifecycle context at construction — the
// sanctioned pattern for background loops.
type Worker struct {
	root context.Context
	n    int
}

// Run draws on the constructor-captured context; exempt.
func (w *Worker) Run() error {
	return blockingWork(w.root, w.n)
}

// Plain has no captured context, so its exported context-blind method
// reports.
type Plain struct{ n int }

// Go calls context-aware code with nothing to forward.
func (p *Plain) Go() error { // want "exported Go calls context-aware code \\(blockingWork\\) but does not accept a context.Context"
	return blockingWork(context.TODO(), p.n) // want "context.TODO below the API boundary"
}

// CallbackHolder only passes context-aware work to a callback that
// binds its own ctx parameter; the runner supplies the context.
func CallbackHolder(run func(ctx context.Context) error) func(ctx context.Context) error {
	return func(ctx context.Context) error { return blockingWork(ctx, 2) }
}

// Justified carries a reasoned suppression on both rules.
//
//lint:ctxflow detached audit log writer; deliberately outlives requests
func Justified() error {
	//lint:ctxflow detached audit log writer; deliberately outlives requests
	return blockingWork(context.Background(), 3)
}

// Bare directives carry no justification, so both rules still report.
//
//lint:ctxflow
func Bare() error { // want "exported Bare calls context-aware code"
	//lint:ctxflow
	return blockingWork(context.Background(), 4) // want "context.Background below the API boundary"
}
