package ctxflow_test

import (
	"path/filepath"
	"testing"

	"marioh/internal/lint/ctxflow"
	"marioh/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, filepath.Join("testdata", "src", "a"))
}
