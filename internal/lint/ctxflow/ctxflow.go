// Package ctxflow defines the mariohlint analyzer that enforces the
// context-threading contract below the public API boundary.
//
// marioh's cancellation story is end-to-end: the caller's
// context.Context flows from the public API (marioh), through the
// daemon (internal/server), into the incremental engine
// (internal/incremental) and the core rounds. Two things break it:
//
//  1. minting a fresh context.Background()/context.TODO() below the
//     boundary, which severs the caller's cancel signal; and
//  2. exported functions that call context-aware code without
//     accepting a context.Context themselves, which forces their
//     callers into (1).
//
// Types that capture a lifecycle context at construction (a struct
// field of type context.Context, like the server's Queue root) are the
// sanctioned alternative for background workers; methods on such types
// are exempt from (2). Deliberate exceptions — shutdown deadlines that
// must outlive the dead request context, http.Server.BaseContext —
// carry //lint:ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"marioh/internal/lint/lintutil"
)

const doc = `require context.Context to flow through exported blocking functions

No context.Background()/context.TODO() below the API boundary, and
every exported function that calls context-aware code must accept and
forward a context.Context (or belong to a type that captured one at
construction). Annotate deliberate exceptions with
//lint:ctxflow <reason>.`

// DefaultPackages are the context-threaded layers: the public API
// package plus the server, incremental and durability engines.
const DefaultPackages = "marioh,internal/server,internal/incremental,internal/durability"

const name = "ctxflow"

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packagesFlag = DefaultPackages

func init() {
	Analyzer.Flags.StringVar(&packagesFlag, "packages", DefaultPackages,
		"comma-separated package path suffixes to analyze")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.InScope(pass.Pkg.Path(), packagesFlag) {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return
		}
		if name := fn.Name(); name != "Background" && name != "TODO" {
			return
		}
		if lintutil.IsTestFile(pass, call.Pos()) || lintutil.Suppressed(pass, call.Pos(), name) {
			return
		}
		pass.Reportf(call.Pos(),
			"context.%s below the API boundary severs the caller's cancellation; accept and forward a context.Context (//lint:ctxflow <reason> if deliberate)",
			fn.Name())
	})

	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if !fn.Name.IsExported() || fn.Body == nil {
			return
		}
		if lintutil.IsTestFile(pass, fn.Pos()) {
			return
		}
		if hasContextParam(pass, fn) || receiverHoldsContext(pass, fn) {
			return
		}
		call := firstContextCall(pass, fn)
		if call == nil {
			return
		}
		if lintutil.Suppressed(pass, fn.Pos(), name) {
			return
		}
		pass.Reportf(fn.Name.Pos(),
			"exported %s calls context-aware code (%s) but does not accept a context.Context; add a ctx parameter and forward it (//lint:ctxflow <reason> if deliberate)",
			fn.Name.Name, calleeName(pass, call))
	})
	return nil, nil
}

// hasContextParam reports whether any parameter of fn is a
// context.Context.
func hasContextParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		if lintutil.IsContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// receiverHoldsContext reports whether fn's receiver is a struct that
// captured a context.Context field at construction — the sanctioned
// pattern for lifecycle-scoped workers (Queue.root et al.).
func receiverHoldsContext(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if lintutil.IsContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// firstContextCall returns the first call in fn's body whose callee
// takes a context.Context first parameter, skipping nested function
// literals that themselves bind a ctx parameter (callback shapes like
// runFunc receive their context from the runner, not from fn).
func firstContextCall(pass *analysis.Pass, fn *ast.FuncDecl) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			for _, field := range lit.Type.Params.List {
				if lintutil.IsContextType(pass.TypesInfo.TypeOf(field.Type)) {
					return false
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !lintutil.TakesContext(pass.TypesInfo, call) {
			return true
		}
		found = call
		return false
	})
	return found
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "a function"
}
