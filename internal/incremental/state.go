package incremental

import (
	"sort"

	"marioh/internal/core"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// CompFP records the fingerprint of one live component, keyed by its
// smallest node (the same key Apply uses).
type CompFP struct {
	Key int
	FP  uint64
}

// CacheEntry is one serializable per-component reconstruction result.
// Entries are content-addressed by FP, so a restored entry can never be
// merged for a component whose edge set diverged.
type CacheEntry struct {
	FP       uint64
	Filtered int
	Rec      *hypergraph.Hypergraph
}

// EngineState is a restorable snapshot of an Engine: the live graph, the
// apply counter, the per-component fingerprints and the cached results.
// Step timings are deliberately not part of the state — they are
// observability, not identity, and a restored engine reports zeros for
// work it did not redo.
//
// The Graph and Rec pointers reference the engine's live structures:
// callers must serialize the state before the engine mutates again, and
// Restore takes ownership of everything the state references.
type EngineState struct {
	Graph   *graph.Graph
	Applies int
	Comps   []CompFP     // sorted by Key
	Entries []CacheEntry // sorted by FP
}

// Mutate applies a batch of delta ops to the graph without counting an
// apply or reconstructing anything. The tracker's touched marks
// accumulate, so the next Apply rehashes every affected component exactly
// as if the ops had arrived through it — the WAL-replay entry point of
// crash recovery.
func (e *Engine) Mutate(ops []graph.DeltaOp) {
	for _, op := range ops {
		e.tracker.Apply(op)
	}
}

// SetApplies overrides the apply counter, so a recovered engine resumes
// the sequence numbering of the session it restores.
func (e *Engine) SetApplies(n int) { e.applies = n }

// Fingerprint hashes the whole live graph — node count plus every edge
// with its weight, in Edges() order — through the same splitmix64 chain
// the per-component fingerprints use. The durability layer records it
// per WAL batch and per snapshot, so recovery can verify a replayed
// graph byte-for-byte matched the one that was acknowledged.
func (e *Engine) Fingerprint() uint64 {
	g := e.tracker.Graph()
	h := splitmix64(uint64(g.NumNodes()))
	for _, edge := range g.Edges() {
		h = splitmix64(h ^ uint64(edge.U))
		h = splitmix64(h ^ uint64(edge.V))
		h = splitmix64(h ^ uint64(edge.W))
	}
	return h
}

// State snapshots the engine into a restorable EngineState.
//
// Component fingerprints are re-derived from the live components and
// included only when the recorded fingerprint is still trustworthy (the
// component has no pending touched marks). A component omitted here is
// simply rehashed by the first Apply after Restore, which makes State
// safe to call even mid-batch — e.g. right after a WAL replay, before
// any reconstruction ran.
func (e *Engine) State() *EngineState {
	st := &EngineState{
		Graph:   e.tracker.Graph(),
		Applies: e.applies,
	}
	for _, comp := range e.tracker.Components() {
		key := comp[0]
		if fp, ok := e.fpByKey[key]; ok && !e.touchedAny(comp) {
			st.Comps = append(st.Comps, CompFP{Key: key, FP: fp})
		}
	}
	fps := make([]uint64, 0, len(e.cache))
	for fp := range e.cache {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		cr := e.cache[fp]
		st.Entries = append(st.Entries, CacheEntry{FP: fp, Filtered: cr.filtered, Rec: cr.rec})
	}
	return st
}

// Restore rebuilds an Engine from a snapshot state, the inverse of State.
// It takes ownership of st.Graph and every entry's hypergraph. The
// restored engine starts with an empty touched set; components whose
// fingerprint the state did not carry are rehashed on the first Apply.
func Restore(st *EngineState, m *core.Model, opts core.Options, workers int) *Engine {
	e := New(st.Graph, m, opts, workers)
	e.applies = st.Applies
	for _, c := range st.Comps {
		e.fpByKey[c.Key] = c.FP
	}
	for _, en := range st.Entries {
		e.cache[en.FP] = &compResult{fp: en.FP, rec: en.Rec, filtered: en.Filtered}
	}
	return e
}
