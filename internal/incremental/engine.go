// Package incremental implements the session engine behind MARIOH's
// incremental reconstruction: a long-lived Engine owns a mutating
// projected graph plus a cache of per-component reconstruction results,
// and recomputes only the components a batch of deltas touched.
//
// The exactness argument is the same one the shard executor rests on:
// every round of the reconstruction decomposes over connected components
// (Phase-2 sampling, the stall fallback and all features are keyed by
// component, see core.ReconstructPiece), so a full run's output is the
// union of its components' outputs. The Engine caches those per-component
// outputs keyed by a fingerprint of the component's edge set; a delta
// batch invalidates exactly the components whose fingerprint changed, and
// merging refreshed components with cached ones reproduces a from-scratch
// reconstruction of the mutated graph bit for bit. A delta that is
// structurally a no-op (deleting an absent edge, re-setting a weight to
// its current value, an insert immediately reverted within the batch)
// lands back on its old fingerprint and stays a cache hit.
//
// The guarantee carries the same two caveats as sharding: it assumes the
// built-in component-local featurizers, and Options.MaxCliqueLimit — a
// global per-round budget — is applied per component instead.
package incremental

import (
	"context"
	"runtime"
	"sync"

	"marioh/internal/core"
	"marioh/internal/graph"
	"marioh/internal/hypergraph"
)

// compResult is one component's cached reconstruction.
type compResult struct {
	fp       uint64
	rec      *hypergraph.Hypergraph // hyperedges in original node ids
	filtered int
	times    core.StepTimes
}

// Engine is the incremental reconstruction state of one session: the live
// graph (mutated only through Apply), its component tracker, and the
// per-component result cache.
//
// An Engine is not safe for concurrent use; callers (marioh.Session, the
// mariohd session store) serialize access.
type Engine struct {
	tracker *graph.Tracker
	model   *core.Model
	opts    core.Options
	workers int

	cache   map[uint64]*compResult
	fpByKey map[int]uint64 // component key (min node) → fingerprint

	applies   int
	lastDirty int
}

// New builds an Engine over g with a trained model and reconstruction
// options. The Engine takes ownership of g — callers that keep using the
// graph must pass a clone. workers bounds how many dirty components
// reconstruct concurrently per Apply; 0 means GOMAXPROCS. Inside each
// component's rebuild the round engine additionally honors
// opts.Parallelism (see core.Options), which matters when one oversized
// dirty component dominates an Apply. The output is identical for every
// worker count and parallelism setting.
func New(g *graph.Graph, m *core.Model, opts core.Options, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		tracker: graph.NewTracker(g),
		model:   m,
		opts:    opts,
		workers: workers,
		cache:   map[uint64]*compResult{},
		fpByKey: map[int]uint64{},
	}
}

// Graph returns the engine's live graph. Callers must not mutate it.
func (e *Engine) Graph() *graph.Graph { return e.tracker.Graph() }

// Applies returns the number of Apply calls served so far.
func (e *Engine) Applies() int { return e.applies }

// LastDirty returns the number of components the most recent Apply
// recomputed.
func (e *Engine) LastDirty() int { return e.lastDirty }

// CachedComponents returns the number of per-component results currently
// cached (the live components of the graph after the last Apply).
func (e *Engine) CachedComponents() int { return len(e.cache) }

// Apply mutates the graph with a batch of delta ops and returns the full
// reconstruction of the mutated graph, recomputing only the components
// whose edge set changed. An empty batch is valid and reconstructs
// whatever is not cached yet — on a fresh Engine, the whole graph.
//
// On error or cancellation the graph mutation has already happened and
// the merged partial result is returned with the first error; components
// that finished stay cached, so a retry resumes where the failed Apply
// stopped.
func (e *Engine) Apply(ctx context.Context, ops []graph.DeltaOp) (*core.Result, error) {
	// Count the apply before mutating, so an attempt that dies mid-batch
	// is still visible to clients deciding whether a batch landed.
	e.applies++
	for _, op := range ops {
		e.tracker.Apply(op)
	}

	comps := e.tracker.Components()

	// Resolve every live component to a fingerprint: untouched components
	// keep the one recorded for their key, touched ones are rehashed.
	fps := make([]uint64, len(comps))
	newFpByKey := make(map[int]uint64, len(comps))
	var dirty []int // indices into comps with no cached result
	for i, comp := range comps {
		key := comp[0]
		fp, ok := e.fpByKey[key]
		if !ok || e.touchedAny(comp) {
			fp = e.fingerprint(comp)
		}
		fps[i] = fp
		newFpByKey[key] = fp
		if _, cached := e.cache[fp]; !cached {
			dirty = append(dirty, i)
		}
	}
	e.lastDirty = len(dirty)
	// The touched set is reset only now that it has been fully consumed
	// into the fingerprints. If a batch dies mid-mutation (a panic in a
	// graph primitive, e.g. a cumulative int32 weight overflow), the
	// partially-applied batch's marks survive into the next Apply, which
	// rehashes the affected components instead of trusting stale cache
	// entries — the byte-equality guarantee holds across failed batches.
	e.tracker.ResetTouched()

	// Reconstruct the dirty components, each through the cached piece
	// engine on its induced subgraph, fanned over a bounded worker pool.
	// Per-component randomness is keyed by original node ids, so results
	// are independent of worker count and completion order.
	fresh := make([]*compResult, len(dirty))
	errs := make([]error, len(dirty))
	if len(dirty) > 0 {
		runCtx, cancel := context.WithCancel(ctx)
		workers := e.workers
		if workers > len(dirty) {
			workers = len(dirty)
		}
		var progressMu sync.Mutex
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for di := range jobs {
					fresh[di], errs[di] = e.reconstructComponent(runCtx, comps[dirty[di]], fps[dirty[di]], &progressMu)
					if errs[di] != nil {
						cancel()
					}
				}
			}()
		}
		for di := range dirty {
			jobs <- di
		}
		close(jobs)
		wg.Wait()
		cancel()
	}

	// Install the refreshed components, then drop cache entries no live
	// component references so session memory tracks the graph, not its
	// history.
	var firstErr error
	for di, cr := range fresh {
		if errs[di] != nil && firstErr == nil {
			firstErr = errs[di]
		}
		if cr != nil {
			e.cache[cr.fp] = cr
		}
	}
	e.fpByKey = newFpByKey
	liveFps := make(map[uint64]bool, len(fps))
	for _, fp := range fps {
		liveFps[fp] = true
	}
	for fp := range e.cache {
		if !liveFps[fp] {
			delete(e.cache, fp)
		}
	}

	// Merge per-component results in ascending component-key order.
	g := e.tracker.Graph()
	res := &core.Result{
		Hypergraph:      hypergraph.New(g.NumNodes()),
		DirtyComponents: len(dirty),
	}
	for _, fp := range fps {
		cr, ok := e.cache[fp]
		if !ok {
			continue // this component's reconstruction failed or was cancelled
		}
		cr.rec.Each(func(nodes []int, mult int) {
			res.Hypergraph.AddMult(nodes, mult)
		})
		res.FilteredSize2 += cr.filtered
		res.Times.Filtering += cr.times.Filtering
		res.Times.Bidirectional += cr.times.Bidirectional
		if cr.times.Rounds > res.Times.Rounds {
			res.Times.Rounds = cr.times.Rounds
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return res, firstErr
}

// reconstructComponent runs the cached piece engine on one component's
// induced subgraph and maps the result back to original node ids.
func (e *Engine) reconstructComponent(ctx context.Context, comp []int, fp uint64, progressMu *sync.Mutex) (*compResult, error) {
	g := e.tracker.Graph()
	sub, back := g.Subgraph(comp)
	opts := e.opts
	if fn := e.opts.Progress; fn != nil {
		dirty := e.lastDirty
		opts.Progress = func(p core.Progress) {
			p.Dirty = dirty
			progressMu.Lock()
			defer progressMu.Unlock()
			fn(p)
		}
	}
	res, err := core.ReconstructPiece(ctx, sub, e.model, opts, back)
	if err != nil {
		return nil, err
	}
	rec := hypergraph.New(g.NumNodes())
	buf := make([]int, 0, 16)
	res.Hypergraph.Each(func(local []int, mult int) {
		buf = buf[:0]
		for _, u := range local {
			buf = append(buf, back[u])
		}
		rec.AddMult(buf, mult)
	})
	return &compResult{
		fp:       fp,
		rec:      rec,
		filtered: res.FilteredSize2,
		times:    res.Times,
	}, nil
}

// touchedAny reports whether the delta batch touched any node of comp.
func (e *Engine) touchedAny(comp []int) bool {
	for _, u := range comp {
		if e.tracker.TouchedSet(u) {
			return true
		}
	}
	return false
}

// fingerprint hashes a component's identity: its sorted node set and
// every edge with its weight, chained through splitmix64. The cache keys
// on this 64-bit value, so a collision between two distinct edge sets
// would reuse the wrong result — at ~2^-64 per pair that is the usual
// content-hash trade, and the byte-equality CI gate would surface it.
func (e *Engine) fingerprint(comp []int) uint64 {
	g := e.tracker.Graph()
	h := splitmix64(uint64(len(comp)))
	for _, u := range comp {
		h = splitmix64(h ^ uint64(u))
		g.NeighborWeights(u, func(v, w int) {
			if u < v {
				h = splitmix64(h ^ uint64(v))
				h = splitmix64(h ^ uint64(w))
			}
		})
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer (shared idiom with core's
// component sampling seeds).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
