package incremental

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/graph"
)

// TestEngineStateRestoreRoundTrip: State → Restore must reproduce the
// engine exactly — the restored engine's next Apply recomputes nothing
// and emits byte-identical output.
func TestEngineStateRestoreRoundTrip(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := core.Options{Seed: 3}
	eng := New(g, m, opts, 0)
	rng := rand.New(rand.NewSource(11))
	bound := datasets.MustByName("crime", 1).Target.Reduced().Project().NumNodes()
	if _, err := eng.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	base, err := eng.Apply(context.Background(), randomBatch(rng, eng.Graph(), 8, bound))
	if err != nil {
		t.Fatal(err)
	}

	st := eng.State()
	if st.Applies != 2 || len(st.Comps) == 0 || len(st.Entries) == 0 {
		t.Fatalf("state: applies %d, %d comps, %d entries", st.Applies, len(st.Comps), len(st.Entries))
	}
	restored := Restore(st, m, opts, 0)
	if restored.Applies() != 2 {
		t.Fatalf("restored applies = %d, want 2", restored.Applies())
	}
	res, err := restored.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyComponents != 0 {
		t.Fatalf("restored engine recomputed %d components, want 0", res.DirtyComponents)
	}
	if !bytes.Equal(render(t, res), render(t, base)) {
		t.Fatal("restored engine output diverges from the original")
	}
}

// TestEngineStateOmitsTouchedFingerprints: after Mutate (the WAL-replay
// entry point) the affected components' recorded fingerprints are stale;
// State must drop them so a restore rehashes instead of trusting them.
func TestEngineStateOmitsTouchedFingerprints(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := core.Options{Seed: 1}
	shadow := g.Clone()
	eng := New(g, m, opts, 0)
	if _, err := eng.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	before := len(eng.State().Comps)
	if before == 0 {
		t.Fatal("no component fingerprints after a clean Apply")
	}

	e0 := eng.Graph().Edges()[0]
	op := graph.DeltaOp{Kind: graph.DeltaSet, U: e0.U, V: e0.V, W: e0.W + 1}
	eng.Mutate([]graph.DeltaOp{op})
	applyToShadow(shadow, op)

	st := eng.State()
	if len(st.Comps) != before-1 {
		t.Fatalf("state kept %d component fingerprints, want %d (touched one dropped)", len(st.Comps), before-1)
	}
	fpBefore := eng.Fingerprint()

	// A restore from this mid-batch state must still converge on the
	// rebuilt graph's exact output.
	restored := Restore(st, m, opts, 0)
	if restored.Fingerprint() != fpBefore {
		t.Fatal("restored graph fingerprint diverges")
	}
	res, err := restored.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyComponents == 0 {
		t.Fatal("restore trusted a stale fingerprint for the mutated component")
	}
	want, err := core.ReconstructContext(context.Background(), shadow, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, res), render(t, want)) {
		t.Fatal("restored output diverges from full rebuild of the mutated graph")
	}
}
