package incremental

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"marioh/internal/core"
	"marioh/internal/datasets"
	"marioh/internal/graph"
)

// multiComponentTarget builds a target graph with many components from
// several dataset analogs, plus a model trained the usual way (the same
// fixture the shard-equivalence tests use).
func multiComponentTarget(t *testing.T) (*graph.Graph, *core.Model) {
	t.Helper()
	src := datasets.MustByName("crime", 1).Source.Reduced()
	m := core.Train(src.Project(), src, core.TrainOptions{Seed: 1, Epochs: 15})
	n := 0
	var parts []*graph.Graph
	for _, name := range []string{"crime", "hosts", "pschool"} {
		parts = append(parts, datasets.MustByName(name, 1).Target.Reduced().Project())
	}
	for _, p := range parts {
		n += p.NumNodes()
	}
	g := graph.New(n)
	off := 0
	for _, p := range parts {
		for _, e := range p.Edges() {
			g.AddWeight(off+e.U, off+e.V, e.W)
		}
		off += p.NumNodes()
	}
	return g, m
}

// renderHG serializes a hypergraph in its canonical text form.
func render(t *testing.T, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Hypergraph.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// applyToShadow applies a delta op to a plain graph the way the Tracker
// does, giving the tests an independent "mutated graph" to rebuild from
// scratch.
func applyToShadow(g *graph.Graph, op graph.DeltaOp) {
	top := op.U
	if op.V > top {
		top = op.V
	}
	g.EnsureNodes(top + 1)
	switch op.Kind {
	case graph.DeltaAdd:
		g.AddWeight(op.U, op.V, op.W)
	case graph.DeltaRemove:
		g.RemoveEdge(op.U, op.V)
	case graph.DeltaSet:
		g.SetWeight(op.U, op.V, op.W)
	}
}

// randomBatch derives a reproducible delta batch against the current
// state of g: weight bumps and deletes on existing edges plus a few new
// inserts, confined to node ids below bound so components outside that
// range stay untouched.
func randomBatch(rng *rand.Rand, g *graph.Graph, size, bound int) []graph.DeltaOp {
	var edges []graph.Edge
	for _, e := range g.Edges() {
		if e.V < bound {
			edges = append(edges, e)
		}
	}
	var ops []graph.DeltaOp
	for i := 0; i < size; i++ {
		switch {
		case len(edges) > 0 && rng.Intn(3) != 0:
			e := edges[rng.Intn(len(edges))]
			if rng.Intn(2) == 0 {
				ops = append(ops, graph.DeltaOp{Kind: graph.DeltaAdd, U: e.U, V: e.V, W: 1})
			} else {
				ops = append(ops, graph.DeltaOp{Kind: graph.DeltaRemove, U: e.U, V: e.V})
			}
		default:
			u, v := rng.Intn(bound), rng.Intn(bound)
			if u == v {
				continue
			}
			ops = append(ops, graph.DeltaOp{Kind: graph.DeltaSet, U: u, V: v, W: 1 + rng.Intn(3)})
		}
	}
	return ops
}

// TestEngineMatchesFullRebuildUnderDeltas is the core acceptance
// property: after every delta batch, the engine's merged output must be
// byte-identical to a from-scratch reconstruction of the mutated graph —
// serial and sharded.
func TestEngineMatchesFullRebuildUnderDeltas(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := core.Options{Seed: 3}
	shadow := g.Clone()
	eng := New(g, m, opts, 0)
	rng := rand.New(rand.NewSource(42))

	batches := [][]graph.DeltaOp{nil} // first Apply: full build
	for i := 0; i < 4; i++ {
		batches = append(batches, nil) // placeholder, generated against live state
	}

	// Deltas stay within the first dataset block's id range, so the other
	// blocks' components must remain cached across every batch.
	bound := datasets.MustByName("crime", 1).Target.Reduced().Project().NumNodes()
	for bi := range batches {
		ops := batches[bi]
		if bi > 0 {
			ops = randomBatch(rng, shadow, 12, bound)
		}
		for _, op := range ops {
			applyToShadow(shadow, op)
		}
		got, err := eng.Apply(context.Background(), ops)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		want, err := core.ReconstructContext(context.Background(), shadow, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(t, got), render(t, want)) {
			t.Fatalf("batch %d: session output diverges from full rebuild (%d vs %d unique)",
				bi, got.Hypergraph.NumUnique(), want.Hypergraph.NumUnique())
		}
		if got.FilteredSize2 != want.FilteredSize2 {
			t.Fatalf("batch %d: FilteredSize2 %d != full rebuild %d", bi, got.FilteredSize2, want.FilteredSize2)
		}
		sharded, err := core.ReconstructSharded(context.Background(), shadow, m, opts, core.ShardOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render(t, got), render(t, sharded)) {
			t.Fatalf("batch %d: session output diverges from sharded rebuild", bi)
		}
		if bi == 0 {
			if got.DirtyComponents == 0 || got.DirtyComponents != eng.CachedComponents() {
				t.Fatalf("initial build: dirty %d, cached %d", got.DirtyComponents, eng.CachedComponents())
			}
		} else if got.DirtyComponents >= eng.CachedComponents() {
			t.Fatalf("batch %d: %d of %d components dirty — localized deltas should leave most cached",
				bi, got.DirtyComponents, eng.CachedComponents())
		}
	}
}

// TestEngineNoopAndRevertedBatchesStayCached: batches that do not change
// any component's edge set (structural no-ops, or mutations reverted
// within the same batch) must recompute nothing.
func TestEngineNoopAndRevertedBatchesStayCached(t *testing.T) {
	g, m := multiComponentTarget(t)
	eng := New(g, m, core.Options{Seed: 1}, 0)
	full, err := eng.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := render(t, full)

	e := eng.Graph().Edges()[0]
	for name, ops := range map[string][]graph.DeltaOp{
		"empty":           nil,
		"remove-absent":   {{Kind: graph.DeltaRemove, U: 0, V: eng.Graph().NumNodes() - 1}},
		"set-same-weight": {{Kind: graph.DeltaSet, U: e.U, V: e.V, W: e.W}},
		"add-then-revert": {
			{Kind: graph.DeltaAdd, U: e.U, V: e.V, W: 2},
			{Kind: graph.DeltaSet, U: e.U, V: e.V, W: e.W},
		},
	} {
		res, err := eng.Apply(context.Background(), ops)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.DirtyComponents != 0 {
			t.Errorf("%s: recomputed %d components, want 0", name, res.DirtyComponents)
		}
		if !bytes.Equal(render(t, res), base) {
			t.Errorf("%s: output changed", name)
		}
	}
	// Sanity: remove-absent against a node pair inside one component that
	// IS an edge must dirty exactly that component.
	res, err := eng.Apply(context.Background(), []graph.DeltaOp{{Kind: graph.DeltaRemove, U: e.U, V: e.V}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyComponents == 0 {
		t.Fatal("real delete recomputed nothing")
	}
	if eng.Applies() != 6 || eng.LastDirty() != res.DirtyComponents {
		t.Fatalf("counters: applies %d lastDirty %d (want 6, %d)",
			eng.Applies(), eng.LastDirty(), res.DirtyComponents)
	}
}

// TestEngineMergeAndSplit: inserting an inter-component edge must dirty
// only the merged component; deleting it must dirty both sides — and both
// states must match full rebuilds.
func TestEngineMergeAndSplit(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := core.Options{Seed: 9}
	shadow := g.Clone()
	eng := New(g, m, opts, 0)
	if _, err := eng.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	total := eng.CachedComponents()
	if total < 3 {
		t.Fatalf("fixture should have ≥ 3 components, got %d", total)
	}

	// Bridge the components containing the globally smallest and largest
	// edge endpoints (guaranteed distinct blocks of the disjoint union).
	edges := shadow.Edges()
	u, v := edges[0].U, edges[len(edges)-1].V
	bridge := graph.DeltaOp{Kind: graph.DeltaAdd, U: u, V: v, W: 1}
	applyToShadow(shadow, bridge)
	res, err := eng.Apply(context.Background(), []graph.DeltaOp{bridge})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyComponents != 1 {
		t.Fatalf("merge dirtied %d components, want 1", res.DirtyComponents)
	}
	if eng.CachedComponents() != total-1 {
		t.Fatalf("after merge: %d components cached, want %d", eng.CachedComponents(), total-1)
	}
	want, err := core.ReconstructContext(context.Background(), shadow, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, res), render(t, want)) {
		t.Fatal("merged-component output diverges from full rebuild")
	}

	// Cut the bridge again: the component splits back; both sides are
	// rehashed but land on their pre-merge fingerprints only if those
	// entries were still cached — they were evicted at the merge, so both
	// sides recompute.
	cut := graph.DeltaOp{Kind: graph.DeltaRemove, U: u, V: v}
	applyToShadow(shadow, cut)
	res, err = eng.Apply(context.Background(), []graph.DeltaOp{cut})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyComponents != 2 {
		t.Fatalf("split dirtied %d components, want 2", res.DirtyComponents)
	}
	if eng.CachedComponents() != total {
		t.Fatalf("after split: %d components cached, want %d", eng.CachedComponents(), total)
	}
	want, err = core.ReconstructContext(context.Background(), shadow, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, res), render(t, want)) {
		t.Fatal("post-split output diverges from full rebuild")
	}
}

// TestEngineProgressCarriesDirtyCount: every progress event of an Apply
// reports how many components that Apply is recomputing.
func TestEngineProgressCarriesDirtyCount(t *testing.T) {
	g, m := multiComponentTarget(t)
	var dirtySeen []int
	opts := core.Options{Seed: 1, Progress: func(p core.Progress) {
		dirtySeen = append(dirtySeen, p.Dirty)
	}}
	eng := New(g, m, opts, 0)
	res, err := eng.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirtySeen) == 0 {
		t.Fatal("no progress events")
	}
	for _, d := range dirtySeen {
		if d != res.DirtyComponents {
			t.Fatalf("event carried Dirty %d, want %d", d, res.DirtyComponents)
		}
	}
}

// TestEnginePanicMidBatchKeepsEquivalence: a batch that dies in a graph
// primitive after mutating earlier ops (here: a cumulative int32 weight
// overflow, which every op passes wire validation for) must not poison
// the cache — the next Apply re-derives the touched components and still
// matches a from-scratch rebuild of the partially-mutated graph.
func TestEnginePanicMidBatchKeepsEquivalence(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := core.Options{Seed: 4}
	shadow := g.Clone()
	eng := New(g, m, opts, 0)
	if _, err := eng.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	edges := shadow.Edges()
	eA := edges[0]            // component in the first block
	eB := edges[len(edges)-1] // component in the last block
	const maxW = math.MaxInt32/2 + 1
	batch := []graph.DeltaOp{
		{Kind: graph.DeltaAdd, U: eA.U, V: eA.V, W: 1},    // lands
		{Kind: graph.DeltaSet, U: eB.U, V: eB.V, W: maxW}, // lands
		{Kind: graph.DeltaAdd, U: eB.U, V: eB.V, W: maxW}, // cumulative overflow → panic
	}
	applyToShadow(shadow, batch[0])
	applyToShadow(shadow, batch[1])

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the overflow panic")
			}
		}()
		_, _ = eng.Apply(context.Background(), batch)
	}()

	res, err := eng.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ReconstructContext(context.Background(), shadow, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, res), render(t, want)) {
		t.Fatal("post-panic Apply diverges from full rebuild of the partially-mutated graph")
	}
	if res.DirtyComponents == 0 {
		t.Fatal("post-panic Apply trusted stale cache entries for the mutated components")
	}
}

// TestEngineCancelledApplyIsRetryable: a cancelled Apply returns the
// context error; a retry completes and still matches the full rebuild.
func TestEngineCancelledApplyIsRetryable(t *testing.T) {
	g, m := multiComponentTarget(t)
	opts := core.Options{Seed: 2}
	shadow := g.Clone()
	eng := New(g, m, opts, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Apply(ctx, nil); err == nil {
		t.Fatal("cancelled Apply returned nil error")
	}
	res, err := eng.Apply(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ReconstructContext(context.Background(), shadow, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(render(t, res), render(t, want)) {
		t.Fatal("retried Apply diverges from full rebuild")
	}
}
