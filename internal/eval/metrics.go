// Package eval implements every evaluation metric used in the MARIOH
// paper: Jaccard and multi-Jaccard similarity between hypergraphs
// (Sect. II-B), the normalized difference and Kolmogorov–Smirnov
// D-statistic of the structural-preservation study (Table IV), and the
// downstream-task metrics NMI, AUC, and micro/macro F1 (Tables VII–IX).
package eval

import (
	"math"
	"sort"

	"marioh/internal/hypergraph"
)

// Jaccard returns |E_a ∩ E_b| / |E_a ∪ E_b| over the sets of unique
// hyperedges — the paper's reconstruction-accuracy measure for the
// multiplicity-reduced setting. Two empty hypergraphs have similarity 1.
func Jaccard(a, b *hypergraph.Hypergraph) float64 {
	na, nb := a.NumUnique(), b.NumUnique()
	if na == 0 && nb == 0 {
		return 1
	}
	inter := 0
	small, large := a, b
	if nb < na {
		small, large = b, a
	}
	for _, k := range small.Keys() {
		if large.ContainsKey(k) {
			inter++
		}
	}
	return float64(inter) / float64(na+nb-inter)
}

// MultiJaccard returns Σ_e min(M_a(e), M_b(e)) / Σ_e max(M_a(e), M_b(e))
// over the union of unique hyperedges — the multiplicity-preserved
// accuracy measure (multi-Jaccard similarity, da Fontoura Costa).
func MultiJaccard(a, b *hypergraph.Hypergraph) float64 {
	if a.NumUnique() == 0 && b.NumUnique() == 0 {
		return 1
	}
	sumMin, sumMax := 0, 0
	for _, k := range a.Keys() {
		ma, mb := a.MultiplicityKey(k), b.MultiplicityKey(k)
		sumMin += min(ma, mb)
		sumMax += max(ma, mb)
	}
	for _, k := range b.Keys() {
		if !a.ContainsKey(k) {
			sumMax += b.MultiplicityKey(k)
		}
	}
	if sumMax == 0 {
		return 0
	}
	return float64(sumMin) / float64(sumMax)
}

// NormalizedDiff returns |x − y| / max(x, y), the scalar-property
// preservation error of Table IV (0 when both are 0).
func NormalizedDiff(x, y float64) float64 {
	m := math.Max(math.Abs(x), math.Abs(y))
	if m == 0 {
		return 0
	}
	return math.Abs(x-y) / m
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov D-statistic: the
// maximum absolute difference between the empirical CDFs of a and b.
// Either sample being empty yields 1 unless both are empty (0).
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
