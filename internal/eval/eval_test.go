package eval

import (
	"math"
	"testing"
	"testing/quick"

	"marioh/internal/hypergraph"
)

func h(edges ...[]int) *hypergraph.Hypergraph {
	hg := hypergraph.New(0)
	for _, e := range edges {
		hg.Add(e)
	}
	return hg
}

func TestJaccard(t *testing.T) {
	a := h([]int{0, 1}, []int{1, 2, 3})
	b := h([]int{0, 1}, []int{2, 3})
	// intersection {0,1}; union 3 edges.
	if got := Jaccard(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if Jaccard(a, a) != 1 {
		t.Fatal("self Jaccard must be 1")
	}
	if Jaccard(hypergraph.New(0), hypergraph.New(0)) != 1 {
		t.Fatal("two empty hypergraphs are identical")
	}
	if Jaccard(a, hypergraph.New(0)) != 0 {
		t.Fatal("empty vs non-empty must be 0")
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(x, y uint8) bool {
		a := h([]int{0, 1}, []int{int(x%5) + 2, int(x%5) + 8})
		b := h([]int{0, 1}, []int{int(y%5) + 2, int(y%5) + 8})
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiJaccard(t *testing.T) {
	a := hypergraph.New(0)
	a.AddMult([]int{0, 1}, 3)
	a.Add([]int{2, 3})
	b := hypergraph.New(0)
	b.AddMult([]int{0, 1}, 1)
	b.AddMult([]int{2, 3}, 2)
	b.Add([]int{4, 5})
	// min: 1 + 1 + 0 = 2; max: 3 + 2 + 1 = 6.
	if got := MultiJaccard(a, b); math.Abs(got-2.0/6) > 1e-12 {
		t.Fatalf("MultiJaccard = %v, want 1/3", got)
	}
	if MultiJaccard(a, a) != 1 {
		t.Fatal("self multi-Jaccard must be 1")
	}
}

func TestMultiJaccardVsJaccardOnReduced(t *testing.T) {
	// With all multiplicities 1, multi-Jaccard equals Jaccard.
	a := h([]int{0, 1}, []int{1, 2}, []int{3, 4, 5})
	b := h([]int{0, 1}, []int{3, 4, 5}, []int{6, 7})
	if math.Abs(MultiJaccard(a, b)-Jaccard(a, b)) > 1e-12 {
		t.Fatal("multi-Jaccard must equal Jaccard on multiplicity-1 hypergraphs")
	}
}

func TestNormalizedDiff(t *testing.T) {
	if NormalizedDiff(0, 0) != 0 {
		t.Fatal("0,0 should be 0")
	}
	if NormalizedDiff(2, 4) != 0.5 {
		t.Fatal("2,4 should be 0.5")
	}
	if NormalizedDiff(4, 2) != 0.5 {
		t.Fatal("must be symmetric")
	}
	if NormalizedDiff(0, 5) != 1 {
		t.Fatal("0,5 should be 1")
	}
}

func TestKSStatistic(t *testing.T) {
	if KSStatistic(nil, nil) != 0 {
		t.Fatal("empty vs empty = 0")
	}
	if KSStatistic([]float64{1}, nil) != 1 {
		t.Fatal("empty vs non-empty = 1")
	}
	same := []float64{1, 2, 3, 4}
	if KSStatistic(same, same) != 0 {
		t.Fatal("identical samples = 0")
	}
	// Disjoint supports: D = 1.
	if got := KSStatistic([]float64{1, 2}, []float64{10, 20}); got != 1 {
		t.Fatalf("disjoint D = %v, want 1", got)
	}
	// Known: a = {1,2}, b = {2,3}: CDF gap peaks at 0.5 at x=1.
	if got := KSStatistic([]float64{1, 2}, []float64{2, 3}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("D = %v, want 0.5", got)
	}
}

func TestKSStatisticBounds(t *testing.T) {
	f := func(a, b []float64) bool {
		d := KSStatistic(a, b)
		return d >= 0 && d <= 1 && d == KSStatistic(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNMI(t *testing.T) {
	if got := NMI([]int{0, 0, 1, 1}, []int{5, 5, 9, 9}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("relabeled identical clustering NMI = %v, want 1", got)
	}
	// Independent-ish: one cluster vs two.
	got := NMI([]int{0, 0, 0, 0}, []int{0, 0, 1, 1})
	if got < 0 || got > 0.01 {
		t.Fatalf("uninformative clustering NMI = %v, want ≈ 0", got)
	}
}

func TestAUC(t *testing.T) {
	// Perfect ranking.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Inverted ranking.
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All ties → 0.5.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 1, 0, 1}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Single class → 0.5 by convention.
	if got := AUC([]float64{0.1, 0.9}, []int{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestMicroMacroF1(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2}
	truth := []int{0, 1, 1, 1, 2}
	if got := MicroF1(pred, truth); got != 0.8 {
		t.Fatalf("MicroF1 = %v, want 0.8", got)
	}
	// Per-class F1: class 0: tp=1 fp=1 fn=0 → p=.5 r=1 → 2/3.
	// class 1: tp=2 fp=0 fn=1 → p=1 r=2/3 → 0.8. class 2: perfect → 1.
	want := (2.0/3 + 0.8 + 1) / 3
	if got := MacroF1(pred, truth); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MacroF1 = %v, want %v", got, want)
	}
	if MicroF1(truth, truth) != 1 || MacroF1(truth, truth) != 1 {
		t.Fatal("perfect prediction must score 1")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Fatalf("MeanStd = %v, %v; want 5, 2", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be zeros")
	}
}
