package eval

import (
	"math"
	"sort"
)

// NMI returns the normalized mutual information between two clusterings
// (arbitrary label values), normalized by the arithmetic mean of the
// entropies. Identical clusterings score 1; independent ones approach 0.
func NMI(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("eval: NMI length mismatch")
	}
	n := len(pred)
	if n == 0 {
		return 0
	}
	joint := make(map[[2]int]int)
	pc := make(map[int]int)
	tc := make(map[int]int)
	for i := 0; i < n; i++ {
		joint[[2]int{pred[i], truth[i]}]++
		pc[pred[i]]++
		tc[truth[i]]++
	}
	fn := float64(n)
	mi := 0.0
	for pt, c := range joint {
		pxy := float64(c) / fn
		px := float64(pc[pt[0]]) / fn
		py := float64(tc[pt[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	hp, ht := 0.0, 0.0
	for _, c := range pc {
		p := float64(c) / fn
		hp -= p * math.Log(p)
	}
	for _, c := range tc {
		p := float64(c) / fn
		ht -= p * math.Log(p)
	}
	den := (hp + ht) / 2
	if den == 0 {
		if mi == 0 {
			return 1 // both clusterings are single-cluster and identical
		}
		return 0
	}
	return mi / den
}

// AUC returns the area under the ROC curve for scores against binary
// labels (1 = positive), handling score ties by assigning half credit.
func AUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic("eval: AUC length mismatch")
	}
	type pair struct {
		s float64
		l int
	}
	ps := make([]pair, len(scores))
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Rank-sum (Mann–Whitney) formulation with average ranks for ties.
	nPos, nNeg := 0, 0
	rankSumPos := 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if ps[k].l == 1 {
				rankSumPos += avgRank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// MicroF1 returns the micro-averaged F1 of a multi-class prediction, which
// for single-label classification equals plain accuracy.
func MicroF1(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("eval: MicroF1 length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// MacroF1 returns the macro-averaged F1: the unweighted mean of the
// per-class F1 scores over the classes present in the ground truth.
func MacroF1(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("eval: MacroF1 length mismatch")
	}
	classes := make(map[int]bool)
	for _, t := range truth {
		classes[t] = true
	}
	if len(classes) == 0 {
		return 0
	}
	total := 0.0
	for c := range classes {
		tp, fp, fn := 0, 0, 0
		for i := range pred {
			switch {
			case pred[i] == c && truth[i] == c:
				tp++
			case pred[i] == c && truth[i] != c:
				fp++
			case pred[i] != c && truth[i] == c:
				fn++
			}
		}
		if tp == 0 {
			continue // F1 = 0 for this class
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		total += 2 * prec * rec / (prec + rec)
	}
	return total / float64(len(classes))
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
