package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v, want 7", m.At(0, 1))
	}
	r := m.Row(0)
	r[2] = 9
	if m.At(0, 2) != 9 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone must be independent")
	}
}

func TestMulIdentity(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	p := Mul(a, Identity(2))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I ≠ A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i*3+j+1)) // 1..6
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			b.Set(i, j, float64(i*2+j+1)) // 1..6
		}
	}
	p := Mul(a, b)
	want := [][]float64{{22, 28}, {49, 64}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul at (%d,%d) = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	a.Set(0, 2, 7)
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 0) != 7 {
		t.Fatalf("Transpose wrong: %dx%d, at(2,0)=%v", at.Rows, at.Cols, at.At(2, 0))
	}
}

func TestMatVecAndDot(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	y := MatVec(a, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v", y)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	vals, vecs := SymEigen(a)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-9 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvectors must be unit columns.
	for j := 0; j < 3; j++ {
		s := 0.0
		for i := 0; i < 3; i++ {
			s += vecs.At(i, j) * vecs.At(i, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("eigenvector %d not unit norm: %v", j, s)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	vals, _ := SymEigen(a)
	if math.Abs(vals[0]-1) > 1e-9 || math.Abs(vals[1]-3) > 1e-9 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
}

// TestQuickSymEigenReconstruction: V·diag(λ)·Vᵀ must reproduce the input on
// random symmetric matrices.
func TestQuickSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := SymEigen(a)
		// Check A·v_j = λ_j·v_j for each eigenpair.
		for j := 0; j < n; j++ {
			col := make([]float64, n)
			for i := 0; i < n; i++ {
				col[i] = vecs.At(i, j)
			}
			av := MatVec(a, col)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[j]*col[i]) > 1e-6 {
					t.Fatalf("trial %d: eigenpair %d violated: %v vs %v",
						trial, j, av[i], vals[j]*col[i])
				}
			}
		}
	}
}

func TestKMeansTwoBlobs(t *testing.T) {
	pts := NewMatrix(20, 2)
	for i := 0; i < 10; i++ {
		pts.Set(i, 0, 0+0.01*float64(i))
		pts.Set(i+10, 0, 10+0.01*float64(i))
	}
	assign := KMeans(pts, 2, 1, 25)
	for i := 1; i < 10; i++ {
		if assign[i] != assign[0] {
			t.Fatal("first blob split")
		}
		if assign[i+10] != assign[10] {
			t.Fatal("second blob split")
		}
	}
	if assign[0] == assign[10] {
		t.Fatal("blobs merged")
	}
}

func TestKMeansDegenerateInputs(t *testing.T) {
	if got := KMeans(NewMatrix(0, 2), 3, 1, 10); len(got) != 0 {
		t.Fatal("empty input should yield empty assignment")
	}
	pts := NewMatrix(2, 1)
	pts.Set(1, 0, 1)
	assign := KMeans(pts, 5, 1, 10) // k > n clamps
	if len(assign) != 2 {
		t.Fatalf("assignment length %d", len(assign))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 8 {
			return true
		}
		n := len(raw) / 2
		pts := NewMatrix(n, 2)
		copy(pts.Data, raw[:n*2])
		a := KMeans(pts, 3, 7, 25)
		b := KMeans(pts, 3, 7, 25)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
