package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// denseOp wraps a dense matrix as a MatVecFunc.
func denseOp(a *Matrix) MatVecFunc {
	return func(x, y []float64) {
		r := MatVec(a, x)
		copy(y, r)
	}
}

func TestLanczosMatchesJacobiOnRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		wantVals, _ := SymEigen(a)
		k := 3
		gotVals, gotVecs := LanczosSmallest(n, k, n, denseOp(a), 1)
		for c := 0; c < k; c++ {
			if math.Abs(gotVals[c]-wantVals[c]) > 1e-6 {
				t.Fatalf("trial %d: eigenvalue %d = %v, want %v", trial, c, gotVals[c], wantVals[c])
			}
			// Verify A·v = λ·v.
			col := make([]float64, n)
			for r := 0; r < n; r++ {
				col[r] = gotVecs.At(r, c)
			}
			av := MatVec(a, col)
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-gotVals[c]*col[r]) > 1e-5 {
					t.Fatalf("trial %d: eigenpair %d residual too large", trial, c)
				}
			}
		}
	}
}

func TestLanczosDiagonal(t *testing.T) {
	n := 50
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, float64(i+1))
	}
	vals, _ := LanczosSmallest(n, 4, 0, denseOp(a), 2)
	for c, want := range []float64{1, 2, 3, 4} {
		if math.Abs(vals[c]-want) > 1e-6 {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestLanczosDegenerate(t *testing.T) {
	vals, vecs := LanczosSmallest(5, 0, 0, denseOp(NewMatrix(5, 5)), 1)
	if len(vals) != 0 || vecs.Cols != 0 {
		t.Fatal("k=0 should return nothing")
	}
	// k > n clamps.
	a := Identity(3)
	vals, _ = LanczosSmallest(3, 10, 0, denseOp(a), 1)
	if len(vals) > 3 {
		t.Fatalf("too many eigenvalues: %v", vals)
	}
}

func TestTopSingularValues(t *testing.T) {
	// A = [[3,0],[0,4]] → G = A·Aᵀ = diag(9,16); singular values {4, 3}.
	g := NewMatrix(2, 2)
	g.Set(0, 0, 9)
	g.Set(1, 1, 16)
	sv := TopSingularValues(2, 2, denseOp(g), 1)
	if math.Abs(sv[0]-4) > 1e-6 || math.Abs(sv[1]-3) > 1e-6 {
		t.Fatalf("singular values = %v, want [4 3]", sv)
	}
}
