// Package linalg provides the dense linear-algebra substrate needed by the
// downstream-task experiments of the MARIOH reproduction: matrices, a
// symmetric Jacobi eigensolver (for spectral clustering and spectral node
// embeddings), and k-means. Everything is implemented from scratch on the
// standard library.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to m[i,j].
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// MatVec returns a·x for a vector x.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: matvec shape mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		r := a.Row(i)
		s := 0.0
		for j, v := range r {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// SymEigen computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi rotation method. It returns the eigenvalues in
// ascending order and a matrix whose COLUMNS are the corresponding
// orthonormal eigenvectors. The input is not modified. SymEigen is O(n³)
// per sweep and intended for the ≤ ~1000-node matrices that arise in the
// paper's downstream tasks (school contact networks).
func SymEigen(a *Matrix) (vals []float64, vecs *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: SymEigen requires a square matrix")
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small and this is stable
		for j := i; j > 0 && vals[idx[j]] < vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	vecs = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, vecs
}

// rotate applies the Jacobi rotation J(p,q,θ) to w (two-sided) and
// accumulates it into v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
