package linalg

import "sort"

// Sparse is a compressed-sparse-row matrix. Rows and columns are fixed at
// construction; entries are added once through NewSparseFromTriples.
type Sparse struct {
	RowsN, ColsN int
	rowPtr       []int
	colIdx       []int
	vals         []float64
}

// Triple is one (row, col, value) entry.
type Triple struct {
	Row, Col int
	Val      float64
}

// NewSparseFromTriples builds a CSR matrix from unordered triples;
// duplicate (row, col) entries are summed.
func NewSparseFromTriples(rows, cols int, entries []Triple) *Sparse {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Row != entries[j].Row {
			return entries[i].Row < entries[j].Row
		}
		return entries[i].Col < entries[j].Col
	})
	s := &Sparse{RowsN: rows, ColsN: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(entries); {
		j := i
		v := 0.0
		for j < len(entries) && entries[j].Row == entries[i].Row && entries[j].Col == entries[i].Col {
			v += entries[j].Val
			j++
		}
		s.colIdx = append(s.colIdx, entries[i].Col)
		s.vals = append(s.vals, v)
		s.rowPtr[entries[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		s.rowPtr[r+1] += s.rowPtr[r]
	}
	return s
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.vals) }

// MulDense returns s · d for a dense matrix d (shape ColsN×k) as a dense
// RowsN×k matrix, in O(nnz · k).
func (s *Sparse) MulDense(d *Matrix) *Matrix {
	if d.Rows != s.ColsN {
		panic("linalg: sparse·dense shape mismatch")
	}
	out := NewMatrix(s.RowsN, d.Cols)
	for r := 0; r < s.RowsN; r++ {
		or := out.Row(r)
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			v := s.vals[p]
			dr := d.Row(s.colIdx[p])
			for j, dv := range dr {
				or[j] += v * dv
			}
		}
	}
	return out
}

// MulVec returns s · x.
func (s *Sparse) MulVec(x []float64) []float64 {
	if len(x) != s.ColsN {
		panic("linalg: sparse·vec shape mismatch")
	}
	out := make([]float64, s.RowsN)
	for r := 0; r < s.RowsN; r++ {
		sum := 0.0
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			sum += s.vals[p] * x[s.colIdx[p]]
		}
		out[r] = sum
	}
	return out
}

// Each calls fn for every stored entry.
func (s *Sparse) Each(fn func(row, col int, val float64)) {
	for r := 0; r < s.RowsN; r++ {
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			fn(r, s.colIdx[p], s.vals[p])
		}
	}
}
