package linalg

import (
	"math"
	"math/rand"
)

// MatVecFunc applies an implicit symmetric linear operator: y = A·x.
// The callee must fill y completely (it may not rely on y's prior value).
type MatVecFunc func(x, y []float64)

// LanczosSmallest computes the k smallest eigenpairs of an implicit
// symmetric n×n operator using the Lanczos iteration with full
// reorthogonalization, making spectral embeddings practical for graphs far
// beyond the O(n³) Jacobi solver's reach. It returns the eigenvalues in
// ascending order and a matrix whose columns are the eigenvectors.
//
// m is the Krylov subspace dimension (m ≥ k; 0 picks min(n, max(2k+20,
// 40))). The operator is only touched through matvec, so callers can run
// it on sparse Laplacians in O(|E|) per step.
func LanczosSmallest(n, k, m int, matvec MatVecFunc, seed int64) ([]float64, *Matrix) {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil, NewMatrix(n, 0)
	}
	if m <= 0 {
		m = 2*k + 20
		if m < 40 {
			m = 40
		}
	}
	if m > n {
		m = n
	}
	if m < k {
		m = k
	}

	rng := rand.New(rand.NewSource(seed))
	// Lanczos basis vectors (kept for full reorthogonalization).
	v := make([][]float64, 0, m+1)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m) // beta[j] couples v[j] and v[j+1]

	q := make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	normalize(q)
	v = append(v, append([]float64(nil), q...))

	w := make([]float64, n)
	for j := 0; j < m; j++ {
		matvec(v[j], w)
		a := Dot(v[j], w)
		alpha = append(alpha, a)
		// w ← w − a·v_j − b_{j−1}·v_{j−1}, then full reorthogonalization.
		for i := range w {
			w[i] -= a * v[j][i]
		}
		if j > 0 {
			b := beta[j-1]
			for i := range w {
				w[i] -= b * v[j-1][i]
			}
		}
		for _, u := range v { // full reorthogonalization (twice for safety)
			d := Dot(w, u)
			for i := range w {
				w[i] -= d * u[i]
			}
		}
		b := Norm2(w)
		if b < 1e-12 {
			break // invariant subspace found
		}
		beta = append(beta, b)
		next := make([]float64, n)
		for i := range w {
			next[i] = w[i] / b
		}
		v = append(v, next)
	}

	// Solve the tridiagonal eigenproblem with the dense Jacobi solver (the
	// subspace is small).
	dim := len(alpha)
	tri := NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		tri.Set(i, i, alpha[i])
		if i+1 < dim && i < len(beta) {
			tri.Set(i, i+1, beta[i])
			tri.Set(i+1, i, beta[i])
		}
	}
	vals, vecs := SymEigen(tri)

	if k > dim {
		k = dim
	}
	outVals := make([]float64, k)
	outVecs := NewMatrix(n, k)
	for c := 0; c < k; c++ {
		outVals[c] = vals[c]
		for r := 0; r < n; r++ {
			s := 0.0
			for j := 0; j < dim; j++ {
				s += v[j][r] * vecs.At(j, c)
			}
			outVecs.Set(r, c, s)
		}
	}
	return outVals, outVecs
}

func normalize(x []float64) {
	n := Norm2(x)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
}

// TopSingularValues returns the k largest singular values of an implicit
// matrix given the Gram operator G = A·Aᵀ (n×n): the square roots of G's
// largest eigenvalues, computed with Lanczos on −G (so "smallest" of the
// negated operator are the largest of G).
func TopSingularValues(n, k int, gram MatVecFunc, seed int64) []float64 {
	neg := func(x, y []float64) {
		gram(x, y)
		for i := range y {
			y[i] = -y[i]
		}
	}
	vals, _ := LanczosSmallest(n, k, 0, neg, seed)
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		ev := -v // eigenvalue of G
		if ev < 0 {
			ev = 0
		}
		out = append(out, math.Sqrt(ev))
	}
	return out
}
