package linalg

import "math/rand"

// KMeans clusters the rows of points into k clusters with Lloyd's algorithm
// and k-means++ seeding, returning the cluster assignment of every row. The
// result is deterministic for a fixed seed. maxIter caps the number of
// Lloyd iterations (25 is plenty for the small embedding matrices used in
// the downstream experiments).
func KMeans(points *Matrix, k int, seed int64, maxIter int) []int {
	n, d := points.Rows, points.Cols
	assign := make([]int, n)
	if n == 0 || k <= 0 {
		return assign
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	centers := kmeansppInit(points, k, rng)
	dist := func(row []float64, c []float64) float64 {
		s := 0.0
		for j := 0; j < d; j++ {
			dd := row[j] - c[j]
			s += dd * dd
		}
		return s
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			row := points.Row(i)
			best, bd := 0, dist(row, centers.Row(0))
			for c := 1; c < k; c++ {
				if dd := dist(row, centers.Row(c)); dd < bd {
					best, bd = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		next := NewMatrix(k, d)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := points.Row(i)
			nr := next.Row(c)
			for j := 0; j < d; j++ {
				nr[j] += row[j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next.Row(c), points.Row(rng.Intn(n)))
				continue
			}
			nr := next.Row(c)
			for j := 0; j < d; j++ {
				nr[j] /= float64(counts[c])
			}
		}
		centers = next
	}
	return assign
}

// kmeansppInit picks k initial centers with k-means++ (distance-squared
// weighted sampling).
func kmeansppInit(points *Matrix, k int, rng *rand.Rand) *Matrix {
	n, d := points.Rows, points.Cols
	centers := NewMatrix(k, d)
	first := rng.Intn(n)
	copy(centers.Row(0), points.Row(first))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(points.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, dd := range minDist {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, dd := range minDist {
				acc += dd
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(centers.Row(c), points.Row(pick))
		for i := range minDist {
			if dd := sqDist(points.Row(i), centers.Row(c)); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
